(** TPC-C / TPC-W slice (§5.1.2): product-listing management adds
    referential integrity; the stock invariant uses the restock
    compensation the benchmark specification prescribes.

    [Ipa]'s new_order touches the item listing (restoring it against a
    concurrent removal); stock lives in a compensation counter. *)

open Ipa_store
open Ipa_runtime

type variant = Causal | Ipa

type t

val create : ?initial_stock:int -> ?restock_amount:int -> variant -> t

val add_item : t -> string -> Config.op_exec
val rem_item : t -> string -> Config.op_exec
val new_order : t -> order_id:string -> string -> string -> Config.op_exec
val check_stock : t -> string -> Config.op_exec

(** Dangling order lines + stock under-runs visible at a replica. *)
val count_violations : t -> Replica.t -> int

type workload_params = {
  n_items : int;
  n_customers : int;
  order_ratio : float;
}

val default_params : workload_params
val next_op : t -> workload_params -> Ipa_sim.Rng.t -> region:string -> Config.op_exec
val seed_data : t -> workload_params -> Cluster.t -> unit

(** Read-only operation names (candidates for non-weak read levels). *)
val read_ops : string list

(** {1 Fuzzer hooks} *)

(** Fuzzable operations: name × parameter sorts. *)
val fuzz_ops : (string * string list) list

(** Dispatch by name with positional string arguments; [None] on an
    unknown name or wrong arity. *)
val exec_op : t -> string -> string list -> Config.op_exec option
