(** The Ticket application (FusionTicket, §5.1.2 / Figure 7).

    Invariant: tickets for an event cannot be oversold
    ([available(e) >= 0]).  The [Causal] variant keeps availability in a
    plain PN-counter: the operation checks the local value before buying,
    but concurrent buys at different replicas can still drive it
    negative — each read that observes a negative value counts violation
    units (the red dots of Figure 7).  The [Ipa] variant uses the
    {!Ipa_crdt.Compcounter}: reads repair the violation by cancelling the
    oversold tickets and reimbursing the buyers (the compensation commits
    with the reading transaction). *)

open Ipa_crdt
open Ipa_store
open Ipa_runtime

type variant =
  | Causal  (** plain PN-counter: overselling possible *)
  | Ipa  (** compensation counter: overselling repaired on read (§3.4) *)
  | Escrow
      (** pre-partitioned decrement rights (the escrow technique the
          paper cites [11, 27, 35]): overselling is {e prevented}, but a
          replica whose rights run out must obtain a transfer from a
          peer — the coordination round-trip IPA avoids.  The rights
          ledger is the holder-side grant protocol, modelled atomically
          (the simulation is single-threaded); the grant's WAN cost is
          charged to the operation via [extra_rtts]. *)

type t = {
  variant : variant;
  initial_stock : int;
  rights : (string * string, int) Hashtbl.t;
      (** escrow ledger: (event, replica) → decrement rights held *)
}

let create ?(initial_stock = 100) (variant : variant) : t =
  { variant; initial_stock; rights = Hashtbl.create 16 }

let rights_of (app : t) e rep =
  Option.value ~default:0 (Hashtbl.find_opt app.rights (e, rep))

let k_events = "events"
let k_avail e = "avail:" ^ e

let mk name is_update reservations run : Config.op_exec =
  { Config.op_name = name; is_update; reservations; run }

(* availability accessors per variant *)
let avail_value (app : t) tx key : int =
  match app.variant with
  | Causal -> Pncounter.value (Obj.as_pncounter (Txn.get tx key Obj.T_pncounter))
  | Ipa ->
      Compcounter.raw_value
        (Obj.as_compcounter (Txn.get tx key (Obj.T_compcounter { min_value = 0 })))
  | Escrow ->
      Pncounter.value (Obj.as_pncounter (Txn.get tx key Obj.T_pncounter))

let avail_delta (app : t) tx key d : unit =
  match app.variant with
  | Causal ->
      let c = Obj.as_pncounter (Txn.get tx key Obj.T_pncounter) in
      Txn.update tx key
        (Obj.Op_pncounter (Pncounter.prepare c ~rep:tx.Txn.rep.Replica.id d))
  | Ipa ->
      let c =
        Obj.as_compcounter (Txn.get tx key (Obj.T_compcounter { min_value = 0 }))
      in
      Txn.update tx key
        (Obj.Op_compcounter
           (Compcounter.prepare_delta c ~rep:tx.Txn.rep.Replica.id d))
  | Escrow ->
      let c = Obj.as_pncounter (Txn.get tx key Obj.T_pncounter) in
      Txn.update tx key
        (Obj.Op_pncounter (Pncounter.prepare c ~rep:tx.Txn.rep.Replica.id d))

(** Buy one ticket.  The application checks availability first (its
    precondition); overselling can still happen via concurrency in the
    Causal and IPA variants.  The Escrow variant can never oversell:
    when the local rights are exhausted it transfers rights from the
    richest peer — a coordination round-trip, reported via
    [extra_rtts] so the runtime charges WAN latency for it. *)
let buy_ticket (app : t) (e : string) : Config.op_exec =
  mk "buy_ticket" true [ (k_avail e, Config.Shared) ] (fun rep ->
      let tx = Txn.begin_ rep in
      let key = k_avail e in
      match app.variant with
      | Escrow ->
          let me = rep.Replica.id in
          let have = rights_of app e me in
          if have > 0 then begin
            Hashtbl.replace app.rights (e, me) (have - 1);
            avail_delta app tx key (-1);
            Config.outcome (Txn.commit tx)
          end
          else begin
            (* ask the richest peer for half of its rights (holder-side
               grant, one WAN round-trip) *)
            let richest, rights =
              List.fold_left
                (fun (br, bn) peer ->
                  if peer = me then (br, bn)
                  else
                    let n = rights_of app e peer in
                    if n > bn then (peer, n) else (br, bn))
                ("", 0) rep.Replica.peers
            in
            if rights <= 0 then begin
              Txn.abort tx;
              Config.outcome None (* genuinely sold out *)
            end
            else begin
              let n = max 1 (rights / 2) in
              Hashtbl.replace app.rights (e, richest) (rights - n);
              Hashtbl.replace app.rights (e, me) (n - 1);
              avail_delta app tx key (-1);
              Config.outcome ~extra_rtts:1 (Txn.commit tx)
            end
          end
      | Causal | Ipa ->
          let v = avail_value app tx key in
          if v > 0 then begin
            avail_delta app tx key (-1);
            Config.outcome (Txn.commit tx)
          end
          else begin
            Txn.abort tx;
            Config.outcome None (* sold out: no effect *)
          end)

(** Read an event's availability.  Causal observes (and counts) raw
    violations; IPA repairs them through the compensation counter. *)
let read_event (app : t) (e : string) : Config.op_exec =
  mk "read_event" false [] (fun rep ->
      let tx = Txn.begin_ rep in
      let key = k_avail e in
      match app.variant with
      | Causal ->
          (* the anomaly is visible to the user: a negative availability
             can be observed.  Violation counting happens by periodic
             state sampling in the harness (the paper's red dots). *)
          let _v =
            Pncounter.value (Obj.as_pncounter (Txn.get tx key Obj.T_pncounter))
          in
          ignore (Txn.commit tx);
          Config.outcome None
      | Escrow ->
          let v =
            Pncounter.value (Obj.as_pncounter (Txn.get tx key Obj.T_pncounter))
          in
          ignore (Txn.commit tx);
          (* escrow never oversells: a negative value would be a bug *)
          Config.outcome ~violations:(max 0 (-v)) None
      | Ipa ->
          let c =
            Obj.as_compcounter
              (Txn.get tx key (Obj.T_compcounter { min_value = 0 }))
          in
          let _value, comp_ops, violations = Compcounter.read c ~rep:rep.Replica.id in
          List.iter (fun op -> Txn.update tx key (Obj.Op_compcounter op)) comp_ops;
          Config.outcome ~violations ~extra_work:1 (Txn.commit tx))

let add_tickets (app : t) (e : string) (n : int) : Config.op_exec =
  mk "add_tickets" true [ (k_avail e, Config.Shared) ] (fun rep ->
      let tx = Txn.begin_ rep in
      avail_delta app tx (k_avail e) n;
      Config.outcome (Txn.commit tx))

(** Number of events whose availability invariant is violated in the
    state visible at a replica.  For IPA the {e observable} value is the
    compensated one, so a user never sees a violation (reads repair);
    for Causal the raw negative value is what a user reads. *)
let count_violations (app : t) (rep : Replica.t) (events : string list) : int =
  ignore app;
  List.fold_left
    (fun acc e ->
      match Replica.peek rep (k_avail e) with
      | Some (Obj.O_pncounter c) -> if Pncounter.value c < 0 then acc + 1 else acc
      | Some (Obj.O_compcounter _) ->
          (* reads run the compensation: the observed value is clamped *)
          acc
      | _ -> acc)
    0 events

(** Total oversold tickets in the state a user observes at [rep]: the
    sum of negative availabilities.  For IPA the observable state is the
    read-repaired one (never negative); for Causal the anomaly is
    permanent. *)
let oversell_depth (app : t) (rep : Replica.t) (events : string list) : int =
  ignore app;
  List.fold_left
    (fun acc e ->
      match Replica.peek rep (k_avail e) with
      | Some (Obj.O_pncounter c) -> acc + max 0 (-Pncounter.value c)
      | Some (Obj.O_compcounter c) ->
          (* what a read returns after compensation *)
          let v, _, _ = Compcounter.read c ~rep:rep.Replica.id in
          acc + max 0 (-v)
      | Some (Obj.O_bcounter c) -> acc + max 0 (-Bcounter.value c)
      | None -> acc
      | _ -> acc)
    0 events

(* ------------------------------------------------------------------ *)
(* Workload (Figure 7: contention-heavy buys)                          *)
(* ------------------------------------------------------------------ *)

type workload_params = {
  n_events : int;  (** fewer events = more contention *)
  buy_ratio : float;
  restock_ratio : float;
      (** fraction of operations releasing a few extra tickets, so
          availability keeps hovering around the bound (sustained
          contention, as in Figure 7's load sweep) *)
  restock_amount : int;
}

let default_params =
  { n_events = 10; buy_ratio = 0.5; restock_ratio = 0.05; restock_amount = 2 }

let event wp rng = Fmt.str "e%d" (Ipa_sim.Rng.int rng wp.n_events)

let next_op (app : t) (wp : workload_params) (rng : Ipa_sim.Rng.t)
    ~(region : string) : Config.op_exec =
  ignore region;
  let r = Ipa_sim.Rng.float rng in
  if r < wp.buy_ratio then buy_ticket app (event wp rng)
  else if r < wp.buy_ratio +. wp.restock_ratio then
    add_tickets app (event wp rng) wp.restock_amount
  else read_event app (event wp rng)

let seed_data (app : t) (wp : workload_params) (cluster : Cluster.t) : unit =
  let rep = List.hd cluster.Cluster.replicas in
  let tx = Txn.begin_ rep in
  for i = 0 to wp.n_events - 1 do
    let e = Fmt.str "e%d" i in
    let s = Obj.as_awset (Txn.get tx k_events Obj.T_awset) in
    Txn.update tx k_events
      (Obj.Op_awset (Awset.prepare_add s ~dot:(Txn.fresh_dot tx) e));
    (match app.variant with
    | Escrow ->
        (* pre-partition the decrement rights among the replicas — the
           coordination-free setup the escrow technique relies on *)
        let peers = rep.Replica.peers in
        let share = app.initial_stock / List.length peers in
        List.iter
          (fun peer -> Hashtbl.replace app.rights (e, peer) share)
          peers
    | Causal | Ipa -> ());
    avail_delta app tx (k_avail e)
      (match app.variant with
      | Escrow ->
          app.initial_stock / List.length rep.Replica.peers
          * List.length rep.Replica.peers
      | _ -> app.initial_stock)
  done;
  match Txn.commit tx with
  | Some b -> Cluster.broadcast_now cluster b
  | None -> ()

(* ------------------------------------------------------------------ *)
(* Fuzzer hooks                                                        *)
(* ------------------------------------------------------------------ *)

(** Read-only operations (candidates for non-weak read levels). *)
let read_ops = [ "read_event" ]

(** Fuzzable operations: name and parameter sorts ([add_tickets] takes
    its amount as a literal-integer second argument). *)
let fuzz_ops : (string * string list) list =
  [
    ("buy_ticket", [ "Event" ]);
    ("read_event", [ "Event" ]);
    ("add_tickets", [ "Event"; "#amount" ]);
  ]

(** Dispatch an operation by name with positional string arguments;
    [None] on an unknown name, wrong arity or a malformed amount. *)
let exec_op (app : t) (name : string) (args : string list) :
    Config.op_exec option =
  match (name, args) with
  | "buy_ticket", [ e ] -> Some (buy_ticket app e)
  | "read_event", [ e ] -> Some (read_event app e)
  | "add_tickets", [ e; n ] ->
      Option.map (add_tickets app e) (int_of_string_opt n)
  | _ -> None
