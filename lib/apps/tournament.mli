(** The Tournament application (Figure 1) over the replicated store.

    [Causal] runs the original operations (which can violate invariants
    under concurrency); [Ipa] runs the Figure 3 modifications: restoring
    touches on enroll/begin/finish/do_match and Compensation-Set
    enrollment sets enforcing the capacity bound on read (with a cascade
    removing matches of evicted players, so the repair itself preserves
    the other invariants). *)

open Ipa_store
open Ipa_runtime

type variant = Causal | Ipa

type t = { variant : variant; capacity : int }

val create : ?capacity:int -> variant -> t

(** {1 Operations} (preconditions checked against local state) *)

val add_player : t -> string -> Config.op_exec
val rem_player : t -> string -> Config.op_exec
val add_tourn : t -> string -> Config.op_exec
val rem_tourn : t -> string -> Config.op_exec
val enroll : t -> string -> string -> Config.op_exec
val disenroll : t -> string -> string -> Config.op_exec
val begin_tourn : t -> string -> Config.op_exec
val finish_tourn : t -> string -> Config.op_exec
val do_match : t -> string -> string -> string -> Config.op_exec

(** Read-only status; triggers the capacity compensation in IPA mode. *)
val status : t -> string -> Config.op_exec

(** Invariant-violation instances visible at a replica. *)
val count_violations : t -> Replica.t -> int

(** {1 Workload (§5.2.2: 35% writes, the Figure 5 mix)} *)

type workload_params = {
  n_players : int;
  n_tournaments : int;
  write_ratio : float;
}

val default_params : workload_params
val next_op : t -> workload_params -> Ipa_sim.Rng.t -> region:string -> Config.op_exec
val seed_data : t -> workload_params -> Cluster.t -> unit

(** Read-only operation names (candidates for non-weak read levels). *)
val read_ops : string list

(** {1 Fuzzer hooks} *)

(** Fuzzable operations: name × parameter sorts. *)
val fuzz_ops : (string * string list) list

(** Dispatch by name with positional string arguments; [None] on an
    unknown name or wrong arity. *)
val exec_op : t -> string -> string list -> Config.op_exec option
