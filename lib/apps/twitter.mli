(** The Twitter clone (§5.1.2 / Figure 6): pervasive referential
    integrity between timelines, tweets and users.

    [Causal] is unmodified; [Add_wins] restores users/tweets on the
    write path (tweet/retweet cost); [Rem_wins] lets removals win and
    hides dangling entries with a read-side compensation (timeline
    cost), purging removed users' history with wildcard removes. *)

open Ipa_store
open Ipa_runtime

type variant = Causal | Add_wins | Rem_wins

type t

val create : ?followers_per_user:int -> variant -> t

val add_user : t -> string -> Config.op_exec
val rem_user : t -> n_users:int -> string -> Config.op_exec
val do_tweet : t -> n_users:int -> string -> string -> Config.op_exec
val retweet : t -> n_users:int -> string -> string -> Config.op_exec
val del_tweet : t -> string -> Config.op_exec
val follow : t -> string -> string -> Config.op_exec
val unfollow : t -> string -> string -> Config.op_exec
val timeline : t -> string -> Config.op_exec

type workload_params = {
  n_users : int;
  n_tweets : int;
  read_ratio : float;
}

val default_params : workload_params
val next_op : t -> workload_params -> Ipa_sim.Rng.t -> region:string -> Config.op_exec
val seed_data : t -> workload_params -> Cluster.t -> unit

(** Read-only operation names (candidates for non-weak read levels). *)
val read_ops : string list

(** {1 Fuzzer hooks} *)

(** Fuzzable operations: name × parameter sorts (user arguments must be
    of the form [u<N>]). *)
val fuzz_ops : (string * string list) list

(** Dispatch by name with positional string arguments; [None] on an
    unknown name or wrong arity. *)
val exec_op : t -> n_users:int -> string -> string list -> Config.op_exec option
