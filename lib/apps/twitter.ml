(** The Twitter clone (§5.1.2 / Figure 6).

    Referential integrity is pervasive: timelines reference tweets and
    users, follow edges reference users.  When a user tweets we write the
    tweet into every follower's timeline immediately (the paper's
    design), which makes concurrent tweet/user removals visible.

    Three variants:
    - [Causal]: the unmodified application (violations possible);
    - [Add_wins]: tweeting/retweeting {e restores} the user (and the
      tweet, for retweets) with touch effects — extra update cost on the
      write path (Figure 6's higher tweet/retweet latency);
    - [Rem_wins]: removals win; timeline {e reads} run a compensation
      that filters out tweets deleted concurrently — extra cost on the
      read path instead (Figure 6's higher timeline latency), and
      [rem_user] purges the user's history with a wildcard remove. *)

open Ipa_crdt
open Ipa_store
open Ipa_runtime

type variant = Causal | Add_wins | Rem_wins

type t = { variant : variant; followers_per_user : int }

let create ?(followers_per_user = 8) (variant : variant) : t =
  { variant; followers_per_user }

let k_users = "users"
let k_tweets = "tweets"
let k_timeline u = "timeline:" ^ u
let k_follows u = "follows:" ^ u
let k_retweets t = "retweets:" ^ t

let mk name is_update reservations run : Config.op_exec =
  { Config.op_name = name; is_update; reservations; run }

let aw_get tx key = Obj.as_awset (Txn.get tx key Obj.T_awset)

let aw_add ?payload tx key e =
  let s = aw_get tx key in
  Txn.update tx key
    (Obj.Op_awset (Awset.prepare_add ?payload s ~dot:(Txn.fresh_dot tx) e))

let aw_touch tx key e =
  let s = aw_get tx key in
  Txn.update tx key
    (Obj.Op_awset (Awset.prepare_touch s ~dot:(Txn.fresh_dot tx) e))

let aw_remove tx key e =
  let s = aw_get tx key in
  Txn.update tx key (Obj.Op_awset (Awset.prepare_remove s e))

(* deterministic follower sample: user u's followers *)
let followers (app : t) ~(n_users : int) (u : int) : string list =
  List.init app.followers_per_user (fun i ->
      Fmt.str "u%d" ((u + ((i + 1) * 7)) mod n_users))

(* ------------------------------------------------------------------ *)
(* Operations                                                          *)
(* ------------------------------------------------------------------ *)

let add_user (_ : t) (u : string) : Config.op_exec =
  mk "add_user" true [ (k_users, Config.Shared) ] (fun rep ->
      let tx = Txn.begin_ rep in
      aw_add ~payload:("profile:" ^ u) tx k_users u;
      Config.outcome (Txn.commit tx))

(** Remove a user.  Under rem-wins semantics the user's history is
    purged from other users' timelines with a wildcard remove (paper:
    "IPA can leverage the Rem-wins semantics to purge all the user's
    history"). *)
let rem_user (app : t) ~(n_users : int) (u : string) : Config.op_exec =
  mk "rem_user" true [ (k_users, Config.Exclusive) ] (fun rep ->
      let tx = Txn.begin_ rep in
      aw_remove tx k_users u;
      (match app.variant with
      | Rem_wins ->
          (* purge u's tweets from all follower timelines *)
          let suffix = ":" ^ u in
          List.iter
            (fun f ->
              let key = k_timeline f in
              let s = aw_get tx key in
              Txn.update tx key
                (Obj.Op_awset
                   (Awset.prepare_remove_where s
                      (Awset.Matching
                         (fun e -> Filename.check_suffix e suffix)))))
            (followers app ~n_users
               (int_of_string (String.sub u 1 (String.length u - 1))))
      | Causal | Add_wins -> ());
      Config.outcome (Txn.commit tx))

(** Tweet: create the tweet and push it to every follower's timeline.
    Timeline entries are ["<tid>:<author>"]. *)
let do_tweet (app : t) ~(n_users : int) (u : string) (tid : string) :
    Config.op_exec =
  mk "tweet" true [ (k_users, Config.Shared); (k_tweets, Config.Shared) ] (fun rep ->
      let tx = Txn.begin_ rep in
      aw_add ~payload:("text of " ^ tid) tx k_tweets tid;
      let entry = tid ^ ":" ^ u in
      let uid = int_of_string (String.sub u 1 (String.length u - 1)) in
      List.iter
        (fun f -> aw_add tx (k_timeline f) entry)
        (followers app ~n_users uid);
      (* Add-wins: the tweeting user must not be removable concurrently *)
      (match app.variant with
      | Add_wins -> aw_touch tx k_users u
      | Causal | Rem_wins -> ());
      Config.outcome (Txn.commit tx))

let retweet (app : t) ~(n_users : int) (u : string) (tid : string) :
    Config.op_exec =
  mk "retweet" true [ (k_users, Config.Shared); (k_tweets, Config.Shared) ] (fun rep ->
      let tx = Txn.begin_ rep in
      aw_add tx (k_retweets tid) u;
      let entry = tid ^ ":" ^ u in
      let uid = int_of_string (String.sub u 1 (String.length u - 1)) in
      List.iter
        (fun f -> aw_add tx (k_timeline f) entry)
        (followers app ~n_users uid);
      (match app.variant with
      | Add_wins ->
          (* restore the retweeted tweet and the retweeting user *)
          aw_touch tx k_tweets tid;
          aw_touch tx k_users u
      | Causal | Rem_wins -> ());
      Config.outcome (Txn.commit tx))

let del_tweet (_ : t) (tid : string) : Config.op_exec =
  mk "del_tweet" true [ (k_tweets, Config.Exclusive) ] (fun rep ->
      let tx = Txn.begin_ rep in
      aw_remove tx k_tweets tid;
      Config.outcome (Txn.commit tx))

let follow (_ : t) (a : string) (b : string) : Config.op_exec =
  mk "follow" true [ (k_users, Config.Shared) ] (fun rep ->
      let tx = Txn.begin_ rep in
      aw_add tx (k_follows a) b;
      Config.outcome (Txn.commit tx))

let unfollow (_ : t) (a : string) (b : string) : Config.op_exec =
  mk "unfollow" true [ (k_users, Config.Shared) ] (fun rep ->
      let tx = Txn.begin_ rep in
      aw_remove tx (k_follows a) b;
      Config.outcome (Txn.commit tx))

(** Read a user's timeline.  Rem-wins runs the hiding compensation:
    entries whose tweet was deleted (or author removed) are filtered
    out, at the cost of reading the tweets/users sets too. *)
let timeline (app : t) (u : string) : Config.op_exec =
  mk "timeline" false [] (fun rep ->
      let tx = Txn.begin_ rep in
      let entries = Awset.elements (aw_get tx (k_timeline u)) in
      match app.variant with
      | Causal | Add_wins ->
          (* dangling entries are observed violations in Causal mode *)
          let tweets = aw_get tx k_tweets in
          let violations =
            if app.variant = Causal then
              List.length
                (List.filter
                   (fun e ->
                     match String.index_opt e ':' with
                     | Some i -> not (Awset.mem (String.sub e 0 i) tweets)
                     | None -> false)
                   entries)
            else 0
          in
          ignore (Txn.commit tx);
          Config.outcome ~violations None
      | Rem_wins ->
          let tweets = aw_get tx k_tweets in
          let users = aw_get tx k_users in
          let visible =
            List.filter
              (fun e ->
                match String.index_opt e ':' with
                | Some i ->
                    Awset.mem (String.sub e 0 i) tweets
                    && Awset.mem
                         (String.sub e (i + 1) (String.length e - i - 1))
                         users
                | None -> false)
              entries
          in
          ignore (Txn.commit tx);
          (* the compensation reads two extra objects and filters *)
          Config.outcome
            ~extra_work:(2 + List.length entries - List.length visible)
            None)

(* ------------------------------------------------------------------ *)
(* Workload (Figure 6 operation mix)                                   *)
(* ------------------------------------------------------------------ *)

type workload_params = {
  n_users : int;
  n_tweets : int;
  read_ratio : float;
}

let default_params = { n_users = 100; n_tweets = 500; read_ratio = 0.5 }

let user wp rng = Fmt.str "u%d" (Ipa_sim.Rng.int rng wp.n_users)
let tweet_id wp rng = Fmt.str "tw%d" (Ipa_sim.Rng.int rng wp.n_tweets)

let next_op (app : t) (wp : workload_params) (rng : Ipa_sim.Rng.t)
    ~(region : string) : Config.op_exec =
  ignore region;
  if Ipa_sim.Rng.flip rng wp.read_ratio then timeline app (user wp rng)
  else
    match Ipa_sim.Rng.int rng 7 with
    | 0 -> do_tweet app ~n_users:wp.n_users (user wp rng) (tweet_id wp rng)
    | 1 -> retweet app ~n_users:wp.n_users (user wp rng) (tweet_id wp rng)
    | 2 -> del_tweet app (tweet_id wp rng)
    | 3 -> follow app (user wp rng) (user wp rng)
    | 4 -> unfollow app (user wp rng) (user wp rng)
    | 5 -> add_user app (user wp rng)
    | _ -> rem_user app ~n_users:wp.n_users (user wp rng)

let seed_data (app : t) (wp : workload_params) (cluster : Cluster.t) : unit =
  ignore app;
  let rep = List.hd cluster.Cluster.replicas in
  let tx = Txn.begin_ rep in
  for i = 0 to wp.n_users - 1 do
    aw_add ~payload:(Fmt.str "profile:u%d" i) tx k_users (Fmt.str "u%d" i)
  done;
  for i = 0 to (wp.n_tweets / 2) - 1 do
    aw_add ~payload:(Fmt.str "text %d" i) tx k_tweets (Fmt.str "tw%d" i)
  done;
  match Txn.commit tx with
  | Some b -> Cluster.broadcast_now cluster b
  | None -> ()

(* ------------------------------------------------------------------ *)
(* Fuzzer hooks                                                        *)
(* ------------------------------------------------------------------ *)

(** Read-only operations (candidates for non-weak read levels). *)
let read_ops = [ "timeline" ]

(** Fuzzable operations: name and parameter sorts (user arguments must
    be of the form [u<N>] — follower fan-out and history purging parse
    the numeric suffix). *)
let fuzz_ops : (string * string list) list =
  [
    ("add_user", [ "User" ]);
    ("rem_user", [ "User" ]);
    ("do_tweet", [ "User"; "Tweet" ]);
    ("retweet", [ "User"; "Tweet" ]);
    ("del_tweet", [ "Tweet" ]);
    ("follow", [ "User"; "User" ]);
    ("unfollow", [ "User"; "User" ]);
    ("timeline", [ "User" ]);
  ]

(** Dispatch an operation by name with positional string arguments;
    [None] on an unknown name or wrong arity. *)
let exec_op (app : t) ~(n_users : int) (name : string) (args : string list) :
    Config.op_exec option =
  match (name, args) with
  | "add_user", [ u ] -> Some (add_user app u)
  | "rem_user", [ u ] -> Some (rem_user app ~n_users u)
  | "do_tweet", [ u; tid ] -> Some (do_tweet app ~n_users u tid)
  | "retweet", [ u; tid ] -> Some (retweet app ~n_users u tid)
  | "del_tweet", [ tid ] -> Some (del_tweet app tid)
  | "follow", [ a; b ] -> Some (follow app a b)
  | "unfollow", [ a; b ] -> Some (unfollow app a b)
  | "timeline", [ u ] -> Some (timeline app u)
  | _ -> None
