(** The Ticket application (FusionTicket, §5.1.2 / Figure 7): tickets
    must not be oversold.

    [Causal] exposes oversells; [Ipa] repairs them on read through the
    compensation counter (cancel + reimburse); [Escrow] prevents them
    with pre-partitioned decrement rights, paying a WAN grant when a
    replica's rights run out. *)

open Ipa_store
open Ipa_runtime

type variant = Causal | Ipa | Escrow

type t

val create : ?initial_stock:int -> variant -> t

val buy_ticket : t -> string -> Config.op_exec
val read_event : t -> string -> Config.op_exec
val add_tickets : t -> string -> int -> Config.op_exec

(** Events whose invariant is violated in the state a user observes. *)
val count_violations : t -> Replica.t -> string list -> int

(** Total oversold tickets a user can observe. *)
val oversell_depth : t -> Replica.t -> string list -> int

type workload_params = {
  n_events : int;  (** fewer events = more contention *)
  buy_ratio : float;
  restock_ratio : float;
  restock_amount : int;
}

val default_params : workload_params
val next_op : t -> workload_params -> Ipa_sim.Rng.t -> region:string -> Config.op_exec
val seed_data : t -> workload_params -> Cluster.t -> unit

(** Read-only operation names (candidates for non-weak read levels). *)
val read_ops : string list

(** {1 Fuzzer hooks} *)

(** Fuzzable operations: name × parameter sorts. *)
val fuzz_ops : (string * string list) list

(** Dispatch by name with positional string arguments; [None] on an
    unknown name, wrong arity or malformed amount. *)
val exec_op : t -> string -> string list -> Config.op_exec option
