(** TPC-C / TPC-W slice (§5.1.2).

    The paper extends the standard benchmarks with product-listing
    management (referential integrity between order lines and listed
    items) and handles the stock invariant with the restock compensation
    the benchmark specification itself prescribes.

    - [Causal]: unmodified — concurrent [new_order]s can drive stock
      negative; order lines can reference concurrently-removed items.
    - [Ipa]: [new_order] touches the item listing (restoring it against
      a concurrent [rem_item]); stock lives in a compensation counter
      that restocks on read when it under-runs. *)

open Ipa_crdt
open Ipa_store
open Ipa_runtime

type variant = Causal | Ipa

type t = { variant : variant; initial_stock : int; restock_amount : int }

let create ?(initial_stock = 50) ?(restock_amount = 20) (variant : variant) : t
    =
  { variant; initial_stock; restock_amount }

let k_items = "items"
let k_orders = "orders"
let k_stock i = "stock:" ^ i
let k_lines o = "lines:" ^ o

let mk name is_update reservations run : Config.op_exec =
  { Config.op_name = name; is_update; reservations; run }

let aw_get tx key = Obj.as_awset (Txn.get tx key Obj.T_awset)

let aw_add ?payload tx key e =
  let s = aw_get tx key in
  Txn.update tx key
    (Obj.Op_awset (Awset.prepare_add ?payload s ~dot:(Txn.fresh_dot tx) e))

let aw_touch tx key e =
  let s = aw_get tx key in
  Txn.update tx key
    (Obj.Op_awset (Awset.prepare_touch s ~dot:(Txn.fresh_dot tx) e))

let aw_remove tx key e =
  let s = aw_get tx key in
  Txn.update tx key (Obj.Op_awset (Awset.prepare_remove s e))

let stock_value (app : t) tx key : int =
  match app.variant with
  | Causal -> Pncounter.value (Obj.as_pncounter (Txn.get tx key Obj.T_pncounter))
  | Ipa ->
      Compcounter.raw_value
        (Obj.as_compcounter (Txn.get tx key (Obj.T_compcounter { min_value = 0 })))

let stock_delta (app : t) tx key d : unit =
  match app.variant with
  | Causal ->
      let c = Obj.as_pncounter (Txn.get tx key Obj.T_pncounter) in
      Txn.update tx key
        (Obj.Op_pncounter (Pncounter.prepare c ~rep:tx.Txn.rep.Replica.id d))
  | Ipa ->
      let c =
        Obj.as_compcounter (Txn.get tx key (Obj.T_compcounter { min_value = 0 }))
      in
      Txn.update tx key
        (Obj.Op_compcounter
           (Compcounter.prepare_delta c ~rep:tx.Txn.rep.Replica.id d))

(* ------------------------------------------------------------------ *)
(* Operations                                                          *)
(* ------------------------------------------------------------------ *)

let add_item (app : t) (i : string) : Config.op_exec =
  mk "add_item" true [ (k_items, Config.Shared) ] (fun rep ->
      let tx = Txn.begin_ rep in
      aw_add ~payload:("listing:" ^ i) tx k_items i;
      stock_delta app tx (k_stock i) app.initial_stock;
      Config.outcome (Txn.commit tx))

(* Is [i] referenced by an order line visible at this replica?  Like
   the tournament's [rem_player], removal checks its precondition
   against local state (§2.2) and aborts when it would break
   referential integrity sequentially; IPA's touch repair only has to
   cover the {e concurrent} new_order it could not have seen. *)
let locally_referenced (rep : Replica.t) (i : string) : bool =
  Replica.fold_data rep
    (fun key obj acc ->
      acc
      || String.length key > 6
         && String.sub key 0 6 = "lines:"
         &&
         match obj with
         | Obj.O_awset lines -> Awset.mem i lines
         | _ -> false)
    false

let rem_item (_ : t) (i : string) : Config.op_exec =
  mk "rem_item" true [ (k_items, Config.Exclusive) ] (fun rep ->
      let tx = Txn.begin_ rep in
      if locally_referenced rep i then begin
        Txn.abort tx;
        Config.outcome None
      end
      else begin
        aw_remove tx k_items i;
        Config.outcome (Txn.commit tx)
      end)

(** New order: one order line for [item], decrementing stock.  The IPA
    version touches the item listing so a concurrent [rem_item] cannot
    leave a dangling order line. *)
let new_order (app : t) ~(order_id : string) (customer : string)
    (item : string) : Config.op_exec =
  mk "new_order" true [ (k_items, Config.Shared); (k_stock item, Config.Shared) ] (fun rep ->
      let tx = Txn.begin_ rep in
      let available = stock_value app tx (k_stock item) in
      if available <= 0 then begin
        Txn.abort tx;
        Config.outcome None
      end
      else begin
        aw_add ~payload:("by:" ^ customer) tx k_orders order_id;
        aw_add tx (k_lines order_id) item;
        stock_delta app tx (k_stock item) (-1);
        (match app.variant with
        | Ipa -> aw_touch tx k_items item
        | Causal -> ());
        Config.outcome (Txn.commit tx)
      end)

(** Stock inquiry; in IPA mode a stock under-run triggers the restock
    compensation (as the benchmark specification prescribes). *)
let check_stock (app : t) (item : string) : Config.op_exec =
  mk "check_stock" false [] (fun rep ->
      let tx = Txn.begin_ rep in
      let key = k_stock item in
      match app.variant with
      | Causal ->
          let v = stock_value app tx key in
          ignore (Txn.commit tx);
          Config.outcome ~violations:(max 0 (-v)) None
      | Ipa ->
          let c =
            Obj.as_compcounter (Txn.get tx key (Obj.T_compcounter { min_value = 0 }))
          in
          let _v, comp_ops, violations = Compcounter.read c ~rep:rep.Replica.id in
          List.iter (fun op -> Txn.update tx key (Obj.Op_compcounter op)) comp_ops;
          (* the restock itself *)
          if violations > 0 then stock_delta app tx key app.restock_amount;
          Config.outcome ~violations ~extra_work:1 (Txn.commit tx))

(** Dangling order lines + stock under-runs visible at a replica. *)
let count_violations (_ : t) (rep : Replica.t) : int =
  let awset key =
    match Replica.peek rep key with
    | Some (Obj.O_awset s) -> s
    | _ -> Awset.empty
  in
  let items = awset k_items in
  let violations = ref 0 in
  Replica.iter_data rep
    (fun key obj ->
      if String.length key > 6 && String.sub key 0 6 = "lines:" then
        match obj with
        | Obj.O_awset lines ->
            List.iter
              (fun i -> if not (Awset.mem i items) then incr violations)
              (Awset.elements lines)
        | _ -> ()
      else if String.length key > 6 && String.sub key 0 6 = "stock:" then
        match obj with
        | Obj.O_pncounter c -> violations := !violations + max 0 (-Pncounter.value c)
        | Obj.O_compcounter c ->
            violations := !violations + max 0 (-Compcounter.raw_value c)
        | _ -> ());
  !violations

(* ------------------------------------------------------------------ *)
(* Workload                                                            *)
(* ------------------------------------------------------------------ *)

type workload_params = {
  n_items : int;
  n_customers : int;
  order_ratio : float;
}

let default_params = { n_items = 50; n_customers = 100; order_ratio = 0.4 }

let item wp rng = Fmt.str "i%d" (Ipa_sim.Rng.int rng wp.n_items)
let customer wp rng = Fmt.str "c%d" (Ipa_sim.Rng.int rng wp.n_customers)

let next_op (app : t) (wp : workload_params) (rng : Ipa_sim.Rng.t)
    ~(region : string) : Config.op_exec =
  let fresh_order = Fmt.str "o%s-%d" region (Ipa_sim.Rng.int rng 1_000_000) in
  match Ipa_sim.Rng.int rng 10 with
  | 0 -> add_item app (item wp rng)
  | 1 -> rem_item app (item wp rng)
  | n when float_of_int n < 2.0 +. (wp.order_ratio *. 10.0) ->
      new_order app ~order_id:fresh_order (customer wp rng) (item wp rng)
  | _ -> check_stock app (item wp rng)

let seed_data (app : t) (wp : workload_params) (cluster : Cluster.t) : unit =
  let rep = List.hd cluster.Cluster.replicas in
  let tx = Txn.begin_ rep in
  for i = 0 to wp.n_items - 1 do
    let id = Fmt.str "i%d" i in
    aw_add ~payload:("listing:" ^ id) tx k_items id;
    stock_delta app tx (k_stock id) app.initial_stock
  done;
  match Txn.commit tx with
  | Some b -> Cluster.broadcast_now cluster b
  | None -> ()

(* ------------------------------------------------------------------ *)
(* Fuzzer hooks                                                        *)
(* ------------------------------------------------------------------ *)

(** Read-only operations (candidates for non-weak read levels). *)
let read_ops = [ "check_stock" ]

(** Fuzzable operations: name and parameter sorts, matching the TPC-W
    catalog specification's product-listing slice. *)
let fuzz_ops : (string * string list) list =
  [
    ("add_item", [ "Item" ]);
    ("rem_item", [ "Item" ]);
    ("new_order", [ "Order"; "Customer"; "Item" ]);
    ("check_stock", [ "Item" ]);
  ]

(** Dispatch an operation by name with positional string arguments;
    [None] on an unknown name or wrong arity. *)
let exec_op (app : t) (name : string) (args : string list) :
    Config.op_exec option =
  match (name, args) with
  | "add_item", [ i ] -> Some (add_item app i)
  | "rem_item", [ i ] -> Some (rem_item app i)
  | "new_order", [ o; c; i ] -> Some (new_order app ~order_id:o c i)
  | "check_stock", [ i ] -> Some (check_stock app i)
  | _ -> None
