(** The Tournament application (Figure 1) over the replicated store.

    Two variants share the same data layout:
    - [Causal]: the original operations, which can violate the
      invariants under concurrency;
    - [Ipa]: the IPA-modified operations of Figure 3 — [enroll] touches
      the player and tournament indexes, [begin]/[finish] touch the
      tournament index, [do_match] re-ensures both enrollments, and the
      per-tournament enrollment sets are Compensation Sets enforcing the
      capacity bound on read.

    Data layout (one object per predicate, per the prototype §4.1):
    - ["players"]            add-wins set (payload: player info)
    - ["tournaments"]        add-wins set
    - ["enrolled:<t>"]       add-wins set (Causal) / compensation set (IPA)
    - ["active"]             rem-wins set (Figure 3's [tStarted])
    - ["finished"]           add-wins set
    - ["matches:<t>"]        add-wins set of ["p|q"] pairs *)

open Ipa_crdt
open Ipa_store
open Ipa_runtime

type variant = Causal | Ipa

type t = { variant : variant; capacity : int }

let create ?(capacity = 10) (variant : variant) : t = { variant; capacity }

let k_players = "players"
let k_tournaments = "tournaments"
let k_active = "active"
let k_finished = "finished"
let k_enrolled t = "enrolled:" ^ t
let k_matches t = "matches:" ^ t

(* ------------------------------------------------------------------ *)
(* Store helpers                                                       *)
(* ------------------------------------------------------------------ *)

let aw_get tx key = Obj.as_awset (Txn.get tx key Obj.T_awset)
let rw_get tx key = Obj.as_rwset (Txn.get tx key Obj.T_rwset)

let aw_add ?payload tx key e =
  let s = aw_get tx key in
  Txn.update tx key
    (Obj.Op_awset (Awset.prepare_add ?payload s ~dot:(Txn.fresh_dot tx) e))

let aw_touch tx key e =
  let s = aw_get tx key in
  Txn.update tx key
    (Obj.Op_awset (Awset.prepare_touch s ~dot:(Txn.fresh_dot tx) e))

let aw_remove tx key e =
  let s = aw_get tx key in
  Txn.update tx key (Obj.Op_awset (Awset.prepare_remove s e))

let rw_add tx key e =
  let s = rw_get tx key in
  Txn.update tx key
    (Obj.Op_rwset
       (Rwset.prepare_add s ~dot:(Txn.fresh_dot tx) ~vv:(Txn.current_vv tx) e))

let rw_remove tx key e =
  let s = rw_get tx key in
  Txn.update tx key
    (Obj.Op_rwset (Rwset.prepare_remove s ~vv:(Txn.fresh_vv tx) e))

(* enrollment sets: plain awset for Causal, compensation set for IPA *)
let enrolled_read (app : t) tx tname : string list * int =
  match app.variant with
  | Causal ->
      let s = aw_get tx (k_enrolled tname) in
      let elems = Awset.elements s in
      (* no repair: over-capacity is an observed violation *)
      let violations = max 0 (List.length elems - app.capacity) in
      (elems, violations)
  | Ipa ->
      let key = k_enrolled tname in
      let s =
        Obj.as_compset (Txn.get tx key (Obj.T_compset { max_size = app.capacity }))
      in
      let visible, comp_ops = Compset.read s in
      List.iter (fun op -> Txn.update tx key (Obj.Op_compset op)) comp_ops;
      (visible, 0)

let enrolled_add (app : t) tx tname p =
  match app.variant with
  | Causal -> aw_add tx (k_enrolled tname) p
  | Ipa ->
      let key = k_enrolled tname in
      let s =
        Obj.as_compset (Txn.get tx key (Obj.T_compset { max_size = app.capacity }))
      in
      Txn.update tx key
        (Obj.Op_compset (Compset.prepare_add s ~dot:(Txn.fresh_dot tx) p))

let enrolled_touch (app : t) tx tname p =
  match app.variant with
  | Causal -> aw_touch tx (k_enrolled tname) p
  | Ipa ->
      let key = k_enrolled tname in
      let s =
        Obj.as_compset (Txn.get tx key (Obj.T_compset { max_size = app.capacity }))
      in
      Txn.update tx key
        (Obj.Op_compset (Compset.prepare_touch s ~dot:(Txn.fresh_dot tx) p))

let enrolled_remove (app : t) tx tname p =
  match app.variant with
  | Causal -> aw_remove tx (k_enrolled tname) p
  | Ipa ->
      let key = k_enrolled tname in
      let s =
        Obj.as_compset (Txn.get tx key (Obj.T_compset { max_size = app.capacity }))
      in
      Txn.update tx key (Obj.Op_compset (Compset.prepare_remove s p))

(* the ensure* auxiliary functions of Figure 3 *)
let ensure_enroll (app : t) tx p tname =
  match app.variant with
  | Causal -> ()
  | Ipa ->
      aw_touch tx k_tournaments tname;
      aw_touch tx k_players p

let ensure_begin (app : t) tx tname =
  match app.variant with Causal -> () | Ipa -> aw_touch tx k_tournaments tname

let ensure_end (app : t) tx tname =
  match app.variant with Causal -> () | Ipa -> aw_touch tx k_tournaments tname

(* ------------------------------------------------------------------ *)
(* Operations                                                          *)
(* ------------------------------------------------------------------ *)

let mk name is_update reservations run : Config.op_exec =
  { Config.op_name = name; is_update; reservations; run }

let sh r = (r, Config.Shared)
let ex r = (r, Config.Exclusive)

(* Operations check their preconditions against the local replica state
   (the application code of §2.2): unmet preconditions abort the
   transaction.  Conflicts arise only from concurrent executions at
   other replicas. *)

let write_txn (rep : Replica.t) (body : Txn.t -> bool) : Config.outcome =
  let tx = Txn.begin_ rep in
  if body tx then Config.outcome (Txn.commit tx)
  else begin
    Txn.abort tx;
    Config.outcome None
  end

let add_player (_ : t) (p : string) : Config.op_exec =
  mk "add_player" true [ sh ("player:" ^ p) ] (fun rep ->
      write_txn rep (fun tx ->
          aw_add ~payload:("info:" ^ p) tx k_players p;
          true))

let rem_player (app : t) (p : string) : Config.op_exec =
  mk "rem_player" true [ ex ("player:" ^ p) ] (fun rep ->
      write_txn rep (fun tx ->
          let enrolled_somewhere =
            List.exists
              (fun tname -> List.mem p (fst (enrolled_read app tx tname)))
              (Awset.elements (aw_get tx k_tournaments))
          in
          if Awset.mem p (aw_get tx k_players) && not enrolled_somewhere
          then begin
            aw_remove tx k_players p;
            true
          end
          else false))

let add_tourn (_ : t) (tname : string) : Config.op_exec =
  mk "add_tourn" true [ sh ("tourn:" ^ tname) ] (fun rep ->
      write_txn rep (fun tx ->
          aw_add tx k_tournaments tname;
          true))

let rem_tourn (app : t) (tname : string) : Config.op_exec =
  mk "rem_tourn" true
    [ ex ("tourn:" ^ tname); ex (k_enrolled tname) ]
    (fun rep ->
      write_txn rep (fun tx ->
          let enrolled, _ = enrolled_read app tx tname in
          if
            Awset.mem tname (aw_get tx k_tournaments)
            && enrolled = []
            && (not (Rwset.mem tname (rw_get tx k_active)))
            && not (Awset.mem tname (aw_get tx k_finished))
          then begin
            aw_remove tx k_tournaments tname;
            true
          end
          else false))

let enroll (app : t) (p : string) (tname : string) : Config.op_exec =
  mk "enroll" true
    [ sh ("player:" ^ p); sh ("tourn:" ^ tname); sh (k_enrolled tname) ]
    (fun rep ->
      write_txn rep (fun tx ->
          let enrolled, _ = enrolled_read app tx tname in
          if
            Awset.mem p (aw_get tx k_players)
            && Awset.mem tname (aw_get tx k_tournaments)
            && List.length enrolled < app.capacity
            && not (List.mem p enrolled)
          then begin
            enrolled_add app tx tname p;
            ensure_enroll app tx p tname;
            true
          end
          else false))

(* is player [p] part of any match of tournament [tname]? *)
let in_any_match tx tname p =
  List.exists
    (fun pq ->
      match String.split_on_char '|' pq with
      | [ a; b ] -> a = p || b = p
      | _ -> false)
    (Awset.elements (aw_get tx (k_matches tname)))

let disenroll (app : t) (p : string) (tname : string) : Config.op_exec =
  mk "disenroll" true [ sh (k_enrolled tname) ] (fun rep ->
      write_txn rep (fun tx ->
          let enrolled, _ = enrolled_read app tx tname in
          if List.mem p enrolled && not (in_any_match tx tname p) then begin
            enrolled_remove app tx tname p;
            true
          end
          else false))

let begin_tourn (app : t) (tname : string) : Config.op_exec =
  mk "begin_tourn" true [ sh ("tourn:" ^ tname); sh ("active:" ^ tname) ] (fun rep ->
      write_txn rep (fun tx ->
          if
            Awset.mem tname (aw_get tx k_tournaments)
            && not (Awset.mem tname (aw_get tx k_finished))
          then begin
            rw_add tx k_active tname;
            ensure_begin app tx tname;
            true
          end
          else false))

let finish_tourn (app : t) (tname : string) : Config.op_exec =
  mk "finish_tourn" true [ sh ("tourn:" ^ tname); sh ("active:" ^ tname) ] (fun rep ->
      write_txn rep (fun tx ->
          if Rwset.mem tname (rw_get tx k_active) then begin
            aw_add tx k_finished tname;
            rw_remove tx k_active tname;
            ensure_end app tx tname;
            true
          end
          else false))

let do_match (app : t) (p : string) (q : string) (tname : string) :
    Config.op_exec =
  mk "do_match" true
    [ sh (k_enrolled tname); sh ("tourn:" ^ tname) ]
    (fun rep ->
      write_txn rep (fun tx ->
          let enrolled, _ = enrolled_read app tx tname in
          let started =
            Rwset.mem tname (rw_get tx k_active)
            || Awset.mem tname (aw_get tx k_finished)
          in
          if List.mem p enrolled && List.mem q enrolled && started && p <> q
          then begin
            aw_add tx (k_matches tname) (p ^ "|" ^ q);
            (match app.variant with
            | Causal -> ()
            | Ipa ->
                enrolled_touch app tx tname p;
                enrolled_touch app tx tname q);
            ensure_enroll app tx p tname;
            ensure_enroll app tx q tname;
            true
          end
          else false))

(** Read-only status of a tournament: who is enrolled, is it active.
    In IPA mode this read triggers the capacity compensation; the
    compensation cascades: matches involving an evicted player are
    removed too, so the repair itself preserves the other invariants
    (resolutions compose, §3.3). *)
let status (app : t) (tname : string) : Config.op_exec =
  mk "status" false [] (fun rep ->
      let tx = Txn.begin_ rep in
      let enrolled, violations = enrolled_read app tx tname in
      (match app.variant with
      | Causal -> ()
      | Ipa ->
          (* cascade: drop matches whose players were evicted by the
             capacity compensation (deterministic at every replica) *)
          List.iter
            (fun pq ->
              match String.split_on_char '|' pq with
              | [ a; b ] when List.mem a enrolled && List.mem b enrolled -> ()
              | _ -> aw_remove tx (k_matches tname) pq)
            (Awset.elements (aw_get tx (k_matches tname))));
      let active = Rwset.mem tname (rw_get tx k_active) in
      ignore active;
      let extra_work = List.length enrolled in
      Config.outcome ~violations ~extra_work (Txn.commit tx))

(* ------------------------------------------------------------------ *)
(* Invariant checking (over a replica's full state)                    *)
(* ------------------------------------------------------------------ *)

(** Count invariant-violation instances visible at a replica: dangling
    enrollments/matches, over-capacity tournaments, active-but-missing
    tournaments, active∧finished. *)
let count_violations (app : t) (rep : Replica.t) : int =
  let awset key =
    match Replica.peek rep key with
    | Some (Obj.O_awset s) -> s
    | Some (Obj.O_compset c) -> Compset.raw_set c
    | _ -> Awset.empty
  in
  let rwset key =
    match Replica.peek rep key with
    | Some (Obj.O_rwset s) -> s
    | _ -> Rwset.empty
  in
  let players = awset k_players in
  let tournaments = awset k_tournaments in
  let active = rwset k_active in
  let finished = awset k_finished in
  let count = ref 0 in
  List.iter
    (fun tname ->
      (* enrolled(p,t) => player(p) and tournament(t) *)
      let enrolled = awset (k_enrolled tname) in
      List.iter
        (fun p ->
          if not (Awset.mem p players) then incr count;
          if not (Awset.mem tname tournaments) then incr count)
        (Awset.elements enrolled);
      (* capacity *)
      if Awset.size enrolled > app.capacity then incr count;
      (* matches *)
      List.iter
        (fun pq ->
          match String.split_on_char '|' pq with
          | [ p; q ] ->
              if not (Awset.mem p enrolled) then incr count;
              if not (Awset.mem q enrolled) then incr count;
              if
                (not (Rwset.mem tname active))
                && not (Awset.mem tname finished)
              then incr count
          | _ -> ())
        (Awset.elements (awset (k_matches tname))))
    (List.sort_uniq String.compare
       (Awset.elements tournaments
       @ List.filter_map
           (fun (k : string) ->
             if String.length k > 9 && String.sub k 0 9 = "enrolled:" then
               Some (String.sub k 9 (String.length k - 9))
             else None)
           (Replica.fold_data rep (fun k _ acc -> k :: acc) [])));
  (* active(t) => tournament(t); finished(t) => tournament(t); not both *)
  List.iter
    (fun tname ->
      if not (Awset.mem tname tournaments) then incr count;
      if Awset.mem tname finished then incr count)
    (Rwset.elements active);
  List.iter
    (fun tname -> if not (Awset.mem tname tournaments) then incr count)
    (Awset.elements finished);
  !count

(* ------------------------------------------------------------------ *)
(* Workload (§5.2.2: 35% writes, the Figure 5 operation mix)           *)
(* ------------------------------------------------------------------ *)

type workload_params = {
  n_players : int;
  n_tournaments : int;
  write_ratio : float;  (** fraction of update operations (0.35) *)
}

let default_params =
  { n_players = 200; n_tournaments = 20; write_ratio = 0.35 }

let player wp rng = Fmt.str "p%d" (Ipa_sim.Rng.int rng wp.n_players)
let tourn wp rng = Fmt.str "t%d" (Ipa_sim.Rng.int rng wp.n_tournaments)

(** Draw an operation from the Tournament mix. *)
let next_op (app : t) (wp : workload_params) (rng : Ipa_sim.Rng.t)
    ~(region : string) : Config.op_exec =
  ignore region;
  if not (Ipa_sim.Rng.flip rng wp.write_ratio) then status app (tourn wp rng)
  else
    match Ipa_sim.Rng.int rng 8 with
    | 0 -> add_player app (player wp rng)
    | 1 -> rem_player app (player wp rng)
    | 2 -> enroll app (player wp rng) (tourn wp rng)
    | 3 -> disenroll app (player wp rng) (tourn wp rng)
    | 4 -> begin_tourn app (tourn wp rng)
    | 5 -> finish_tourn app (tourn wp rng)
    | 6 -> do_match app (player wp rng) (player wp rng) (tourn wp rng)
    | _ -> if Ipa_sim.Rng.flip rng 0.5 then add_tourn app (tourn wp rng)
           else rem_tourn app (tourn wp rng)

(** Populate initial players and tournaments at one replica. *)
let seed_data (app : t) (wp : workload_params) (cluster : Cluster.t) : unit =
  let rep = List.hd cluster.Cluster.replicas in
  let tx = Txn.begin_ rep in
  for i = 0 to wp.n_players - 1 do
    aw_add ~payload:(Fmt.str "info:p%d" i) tx k_players (Fmt.str "p%d" i)
  done;
  for i = 0 to wp.n_tournaments - 1 do
    aw_add tx k_tournaments (Fmt.str "t%d" i)
  done;
  ignore app;
  match Txn.commit tx with
  | Some b -> Cluster.broadcast_now cluster b
  | None -> ()

(* ------------------------------------------------------------------ *)
(* Fuzzer hooks                                                        *)
(* ------------------------------------------------------------------ *)

(** Read-only operations (candidates for non-weak read levels). *)
let read_ops = [ "status" ]

(** Fuzzable operations: name and parameter sorts, matching the catalog
    specification (plus [status], the read that triggers the capacity
    compensation in IPA mode). *)
let fuzz_ops : (string * string list) list =
  [
    ("add_player", [ "Player" ]);
    ("rem_player", [ "Player" ]);
    ("add_tourn", [ "Tournament" ]);
    ("rem_tourn", [ "Tournament" ]);
    ("enroll", [ "Player"; "Tournament" ]);
    ("disenroll", [ "Player"; "Tournament" ]);
    ("begin_tourn", [ "Tournament" ]);
    ("finish_tourn", [ "Tournament" ]);
    ("do_match", [ "Player"; "Player"; "Tournament" ]);
    ("status", [ "Tournament" ]);
  ]

(** Dispatch an operation by name with positional string arguments;
    [None] on an unknown name or wrong arity. *)
let exec_op (app : t) (name : string) (args : string list) :
    Config.op_exec option =
  match (name, args) with
  | "add_player", [ p ] -> Some (add_player app p)
  | "rem_player", [ p ] -> Some (rem_player app p)
  | "add_tourn", [ t ] -> Some (add_tourn app t)
  | "rem_tourn", [ t ] -> Some (rem_tourn app t)
  | "enroll", [ p; t ] -> Some (enroll app p t)
  | "disenroll", [ p; t ] -> Some (disenroll app p t)
  | "begin_tourn", [ t ] -> Some (begin_tourn app t)
  | "finish_tourn", [ t ] -> Some (finish_tourn app t)
  | "do_match", [ p; q; t ] -> Some (do_match app p q t)
  | "status", [ t ] -> Some (status app t)
  | _ -> None
