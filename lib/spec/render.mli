(** Render a specification back to [.ipa] concrete syntax.

    [Spec_parser.parse_string (to_string s)] is structurally equal to
    [s] for every valid specification: touch annotations use the
    parser's [effect touch] suffix, each invariant is emitted on a
    single line, numeric declarations carry their bounds. *)

val pp_pred : Format.formatter -> Types.pred_decl -> unit
val pp_invariant : Format.formatter -> Types.invariant -> unit
val pp_effect : Format.formatter -> Types.annotated_effect -> unit
val pp_operation : Format.formatter -> Types.operation -> unit

(** The whole specification as an [.ipa] source text. *)
val to_string : Types.t -> string
