(** Render a specification back to [.ipa] concrete syntax.

    The output is re-parseable: [Spec_parser.parse_string (to_string s)]
    yields a spec structurally equal to [s] for every valid input (the
    property the round-trip tests assert on the catalog apps and on
    fuzzer-generated mutations).  In particular touch annotations are
    emitted in the parser's [effect touch] suffix form, invariants on a
    single line, and numeric declarations with their bounds. *)

open Ipa_logic
open Types

let pp_args ppf (args : string list) =
  Fmt.(list ~sep:(any ", ") string) ppf args

let pp_pred ppf (p : pred_decl) =
  match p.pkind with
  | Bool -> Fmt.pf ppf "predicate %s(%a)" p.pname pp_args p.psorts
  | Numeric { lo; hi } ->
      Fmt.pf ppf "numeric %s(%a) in [%d, %d]" p.pname pp_args p.psorts lo hi

let pp_invariant ppf (i : invariant) =
  let tag =
    match i.itag with
    | Some Tag_unique_id -> "[unique] "
    | Some Tag_sequential_id -> "[sequential] "
    | None -> ""
  in
  Fmt.pf ppf "invariant %s%s: %a" tag i.iname Pp.pp_formula i.iformula

let pp_effect ppf (ae : annotated_effect) =
  let e = ae.eff in
  let lhs =
    Fmt.str "%s(%a)" e.epred Fmt.(list ~sep:(any ", ") Pp.pp_term) e.eargs
  in
  let base =
    match e.evalue with
    | Set true -> Fmt.str "%s := true" lhs
    | Set false -> Fmt.str "%s := false" lhs
    | Delta d when d >= 0 -> Fmt.str "%s += %d" lhs d
    | Delta d -> Fmt.str "%s -= %d" lhs (-d)
  in
  match ae.mode with
  | Write -> Fmt.string ppf base
  | Touch -> Fmt.pf ppf "%s touch" base

let pp_param ppf (p : Ast.tvar) = Fmt.pf ppf "%s:%s" p.Ast.vsort p.Ast.vname

let pp_operation ppf (op : operation) =
  Fmt.pf ppf "operation %s(%a)" op.oname
    Fmt.(list ~sep:(any ", ") pp_param)
    op.oparams;
  List.iter (fun e -> Fmt.pf ppf "@\n  %a" pp_effect e) op.oeffects

let to_string (s : t) : string =
  let buf = Buffer.create 1024 in
  let ppf = Fmt.with_buffer buf in
  let line fmt = Fmt.pf ppf (fmt ^^ "@\n") in
  line "app %s" s.app_name;
  if s.sorts <> [] then line "";
  List.iter (fun srt -> line "sort %s" srt) s.sorts;
  if s.consts <> [] then line "";
  List.iter (fun (c, v) -> line "const %s = %d" c v) s.consts;
  if s.preds <> [] then line "";
  List.iter (fun p -> line "%a" pp_pred p) s.preds;
  if s.invariants <> [] then line "";
  List.iter (fun i -> line "%a" pp_invariant i) s.invariants;
  if s.rules <> [] then line "";
  List.iter
    (fun (p, r) -> line "rule %s: %s" p (conv_rule_to_string r))
    s.rules;
  List.iter (fun op -> line "" ; line "%a" pp_operation op) s.operations;
  Fmt.flush ppf ();
  Buffer.contents buf
