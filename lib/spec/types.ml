(** Application specifications.

    A specification conveys the information of the paper's annotated Java
    interfaces (Figure 1): sorts, predicates, named integer constants,
    invariants, operations with their effects, and per-predicate
    convergence rules.  Effects are assignments of boolean predicates
    ([:= true], [:= false]) or deltas on bounded numeric state functions
    ([+= k], [-= k]). *)

open Ipa_logic

(* ------------------------------------------------------------------ *)
(* Predicates                                                          *)
(* ------------------------------------------------------------------ *)

type pred_kind =
  | Bool
  | Numeric of { lo : int; hi : int }
      (** bounded integer state function, e.g. a stock level *)

type pred_decl = { pname : string; psorts : Ast.sort list; pkind : pred_kind }

(* ------------------------------------------------------------------ *)
(* Effects and operations                                              *)
(* ------------------------------------------------------------------ *)

(** The value written by an effect. *)
type effect_value =
  | Set of bool  (** boolean predicate assignment *)
  | Delta of int  (** numeric increment/decrement *)

(** One effect: predicate, argument terms (operation parameters, constants
    or [Star] wildcards), and the written value. *)
type effect = { epred : string; eargs : Ast.term list; evalue : effect_value }

(** How an effect restores information: a plain [Write] sets the value; a
    [Touch] (paper §4.2.1) acts as an add for membership but preserves the
    payload previously associated with the entity.  The analysis treats
    both identically; the distinction matters to the runtime. *)
type effect_mode = Write | Touch

type annotated_effect = { eff : effect; mode : effect_mode }

type operation = {
  oname : string;
  oparams : Ast.tvar list;
  oeffects : annotated_effect list;
}

(* ------------------------------------------------------------------ *)
(* Convergence rules                                                   *)
(* ------------------------------------------------------------------ *)

(** Conflict-resolution policy for concurrent opposing writes to a
    predicate (paper §3.2): add-wins resolves to [true], rem-wins to
    [false]; LWW picks either (the analysis must consider both). *)
type conv_rule = Add_wins | Rem_wins | Lww

let conv_rule_to_string = function
  | Add_wins -> "add-wins"
  | Rem_wins -> "rem-wins"
  | Lww -> "lww"

(* ------------------------------------------------------------------ *)
(* Invariants                                                          *)
(* ------------------------------------------------------------------ *)

(** Hint tags for invariant classes that are not decidable from formula
    shape alone (Table 1). *)
type inv_tag = Tag_unique_id | Tag_sequential_id

type invariant = {
  iname : string;
  iformula : Ast.formula;
  itag : inv_tag option;
}

(* ------------------------------------------------------------------ *)
(* Specification                                                       *)
(* ------------------------------------------------------------------ *)

type t = {
  app_name : string;
  sorts : Ast.sort list;
  preds : pred_decl list;
  consts : (string * int) list;
  invariants : invariant list;
  operations : operation list;
  rules : (string * conv_rule) list;  (** convergence rule per predicate *)
}

(* ------------------------------------------------------------------ *)
(* Accessors                                                           *)
(* ------------------------------------------------------------------ *)

let find_pred (spec : t) name =
  List.find_opt (fun p -> p.pname = name) spec.preds

let find_op (spec : t) name =
  List.find_opt (fun o -> o.oname = name) spec.operations

let conv_rule_of (spec : t) pred =
  match List.assoc_opt pred spec.rules with Some r -> r | None -> Lww

(** Canonical form of a rule list: the effective (first) binding of each
    predicate, sorted.  Two rule lists with the same canonical form are
    semantically interchangeable — [conv_rule_of] cannot tell them
    apart. *)
let canonical_rules (rules : (string * conv_rule) list) :
    (string * conv_rule) list =
  let seen = Hashtbl.create 8 in
  List.filter
    (fun (p, _) ->
      if Hashtbl.mem seen p then false
      else begin
        Hashtbl.add seen p ();
        true
      end)
    rules
  |> List.sort compare

let rules_equal r1 r2 = canonical_rules r1 = canonical_rules r2

(** The conjunction of all invariants. *)
let invariant_formula (spec : t) : Ast.formula =
  Ast.conj_l (List.map (fun i -> i.iformula) spec.invariants)

(** Grounding signature derived from the predicate declarations. *)
let signature (spec : t) : Ground.signature =
  let bools, nums =
    List.partition (fun p -> p.pkind = Bool) spec.preds
  in
  {
    Ground.pred_sorts = List.map (fun p -> (p.pname, p.psorts)) bools;
    nfun_sorts = List.map (fun p -> (p.pname, p.psorts)) nums;
  }

(** Bounds function for numeric state functions, from declarations. *)
let int_bounds (spec : t) (n : Ground.gnum) : int * int =
  match find_pred spec n.Ground.gfun with
  | Some { pkind = Numeric { lo; hi }; _ } -> (lo, hi)
  | _ -> (0, 16)

(** Boolean predicates written by an operation (names, deduplicated). *)
let written_preds (op : operation) : string list =
  List.filter_map
    (fun ae ->
      match ae.eff.evalue with Set _ -> Some ae.eff.epred | Delta _ -> None)
    op.oeffects
  |> List.sort_uniq String.compare

(** Numeric functions written by an operation. *)
let written_nfuns (op : operation) : string list =
  List.filter_map
    (fun ae ->
      match ae.eff.evalue with Delta _ -> Some ae.eff.epred | Set _ -> None)
    op.oeffects
  |> List.sort_uniq String.compare

(* ------------------------------------------------------------------ *)
(* Pretty printing                                                     *)
(* ------------------------------------------------------------------ *)

let pp_effect ppf (e : effect) =
  match e.evalue with
  | Set b ->
      Fmt.pf ppf "%s(%a) := %b" e.epred
        Fmt.(list ~sep:(any ", ") Pp.pp_term)
        e.eargs b
  | Delta d when d >= 0 ->
      Fmt.pf ppf "%s(%a) += %d" e.epred
        Fmt.(list ~sep:(any ", ") Pp.pp_term)
        e.eargs d
  | Delta d ->
      Fmt.pf ppf "%s(%a) -= %d" e.epred
        Fmt.(list ~sep:(any ", ") Pp.pp_term)
        e.eargs (-d)

let pp_annotated_effect ppf (ae : annotated_effect) =
  match ae.mode with
  | Write -> pp_effect ppf ae.eff
  | Touch -> Fmt.pf ppf "%a [touch]" pp_effect ae.eff

let pp_operation ppf (op : operation) =
  Fmt.pf ppf "@[<v 2>operation %s(%a)@,%a@]" op.oname
    Fmt.(list ~sep:(any ", ") Pp.pp_tvar)
    op.oparams
    Fmt.(list ~sep:cut pp_annotated_effect)
    op.oeffects

let operation_to_string op = Fmt.str "%a" pp_operation op
let effect_to_string e = Fmt.str "%a" pp_effect e

(* ------------------------------------------------------------------ *)
(* Builders                                                            *)
(* ------------------------------------------------------------------ *)

let effect ?(mode = Write) epred eargs evalue =
  { eff = { epred; eargs; evalue }; mode }

let set_true ?(mode = Write) p args = effect ~mode p args (Set true)
let set_false ?(mode = Write) p args = effect ~mode p args (Set false)
let delta p args d = effect p args (Delta d)

let operation oname oparams oeffects = { oname; oparams; oeffects }

let invariant ?tag iname s =
  { iname; iformula = Parser.parse_formula s; itag = tag }
