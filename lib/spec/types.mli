(** Application specifications: the information of the paper's annotated
    Java interfaces (Figure 1) — sorts, predicates, named constants,
    invariants, operations with predicate-assignment effects, and
    per-predicate convergence rules. *)

open Ipa_logic

type pred_kind =
  | Bool
  | Numeric of { lo : int; hi : int }
      (** bounded integer state function (e.g. a stock level) *)

type pred_decl = { pname : string; psorts : Ast.sort list; pkind : pred_kind }

type effect_value =
  | Set of bool  (** boolean predicate assignment *)
  | Delta of int  (** numeric increment/decrement *)

type effect = { epred : string; eargs : Ast.term list; evalue : effect_value }

(** [Touch] effects (§4.2.1) restore membership while preserving the
    entity's payload; the analysis treats them like writes, the runtime
    distinguishes them. *)
type effect_mode = Write | Touch

type annotated_effect = { eff : effect; mode : effect_mode }

type operation = {
  oname : string;
  oparams : Ast.tvar list;
  oeffects : annotated_effect list;
}

(** Conflict-resolution policy for concurrent opposing writes (§3.2):
    add-wins resolves to [true], rem-wins to [false], LWW to either
    (the analysis must consider both outcomes). *)
type conv_rule = Add_wins | Rem_wins | Lww

val conv_rule_to_string : conv_rule -> string

(** Hint tags for invariant classes undecidable from formula shape
    (Table 1). *)
type inv_tag = Tag_unique_id | Tag_sequential_id

type invariant = {
  iname : string;
  iformula : Ast.formula;
  itag : inv_tag option;
}

type t = {
  app_name : string;
  sorts : Ast.sort list;
  preds : pred_decl list;
  consts : (string * int) list;
  invariants : invariant list;
  operations : operation list;
  rules : (string * conv_rule) list;
}

(** {1 Accessors} *)

val find_pred : t -> string -> pred_decl option
val find_op : t -> string -> operation option

(** Rule for a predicate ([Lww] when unspecified). *)
val conv_rule_of : t -> string -> conv_rule

(** Canonical form of a rule list: effective (first) binding per
    predicate, sorted.  Equal canonical forms mean the lists are
    semantically interchangeable under {!conv_rule_of}. *)
val canonical_rules : (string * conv_rule) list -> (string * conv_rule) list

(** Set-style semantic equality of rule lists (order-insensitive). *)
val rules_equal :
  (string * conv_rule) list -> (string * conv_rule) list -> bool

(** Conjunction of all invariants. *)
val invariant_formula : t -> Ast.formula

(** Grounding signature from the predicate declarations. *)
val signature : t -> Ground.signature

(** Declared bounds of numeric state functions. *)
val int_bounds : t -> Ground.gnum -> int * int

(** Boolean predicates / numeric functions an operation writes. *)
val written_preds : operation -> string list

val written_nfuns : operation -> string list

(** {1 Pretty printing} *)

val pp_effect : Format.formatter -> effect -> unit
val pp_annotated_effect : Format.formatter -> annotated_effect -> unit
val pp_operation : Format.formatter -> operation -> unit
val operation_to_string : operation -> string
val effect_to_string : effect -> string

(** {1 Builders} *)

val effect :
  ?mode:effect_mode -> string -> Ast.term list -> effect_value ->
  annotated_effect

val set_true : ?mode:effect_mode -> string -> Ast.term list -> annotated_effect
val set_false : ?mode:effect_mode -> string -> Ast.term list -> annotated_effect
val delta : string -> Ast.term list -> int -> annotated_effect
val operation : string -> Ast.tvar list -> annotated_effect list -> operation

(** Build an invariant by parsing the formula. *)
val invariant : ?tag:inv_tag -> string -> string -> invariant
