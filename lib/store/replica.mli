(** A store replica: causally-consistent application of update batches.

    Each committed transaction produces a {!batch} of downstream CRDT
    effects tagged with the origin's clock.  A remote replica buffers a
    batch until its causal dependencies are satisfied and applies its
    updates atomically — the causal consistency + highly-available
    transactions combination the paper assumes of the underlying store
    (SwiftCloud).

    Delivery is exactly-once: retransmitted or duplicated batches are
    detected via the per-origin applied commit number and dropped, and
    every replica logs the batches it knows so {!Sync} can retransmit
    ones the network lost. *)

open Ipa_crdt

type batch = {
  b_origin : string;
  b_seq : int;  (** per-origin commit number *)
  b_deps : Vclock.t;  (** origin clock {e before} the transaction *)
  b_after : Vclock.t;  (** origin clock after (deps + the txn's events) *)
  b_updates : (string * Obj.op) list;
}

(** Per-origin batch log (commit numbers contiguous from 1; [min_seq]
    is the lowest retained number after stable truncation). *)
type origin_log = {
  mutable max_seq : int;
  mutable min_seq : int;
  entries : (int, batch) Hashtbl.t;
}

type t = {
  id : string;
  region : string;  (** data-center name, used by the simulator *)
  mutable vv : Vclock.t;
  mutable seq : int;
  mutable lamport : int;
  data : (string, Obj.t) Hashtbl.t;
  types : (string, Obj.otype) Hashtbl.t;
  pending : batch Queue.t;  (** received, awaiting causal delivery *)
  pending_keys : (string * int, unit) Hashtbl.t;
      (** (origin, seq) of every buffered batch — O(1) duplicate check *)
  mutable pending_hwm : int;  (** deepest pending buffer ever seen *)
  applied : (string, int) Hashtbl.t;
      (** highest applied commit number per origin *)
  log : (string, origin_log) Hashtbl.t;
      (** every known batch, for anti-entropy retransmission *)
  mutable peers : string list;  (** cluster membership (incl. self) *)
  peer_vvs : (string, Vclock.t) Hashtbl.t;
      (** latest known clock of each peer, learned from applied batches *)
  mutable delivered : int;  (** remote batches applied *)
  mutable committed : int;  (** local transactions committed *)
  mutable duplicates_dropped : int;
      (** batches received more than once and suppressed *)
  mutable on_apply : batch -> unit;
      (** observability hook, called after a remote batch is applied *)
  dirty : (int, unit) Hashtbl.t;
      (** interned keys updated since the digest caches were refreshed *)
  obs_cache : (int, string * Digest.t) Hashtbl.t;
      (** interned key → (rendered "key=obs" line, its MD5) *)
  mutable digest_agg : Bytes.t;
      (** rolling combinable digest (XOR of per-entry MD5s) *)
  mutable digest_entries : int;  (** entries contributing to the XOR *)
  mutable log_size : int;  (** batches currently retained in the log *)
  mutable log_hwm : int;  (** retained-log high-water mark *)
  mutable log_truncated : int;
      (** batches dropped by causally-stable truncation *)
}

val create : ?region:string -> string -> t

(** Read an object, creating it with the given type if absent. *)
val get : t -> string -> Obj.otype -> Obj.t

(** Read an object without creating it. *)
val peek : t -> string -> Obj.t option

(** Fresh Lamport timestamp (for LWW registers). *)
val next_lamport : t -> int

(** Apply a single update effect, creating the object (with the op's
    carried bounds, for compensation objects) if the effect arrives
    before any local access; marks the key dirty for the digest
    caches. *)
val apply_update : t -> string * Obj.op -> unit

(** Commit a transaction's updates: apply locally, log the batch and
    return it for replication.  [events] is the number of clock ticks
    consumed. *)
val commit : t -> events:int -> (string * Obj.op) list -> batch

(** Has the batch already been applied or buffered here? *)
val seen : t -> batch -> bool

(** Receive a batch from the network; applied (with any unblocked
    pending batches) as soon as causal dependencies are met.  Own
    batches and duplicates are dropped — delivery is idempotent. *)
val receive : t -> batch -> unit

(** Batches buffered waiting for causal dependencies. *)
val pending_count : t -> int

(** (origin, seq) keys of the buffered batches. *)
val pending_keys : t -> (string * int) list

(** Batches from [origin] with events beyond [known] origin-events —
    what a peer reporting clock entry [known] is missing (oldest
    first). *)
val log_after : t -> origin:string -> known:int -> batch list

(** Digest of the replica's observable state: converged replicas digest
    identically regardless of delivery order or internal metadata.  With
    {!Fastpath.digest_cache} on, only keys updated since the last call
    are re-rendered; the output is bit-identical either way. *)
val state_digest : t -> string

(** Reference from-scratch digest (always renders every object);
    [state_digest] must match it bit for bit. *)
val state_digest_scratch : t -> string

(** Combinable rolling digest: equal between replicas iff their
    observable states agree (up to MD5-XOR collision), at O(changed
    keys) per call.  Only meaningful for equality comparison. *)
val quick_digest : t -> string

(** The causal-stability cut: every event at or below it is known to be
    included in every replica's state. *)
val stable_vv : t -> Vclock.t

(** Drop batch-log entries at or below the stability cut (every peer
    already has them); returns the number dropped. *)
val truncate_stable : t -> stable:Vclock.t -> int

(** Reclaim CRDT metadata made dead by causal stability (rem-wins
    barriers, stably-removed payloads) and truncate the stable batch-log
    prefix (when {!Fastpath.truncate_log} is on).  Returns CRDT records
    reclaimed. *)
val gc : t -> int

(** An immutable capture of a replica's full replication state, for the
    simulation fuzzer's shrink re-runs. *)
type snapshot

(** Capture the replica's state; unaffected by later operations. *)
val snapshot : t -> snapshot

(** Reset the replica to a snapshot.  Digest caches are invalidated and
    rebuilt lazily, so post-restore digests are bit-identical to a
    from-scratch run. *)
val restore : t -> snapshot -> unit
