(** A store replica: causally-consistent application of update batches.

    Each committed transaction produces a {!batch} of downstream CRDT
    effects tagged with the origin's clock.  A remote replica buffers a
    batch until its causal dependencies are satisfied and applies its
    updates atomically — the causal consistency + highly-available
    transactions combination the paper assumes of the underlying store
    (SwiftCloud).

    Delivery is exactly-once: retransmitted or duplicated batches are
    detected via the per-origin applied commit number and dropped, and
    every replica logs the batches it knows so {!Sync} can retransmit
    ones the network lost.

    The keyspace is hash-partitioned over interned key ids into
    replica-local {!shard}s, each with its own object map, dirty set and
    rolling digest; routing is a pure function of the key, so per-shard
    digests are comparable across replicas and XOR into a root digest
    that is independent of the shard count. *)

open Ipa_crdt

type batch = {
  b_origin : string;
  b_seq : int;  (** per-origin commit number *)
  b_deps : Vclock.t;  (** origin clock {e before} the transaction *)
  b_after : Vclock.t;  (** origin clock after (deps + the txn's events) *)
  b_updates : (string * Obj.op) list;
  b_kids : int array;
      (** interned ids of the update keys, in list order — interned once
          at the origin so receivers skip the per-update string lookup *)
}

(** Per-origin batch log (commit numbers contiguous from 1; [min_seq]
    is the lowest retained number after stable truncation). *)
type origin_log = {
  mutable max_seq : int;
  mutable min_seq : int;
  entries : (int, batch) Hashtbl.t;
}

(** One key's slot in a shard: the CRDT value plus the cached hash of
    its observable state (a pure function of key and observable value;
    [c_h = 0] means "not contributing to the digest"). *)
type cell = { c_kid : int; mutable c_obj : Obj.t; mutable c_h : int }

(** One keyspace partition, keyed by interned key id. *)
type shard = {
  sh_data : (int, cell) Hashtbl.t;
  sh_types : (int, Obj.otype) Hashtbl.t;
  mutable sh_dirty : cell array;
      (** cells updated since this shard's digest was refreshed — a
          push vector of which the first [sh_dirty_n] slots are live;
          duplicates are tolerated (refresh is idempotent per key) *)
  mutable sh_dirty_n : int;  (** live prefix length of [sh_dirty] *)
  mutable sh_xor : int;  (** rolling digest: XOR of the cached hashes *)
  mutable sh_sum : int;  (** rolling digest: wrapping sum of the hashes *)
  mutable sh_entries : int;  (** entries contributing to the digest *)
  sh_sub_xor : int array;
      (** per-sub-bucket rolling digests (the digest tree's third
          level): each cell also contributes to one of [subs] buckets
          inside its shard, routed by an independent hash of the key
          id *)
  sh_sub_sum : int array;
  sh_sub_entries : int array;
}

type t = {
  id : string;
  region : string;  (** data-center name, used by the simulator *)
  mutable vv : Vclock.t;
  mutable seq : int;
  mutable lamport : int;
  shards : shard array;  (** keyspace partitions; length fixed at create *)
  pending : (string, (int, batch) Hashtbl.t) Hashtbl.t;
      (** per-origin buffered batches keyed by commit number *)
  pending_keys : (string * int, unit) Hashtbl.t;
      (** (origin, seq) of every buffered batch — O(1) duplicate check *)
  mutable pending_n : int;  (** buffered batches across all origins *)
  mutable pending_hwm : int;  (** deepest pending buffer ever seen *)
  mutable drain_scans : int;
      (** head-candidate examinations performed by the pending drain *)
  applied : (string, int) Hashtbl.t;
      (** highest applied commit number per origin *)
  log : (string, origin_log) Hashtbl.t;
      (** every known batch, for anti-entropy retransmission *)
  mutable peers : string list;  (** cluster membership (incl. self) *)
  peer_vvs : (string, Vclock.t) Hashtbl.t;
      (** latest known clock of each peer, learned from applied batches *)
  mutable delivered : int;  (** remote batches applied *)
  mutable committed : int;  (** local transactions committed *)
  mutable duplicates_dropped : int;
      (** batches received more than once and suppressed *)
  mutable on_apply : batch -> unit;
      (** observability hook, called after a remote batch is applied *)
  mutable on_commit : batch -> unit;
      (** durability hook, called after a local batch is committed
          (before it is broadcast) — {!Wal} appends and flushes here *)
  mutable log_size : int;  (** batches currently retained in the log *)
  mutable log_hwm : int;  (** retained-log high-water mark *)
  mutable log_truncated : int;
      (** batches dropped by causally-stable truncation *)
  mutable delta_groups_applied : int;
      (** delta groups accepted by {!apply_delta_group} *)
}

(** Default keyspace partition count when [?shards] is omitted. *)
val default_shards : int

(** Default sub-buckets per shard when [?subs] is omitted. *)
val default_subs : int

val create : ?region:string -> ?shards:int -> ?subs:int -> string -> t

(** Number of keyspace partitions (≥ 1, fixed at creation). *)
val shard_count : t -> int

(** Sub-buckets per shard (≥ 1, fixed at creation). *)
val sub_count : t -> int

(** The shard a key routes to — a pure function of the key and the
    shard count, identical at every replica with the same count. *)
val shard_of_key : t -> string -> int

(** [sub_of_id subs kid] — the sub-bucket a key id routes to inside its
    shard; a pure function of (id, bucket count), independent of the
    shard routing. *)
val sub_of_id : int -> int -> int

(** Read an object, creating it with the given type if absent. *)
val get : t -> string -> Obj.otype -> Obj.t

(** {!get} by interned key id — for callers that already hold the id
    and would otherwise hash the key string again. *)
val get_kid : t -> int -> Obj.otype -> Obj.t

(** Read an object without creating it. *)
val peek : t -> string -> Obj.t option

(** Iterate every (key, object) pair across all shards. *)
val iter_data : t -> (string -> Obj.t -> unit) -> unit

(** Fold over every (key, object) pair across all shards. *)
val fold_data : t -> (string -> Obj.t -> 'a -> 'a) -> 'a -> 'a

(** Number of objects stored (across all shards). *)
val obj_count : t -> int

(** Fresh Lamport timestamp (for LWW registers). *)
val next_lamport : t -> int

(** Apply a single update effect, creating the object (with the op's
    carried bounds, for compensation objects) if the effect arrives
    before any local access; marks the key dirty in its shard (the
    re-render is deferred to the next digest refresh). *)
val apply_update : t -> string * Obj.op -> unit

(** Commit a transaction's updates: apply locally, log the batch and
    return it for replication.  [events] is the number of clock ticks
    consumed.  [kids], when given, must be the interned ids of the
    update keys in list order — callers that interned while buffering
    (e.g. {!Txn.update}) pass them through instead of re-hashing every
    key string here. *)
val commit : t -> ?kids:int array -> events:int -> (string * Obj.op) list -> batch

(** Has the batch already been applied or buffered here? *)
val seen : t -> batch -> bool

(** Receive a batch from the network; applied (with any unblocked
    pending batches) as soon as causal dependencies are met.  Own
    batches and duplicates are dropped — delivery is idempotent. *)
val receive : t -> batch -> unit

(** Batches buffered waiting for causal dependencies. *)
val pending_count : t -> int

(** (origin, seq) keys of the buffered batches. *)
val pending_keys : t -> (string * int) list

(** Batches from [origin] with events beyond [known] origin-events —
    what a peer reporting clock entry [known] is missing (oldest
    first). *)
val log_after : t -> origin:string -> known:int -> batch list

(** Digest of the replica's observable state: converged replicas digest
    identically regardless of delivery order, internal metadata or
    shard count.  Always the full reference rendering (bit-identical
    whatever the fast-path flags) — convergence polling goes through
    {!digest_equal} instead; the exact digest is only demanded at
    checkpoints. *)
val state_digest : t -> string

(** Reference from-scratch digest (always renders every object);
    [state_digest] must match it bit for bit. *)
val state_digest_scratch : t -> string

(** Combinable rolling digest: equal between replicas iff their
    observable states agree (up to hash collision in the paired XOR and
    sum combinations), at O(changed keys) per call; independent of the
    shard count.  Only meaningful for equality comparison. *)
val quick_digest : t -> string

(** [quick_digest a = quick_digest b] without building the strings —
    the allocation-free comparison convergence polls use. *)
val digest_equal : t -> t -> bool

(** Refresh one shard's digest caches (re-rendering its dirty keys). *)
val refresh_shard : t -> int -> unit

(** One shard's rolling digest as an (entries, xor, sum) triple — the
    digest tree's inner nodes, compared during {!Sync} tree descent. *)
val shard_digest : t -> int -> int * int * int

(** One sub-bucket's rolling digest (the tree's third level); the
    caller must have refreshed the shard, e.g. via {!shard_digest}. *)
val sub_digest : t -> int -> int -> int * int * int

(** The causal-stability cut: every event at or below it is known to be
    included in every replica's state. *)
val stable_vv : t -> Vclock.t

(** Drop batch-log entries at or below the stability cut (every peer
    already has them); returns the number dropped. *)
val truncate_stable : t -> stable:Vclock.t -> int

(** Reclaim CRDT metadata made dead by causal stability (rem-wins
    barriers, stably-removed payloads) and truncate the stable batch-log
    prefix (when {!Fastpath.truncate_log} is on).  Returns CRDT records
    reclaimed. *)
val gc : t -> int

(** An immutable capture of a replica's full replication state, for the
    simulation fuzzer's shrink re-runs. *)
type snapshot

(** Capture the replica's state; unaffected by later operations. *)
val snapshot : t -> snapshot

(** Reset the replica to a snapshot.  Digest caches are invalidated and
    rebuilt lazily, so post-restore digests are bit-identical to a
    from-scratch run. *)
val restore : t -> snapshot -> unit

(** {1 Crash recovery} (see {!Wal}) *)

(** Wipe the replica back to freshly-created state, keeping its
    identity, peer list, shard/bucket geometry and hooks — crash
    recovery resets in place so closures holding the replica keep
    targeting it, then replays snapshot + WAL. *)
val reset : t -> unit

(** Recovery replay of a logged batch (own or remote): re-applies its
    updates without delivery gating (WAL append order is application
    order) and skips batches at or below the per-origin cursor, making
    replay idempotent.  Pending entries overtaken by the advancing
    cursor (a checkpoint snapshot captures the pending buffer) are
    purged, and replay drains afterwards, preserving the buffer's
    only-above-the-cursor invariant.  Hooks are not fired for the
    replayed batch itself (drained deliveries do fire them). *)
val replay_batch : t -> batch -> unit

(** {1 Delta groups} (delta-state anti-entropy; see {!Sync}) *)

(** A compressed per-origin log interval: set-CRDT effects of commits
    [g_from..g_to] joined into one state fragment per key, counter ops
    summed to one delta per key, other types' ops raw. *)
type delta_group = {
  g_origin : string;
  g_from : int;  (** first covered commit number *)
  g_to : int;  (** last covered commit number *)
  g_stamp : int;  (** Lamport stamp of the newest covered batch *)
  g_after : Vclock.t;  (** origin clock after the newest covered batch *)
  g_deltas : (int * Obj.delta) list;  (** kid → joined state fragment *)
  g_ops : (int * Obj.op) list;  (** kid → compressed / raw op *)
}

(** Collapse the batches [origin] committed beyond [known]
    origin-events into one delta group ([None] if the log holds
    none). *)
val delta_group_of : t -> origin:string -> known:int -> delta_group option

(** Join a delta fragment into a key's object (creating it if
    absent). *)
val join_delta_key : t -> string -> Obj.delta -> unit

(** Apply a delta group.  Accepted only when it starts exactly at the
    origin's next undelivered commit and its cross-origin dependencies
    are satisfied (preserving exactly-once, FIFO, causal delivery);
    returns [false] — retry on a later sync round — otherwise. *)
val apply_delta_group : t -> delta_group -> bool
