(** Anti-entropy: digest exchange + retransmission of lost batches, so a
    dropped batch no longer wedges causal delivery forever.

    Replicas periodically advertise a digest (applied clock + buffered
    batch keys); peers retransmit the batches the digest lacks from
    their logs, pacing repeats with a capped exponential backoff.  The
    digest exchange is an out-of-band control channel; retransmitted
    batches travel through the caller's [send] (the faulty data path).
    {!Replica.receive} idempotence makes over-sending harmless. *)

type digest = { d_vv : Ipa_crdt.Vclock.t; d_have : (string * int) list }

type t = {
  cluster : Cluster.t;
  base_backoff_ms : float;
  max_backoff_ms : float;
  next_retry : (string * string * int, float * float) Hashtbl.t;
  mutable rounds : int;
  mutable retransmitted : int;
}

val create :
  ?base_backoff_ms:float -> ?max_backoff_ms:float -> Cluster.t -> t

(** What a replica advertises to its peers. *)
val digest_of : Replica.t -> digest

(** Batches in [src]'s log that the digest's owner is missing. *)
val missing_for : src:Replica.t -> digest -> Replica.batch list

(** Digest-tree comparison result: the divergent keys and the number of
    tree nodes examined to find them (root + shard digests + per-key
    hashes inside divergent shards only). *)
type descent = { divergent : string list; nodes_visited : int }

(** Merkle-style descent over two replicas' per-shard digest trees:
    root first, then only into shards whose rolling digests disagree.
    O(divergent keys + shard count) when states differ, O(changed keys)
    when they agree.  The replicas must have equal shard counts. *)
val divergent_keys : a:Replica.t -> b:Replica.t -> descent

(** One anti-entropy round at time [now]; missing batches whose backoff
    has elapsed are handed to [send].  Returns the number
    retransmitted. *)
val round :
  t ->
  now:float ->
  send:(src:Replica.t -> dst:Replica.t -> Replica.batch -> unit) ->
  int
