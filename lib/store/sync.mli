(** Anti-entropy: digest exchange + retransmission of lost batches, so a
    dropped batch no longer wedges causal delivery forever.

    Replicas periodically advertise a digest (applied clock + buffered
    batch keys); peers retransmit the batches the digest lacks from
    their logs, pacing repeats with a capped exponential backoff.  The
    digest exchange is an out-of-band control channel; retransmitted
    batches travel through the caller's [send] (the faulty data path).
    {!Replica.receive} idempotence makes over-sending harmless. *)

type digest = { d_vv : Ipa_crdt.Vclock.t; d_have : (string * int) list }

type t = {
  cluster : Cluster.t;
  base_backoff_ms : float;
  max_backoff_ms : float;
  next_retry : (string * string * int, float * float) Hashtbl.t;
  mutable rounds : int;
  mutable retransmitted : int;
  delta_buf : (string * string, int * Replica.delta_group) Hashtbl.t;
      (** per-peer delta-interval buffer: (destination, origin) → last
          group built for that peer, keyed by the event count it was
          built against; evicted when the peer acknowledges *)
  mutable delta_buf_hits : int;  (** groups served from the buffer *)
  mutable on_round : (now:float -> unit) option;
      (** piggyback hook, invoked at the start of every {!round}: work
          that amortizes into the anti-entropy cadence (e.g. the escrow
          planner's proactive rights migrations) runs here so its
          batches ride the same round instead of paying their own
          blocking exchange *)
}

val create :
  ?base_backoff_ms:float -> ?max_backoff_ms:float -> Cluster.t -> t

(** What a replica advertises to its peers. *)
val digest_of : Replica.t -> digest

(** Batches in [src]'s log that the digest's owner is missing. *)
val missing_for : src:Replica.t -> digest -> Replica.batch list

(** Digest-tree comparison result: the divergent keys and the number of
    tree nodes examined to find them (root + shard digests + sub-bucket
    digests inside divergent shards + per-key hashes inside divergent
    buckets only). *)
type descent = { divergent : string list; nodes_visited : int }

(** Merkle-style descent over two replicas' three-level digest trees:
    root, then only into shards whose rolling digests disagree, then
    only into those shards' disagreeing sub-buckets.  The third level
    keeps the descent sublinear even when divergence reaches every
    shard.  The replicas must have equal shard and sub-bucket counts. *)
val divergent_keys : a:Replica.t -> b:Replica.t -> descent

(** {1 State repair strategies} *)

(** How a repair ships missing state: raw logged batches, full rendered
    state of divergent keys, or Lamport-stamped delta groups. *)
type repair_mode = Batches | Full_state | Deltas

type repair_stats = {
  r_bytes : int;  (** bytes shipped over the (modelled) wire *)
  r_units : int;  (** batches / keys / groups shipped *)
  r_accepted : int;  (** units the destination accepted *)
}

(** Serialized size of a value — the simulator's wire model. *)
val wire_bytes : 'a -> int

(** Repair [dst] from [src] directly over the reliable control channel.
    [Deltas] and [Batches] preserve exactly-once causal delivery;
    [Full_state] adopts [src]'s delivery knowledge wholesale and
    requires every divergent key to be mergeable (the durability
    experiment's baseline). *)
val repair :
  t -> mode:repair_mode -> src:Replica.t -> dst:Replica.t -> repair_stats

(** One anti-entropy round at time [now]; missing batches whose backoff
    has elapsed are handed to [send].  Returns the number
    retransmitted. *)
val round :
  t ->
  now:float ->
  send:(src:Replica.t -> dst:Replica.t -> Replica.batch -> unit) ->
  int
