(** Consistency-typed client reads (the "Disciplined Inconsistency"
    surface grafted onto the store).

    A read is annotated with one of three levels, encoded as a GADT
    whose phantom index ties the {e result} to the level it was read
    at — code that demands strongly-consistent input can say so in its
    type ([strong result -> ...]) and the compiler rejects handing it a
    weak read:

    - {!Weak}: served immediately from any replica; the value may be
      arbitrarily stale but is always some causally-consistent snapshot.
    - {!Bounded}[ b]: bounded staleness — the reply must include every
      event at or below the bound clock [b].  Served without
      coordination from any replica whose {e own} clock covers [b];
      the {!stable_covers} test ([b ≼ stable_vv]) additionally certifies
      from purely local metadata that {e every} replica can serve the
      bound.  When no replica covers [b] the read escalates to the
      strong path.
    - {!Strong}: quiesce-then-read — drive reliable anti-entropy to
      quiescence, then read; the reply reflects every operation
      committed anywhere before the read.

    Interval reads are the numeric companion: for a {!Bcounter}-backed
    key, {!interval} returns the escrow interval [{lo; hi}] from a
    single replica's local state, guaranteed to contain the
    strongly-consistent value (see {!Bcounter.interval} for the
    derivation; [hi] is finite once headroom has been granted). *)

open Ipa_crdt

type weak
type bounded
type strong

type _ level =
  | Weak : weak level
  | Bounded : Vclock.t -> bounded level
      (** the staleness bound: every event ≼ this clock must be
          reflected in the reply *)
  | Strong : strong level

let level_name : type l. l level -> string = function
  | Weak -> "weak"
  | Bounded _ -> "bounded"
  | Strong -> "strong"

(** A stamped read: the value (or [None] for an absent key), which
    replica served it, that replica's clock at serve time, and whether
    the read had to escalate to the quiesce path.  The phantom index
    records the requested level. *)
type 'l result = {
  value : Obj.t option;
  served_by : string;
  at : Vclock.t;
  escalated : bool;
}

let value (r : 'l result) : Obj.t option = r.value

(* ------------------------------------------------------------------ *)
(* Cover tests                                                         *)
(* ------------------------------------------------------------------ *)

(** [covers r b] — [r]'s own state includes every event at or below
    [b], so [r] can serve a bounded read with bound [b]. *)
let covers (r : Replica.t) (b : Vclock.t) : bool = Vclock.leq b r.Replica.vv

(** [stable_covers r b] — the bound is below [r]'s causal-stability cut
    ({!Replica.stable_vv}: the pointwise minimum of its own clock and
    every peer clock it has learned), which certifies from [r]'s local
    metadata alone that {e every} replica covers [b]: any replica can
    serve the bound, no routing needed. *)
let stable_covers (r : Replica.t) (b : Vclock.t) : bool =
  Vclock.leq b (Replica.stable_vv r)

(* ------------------------------------------------------------------ *)
(* Quiesce                                                             *)
(* ------------------------------------------------------------------ *)

(** Drive the cluster to quiescence over the reliable control channel
    (direct delivery, 1 ms retransmission backoff — the healing loop's
    configuration) and return the rounds spent.  Gives up after
    [max_rounds] (the cluster may then still be divergent — callers
    judge the state they read, as the fuzzer's oracle does). *)
let quiesce ?(max_rounds = 200) (c : Cluster.t) : int =
  if Cluster.quiescent c then 0
  else begin
    let s = Sync.create ~base_backoff_ms:1.0 ~max_backoff_ms:1.0 c in
    let direct ~src:_ ~(dst : Replica.t) (b : Replica.batch) =
      Replica.receive dst b
    in
    let now = ref 0.0 in
    let rounds = ref 0 in
    while (not (Cluster.quiescent c)) && !rounds < max_rounds do
      incr rounds;
      now := !now +. 10.0;
      ignore (Sync.round s ~now:!now ~send:direct)
    done;
    !rounds
  end

(* ------------------------------------------------------------------ *)
(* Reads                                                               *)
(* ------------------------------------------------------------------ *)

let serve (r : Replica.t) ~(escalated : bool) (key : string) : 'l result =
  {
    value = Replica.peek r key;
    served_by = r.Replica.id;
    at = r.Replica.vv;
    escalated;
  }

let preferred (c : Cluster.t) (prefer : string option) : Replica.t =
  match prefer with
  | Some id -> Cluster.replica c id
  | None -> List.hd c.Cluster.replicas

(** Read [key] at the given level.  [prefer] names the client's
    co-located replica (default: the first); weak reads always serve
    there, bounded reads serve there when it covers the bound and
    otherwise fall over to any covering replica (the serving-replica
    choice bounded staleness buys), and strong reads quiesce first.  A
    bounded read that no replica can serve escalates to the strong
    path and comes back with [escalated = true]. *)
let read (type l) (c : Cluster.t) (level : l level) ?prefer (key : string) :
    l result =
  let home = preferred c prefer in
  match level with
  | Weak -> serve home ~escalated:false key
  | Strong ->
      ignore (quiesce c);
      serve home ~escalated:true key
  | Bounded b -> (
      if covers home b then serve home ~escalated:false key
      else
        match
          List.find_opt
            (fun (r : Replica.t) -> covers r b)
            c.Cluster.replicas
        with
        | Some r -> serve r ~escalated:false key
        | None ->
            (* divergence has every replica behind the bound: pay the
               coordination the weaker levels avoid *)
            ignore (quiesce c);
            serve home ~escalated:true key)

(* ------------------------------------------------------------------ *)
(* Interval reads                                                      *)
(* ------------------------------------------------------------------ *)

(** An escrow interval read: the locally observed value and the
    [lo ≤ strong value ≤ hi] bounds ([hi = None] when the counter has
    no headroom grants — unseen increments are then unbounded). *)
type interval = { lo : int; hi : int option; observed : int }

(** The escrow interval of a {!Bcounter}-backed key from [r]'s purely
    local state — no message exchange, no quiesce.  An absent key reads
    as the empty counter ([{lo = 0; hi = None ...}] uncapped, exact
    zero-width once granted headroom arrives).  Raises
    [Obj.Type_mismatch] on a non-Bcounter key. *)
let interval_at (r : Replica.t) (key : string) : interval =
  let c =
    match Replica.peek r key with
    | Some o -> Obj.as_bcounter o
    | None -> Bcounter.empty
  in
  let { Bcounter.lo; hi } = Bcounter.interval c ~rep:r.Replica.id in
  { lo; hi; observed = Bcounter.quick_value c }

(** {!interval_at} at the preferred (client co-located) replica. *)
let interval (c : Cluster.t) ?prefer (key : string) : interval =
  interval_at (preferred c prefer) key
