(** Store objects: a uniform wrapper over the CRDT library so replicas
    can hold heterogeneous objects and route downstream effects by key.
    Each object is created with an {!otype} descriptor — the per-object
    conflict-resolution choice of the paper's system model (§2.1). *)

open Ipa_crdt

type t =
  | O_awset of Awset.t
  | O_rwset of Rwset.t
  | O_pncounter of Pncounter.t
  | O_bcounter of Bcounter.t
  | O_lww of Lww.t
  | O_mvreg of Mvreg.t
  | O_compset of Compset.t
  | O_compcounter of Compcounter.t

(** Object type descriptors, fixing the conflict-resolution policy. *)
type otype =
  | T_awset
  | T_rwset
  | T_pncounter
  | T_bcounter
  | T_lww
  | T_mvreg
  | T_compset of { max_size : int }
  | T_compcounter of { min_value : int }

type op =
  | Op_awset of Awset.op
  | Op_rwset of Rwset.op
  | Op_pncounter of Pncounter.op
  | Op_bcounter of Bcounter.op
  | Op_lww of Lww.op
  | Op_mvreg of Mvreg.op
  | Op_compset of Compset.op
  | Op_compcounter of Compcounter.op

exception Type_mismatch of string

val init : otype -> t

(** Apply a downstream effect; raises {!Type_mismatch} when the op does
    not match the object's type. *)
val apply : t -> op -> t

(** {1 Delta-state view}

    Joinable state fragments for anti-entropy.  Only the set CRDTs ship
    true deltas (their fragments carry the causal metadata that makes
    the join idempotent); counter and register ops are additive or tiny,
    so {!Sync} ships those as compressed ops instead. *)

type delta =
  | D_awset of Awset.t
  | D_rwset of Rwset.t
  | D_pncounter of Pncounter.t

(** The delta fragment for one op, or [None] for types that ship ops.
    [after] is the object state immediately after applying the op at
    its origin (counter deltas carry absolute slot totals). *)
val delta_of : after:t -> op -> delta option

(** Join a delta fragment into a state. *)
val join_delta : t -> delta -> t

(** Join two deltas of the same key (group compaction). *)
val join_deltas : delta -> delta -> delta

(** Is full-state merge defined for this object? *)
val mergeable : t -> bool

(** The whole state viewed as one big delta (mergeable types only). *)
val as_delta : t -> delta option

val delta_otype : delta -> otype

(** {1 Typed accessors} (raise {!Type_mismatch} on the wrong variant) *)

val as_awset : t -> Awset.t
val as_rwset : t -> Rwset.t
val as_pncounter : t -> Pncounter.t
val as_bcounter : t -> Bcounter.t
val as_lww : t -> Lww.t
val as_mvreg : t -> Mvreg.t
val as_compset : t -> Compset.t
val as_compcounter : t -> Compcounter.t
