(** Highly-available transactions over a replica (§2.1): causal-snapshot
    reads with read-your-writes, buffered updates, one atomic commit
    batch, never any coordination. *)

open Ipa_crdt

type t = {
  rep : Replica.t;
  mutable updates : (string * Obj.op) list;  (** reverse order *)
  mutable kids : int list;
      (** interned key ids, parallel to [updates] (reverse order) *)
  mutable n_updates : int;  (** length of [updates] *)
  view : (string, Obj.t) Hashtbl.t;
      (** read-after-write cache: key → base state with buffered
          updates replayed (populated only for keys read after a
          write) *)
  written : (int, unit) Hashtbl.t;
      (** interned ids of keys with buffered updates *)
  mutable events : int;  (** clock ticks consumed *)
  mutable committed : bool;
}

val begin_ : Replica.t -> t

(** The transaction's view of an object: replica state plus the
    transaction's own buffered updates for that key. *)
val get : t -> string -> Obj.otype -> Obj.t

(** A fresh dot for a prepared effect (ticks the transaction). *)
val fresh_dot : t -> Vclock.dot

(** The source clock including every event of this transaction so far
    (for remove-wins adds). *)
val current_vv : t -> Vclock.t

(** Tick the transaction and return the clock including the new event —
    for rem-wins removes and wildcard barriers, which must dominate
    everything the source has seen. *)
val fresh_vv : t -> Vclock.t

val lamport : t -> int

(** Buffer an update effect. *)
val update : t -> string -> Obj.op -> unit

val update_count : t -> int
val keys_written : t -> int

(** Commit the buffered updates atomically; [None] for read-only
    transactions.  Raises [Invalid_argument] on double commit. *)
val commit : t -> Replica.batch option

val abort : t -> unit
