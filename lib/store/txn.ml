(** Highly-available transactions over a replica (paper §2.1, [6]).

    A transaction reads from its replica's current causal snapshot (plus
    its own buffered writes — read-your-writes), buffers update effects,
    and commits them as one atomic batch.  Commit never coordinates:
    the batch is applied locally and replicated asynchronously. *)

open Ipa_crdt

type t = {
  rep : Replica.t;
  mutable updates : (string * Obj.op) list;  (** reverse order *)
  mutable kids : int list;
      (** interned key ids, parallel to [updates] (reverse order) —
          interning happens once per update here, and the ids are handed
          to {!Replica.commit} so the commit path never re-hashes the
          key strings *)
  mutable n_updates : int;  (** length of [updates] *)
  view : (string, Obj.t) Hashtbl.t;
      (** key → base state with this txn's buffered updates replayed,
          populated only for keys read {e after} a write: it keeps such
          reads O(1) instead of replaying the whole update list per read
          (quadratic in large batches).  Clean reads go straight to the
          replica — caching them too would cost a table write per read
          for entries a following write immediately invalidates *)
  written : (int, unit) Hashtbl.t;
      (** interned ids of keys with at least one buffered update — a
          [get] of a key never written skips the replay entirely (int
          keys hash cheaper than the strings on the buffering path) *)
  mutable events : int;  (** clock ticks consumed (one per effect) *)
  mutable committed : bool;
}

let begin_ (rep : Replica.t) : t =
  {
    rep;
    updates = [];
    kids = [];
    n_updates = 0;
    view = Hashtbl.create 16;
    written = Hashtbl.create 16;
    events = 0;
    committed = false;
  }

(** The transaction's view of an object: replica state with the
    transaction's own buffered updates for that key replayed on top
    (read-your-writes).  Replayed results are cached per key (and
    invalidated by {!update}), so repeated reads after a write cost one
    table lookup. *)
let get (tx : t) (key : string) (ty : Obj.otype) : Obj.t =
  let kid = Ipa_crdt.Intern.id key in
  if tx.n_updates > 0 && Hashtbl.mem tx.written kid then
    match Hashtbl.find_opt tx.view key with
    | Some o -> o
    | None ->
        (* written before this read (rare): replay the buffered updates
           for the key on top of the replica state, and cache the result
           so a second read skips the replay *)
        let o =
          List.fold_left
            (fun o (k, op) -> if k = key then Obj.apply o op else o)
            (Replica.get_kid tx.rep kid ty)
            (List.rev tx.updates)
        in
        Hashtbl.replace tx.view key o;
        o
  else
    (* never written in this txn: the replica lookup is as cheap as the
       view cache would be, and a read-then-write key would only have
       its entry invalidated again — don't populate the view *)
    Replica.get_kid tx.rep kid ty

(** A fresh dot for a prepared effect (ticks the transaction's event
    count; the dot becomes part of the origin clock at commit). *)
let fresh_dot (tx : t) : Vclock.dot =
  tx.events <- tx.events + 1;
  {
    Vclock.rep = tx.rep.Replica.id;
    cnt = Vclock.get tx.rep.Replica.vv tx.rep.Replica.id + tx.events;
  }

(** The clock a prepared effect should carry: the source clock including
    every event of this transaction so far (used by remove-wins adds). *)
let current_vv (tx : t) : Vclock.t =
  Vclock.set tx.rep.Replica.vv tx.rep.Replica.id
    (Vclock.get tx.rep.Replica.vv tx.rep.Replica.id + tx.events)

(** The clock for an effect that is its own event — rem-wins removes and
    wildcard barriers: ticks the transaction and returns the clock
    including the new event, so the barrier dominates everything the
    source has seen (an empty-clock barrier would mask nothing). *)
let fresh_vv (tx : t) : Vclock.t =
  tx.events <- tx.events + 1;
  current_vv tx

let lamport (tx : t) : int = Replica.next_lamport tx.rep

(** Buffer an update effect.  The cached view entry is invalidated
    rather than updated in place: a key written once and never re-read
    (the common shape of a large batch) then pays a single [Obj.apply]
    at commit, and a read-after-write rebuilds its view through the
    replay path in [get]. *)
let update (tx : t) (key : string) (op : Obj.op) : unit =
  tx.updates <- (key, op) :: tx.updates;
  tx.kids <- Ipa_crdt.Intern.id key :: tx.kids;
  tx.n_updates <- tx.n_updates + 1;
  Hashtbl.replace tx.written (List.hd tx.kids) ();
  (* the view only ever holds replayed read-after-write entries; skip
     the string hash entirely while it is empty (the common case) *)
  if Hashtbl.length tx.view > 0 then Hashtbl.remove tx.view key

(** Number of updates buffered so far. *)
let update_count (tx : t) : int = tx.n_updates

(** Distinct keys written so far. *)
let keys_written (tx : t) : int = Hashtbl.length tx.written

(** Commit: apply the buffered updates atomically at the local replica
    and return the replication batch ([None] for read-only
    transactions). *)
let commit (tx : t) : Replica.batch option =
  if tx.committed then invalid_arg "Txn.commit: already committed";
  tx.committed <- true;
  match tx.updates with
  | [] -> None
  | ups ->
      (* materialize the buffered kid list (reverse order) straight into
         the batch's array form *)
      let kids = Array.make tx.n_updates 0 in
      List.iteri (fun i kid -> kids.(tx.n_updates - 1 - i) <- kid) tx.kids;
      Some
        (Replica.commit tx.rep ~kids ~events:(max 1 tx.events)
           (List.rev ups))

let abort (tx : t) : unit = tx.committed <- true
