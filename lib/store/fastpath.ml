(** Runtime toggles for the replication fast path.

    Every optimization here is observably equivalence-preserving:
    digests, convergence outcomes and anti-entropy behaviour are
    identical with a flag on or off.  The flags exist so the [runtime]
    benchmark (and the on-vs-off equivalence tests) can measure the
    baseline cost without reverting the code. *)

(** Incremental state digests: cache per-key observable renderings,
    track dirty keys, and compare replicas through a combinable rolling
    digest — [Cluster.quiescent] becomes O(changed keys) per poll
    instead of O(total state). *)
let digest_cache = ref true

(** Hash-set membership index for [Sync.missing_for] instead of
    O(n·m) [List.mem] scans over the peer's buffered-batch keys. *)
let sync_index = ref true

(** Causally-stable batch-log truncation during [Replica.gc]. *)
let truncate_log = ref true

let set_all (v : bool) : unit =
  digest_cache := v;
  sync_index := v;
  truncate_log := v

(** Run [f] with all fast-path optimizations forced to [on], restoring
    the previous flags afterwards. *)
let with_all (on : bool) (f : unit -> 'a) : 'a =
  let saved = (!digest_cache, !sync_index, !truncate_log) in
  set_all on;
  Fun.protect
    ~finally:(fun () ->
      let d, s, t = saved in
      digest_cache := d;
      sync_index := s;
      truncate_log := t)
    f
