(** A store replica: causally-consistent application of update batches.

    Each committed transaction produces a {!batch} of downstream CRDT
    effects tagged with the origin's clock.  A remote replica buffers a
    batch until its causal dependencies are satisfied and then applies
    all its updates atomically — providing the causal consistency +
    highly-available-transactions combination the paper assumes of the
    underlying store (SwiftCloud).

    Delivery is {e exactly-once}: a replica tracks the highest applied
    per-origin commit number, so retransmitted or network-duplicated
    batches are dropped instead of re-applied (re-applying would
    double-count counter effects and violate the numeric invariants IPA
    protects).  Every replica also keeps a log of all batches it knows
    (its own and applied remote ones) so {!Sync} can retransmit batches
    a faulty network lost. *)

open Ipa_crdt

type batch = {
  b_origin : string;
  b_seq : int;  (** per-origin commit number *)
  b_deps : Vclock.t;  (** origin clock {e before} the transaction *)
  b_after : Vclock.t;  (** origin clock after (deps + this txn's events) *)
  b_updates : (string * Obj.op) list;
}

(** Per-origin batch log: commit numbers are contiguous from 1, so the
    batches covering a peer's gap are a suffix of the sequence.
    [min_seq] is the lowest retained commit number — causally-stable
    truncation drops a prefix, keeping the suffix contiguous. *)
type origin_log = {
  mutable max_seq : int;
  mutable min_seq : int;
  entries : (int, batch) Hashtbl.t;
}

type t = {
  id : string;
  region : string;  (** data-center name, used by the simulator *)
  mutable vv : Vclock.t;
  mutable seq : int;
  mutable lamport : int;
  data : (string, Obj.t) Hashtbl.t;
  types : (string, Obj.otype) Hashtbl.t;
  pending : batch Queue.t;  (** received, awaiting causal delivery *)
  pending_keys : (string * int, unit) Hashtbl.t;
      (** (origin, seq) of every buffered batch — O(1) duplicate check *)
  mutable pending_hwm : int;  (** deepest pending buffer ever seen *)
  applied : (string, int) Hashtbl.t;
      (** highest applied commit number per origin; causal dependencies
          force per-origin in-order application, so this is contiguous
          and any batch at or below it is a duplicate *)
  log : (string, origin_log) Hashtbl.t;
      (** every batch this replica knows, for anti-entropy retransmission *)
  mutable peers : string list;  (** cluster membership (incl. self) *)
  peer_vvs : (string, Vclock.t) Hashtbl.t;
      (** latest known clock of each peer, learned from applied batches;
          the pointwise minimum is the causal-stability cut *)
  mutable delivered : int;  (** remote batches applied *)
  mutable committed : int;  (** local transactions committed *)
  mutable duplicates_dropped : int;
      (** batches received more than once and suppressed *)
  mutable on_apply : batch -> unit;
      (** observability hook, called after a remote batch is applied *)
  dirty : (int, unit) Hashtbl.t;
      (** interned keys updated since the digest caches were refreshed *)
  obs_cache : (int, string * Digest.t) Hashtbl.t;
      (** interned key → (rendered "key=obs" line, its MD5) for every
          key whose observable state is non-empty *)
  mutable digest_agg : Bytes.t;
      (** rolling combinable digest: XOR of the per-entry MD5s — updated
          in O(1) per changed key, order-independent *)
  mutable digest_entries : int;  (** entries contributing to the XOR *)
  mutable log_size : int;  (** batches currently retained in the log *)
  mutable log_hwm : int;  (** retained-log high-water mark *)
  mutable log_truncated : int;
      (** batches dropped by causally-stable truncation *)
}

let create ?(region = "local") (id : string) : t =
  {
    id;
    region;
    vv = Vclock.empty;
    seq = 0;
    lamport = 0;
    data = Hashtbl.create 256;
    types = Hashtbl.create 256;
    pending = Queue.create ();
    pending_keys = Hashtbl.create 64;
    pending_hwm = 0;
    applied = Hashtbl.create 8;
    log = Hashtbl.create 8;
    peers = [ id ];
    peer_vvs = Hashtbl.create 8;
    delivered = 0;
    committed = 0;
    duplicates_dropped = 0;
    on_apply = ignore;
    dirty = Hashtbl.create 64;
    obs_cache = Hashtbl.create 256;
    digest_agg = Bytes.make 16 '\000';
    digest_entries = 0;
    log_size = 0;
    log_hwm = 0;
    log_truncated = 0;
  }

(** Read an object, creating it with type [ty] if absent (keys are
    created on first access, as in a key-value store with typed keys). *)
let get (r : t) (key : string) (ty : Obj.otype) : Obj.t =
  match Hashtbl.find_opt r.data key with
  | Some o -> o
  | None ->
      let o = Obj.init ty in
      Hashtbl.replace r.data key o;
      Hashtbl.replace r.types key ty;
      o

(** Read an object without creating it. *)
let peek (r : t) (key : string) : Obj.t option = Hashtbl.find_opt r.data key

(** Apply a single update effect, creating the object if the effect
    arrives before any local access.  Compensation objects carry their
    bounds in every op, so remote-first creation uses the {e real}
    bounds instead of a sentinel that would silently weaken the
    invariant until the first local access. *)
let apply_update (r : t) ((key, op) : string * Obj.op) : unit =
  let cur =
    match Hashtbl.find_opt r.data key with
    | Some o -> o
    | None ->
        (* effects can arrive before any local access: infer the object
           type from the op *)
        let ty =
          match op with
          | Obj.Op_awset _ -> Obj.T_awset
          | Obj.Op_rwset _ -> Obj.T_rwset
          | Obj.Op_pncounter _ -> Obj.T_pncounter
          | Obj.Op_bcounter _ -> Obj.T_bcounter
          | Obj.Op_lww _ -> Obj.T_lww
          | Obj.Op_mvreg _ -> Obj.T_mvreg
          | Obj.Op_compset o ->
              Obj.T_compset { max_size = Compset.op_bound o }
          | Obj.Op_compcounter o ->
              Obj.T_compcounter { min_value = Compcounter.op_bound o }
        in
        Hashtbl.replace r.types key ty;
        Obj.init ty
  in
  Hashtbl.replace r.data key (Obj.apply cur op);
  Hashtbl.replace r.dirty (Intern.id key) ()

(** Fresh Lamport timestamp (for LWW registers). *)
let next_lamport (r : t) : int =
  r.lamport <- r.lamport + 1;
  r.lamport

(* ------------------------------------------------------------------ *)
(* Batch log                                                           *)
(* ------------------------------------------------------------------ *)

let log_add (r : t) (b : batch) : unit =
  let ol =
    match Hashtbl.find_opt r.log b.b_origin with
    | Some ol -> ol
    | None ->
        let ol =
          { max_seq = 0; min_seq = b.b_seq; entries = Hashtbl.create 64 }
        in
        Hashtbl.replace r.log b.b_origin ol;
        ol
  in
  if b.b_seq >= ol.min_seq && not (Hashtbl.mem ol.entries b.b_seq) then begin
    Hashtbl.replace ol.entries b.b_seq b;
    ol.max_seq <- max ol.max_seq b.b_seq;
    r.log_size <- r.log_size + 1;
    r.log_hwm <- max r.log_hwm r.log_size
  end

(** Batches from [origin] whose events go beyond [known] origin-events —
    what a peer reporting clock entry [known] for [origin] is missing.
    Newest-first seq walk over the contiguous log suffix, returned
    oldest-first. *)
let log_after (r : t) ~(origin : string) ~(known : int) : batch list =
  match Hashtbl.find_opt r.log origin with
  | None -> []
  | Some ol ->
      let rec walk seq acc =
        if seq < 1 then acc
        else
          match Hashtbl.find_opt ol.entries seq with
          | Some b when Vclock.get b.b_after origin > known ->
              walk (seq - 1) (b :: acc)
          | _ -> acc
      in
      walk ol.max_seq []

(* ------------------------------------------------------------------ *)
(* Local commit                                                        *)
(* ------------------------------------------------------------------ *)

(** Commit a transaction's updates: applies them locally and returns the
    batch to replicate. [events] is the number of clock ticks the
    transaction consumed (one per prepared effect). *)
let commit (r : t) ~(events : int) (updates : (string * Obj.op) list) : batch =
  let deps = r.vv in
  let after = Vclock.set deps r.id (Vclock.get deps r.id + events) in
  r.seq <- r.seq + 1;
  r.committed <- r.committed + 1;
  let b =
    { b_origin = r.id; b_seq = r.seq; b_deps = deps; b_after = after; b_updates = updates }
  in
  List.iter (apply_update r) updates;
  r.vv <- after;
  log_add r b;
  b

(* ------------------------------------------------------------------ *)
(* Remote delivery                                                     *)
(* ------------------------------------------------------------------ *)

let deliverable (r : t) (b : batch) : bool = Vclock.leq b.b_deps r.vv

(** Has the batch already been applied (or buffered)?  Causal deps force
    per-origin in-order application, so any commit number at or below
    the highest applied one is a duplicate. *)
let seen (r : t) (b : batch) : bool =
  (match Hashtbl.find_opt r.applied b.b_origin with
  | Some n -> b.b_seq <= n
  | None -> false)
  || Hashtbl.mem r.pending_keys (b.b_origin, b.b_seq)

let apply_batch (r : t) (b : batch) : unit =
  List.iter (apply_update r) b.b_updates;
  r.vv <- Vclock.merge r.vv b.b_after;
  r.lamport <- max r.lamport (Vclock.total b.b_after);
  (* the batch proves its origin knew b_after — track for stability *)
  let prev =
    Option.value ~default:Vclock.empty (Hashtbl.find_opt r.peer_vvs b.b_origin)
  in
  Hashtbl.replace r.peer_vvs b.b_origin (Vclock.merge prev b.b_after);
  let high =
    Option.value ~default:0 (Hashtbl.find_opt r.applied b.b_origin)
  in
  Hashtbl.replace r.applied b.b_origin (max high b.b_seq);
  log_add r b;
  r.delivered <- r.delivered + 1;
  r.on_apply b

(* apply every deliverable pending batch; each pass pops the whole queue
   once, re-enqueueing still-blocked batches (O(n) per pass, O(1) per
   enqueue — the buffer no longer degrades quadratically under bursty
   out-of-order delivery) *)
let drain (r : t) : unit =
  let progress = ref true in
  while !progress do
    progress := false;
    let n = Queue.length r.pending in
    for _ = 1 to n do
      let b = Queue.pop r.pending in
      if deliverable r b then begin
        Hashtbl.remove r.pending_keys (b.b_origin, b.b_seq);
        apply_batch r b;
        progress := true
      end
      else Queue.push b r.pending
    done
  done

(** Receive a batch from the network; applies it (and any unblocked
    pending batches) as soon as causal dependencies are met.  Own
    batches and already-seen batches (duplicates, retransmissions of
    applied or buffered batches) are dropped — delivery is idempotent. *)
let receive (r : t) (b : batch) : unit =
  if b.b_origin = r.id then () (* own batches are applied at commit *)
  else if seen r b then r.duplicates_dropped <- r.duplicates_dropped + 1
  else begin
    Queue.push b r.pending;
    Hashtbl.replace r.pending_keys (b.b_origin, b.b_seq) ();
    r.pending_hwm <- max r.pending_hwm (Queue.length r.pending);
    drain r
  end

(** Number of batches buffered waiting for causal dependencies. *)
let pending_count (r : t) : int = Queue.length r.pending

(** (origin, seq) keys of the buffered batches. *)
let pending_keys (r : t) : (string * int) list =
  Hashtbl.fold (fun k () acc -> k :: acc) r.pending_keys []

(* ------------------------------------------------------------------ *)
(* State digest                                                        *)
(* ------------------------------------------------------------------ *)

(* canonical rendering of an object's observable state: replicas that
   converged must render identically regardless of internal metadata or
   the order effects arrived in *)
let obs_string (o : Obj.t) : string option =
  let set tag l =
    match List.sort compare l with
    | [] -> None
    | l -> Some (tag ^ "{" ^ String.concat ";" l ^ "}")
  in
  match o with
  | Obj.O_awset s -> set "aw" (Awset.elements s)
  | Obj.O_rwset s -> set "rw" (Rwset.elements s)
  | Obj.O_compset s -> set "cs" (Compset.raw_elements s)
  | Obj.O_mvreg m -> set "mv" (Mvreg.values m)
  | Obj.O_pncounter c ->
      let v = Pncounter.value c in
      if v = 0 then None else Some (Fmt.str "pn:%d" v)
  | Obj.O_bcounter c ->
      let v = Bcounter.value c in
      if v = 0 then None else Some (Fmt.str "bc:%d" v)
  | Obj.O_compcounter c ->
      let v = Compcounter.raw_value c in
      if v = 0 then None else Some (Fmt.str "cc:%d" v)
  | Obj.O_lww l -> (
      match Lww.value l with None -> None | Some v -> Some ("lww:" ^ v))

(** From-scratch digest of the replica's {e observable} state: renders
    every object.  Kept as the reference implementation — the cached
    {!state_digest} must produce a bit-identical string (asserted by the
    equivalence tests and the [runtime] benchmark). *)
let state_digest_scratch (r : t) : string =
  let entries =
    Hashtbl.fold
      (fun key obj acc ->
        match obs_string obj with
        | Some s -> (key ^ "=" ^ s) :: acc
        | None -> acc)
      r.data []
  in
  Digest.to_hex
    (Digest.string (String.concat "\n" (List.sort compare entries)))

(* fold the 16-byte MD5 [h] into the rolling digest (XOR is its own
   inverse, so the same call removes a previous contribution) *)
let xor_digest (r : t) (h : Digest.t) : unit =
  for i = 0 to 15 do
    Bytes.unsafe_set r.digest_agg i
      (Char.unsafe_chr
         (Char.code (Bytes.unsafe_get r.digest_agg i)
         lxor Char.code (String.unsafe_get h i)))
  done

(* re-render the observable state of every dirty key, updating the
   per-key cache and the rolling digest — O(changed keys) *)
let refresh_digest (r : t) : unit =
  if Hashtbl.length r.dirty > 0 then begin
    Hashtbl.iter
      (fun kid () ->
        (match Hashtbl.find_opt r.obs_cache kid with
        | Some (_, h) ->
            xor_digest r h;
            r.digest_entries <- r.digest_entries - 1;
            Hashtbl.remove r.obs_cache kid
        | None -> ());
        let key = Intern.name kid in
        match Hashtbl.find_opt r.data key with
        | None -> ()
        | Some obj -> (
            match obs_string obj with
            | None -> ()
            | Some s ->
                let line = key ^ "=" ^ s in
                let h = Digest.string line in
                xor_digest r h;
                r.digest_entries <- r.digest_entries + 1;
                Hashtbl.replace r.obs_cache kid (line, h)))
      r.dirty;
    Hashtbl.reset r.dirty
  end

(** A digest of the replica's {e observable} state: two replicas that
    applied the same set of batches digest identically, whatever the
    arrival order; keys whose state is indistinguishable from the empty
    object are skipped, so a replica that merely {e read} a key digests
    the same as one that never touched it.  With the fast path enabled,
    only keys updated since the last call are re-rendered (the final
    sort+hash stays over all entries, so the output is bit-identical to
    {!state_digest_scratch}). *)
let state_digest (r : t) : string =
  if not !Fastpath.digest_cache then state_digest_scratch r
  else begin
    refresh_digest r;
    let entries =
      Hashtbl.fold (fun _ (line, _) acc -> line :: acc) r.obs_cache []
    in
    Digest.to_hex
      (Digest.string (String.concat "\n" (List.sort compare entries)))
  end

(** Combinable rolling digest of the observable state: equal multisets
    of per-key renderings produce equal values, so converged replicas
    compare equal exactly as with {!state_digest} — but each call costs
    O(keys changed since the previous call), not O(total state).  Only
    meaningful for equality comparison between replicas. *)
let quick_digest (r : t) : string =
  refresh_digest r;
  Fmt.str "%d:%s" r.digest_entries
    (Digest.to_hex (Bytes.to_string r.digest_agg))

(* ------------------------------------------------------------------ *)
(* Causal stability and garbage collection                             *)
(* ------------------------------------------------------------------ *)

(** The causal-stability cut: every event at or below this clock is
    known to be included in {e every} replica's state.  Computed as the
    pointwise minimum of the local clock and the latest clock learned
    from each peer (conservative: unknown peers pin the cut at zero). *)
let stable_vv (r : t) : Vclock.t =
  let rec go acc = function
    | [] -> acc
    | peer :: rest ->
        if peer = r.id then go acc rest
        else (
          match Hashtbl.find_opt r.peer_vvs peer with
          (* an unknown peer pins the cut at zero — stop early *)
          | None -> Vclock.empty
          | Some pv -> go (Vclock.min_pointwise acc pv) rest)
  in
  go r.vv r.peers

(** Drop batch-log entries whose events are at or below the stability
    cut: every peer's digest already covers them, so {!Sync} can never
    need to retransmit them.  Truncation removes a prefix of each
    per-origin log, keeping the retained suffix contiguous.  Returns the
    number of batches dropped. *)
let truncate_stable (r : t) ~(stable : Vclock.t) : int =
  let n = ref 0 in
  Hashtbl.iter
    (fun origin ol ->
      let known = Vclock.get stable origin in
      let continue = ref true in
      while !continue && ol.min_seq <= ol.max_seq do
        match Hashtbl.find_opt ol.entries ol.min_seq with
        | Some b when Vclock.get b.b_after origin <= known ->
            Hashtbl.remove ol.entries ol.min_seq;
            ol.min_seq <- ol.min_seq + 1;
            incr n
        | _ -> continue := false
      done)
    r.log;
  r.log_size <- r.log_size - !n;
  r.log_truncated <- r.log_truncated + !n;
  !n

(** Reclaim state that causal stability has made dead: rem-wins barriers
    (and the adds they permanently mask), payloads of stably-removed
    add-wins elements (§4.2.1), and — with the fast path enabled —
    batch-log entries every peer is known to have applied (counted in
    [log_truncated]; the retained-log high-water mark is [log_hwm]).
    Returns the number of CRDT metadata records reclaimed. *)
let gc (r : t) : int =
  let stable = stable_vv r in
  let reclaimed = ref 0 in
  Hashtbl.iter
    (fun key obj ->
      match obj with
      | Obj.O_rwset s ->
          let before = Ipa_crdt.Rwset.metadata_size s in
          let s' = Ipa_crdt.Rwset.gc ~stable s in
          reclaimed := !reclaimed + before - Ipa_crdt.Rwset.metadata_size s';
          Hashtbl.replace r.data key (Obj.O_rwset s')
      | Obj.O_awset s ->
          let before = Ipa_crdt.Awset.metadata_size s in
          let s' = Ipa_crdt.Awset.gc ~stable s in
          reclaimed := !reclaimed + before - Ipa_crdt.Awset.metadata_size s';
          Hashtbl.replace r.data key (Obj.O_awset s')
      | _ -> ())
    r.data;
  if !Fastpath.truncate_log then ignore (truncate_stable r ~stable);
  !reclaimed

(* ------------------------------------------------------------------ *)
(* Snapshot / restore                                                  *)
(* ------------------------------------------------------------------ *)

(* CRDT values, clocks and batches are immutable (operations return new
   values), so a snapshot shallow-copies the containers and shares their
   contents; only the per-origin logs carry mutable fields and need a
   deep copy of the record + entry table *)
type snapshot = {
  s_vv : Vclock.t;
  s_seq : int;
  s_lamport : int;
  s_data : (string, Obj.t) Hashtbl.t;
  s_types : (string, Obj.otype) Hashtbl.t;
  s_pending : batch Queue.t;
  s_pending_keys : (string * int, unit) Hashtbl.t;
  s_pending_hwm : int;
  s_applied : (string, int) Hashtbl.t;
  s_log : (string * (int * int * (int, batch) Hashtbl.t)) list;
  s_peers : string list;
  s_peer_vvs : (string, Vclock.t) Hashtbl.t;
  s_delivered : int;
  s_committed : int;
  s_duplicates_dropped : int;
  s_log_size : int;
  s_log_hwm : int;
  s_log_truncated : int;
}

(** Capture the replica's full replication state (clocks, data, pending
    buffer, batch logs, delivery counters).  The snapshot is immutable:
    later operations on the replica do not affect it. *)
let snapshot (r : t) : snapshot =
  {
    s_vv = r.vv;
    s_seq = r.seq;
    s_lamport = r.lamport;
    s_data = Hashtbl.copy r.data;
    s_types = Hashtbl.copy r.types;
    s_pending = Queue.copy r.pending;
    s_pending_keys = Hashtbl.copy r.pending_keys;
    s_pending_hwm = r.pending_hwm;
    s_applied = Hashtbl.copy r.applied;
    s_log =
      Hashtbl.fold
        (fun origin ol acc ->
          (origin, (ol.max_seq, ol.min_seq, Hashtbl.copy ol.entries)) :: acc)
        r.log [];
    s_peers = r.peers;
    s_peer_vvs = Hashtbl.copy r.peer_vvs;
    s_delivered = r.delivered;
    s_committed = r.committed;
    s_duplicates_dropped = r.duplicates_dropped;
    s_log_size = r.log_size;
    s_log_hwm = r.log_hwm;
    s_log_truncated = r.log_truncated;
  }

let refill (dst : ('a, 'b) Hashtbl.t) (src : ('a, 'b) Hashtbl.t) : unit =
  Hashtbl.reset dst;
  Hashtbl.iter (fun k v -> Hashtbl.replace dst k v) src

(** Reset the replica to a previously captured snapshot.  The digest
    caches are rebuilt lazily: every restored key is marked dirty, so the
    next digest call re-renders exactly the restored state (and restored
    digests stay bit-identical to a from-scratch run — the property the
    shrinker's re-execution relies on). *)
let restore (r : t) (s : snapshot) : unit =
  r.vv <- s.s_vv;
  r.seq <- s.s_seq;
  r.lamport <- s.s_lamport;
  refill r.data s.s_data;
  refill r.types s.s_types;
  Queue.clear r.pending;
  Queue.transfer (Queue.copy s.s_pending) r.pending;
  refill r.pending_keys s.s_pending_keys;
  r.pending_hwm <- s.s_pending_hwm;
  refill r.applied s.s_applied;
  Hashtbl.reset r.log;
  List.iter
    (fun (origin, (max_seq, min_seq, entries)) ->
      Hashtbl.replace r.log origin
        { max_seq; min_seq; entries = Hashtbl.copy entries })
    s.s_log;
  r.peers <- s.s_peers;
  refill r.peer_vvs s.s_peer_vvs;
  r.delivered <- s.s_delivered;
  r.committed <- s.s_committed;
  r.duplicates_dropped <- s.s_duplicates_dropped;
  r.log_size <- s.s_log_size;
  r.log_hwm <- s.s_log_hwm;
  r.log_truncated <- s.s_log_truncated;
  (* invalidate the incremental digest state wholesale: previously
     cached contributions are forgotten and every restored key is
     re-rendered on the next digest call *)
  Hashtbl.reset r.obs_cache;
  Hashtbl.reset r.dirty;
  r.digest_agg <- Bytes.make 16 '\000';
  r.digest_entries <- 0;
  Hashtbl.iter (fun key _ -> Hashtbl.replace r.dirty (Intern.id key) ()) r.data
