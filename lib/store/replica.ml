(** A store replica: causally-consistent application of update batches.

    Each committed transaction produces a {!batch} of downstream CRDT
    effects tagged with the origin's clock.  A remote replica buffers a
    batch until its causal dependencies are satisfied and then applies
    all its updates atomically — providing the causal consistency +
    highly-available-transactions combination the paper assumes of the
    underlying store (SwiftCloud).

    Delivery is {e exactly-once}: a replica tracks the highest applied
    per-origin commit number, so retransmitted or network-duplicated
    batches are dropped instead of re-applied (re-applying would
    double-count counter effects and violate the numeric invariants IPA
    protects).  Every replica also keeps a log of all batches it knows
    (its own and applied remote ones) so {!Sync} can retransmit batches
    a faulty network lost.

    {b Sharding.}  The keyspace is hash-partitioned over interned key
    ids into replica-local shards, each with its own object map, dirty
    set, observable-state hash cache and rolling digest.  Shard routing
    is a pure function of the key, so the same key lives in the same
    shard at every replica and per-shard digests are directly
    comparable — the leaves combine (XOR / wrapping sum) into a root
    digest that is identical whatever the shard count, which is what
    lets {!Sync} descend a digest tree and touch only divergent
    subtrees. *)

open Ipa_crdt

type batch = {
  b_origin : string;
  b_seq : int;  (** per-origin commit number *)
  b_deps : Vclock.t;  (** origin clock {e before} the transaction *)
  b_after : Vclock.t;  (** origin clock after (deps + this txn's events) *)
  b_updates : (string * Obj.op) list;
  b_kids : int array;
      (** interned ids of the update keys, in list order — interned once
          at the origin so every receiving replica (and every healing
          redelivery) skips the per-update string lookup *)
}

(** Per-origin batch log: commit numbers are contiguous from 1, so the
    batches covering a peer's gap are a suffix of the sequence.
    [min_seq] is the lowest retained commit number — causally-stable
    truncation drops a prefix, keeping the suffix contiguous. *)
type origin_log = {
  mutable max_seq : int;
  mutable min_seq : int;
  entries : (int, batch) Hashtbl.t;
}

(** One key's slot in a shard: the CRDT value plus the cached hash of
    its observable state.  The two live in one mutable cell so the apply
    path updates the value with a single table lookup, and a digest
    refresh reads and writes the cached hash through the same lookup it
    needs for the value anyway.  [c_h = 0] means "not contributing to
    the digest" (observable state indistinguishable from empty — or the
    astronomically unlikely honest hash 0, which both sides of any
    comparison compute identically). *)
type cell = { c_kid : int; mutable c_obj : Obj.t; mutable c_h : int }

(* growth filler for the dirty vectors; never part of a live prefix *)
let dummy_cell : cell =
  { c_kid = -1; c_obj = Obj.O_pncounter Pncounter.empty; c_h = 0 }

(** One keyspace partition: objects, types, dirty vector and a rolling
    digest, all keyed by interned key id (dense ints hash and compare
    faster than the key strings on the apply path). *)
type shard = {
  sh_data : (int, cell) Hashtbl.t;
  sh_types : (int, Obj.otype) Hashtbl.t;
  mutable sh_dirty : cell array;
      (** cells updated since this shard's digest was refreshed — a
          plain push vector (first [sh_dirty_n] slots), {e not} a set:
          duplicate entries are tolerated because the refresh recomputes
          each entry's hash from the current state, which makes a second
          visit a no-op.  Pushing the cell pointer is several times
          cheaper than a hash-set insert (the apply path pays it per
          update), and the refresh walks the cells with no table
          lookups at all *)
  mutable sh_dirty_n : int;  (** live prefix length of [sh_dirty] *)
  mutable sh_xor : int;  (** rolling digest: XOR of the cached hashes *)
  mutable sh_sum : int;
      (** rolling digest: wrapping sum of the cached hashes — a second
          independent combination, so a collision has to fool both *)
  mutable sh_entries : int;  (** entries contributing to the digest *)
  sh_sub_xor : int array;
      (** per-sub-bucket rolling digests: each cell also contributes to
          one of [subs] buckets inside its shard (a second, independent
          hash of the key id), giving the digest tree a third level so
          {!Sync} descent stays sublinear even when every shard is
          divergent *)
  sh_sub_sum : int array;
  sh_sub_entries : int array;
}

type t = {
  id : string;
  region : string;  (** data-center name, used by the simulator *)
  mutable vv : Vclock.t;
  mutable seq : int;
  mutable lamport : int;
  shards : shard array;  (** keyspace partitions; length fixed at create *)
  pending : (string, (int, batch) Hashtbl.t) Hashtbl.t;
      (** per-origin buffered batches keyed by commit number; causal
          deps force per-origin in-order application, so the only batch
          of an origin that can ever be deliverable is the one at
          [applied(origin) + 1] — draining never re-scans the rest *)
  pending_keys : (string * int, unit) Hashtbl.t;
      (** (origin, seq) of every buffered batch — O(1) duplicate check *)
  mutable pending_n : int;  (** buffered batches across all origins *)
  mutable pending_hwm : int;  (** deepest pending buffer ever seen *)
  mutable drain_scans : int;
      (** head-candidate examinations performed by [drain] — the
          quadratic-buffer regression test watches this stay linear *)
  applied : (string, int) Hashtbl.t;
      (** highest applied commit number per origin; causal dependencies
          force per-origin in-order application, so this is contiguous
          and any batch at or below it is a duplicate *)
  log : (string, origin_log) Hashtbl.t;
      (** every batch this replica knows, for anti-entropy retransmission *)
  mutable peers : string list;  (** cluster membership (incl. self) *)
  peer_vvs : (string, Vclock.t) Hashtbl.t;
      (** latest known clock of each peer, learned from applied batches;
          the pointwise minimum is the causal-stability cut *)
  mutable delivered : int;  (** remote batches applied *)
  mutable committed : int;  (** local transactions committed *)
  mutable duplicates_dropped : int;
      (** batches received more than once and suppressed *)
  mutable on_apply : batch -> unit;
      (** observability hook, called after a remote batch is applied *)
  mutable on_commit : batch -> unit;
      (** durability hook, called after a local batch is committed
          (before the batch is broadcast) — {!Wal} appends and flushes
          here so an acknowledged commit survives a crash *)
  mutable log_size : int;  (** batches currently retained in the log *)
  mutable log_hwm : int;  (** retained-log high-water mark *)
  mutable log_truncated : int;
      (** batches dropped by causally-stable truncation *)
  mutable delta_groups_applied : int;
      (** delta groups accepted by {!apply_delta_group} *)
}

let default_shards = 8

(** Default sub-buckets per shard (the digest tree's third level). *)
let default_subs = 32

let make_shard ~(subs : int) () : shard =
  {
    sh_data = Hashtbl.create 64;
    sh_types = Hashtbl.create 64;
    sh_dirty = Array.make 64 dummy_cell;
    sh_dirty_n = 0;
    sh_xor = 0;
    sh_sum = 0;
    sh_entries = 0;
    sh_sub_xor = Array.make subs 0;
    sh_sub_sum = Array.make subs 0;
    sh_sub_entries = Array.make subs 0;
  }

let create ?(region = "local") ?(shards = default_shards)
    ?(subs = default_subs) (id : string) : t =
  let shards = max 1 shards in
  let subs = max 1 subs in
  {
    id;
    region;
    vv = Vclock.empty;
    seq = 0;
    lamport = 0;
    shards = Array.init shards (fun _ -> make_shard ~subs ());
    pending = Hashtbl.create 8;
    pending_keys = Hashtbl.create 64;
    pending_n = 0;
    pending_hwm = 0;
    drain_scans = 0;
    applied = Hashtbl.create 8;
    log = Hashtbl.create 8;
    peers = [ id ];
    peer_vvs = Hashtbl.create 8;
    delivered = 0;
    committed = 0;
    duplicates_dropped = 0;
    on_apply = ignore;
    on_commit = ignore;
    log_size = 0;
    log_hwm = 0;
    log_truncated = 0;
    delta_groups_applied = 0;
  }

let shard_count (r : t) : int = Array.length r.shards

(** Sub-buckets per shard (≥ 1, fixed at creation). *)
let sub_count (r : t) : int = Array.length r.shards.(0).sh_sub_xor

(* route an interned key id to its shard: a multiplicative mix spreads
   the dense sequential ids the interner hands out, so consecutive keys
   do not all land in consecutive shards.  Pure function of (id, shard
   count) — every replica with the same shard count agrees *)
let shard_of_id (shards : int) (kid : int) : int =
  if shards = 1 then 0
  else
    let h = kid * 0x9E3779B1 in
    (h lxor (h lsr 16)) land max_int mod shards

let shard_of_key (r : t) (key : string) : int =
  shard_of_id (Array.length r.shards) (Intern.id key)

(* route a key id to a sub-bucket inside its shard.  Uses a different
   multiplier/shift than [shard_of_id] so the two routings are
   independent — keys of one shard spread over all its buckets.  Pure
   function of (id, bucket count): replicas with equal shard and bucket
   counts agree *)
let sub_of_id (subs : int) (kid : int) : int =
  if subs = 1 then 0
  else
    let h = kid * 0x85EBCA6B in
    (h lxor (h lsr 15)) land max_int mod subs

(** Read an object, creating it with type [ty] if absent (keys are
    created on first access, as in a key-value store with typed keys). *)
let get_kid (r : t) (kid : int) (ty : Obj.otype) : Obj.t =
  let sh = r.shards.(shard_of_id (Array.length r.shards) kid) in
  match Hashtbl.find_opt sh.sh_data kid with
  | Some c -> c.c_obj
  | None ->
      let o = Obj.init ty in
      Hashtbl.replace sh.sh_data kid { c_kid = kid; c_obj = o; c_h = 0 };
      Hashtbl.replace sh.sh_types kid ty;
      o

let get (r : t) (key : string) (ty : Obj.otype) : Obj.t =
  get_kid r (Intern.id key) ty

(** Read an object without creating it. *)
let peek (r : t) (key : string) : Obj.t option =
  match Intern.find key with
  | None -> None
  | Some kid ->
      Option.map
        (fun c -> c.c_obj)
        (Hashtbl.find_opt
           r.shards.(shard_of_id (Array.length r.shards) kid).sh_data kid)

(** Iterate every (key, object) pair across all shards. *)
let iter_data (r : t) (f : string -> Obj.t -> unit) : unit =
  Array.iter
    (fun sh ->
      Hashtbl.iter (fun kid c -> f (Intern.name kid) c.c_obj) sh.sh_data)
    r.shards

(** Fold over every (key, object) pair across all shards. *)
let fold_data (r : t) (f : string -> Obj.t -> 'a -> 'a) (acc : 'a) : 'a =
  Array.fold_left
    (fun acc sh ->
      Hashtbl.fold
        (fun kid c acc -> f (Intern.name kid) c.c_obj acc)
        sh.sh_data acc)
    acc r.shards

(** Number of objects stored (across all shards). *)
let obj_count (r : t) : int =
  Array.fold_left (fun acc sh -> acc + Hashtbl.length sh.sh_data) 0 r.shards

(** Apply a single update effect, creating the object if the effect
    arrives before any local access.  Compensation objects carry their
    bounds in every op, so remote-first creation uses the {e real}
    bounds instead of a sentinel that would silently weaken the
    invariant until the first local access.  The key is marked dirty in
    its shard; re-rendering is deferred to the next digest refresh, so a
    batch of updates pays one cheap int-table write per key here and the
    rendering cost only when a digest is actually demanded. *)
(* push [c] onto the shard's dirty vector (amortized O(1), duplicates
   allowed — see the [sh_dirty] doc) *)
let mark_dirty (sh : shard) (c : cell) : unit =
  let n = sh.sh_dirty_n in
  if n = Array.length sh.sh_dirty then begin
    let nb = Array.make (2 * n) dummy_cell in
    Array.blit sh.sh_dirty 0 nb 0 n;
    sh.sh_dirty <- nb
  end;
  sh.sh_dirty.(n) <- c;
  sh.sh_dirty_n <- n + 1

let apply_update_kid (r : t) (kid : int) (op : Obj.op) : unit =
  let sh = r.shards.(shard_of_id (Array.length r.shards) kid) in
  match Hashtbl.find_opt sh.sh_data kid with
  | Some c ->
      c.c_obj <- Obj.apply c.c_obj op;
      mark_dirty sh c
  | None ->
      (* effects can arrive before any local access: infer the object
         type from the op *)
      let ty =
        match op with
        | Obj.Op_awset _ -> Obj.T_awset
        | Obj.Op_rwset _ -> Obj.T_rwset
        | Obj.Op_pncounter _ -> Obj.T_pncounter
        | Obj.Op_bcounter _ -> Obj.T_bcounter
        | Obj.Op_lww _ -> Obj.T_lww
        | Obj.Op_mvreg _ -> Obj.T_mvreg
        | Obj.Op_compset o -> Obj.T_compset { max_size = Compset.op_bound o }
        | Obj.Op_compcounter o ->
            Obj.T_compcounter { min_value = Compcounter.op_bound o }
      in
      Hashtbl.replace sh.sh_types kid ty;
      let c = { c_kid = kid; c_obj = Obj.apply (Obj.init ty) op; c_h = 0 } in
      Hashtbl.replace sh.sh_data kid c;
      mark_dirty sh c

let apply_update (r : t) ((key, op) : string * Obj.op) : unit =
  apply_update_kid r (Intern.id key) op

(* apply a batch's updates through its pre-interned key ids *)
let apply_updates (r : t) (b : batch) : unit =
  let i = ref 0 in
  List.iter
    (fun ((_, op) : string * Obj.op) ->
      apply_update_kid r b.b_kids.(!i) op;
      incr i)
    b.b_updates

(** Fresh Lamport timestamp (for LWW registers). *)
let next_lamport (r : t) : int =
  r.lamport <- r.lamport + 1;
  r.lamport

(* ------------------------------------------------------------------ *)
(* Batch log                                                           *)
(* ------------------------------------------------------------------ *)

let log_add (r : t) (b : batch) : unit =
  let ol =
    match Hashtbl.find_opt r.log b.b_origin with
    | Some ol -> ol
    | None ->
        let ol =
          { max_seq = 0; min_seq = b.b_seq; entries = Hashtbl.create 64 }
        in
        Hashtbl.replace r.log b.b_origin ol;
        ol
  in
  if b.b_seq >= ol.min_seq && not (Hashtbl.mem ol.entries b.b_seq) then begin
    Hashtbl.replace ol.entries b.b_seq b;
    ol.max_seq <- max ol.max_seq b.b_seq;
    r.log_size <- r.log_size + 1;
    r.log_hwm <- max r.log_hwm r.log_size
  end

(** Batches from [origin] whose events go beyond [known] origin-events —
    what a peer reporting clock entry [known] for [origin] is missing.
    Newest-first seq walk over the contiguous log suffix, returned
    oldest-first. *)
let log_after (r : t) ~(origin : string) ~(known : int) : batch list =
  match Hashtbl.find_opt r.log origin with
  | None -> []
  | Some ol ->
      let rec walk seq acc =
        if seq < 1 then acc
        else
          match Hashtbl.find_opt ol.entries seq with
          | Some b when Vclock.get b.b_after origin > known ->
              walk (seq - 1) (b :: acc)
          | _ -> acc
      in
      walk ol.max_seq []

(* ------------------------------------------------------------------ *)
(* Local commit                                                        *)
(* ------------------------------------------------------------------ *)

(** Commit a transaction's updates: applies them locally and returns the
    batch to replicate. [events] is the number of clock ticks the
    transaction consumed (one per prepared effect). *)
let commit (r : t) ?kids ~(events : int) (updates : (string * Obj.op) list) :
    batch =
  let deps = r.vv in
  let after = Vclock.set deps r.id (Vclock.get deps r.id + events) in
  r.seq <- r.seq + 1;
  r.committed <- r.committed + 1;
  let kids =
    match kids with
    | Some a -> a  (* caller already interned (e.g. {!Txn.update}) *)
    | None ->
        let a = Array.make (List.length updates) 0 in
        List.iteri
          (fun i ((key, _) : string * Obj.op) -> a.(i) <- Intern.id key)
          updates;
        a
  in
  let b =
    {
      b_origin = r.id;
      b_seq = r.seq;
      b_deps = deps;
      b_after = after;
      b_updates = updates;
      b_kids = kids;
    }
  in
  apply_updates r b;
  r.vv <- after;
  log_add r b;
  r.on_commit b;
  b

(* ------------------------------------------------------------------ *)
(* Remote delivery                                                     *)
(* ------------------------------------------------------------------ *)

let deliverable (r : t) (b : batch) : bool = Vclock.leq b.b_deps r.vv

(** Has the batch already been applied (or buffered)?  Causal deps force
    per-origin in-order application, so any commit number at or below
    the highest applied one is a duplicate. *)
let seen (r : t) (b : batch) : bool =
  (match Hashtbl.find_opt r.applied b.b_origin with
  | Some n -> b.b_seq <= n
  | None -> false)
  || Hashtbl.mem r.pending_keys (b.b_origin, b.b_seq)

let apply_batch (r : t) (b : batch) : unit =
  apply_updates r b;
  r.vv <- Vclock.merge r.vv b.b_after;
  r.lamport <- max r.lamport (Vclock.total b.b_after);
  (* the batch proves its origin knew b_after — track for stability *)
  let prev =
    Option.value ~default:Vclock.empty (Hashtbl.find_opt r.peer_vvs b.b_origin)
  in
  Hashtbl.replace r.peer_vvs b.b_origin (Vclock.merge prev b.b_after);
  let high =
    Option.value ~default:0 (Hashtbl.find_opt r.applied b.b_origin)
  in
  Hashtbl.replace r.applied b.b_origin (max high b.b_seq);
  log_add r b;
  r.delivered <- r.delivered + 1;
  r.on_apply b

(* apply every deliverable pending batch.  Per origin, causal deps force
   in-order application, so the only candidate is the batch at
   [applied(origin) + 1] — each inner step is a single table lookup, and
   a long out-of-order chain (e.g. a reversed burst) drains in one pass
   without ever re-scanning the still-blocked tail.  The outer loop
   re-visits origins only while some delivery made progress (a delivery
   at one origin can satisfy a cross-origin dependency at another), so
   draining is O(delivered + origins · passes) instead of the quadratic
   whole-buffer rotation this replaces *)
let drain (r : t) : unit =
  let progress = ref true in
  while !progress do
    progress := false;
    Hashtbl.iter
      (fun origin tbl ->
        let continue = ref true in
        while !continue do
          continue := false;
          let next =
            1 + Option.value ~default:0 (Hashtbl.find_opt r.applied origin)
          in
          r.drain_scans <- r.drain_scans + 1;
          match Hashtbl.find_opt tbl next with
          | Some b when deliverable r b ->
              Hashtbl.remove tbl next;
              Hashtbl.remove r.pending_keys (origin, next);
              r.pending_n <- r.pending_n - 1;
              apply_batch r b;
              progress := true;
              continue := true
          | _ -> ()
        done)
      r.pending
  done

(** Receive a batch from the network; applies it (and any unblocked
    pending batches) as soon as causal dependencies are met.  Own
    batches and already-seen batches (duplicates, retransmissions of
    applied or buffered batches) are dropped — delivery is idempotent. *)
let receive (r : t) (b : batch) : unit =
  if b.b_origin = r.id then () (* own batches are applied at commit *)
  else if seen r b then r.duplicates_dropped <- r.duplicates_dropped + 1
  else if
    (* head fast path: the batch is its origin's next in sequence and
       causally ready — the overwhelmingly common healthy-network case —
       so apply it directly instead of round-tripping it through the
       pending buffer *)
    b.b_seq = 1 + Option.value ~default:0 (Hashtbl.find_opt r.applied b.b_origin)
    && deliverable r b
  then begin
    apply_batch r b;
    if r.pending_n > 0 then drain r
  end
  else begin
    let tbl =
      match Hashtbl.find_opt r.pending b.b_origin with
      | Some tbl -> tbl
      | None ->
          let tbl = Hashtbl.create 16 in
          Hashtbl.replace r.pending b.b_origin tbl;
          tbl
    in
    Hashtbl.replace tbl b.b_seq b;
    Hashtbl.replace r.pending_keys (b.b_origin, b.b_seq) ();
    r.pending_n <- r.pending_n + 1;
    r.pending_hwm <- max r.pending_hwm r.pending_n;
    drain r
  end

(** Number of batches buffered waiting for causal dependencies. *)
let pending_count (r : t) : int = r.pending_n

(** (origin, seq) keys of the buffered batches. *)
let pending_keys (r : t) : (string * int) list =
  Hashtbl.fold (fun k () acc -> k :: acc) r.pending_keys []

(* ------------------------------------------------------------------ *)
(* State digest                                                        *)
(* ------------------------------------------------------------------ *)

(* canonical rendering of an object's observable state: replicas that
   converged must render identically regardless of internal metadata or
   the order effects arrived in *)
let obs_string (o : Obj.t) : string option =
  let set tag l =
    match List.sort compare l with
    | [] -> None
    | l -> Some (tag ^ "{" ^ String.concat ";" l ^ "}")
  in
  match o with
  | Obj.O_awset s -> set "aw" (Awset.elements s)
  | Obj.O_rwset s -> set "rw" (Rwset.elements s)
  | Obj.O_compset s -> set "cs" (Compset.raw_elements s)
  | Obj.O_mvreg m -> set "mv" (Mvreg.values m)
  | Obj.O_pncounter c ->
      let v = Pncounter.value c in
      if v = 0 then None else Some (Fmt.str "pn:%d" v)
  | Obj.O_bcounter c ->
      let v = Bcounter.value c in
      if v = 0 then None else Some (Fmt.str "bc:%d" v)
  | Obj.O_lww l -> (
      match Lww.value l with None -> None | Some v -> Some ("lww:" ^ v))
  | Obj.O_compcounter c ->
      let v = Compcounter.raw_value c in
      if v = 0 then None else Some (Fmt.str "cc:%d" v)

(** From-scratch digest of the replica's {e observable} state: renders
    every object.  Kept as the reference implementation — the cached
    {!state_digest} must produce a bit-identical string (asserted by the
    equivalence tests and the [runtime] benchmark). *)
let state_digest_scratch (r : t) : string =
  let entries =
    fold_data r
      (fun key obj acc ->
        match obs_string obj with
        | Some s -> (key ^ "=" ^ s) :: acc
        | None -> acc)
      []
  in
  Digest.to_hex
    (Digest.string (String.concat "\n" (List.sort compare entries)))

(* 63-bit finalizing mixer (splitmix-style): spreads the structured
   (key id, tag, value) inputs over the whole int range so the XOR/sum
   combinations below behave like combinations of random words *)
let mix (h : int) : int =
  let h = h lxor (h lsr 30) in
  let h = h * 0xbf58476d1ce4e5b in
  let h = h lxor (h lsr 27) in
  let h = h * 0x94d049bb133111e in
  h lxor (h lsr 31)

(* FNV-1a over a string, for the observable states that are not plain
   integers (sets, registers) *)
let fnv_string (s : string) : int =
  let h = ref 0x10be64c5701f3d3 in
  for i = 0 to String.length s - 1 do
    h := (!h lxor Char.code (String.unsafe_get s i)) * 0x100000001b3
  done;
  !h

(* hash of one key's observable state, [None] when indistinguishable
   from the empty object (matching [obs_string]'s cases exactly).  A
   pure function of (key id, observable value): counters hash their
   value directly — no string rendering on the digest-refresh hot path —
   everything else hashes its canonical [obs_string] rendering.  The
   per-type tags keep equal numbers in different counter types
   distinct, as the "pn:"/"bc:"/"cc:" prefixes do for the renderer *)
let obs_hash (kid : int) (o : Obj.t) : int option =
  let num tag v =
    if v = 0 then None else Some (mix ((mix ((kid * 8) + tag)) lxor v))
  in
  match o with
  | Obj.O_pncounter c -> num 1 (Pncounter.quick_value c)
  | Obj.O_bcounter c -> num 2 (Bcounter.quick_value c)
  | Obj.O_compcounter c -> num 3 (Compcounter.quick_raw_value c)
  | o -> (
      match obs_string o with
      | None -> None
      | Some s -> Some (mix (fnv_string s lxor mix ((kid * 8) + 7))))

(* recompute the observable-state hash of every dirty key of one shard,
   updating the per-key cache and the rolling digest — O(changed keys
   in the shard), allocation-free for counter objects *)
let refresh_shard_s (sh : shard) : unit =
  if sh.sh_dirty_n > 0 then begin
    let subs = Array.length sh.sh_sub_xor in
    for i = 0 to sh.sh_dirty_n - 1 do
      let c = sh.sh_dirty.(i) in
      let sb = sub_of_id subs c.c_kid in
      if c.c_h <> 0 then begin
        (* XOR is its own inverse and the sum wraps: the same hash
           subtracts a previous contribution back out.  A duplicate
           dirty entry removes and re-adds the same fresh hash — a
           net no-op, which is what makes the vector safe *)
        sh.sh_xor <- sh.sh_xor lxor c.c_h;
        sh.sh_sum <- sh.sh_sum - c.c_h;
        sh.sh_entries <- sh.sh_entries - 1;
        sh.sh_sub_xor.(sb) <- sh.sh_sub_xor.(sb) lxor c.c_h;
        sh.sh_sub_sum.(sb) <- sh.sh_sub_sum.(sb) - c.c_h;
        sh.sh_sub_entries.(sb) <- sh.sh_sub_entries.(sb) - 1
      end;
      match obs_hash c.c_kid c.c_obj with
      | Some h when h <> 0 ->
          (* an honest hash of exactly 0 (probability 2⁻⁶³) is treated
             as empty — deterministically, on every replica — because 0
             is the cell's "not contributing" marker *)
          sh.sh_xor <- sh.sh_xor lxor h;
          sh.sh_sum <- sh.sh_sum + h;
          sh.sh_entries <- sh.sh_entries + 1;
          sh.sh_sub_xor.(sb) <- sh.sh_sub_xor.(sb) lxor h;
          sh.sh_sub_sum.(sb) <- sh.sh_sub_sum.(sb) + h;
          sh.sh_sub_entries.(sb) <- sh.sh_sub_entries.(sb) + 1;
          c.c_h <- h
      | _ -> c.c_h <- 0
    done;
    sh.sh_dirty_n <- 0
  end

(** Refresh one shard's digest caches (re-rendering its dirty keys). *)
let refresh_shard (r : t) (i : int) : unit = refresh_shard_s r.shards.(i)

let refresh_digest (r : t) : unit = Array.iter refresh_shard_s r.shards

(** A digest of the replica's {e observable} state: two replicas that
    applied the same set of batches digest identically, whatever the
    arrival order; keys whose state is indistinguishable from the empty
    object are skipped, so a replica that merely {e read} a key digests
    the same as one that never touched it.  Always the full reference
    rendering (so it is bit-identical whatever the shard count or
    fast-path flags) — convergence {e polling} goes through
    {!digest_equal}, which is what the rolling hashes accelerate; the
    exact digest is only demanded at checkpoints (final comparison,
    failure reports). *)
let state_digest (r : t) : string = state_digest_scratch r

(* XOR / wrapping sum of all shard digests — the digest tree's root.
   Equal across shard counts because both combinations are associative
   and commutative: regrouping the per-key contributions into different
   shards cannot change them *)
let root_xor (r : t) : int =
  Array.fold_left (fun acc sh -> acc lxor sh.sh_xor) 0 r.shards

let root_sum (r : t) : int =
  Array.fold_left (fun acc sh -> acc + sh.sh_sum) 0 r.shards

let digest_entries (r : t) : int =
  Array.fold_left (fun acc sh -> acc + sh.sh_entries) 0 r.shards

(** Combinable rolling digest of the observable state: equal multisets
    of per-key observable states produce equal values, so converged
    replicas compare equal exactly as with {!state_digest} — but each
    call costs O(keys changed since the previous call), not O(total
    state).  Only meaningful for equality comparison between replicas;
    independent of the shard count. *)
let quick_digest (r : t) : string =
  refresh_digest r;
  Fmt.str "%d:%x:%x" (digest_entries r) (root_xor r) (root_sum r)

(** [quick_digest a = quick_digest b], without building the strings —
    the allocation-free comparison {!Cluster.quiescent} polls with. *)
let digest_equal (a : t) (b : t) : bool =
  refresh_digest a;
  refresh_digest b;
  digest_entries a = digest_entries b
  && root_xor a = root_xor b
  && root_sum a = root_sum b

(** One shard's rolling digest as an (entries, xor, sum) triple — the
    digest tree's inner nodes, compared during {!Sync} tree descent. *)
let shard_digest (r : t) (i : int) : int * int * int =
  refresh_shard_s r.shards.(i);
  let sh = r.shards.(i) in
  (sh.sh_entries, sh.sh_xor, sh.sh_sum)

(** One sub-bucket's rolling digest (the tree's third level).  The
    caller must have refreshed the shard (e.g. via {!shard_digest}). *)
let sub_digest (r : t) (i : int) (sb : int) : int * int * int =
  let sh = r.shards.(i) in
  (sh.sh_sub_entries.(sb), sh.sh_sub_xor.(sb), sh.sh_sub_sum.(sb))

(* ------------------------------------------------------------------ *)
(* Causal stability and garbage collection                             *)
(* ------------------------------------------------------------------ *)

(** The causal-stability cut: every event at or below this clock is
    known to be included in {e every} replica's state.  Computed as the
    pointwise minimum of the local clock and the latest clock learned
    from each peer (conservative: unknown peers pin the cut at zero). *)
let stable_vv (r : t) : Vclock.t =
  let rec go acc = function
    | [] -> acc
    | peer :: rest ->
        if peer = r.id then go acc rest
        else (
          match Hashtbl.find_opt r.peer_vvs peer with
          (* an unknown peer pins the cut at zero — stop early *)
          | None -> Vclock.empty
          | Some pv -> go (Vclock.min_pointwise acc pv) rest)
  in
  go r.vv r.peers

(** Drop batch-log entries whose events are at or below the stability
    cut: every peer's digest already covers them, so {!Sync} can never
    need to retransmit them.  Truncation removes a prefix of each
    per-origin log, keeping the retained suffix contiguous.  Returns the
    number of batches dropped. *)
let truncate_stable (r : t) ~(stable : Vclock.t) : int =
  let n = ref 0 in
  Hashtbl.iter
    (fun origin ol ->
      let known = Vclock.get stable origin in
      let continue = ref true in
      while !continue && ol.min_seq <= ol.max_seq do
        match Hashtbl.find_opt ol.entries ol.min_seq with
        | Some b when Vclock.get b.b_after origin <= known ->
            Hashtbl.remove ol.entries ol.min_seq;
            ol.min_seq <- ol.min_seq + 1;
            incr n
        | _ -> continue := false
      done)
    r.log;
  r.log_size <- r.log_size - !n;
  r.log_truncated <- r.log_truncated + !n;
  !n

(** Reclaim state that causal stability has made dead: rem-wins barriers
    (and the adds they permanently mask), payloads of stably-removed
    add-wins elements (§4.2.1), and — with the fast path enabled —
    batch-log entries every peer is known to have applied (counted in
    [log_truncated]; the retained-log high-water mark is [log_hwm]).
    Returns the number of CRDT metadata records reclaimed.  GC changes
    only internal metadata, never observable state, so keys are not
    marked dirty. *)
let gc (r : t) : int =
  let stable = stable_vv r in
  let reclaimed = ref 0 in
  Array.iter
    (fun sh ->
      Hashtbl.iter
        (fun _ c ->
          match c.c_obj with
          | Obj.O_rwset s ->
              let before = Ipa_crdt.Rwset.metadata_size s in
              let s' = Ipa_crdt.Rwset.gc ~stable s in
              reclaimed :=
                !reclaimed + before - Ipa_crdt.Rwset.metadata_size s';
              c.c_obj <- Obj.O_rwset s'
          | Obj.O_awset s ->
              let before = Ipa_crdt.Awset.metadata_size s in
              let s' = Ipa_crdt.Awset.gc ~stable s in
              reclaimed :=
                !reclaimed + before - Ipa_crdt.Awset.metadata_size s';
              c.c_obj <- Obj.O_awset s'
          | _ -> ())
        sh.sh_data)
    r.shards;
  if !Fastpath.truncate_log then ignore (truncate_stable r ~stable);
  !reclaimed

(* ------------------------------------------------------------------ *)
(* Snapshot / restore                                                  *)
(* ------------------------------------------------------------------ *)

(* CRDT values, clocks and batches are immutable (operations return new
   values), so a snapshot shares them; the per-key cells and per-origin
   logs are mutable, so the snapshot materializes plain (kid → value)
   tables the live replica cannot reach *)
type snapshot = {
  s_vv : Vclock.t;
  s_seq : int;
  s_lamport : int;
  s_shards : ((int, Obj.t) Hashtbl.t * (int, Obj.otype) Hashtbl.t) array;
  s_pending : batch list;
  s_pending_hwm : int;
  s_applied : (string, int) Hashtbl.t;
  s_log : (string * (int * int * (int, batch) Hashtbl.t)) list;
  s_peers : string list;
  s_peer_vvs : (string, Vclock.t) Hashtbl.t;
  s_delivered : int;
  s_committed : int;
  s_duplicates_dropped : int;
  s_log_size : int;
  s_log_hwm : int;
  s_log_truncated : int;
}

(** Capture the replica's full replication state (clocks, data, pending
    buffer, batch logs, delivery counters).  The snapshot is immutable:
    later operations on the replica do not affect it. *)
let snapshot (r : t) : snapshot =
  {
    s_vv = r.vv;
    s_seq = r.seq;
    s_lamport = r.lamport;
    s_shards =
      Array.map
        (fun sh ->
          let data = Hashtbl.create (Hashtbl.length sh.sh_data) in
          Hashtbl.iter (fun kid c -> Hashtbl.replace data kid c.c_obj)
            sh.sh_data;
          (data, Hashtbl.copy sh.sh_types))
        r.shards;
    s_pending =
      Hashtbl.fold
        (fun _ tbl acc -> Hashtbl.fold (fun _ b acc -> b :: acc) tbl acc)
        r.pending [];
    s_pending_hwm = r.pending_hwm;
    s_applied = Hashtbl.copy r.applied;
    s_log =
      Hashtbl.fold
        (fun origin ol acc ->
          (origin, (ol.max_seq, ol.min_seq, Hashtbl.copy ol.entries)) :: acc)
        r.log [];
    s_peers = r.peers;
    s_peer_vvs = Hashtbl.copy r.peer_vvs;
    s_delivered = r.delivered;
    s_committed = r.committed;
    s_duplicates_dropped = r.duplicates_dropped;
    s_log_size = r.log_size;
    s_log_hwm = r.log_hwm;
    s_log_truncated = r.log_truncated;
  }

let refill (dst : ('a, 'b) Hashtbl.t) (src : ('a, 'b) Hashtbl.t) : unit =
  Hashtbl.reset dst;
  Hashtbl.iter (fun k v -> Hashtbl.replace dst k v) src

(** Reset the replica to a previously captured snapshot.  The digest
    caches are rebuilt lazily: every restored key is marked dirty, so the
    next digest call re-renders exactly the restored state (and restored
    digests stay bit-identical to a from-scratch run — the property the
    shrinker's re-execution relies on). *)
let restore (r : t) (s : snapshot) : unit =
  if Array.length s.s_shards <> Array.length r.shards then
    invalid_arg "Replica.restore: snapshot has a different shard count";
  r.vv <- s.s_vv;
  r.seq <- s.s_seq;
  r.lamport <- s.s_lamport;
  Array.iteri
    (fun i sh ->
      let data, types = s.s_shards.(i) in
      (* rebuild fresh cells: the snapshot's values must not alias the
         live replica's mutable cells *)
      Hashtbl.reset sh.sh_data;
      Hashtbl.iter
        (fun kid o ->
          Hashtbl.replace sh.sh_data kid { c_kid = kid; c_obj = o; c_h = 0 })
        data;
      refill sh.sh_types types;
      (* invalidate the incremental digest state wholesale: previously
         cached contributions are forgotten and every restored key is
         re-rendered on the next digest call *)
      sh.sh_dirty_n <- 0;
      sh.sh_xor <- 0;
      sh.sh_sum <- 0;
      sh.sh_entries <- 0;
      Array.fill sh.sh_sub_xor 0 (Array.length sh.sh_sub_xor) 0;
      Array.fill sh.sh_sub_sum 0 (Array.length sh.sh_sub_sum) 0;
      Array.fill sh.sh_sub_entries 0 (Array.length sh.sh_sub_entries) 0;
      Hashtbl.iter (fun _ c -> mark_dirty sh c) sh.sh_data)
    r.shards;
  Hashtbl.reset r.pending;
  Hashtbl.reset r.pending_keys;
  r.pending_n <- 0;
  List.iter
    (fun (b : batch) ->
      let tbl =
        match Hashtbl.find_opt r.pending b.b_origin with
        | Some tbl -> tbl
        | None ->
            let tbl = Hashtbl.create 16 in
            Hashtbl.replace r.pending b.b_origin tbl;
            tbl
      in
      Hashtbl.replace tbl b.b_seq b;
      Hashtbl.replace r.pending_keys (b.b_origin, b.b_seq) ();
      r.pending_n <- r.pending_n + 1)
    s.s_pending;
  r.pending_hwm <- s.s_pending_hwm;
  refill r.applied s.s_applied;
  Hashtbl.reset r.log;
  List.iter
    (fun (origin, (max_seq, min_seq, entries)) ->
      Hashtbl.replace r.log origin
        { max_seq; min_seq; entries = Hashtbl.copy entries })
    s.s_log;
  r.peers <- s.s_peers;
  refill r.peer_vvs s.s_peer_vvs;
  r.delivered <- s.s_delivered;
  r.committed <- s.s_committed;
  r.duplicates_dropped <- s.s_duplicates_dropped;
  r.log_size <- s.s_log_size;
  r.log_hwm <- s.s_log_hwm;
  r.log_truncated <- s.s_log_truncated

(* ------------------------------------------------------------------ *)
(* Crash recovery (see Wal)                                            *)
(* ------------------------------------------------------------------ *)

(** Wipe the replica back to freshly-created state, keeping its
    identity, peer list, shard/bucket geometry and hooks.  Crash
    recovery resets in place — engine closures holding the replica keep
    targeting it — then replays snapshot + WAL. *)
let reset (r : t) : unit =
  r.vv <- Vclock.empty;
  r.seq <- 0;
  r.lamport <- 0;
  Array.iter
    (fun sh ->
      Hashtbl.reset sh.sh_data;
      Hashtbl.reset sh.sh_types;
      sh.sh_dirty_n <- 0;
      sh.sh_xor <- 0;
      sh.sh_sum <- 0;
      sh.sh_entries <- 0;
      Array.fill sh.sh_sub_xor 0 (Array.length sh.sh_sub_xor) 0;
      Array.fill sh.sh_sub_sum 0 (Array.length sh.sh_sub_sum) 0;
      Array.fill sh.sh_sub_entries 0 (Array.length sh.sh_sub_entries) 0)
    r.shards;
  Hashtbl.reset r.pending;
  Hashtbl.reset r.pending_keys;
  r.pending_n <- 0;
  Hashtbl.reset r.applied;
  Hashtbl.reset r.log;
  Hashtbl.reset r.peer_vvs;
  r.delivered <- 0;
  r.committed <- 0;
  r.duplicates_dropped <- 0;
  r.log_size <- 0;
  r.log_hwm <- 0;
  r.log_truncated <- 0;
  r.delta_groups_applied <- 0

(** Recovery replay of a logged batch (own or remote): re-applies its
    updates without delivery gating — WAL append order is application
    order, so causal dependencies already hold — and skips batches at or
    below the per-origin cursor, which makes replay idempotent
    (tolerating duplicated WAL records and snapshot/WAL overlap).
    Observability hooks are not fired for the replayed batch itself.

    A checkpoint snapshot legitimately captures the pending buffer, so
    replay must re-establish the buffer's invariant — it holds only
    batches {e above} the applied cursor — or a batch both restored as
    pending and replayed as applied would sit buffered forever (the
    drain never looks at or below the cursor, and retransmissions of a
    buffered batch are dropped as duplicates), wedging quiescence.
    Hence: advancing a cursor purges the overtaken pending entries, and
    replay drains afterwards, because replayed progress can make a
    restored pending batch deliverable (the drain's applies are genuine
    deliveries and do fire hooks — they need fresh WAL records). *)
let replay_batch (r : t) (b : batch) : unit =
  let own = b.b_origin = r.id in
  let cur =
    if own then r.seq
    else Option.value ~default:0 (Hashtbl.find_opt r.applied b.b_origin)
  in
  if b.b_seq <= cur then ()
  else begin
    apply_updates r b;
    r.vv <- Vclock.merge r.vv b.b_after;
    r.lamport <- max r.lamport (Vclock.total b.b_after);
    if own then begin
      r.seq <- b.b_seq;
      r.committed <- r.committed + 1
    end
    else begin
      Hashtbl.replace r.applied b.b_origin b.b_seq;
      (match Hashtbl.find_opt r.pending b.b_origin with
      | Some tbl ->
          for s = cur + 1 to b.b_seq do
            if Hashtbl.mem tbl s then begin
              Hashtbl.remove tbl s;
              Hashtbl.remove r.pending_keys (b.b_origin, s);
              r.pending_n <- r.pending_n - 1
            end
          done
      | None -> ());
      let prev =
        Option.value ~default:Vclock.empty
          (Hashtbl.find_opt r.peer_vvs b.b_origin)
      in
      Hashtbl.replace r.peer_vvs b.b_origin (Vclock.merge prev b.b_after);
      r.delivered <- r.delivered + 1
    end;
    log_add r b;
    if r.pending_n > 0 then drain r
  end

(* ------------------------------------------------------------------ *)
(* Delta groups (delta-state anti-entropy; see Sync)                   *)
(* ------------------------------------------------------------------ *)

(** A compressed per-origin log interval for anti-entropy: the set-CRDT
    effects of commits [g_from..g_to] joined into one state fragment per
    key, plus compressed counter ops and raw ops for the remaining
    types.  Ships instead of the constituent batches (or the full
    rendered state) when a peer is behind. *)
type delta_group = {
  g_origin : string;
  g_from : int;  (** first covered commit number *)
  g_to : int;  (** last covered commit number *)
  g_stamp : int;  (** Lamport stamp of the newest covered batch *)
  g_after : Vclock.t;  (** origin clock after the newest covered batch *)
  g_deltas : (int * Obj.delta) list;  (** kid → joined state fragment *)
  g_ops : (int * Obj.op) list;
      (** kid → op: counter ops compressed to one summed delta per key,
          other non-delta types raw in application order *)
}

(** Collapse the batches [origin] committed beyond [known]
    origin-events into one delta group ([None] if the log holds
    none). *)
let delta_group_of (r : t) ~(origin : string) ~(known : int) :
    delta_group option =
  match log_after r ~origin ~known with
  | [] -> None
  | first :: _ as batches ->
      let deltas : (int, Obj.delta) Hashtbl.t = Hashtbl.create 16 in
      let dorder = ref [] in
      let add_delta kid d =
        match Hashtbl.find_opt deltas kid with
        | Some prev -> Hashtbl.replace deltas kid (Obj.join_deltas prev d)
        | None ->
            Hashtbl.replace deltas kid d;
            dorder := kid :: !dorder
      in
      let csums : (int * string, int ref) Hashtbl.t = Hashtbl.create 16 in
      let corder = ref [] in
      let raw = ref [] in
      let last = ref first in
      List.iter
        (fun (b : batch) ->
          last := b;
          let i = ref 0 in
          List.iter
            (fun ((_, op) : string * Obj.op) ->
              let kid = b.b_kids.(!i) in
              incr i;
              match op with
              | Obj.Op_awset x ->
                  add_delta kid (Obj.D_awset (Awset.delta_of_op x))
              | Obj.Op_rwset x ->
                  add_delta kid (Obj.D_rwset (Rwset.delta_of_op x))
              | Obj.Op_pncounter x -> (
                  let rep = Pncounter.op_rep x and d = Pncounter.op_delta x in
                  match Hashtbl.find_opt csums (kid, rep) with
                  | Some s -> s := !s + d
                  | None ->
                      Hashtbl.replace csums (kid, rep) (ref d);
                      corder := (kid, rep) :: !corder)
              | op -> raw := (kid, op) :: !raw)
            b.b_updates)
        batches;
      let g_deltas =
        List.rev_map (fun kid -> (kid, Hashtbl.find deltas kid)) !dorder
      in
      let compressed =
        List.rev_map
          (fun (kid, rep) ->
            let d = !(Hashtbl.find csums (kid, rep)) in
            (kid, Obj.Op_pncounter (Pncounter.prepare Pncounter.empty ~rep d)))
          !corder
      in
      Some
        {
          g_origin = origin;
          g_from = first.b_seq;
          g_to = !last.b_seq;
          g_stamp = Vclock.total !last.b_after;
          g_after = !last.b_after;
          g_deltas;
          g_ops = List.rev !raw @ compressed;
        }

(* join a delta fragment into a key's cell, creating the object if the
   fragment arrives before any local access *)
let join_delta_kid (r : t) (kid : int) (d : Obj.delta) : unit =
  let sh = r.shards.(shard_of_id (Array.length r.shards) kid) in
  match Hashtbl.find_opt sh.sh_data kid with
  | Some c ->
      c.c_obj <- Obj.join_delta c.c_obj d;
      mark_dirty sh c
  | None ->
      let ty = Obj.delta_otype d in
      Hashtbl.replace sh.sh_types kid ty;
      let c =
        { c_kid = kid; c_obj = Obj.join_delta (Obj.init ty) d; c_h = 0 }
      in
      Hashtbl.replace sh.sh_data kid c;
      mark_dirty sh c

(** Join a delta fragment into a key's object (creating it if
    absent). *)
let join_delta_key (r : t) (key : string) (d : Obj.delta) : unit =
  join_delta_kid r (Intern.id key) d

(** Apply a delta group.  Accepted only when it starts exactly at the
    next undelivered commit of its origin ([g_from = applied + 1]) and
    its cross-origin dependencies are already satisfied — both checks
    preserve exactly-once, FIFO, causally-consistent delivery; a
    rejected group is simply retried by a later sync round.  On success
    the origin's clock entry, applied cursor and peer knowledge advance
    to the group's end, and any buffered batches the group supersedes
    are dropped (their next-seq cursor has jumped past them). *)
let apply_delta_group (r : t) (g : delta_group) : bool =
  let next =
    1 + Option.value ~default:0 (Hashtbl.find_opt r.applied g.g_origin)
  in
  let ext_ready =
    List.for_all
      (fun (rep, n) -> rep = g.g_origin || Vclock.get r.vv rep >= n)
      (Vclock.to_list g.g_after)
  in
  if g.g_origin = r.id || g.g_from <> next || not ext_ready then false
  else begin
    List.iter (fun (kid, d) -> join_delta_kid r kid d) g.g_deltas;
    List.iter (fun (kid, op) -> apply_update_kid r kid op) g.g_ops;
    Hashtbl.replace r.applied g.g_origin g.g_to;
    r.vv <-
      Vclock.set r.vv g.g_origin
        (max (Vclock.get r.vv g.g_origin) (Vclock.get g.g_after g.g_origin));
    r.lamport <- max r.lamport g.g_stamp;
    let prev =
      Option.value ~default:Vclock.empty
        (Hashtbl.find_opt r.peer_vvs g.g_origin)
    in
    Hashtbl.replace r.peer_vvs g.g_origin (Vclock.merge prev g.g_after);
    r.delta_groups_applied <- r.delta_groups_applied + 1;
    (match Hashtbl.find_opt r.pending g.g_origin with
    | None -> ()
    | Some tbl ->
        let stale =
          Hashtbl.fold
            (fun seq _ acc -> if seq <= g.g_to then seq :: acc else acc)
            tbl []
        in
        List.iter
          (fun seq ->
            Hashtbl.remove tbl seq;
            Hashtbl.remove r.pending_keys (g.g_origin, seq);
            r.pending_n <- r.pending_n - 1)
          stale);
    drain r;
    true
  end
