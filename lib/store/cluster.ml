(** A cluster of replicas with pluggable batch transport.

    Tests use {!broadcast_now} (instant delivery); the simulator routes
    batches through its latency model and calls {!Replica.receive}
    itself. *)

type t = { replicas : Replica.t list }

(** [create regions] makes one replica per (id, region) pair; each
    replica learns the full membership (needed for causal stability).
    [shards] sets every replica's keyspace partition count (they must
    agree for digest-tree descent to compare shards pairwise). *)
let create ?shards (specs : (string * string) list) : t =
  let replicas =
    List.map (fun (id, region) -> Replica.create ~region ?shards id) specs
  in
  let ids = List.map fst specs in
  List.iter (fun (r : Replica.t) -> r.Replica.peers <- ids) replicas;
  { replicas }

let replica (c : t) (id : string) : Replica.t =
  List.find (fun (r : Replica.t) -> r.Replica.id = id) c.replicas

let others (c : t) (id : string) : Replica.t list =
  List.filter (fun (r : Replica.t) -> r.Replica.id <> id) c.replicas

(** Deliver a batch to every other replica immediately. *)
let broadcast_now (c : t) (b : Replica.batch) : unit =
  List.iter (fun r -> Replica.receive r b) (others c b.Replica.b_origin)

(** Commit a transaction and broadcast instantly (test convenience). *)
let commit_and_sync (c : t) (tx : Txn.t) : unit =
  match Txn.commit tx with None -> () | Some b -> broadcast_now c b

(** A snapshot of every replica, for the fuzzer's shrink re-runs. *)
type snapshot = (string * Replica.snapshot) list

let snapshot (c : t) : snapshot =
  List.map (fun (r : Replica.t) -> (r.Replica.id, Replica.snapshot r)) c.replicas

let restore (c : t) (s : snapshot) : unit =
  List.iter
    (fun (r : Replica.t) -> Replica.restore r (List.assoc r.Replica.id s))
    c.replicas

(** Do replicas agree on the observable state?  Compares vector clocks
    {e and} per-replica state digests: once the network can duplicate or
    lose messages, equal clocks alone no longer prove equal state (a
    double-applied counter increment leaves the clock untouched).

    With {!Fastpath.digest_cache} on, the comparison uses the rolling
    combinable digest — O(keys changed since the last poll) per replica
    instead of a full state re-render, which is what makes high-rate
    convergence polling affordable.  The outcome is identical either
    way (both digests are equal exactly when the observable states
    agree). *)
let quiescent (c : t) : bool =
  match c.replicas with
  | [] -> true
  | r0 :: rest ->
      if !Fastpath.digest_cache then
        (* root-digest comparison without building the digest strings:
           refresh is O(changed keys), the comparison O(1) *)
        List.for_all
          (fun (r : Replica.t) ->
            Ipa_crdt.Vclock.equal r.Replica.vv r0.Replica.vv
            && Replica.pending_count r = 0
            && Replica.digest_equal r0 r)
          rest
        && Replica.pending_count r0 = 0
      else
        let d0 = Replica.state_digest r0 in
        List.for_all
          (fun (r : Replica.t) ->
            Ipa_crdt.Vclock.equal r.Replica.vv r0.Replica.vv
            && Replica.pending_count r = 0
            && Replica.state_digest r = d0)
          rest
        && Replica.pending_count r0 = 0
