(** Consistency-typed client reads: weak / bounded-staleness / strong
    levels as a phantom-indexed GADT, plus escrow interval reads for
    {!Ipa_crdt.Bcounter}-backed keys.  See DESIGN.md
    "Consistency-typed reads" for the cover rule and the interval
    derivation. *)

open Ipa_crdt

type weak
type bounded
type strong

(** The requested level; the phantom index flows into the {!result}. *)
type _ level =
  | Weak : weak level
  | Bounded : Vclock.t -> bounded level
      (** every event at or below this bound clock must be reflected *)
  | Strong : strong level

val level_name : 'l level -> string

(** A stamped read: value ([None] = absent key), serving replica, its
    clock at serve time, and whether the read escalated to the quiesce
    path.  The index pins the level the read was requested at, so an
    API can demand e.g. [strong result]. *)
type 'l result = {
  value : Obj.t option;
  served_by : string;
  at : Vclock.t;
  escalated : bool;
}

val value : 'l result -> Obj.t option

(** [covers r b] — [r]'s own clock covers the bound: [r] can serve it. *)
val covers : Replica.t -> Vclock.t -> bool

(** [stable_covers r b] — the bound is below [r]'s causal-stability cut
    ({!Replica.stable_vv}): {e every} replica is certified (from [r]'s
    local metadata alone) to cover it. *)
val stable_covers : Replica.t -> Vclock.t -> bool

(** Drive the cluster to quiescence over the reliable control channel;
    returns rounds spent (0 = already quiescent).  May give up at
    [max_rounds] without quiescence. *)
val quiesce : ?max_rounds:int -> Cluster.t -> int

(** Read a key at a level.  [prefer] is the client's co-located replica
    id (default: first replica).  Weak serves there immediately;
    bounded serves from the preferred replica if it covers the bound,
    else from any covering replica, else escalates (quiesce, then serve,
    [escalated = true]); strong always quiesces first. *)
val read : Cluster.t -> 'l level -> ?prefer:string -> string -> 'l result

(** An escrow interval read: locally observed value plus
    [lo ≤ strongly-consistent value ≤ hi] ([hi = None] while the
    counter is uncapped). *)
type interval = { lo : int; hi : int option; observed : int }

(** The interval from one replica's purely local state (no messages).
    Absent keys read as the empty counter; raises [Obj.Type_mismatch]
    on non-Bcounter keys. *)
val interval_at : Replica.t -> string -> interval

(** {!interval_at} at the preferred replica. *)
val interval : Cluster.t -> ?prefer:string -> string -> interval
