(** Per-replica write-ahead log: length-prefixed, CRC-checksummed
    records with group-commit batching and snapshot + replay recovery.

    Held to the Phase-3 durability invariants of log-structured stores:

    - {b Acknowledged-write durability} — a local commit's record is
      framed, checksummed and flushed {e before} {!Replica.commit}
      returns (via the {!Replica.t.on_commit} hook), so an acknowledged
      transaction survives a crash.  Remote applies may be buffered
      ([group_commit] records per flush); losing an unflushed apply
      suffix is safe because the per-origin applied cursor regresses
      {e consistently} with the state, and anti-entropy re-delivers.
    - {b Crash determinism} — all records share one append buffer and a
      commit flushes the whole buffer, so the durable prefix is always a
      prefix of the application order and a committed batch's causal
      dependencies are durable with it (a commit's [b_deps] can only
      reference applies framed before it).
    - {b Replay equivalence} — recovery loads the snapshot, replays the
      WAL suffix in order through {!Replica.replay_batch} (idempotent by
      per-origin cursor, so duplicated records and snapshot/WAL overlap
      are harmless) and stops at the first torn or corrupt frame; the
      recovered replica digests bit-identically to the pre-crash state
      covered by the durable prefix.

    Record framing: [[len:u32le][crc32:u32le][payload]], payload a
    [Marshal] encoding (with closures: rem-wins selectors) of the
    {!record} — an in-process crash-recovery format, like the rest of
    the simulation substrate.  The snapshot file is written to a temp
    name and renamed into place, so a crash mid-checkpoint leaves the
    previous snapshot intact; the WAL is truncated {e after} the rename,
    and a crash between the two leaves snapshot + full WAL, which replay
    deduplicates.

    Delta groups ({!Replica.apply_delta_group}) are not logged: the
    durability experiment separates delta repair from crash windows, and
    a recovered replica re-acquires any lost groups through the same
    anti-entropy that produced them. *)

type record = R_commit of Replica.batch | R_apply of Replica.batch

type t = {
  dir : string;
  rid : string;  (** owning replica id — names the files *)
  group_commit : int;  (** apply records buffered per flush (≥ 1) *)
  buf : Buffer.t;  (** frames not yet written — lost on crash *)
  mutable oc : out_channel option;
  mutable buffered : int;  (** records currently in [buf] *)
  mutable appended : int;  (** records framed since creation *)
  mutable flushes : int;  (** physical flushes performed *)
}

let wal_path ~dir ~id = Filename.concat dir (id ^ ".wal")
let snap_path ~dir ~id = Filename.concat dir (id ^ ".snap")

(* ------------------------------------------------------------------ *)
(* CRC-32 (IEEE 802.3, reflected) — hand-rolled: the store library
   deliberately depends on nothing beyond the stdlib                   *)
(* ------------------------------------------------------------------ *)

let crc_table =
  lazy
    (Array.init 256 (fun n ->
         let c = ref n in
         for _ = 0 to 7 do
           c := if !c land 1 = 1 then 0xEDB88320 lxor (!c lsr 1) else !c lsr 1
         done;
         !c))

let crc32 (s : string) (pos : int) (len : int) : int =
  let t = Lazy.force crc_table in
  let c = ref 0xFFFFFFFF in
  for i = pos to pos + len - 1 do
    c :=
      t.((!c lxor Char.code (String.unsafe_get s i)) land 0xff)
      lxor (!c lsr 8)
  done;
  !c lxor 0xFFFFFFFF

(* ------------------------------------------------------------------ *)
(* Lifecycle                                                           *)
(* ------------------------------------------------------------------ *)

let open_channel ?(trunc = false) (t : t) : out_channel =
  let flags =
    [ Open_wronly; Open_creat; Open_binary ]
    @ if trunc then [ Open_trunc ] else [ Open_append ]
  in
  open_out_gen flags 0o644 (wal_path ~dir:t.dir ~id:t.rid)

let create ?(group_commit = 8) ~(dir : string) ~(id : string) () : t =
  if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
  let t =
    {
      dir;
      rid = id;
      group_commit = max 1 group_commit;
      buf = Buffer.create 4096;
      oc = None;
      buffered = 0;
      appended = 0;
      flushes = 0;
    }
  in
  t.oc <- Some (open_channel t);
  t

(** Write and physically flush every buffered frame. *)
let flush (t : t) : unit =
  if Buffer.length t.buf > 0 then begin
    match t.oc with
    | None -> ()
    | Some oc ->
        Buffer.output_buffer oc t.buf;
        Stdlib.flush oc;
        Buffer.clear t.buf;
        t.buffered <- 0;
        t.flushes <- t.flushes + 1
  end

let frame (t : t) (r : record) : unit =
  let payload = Marshal.to_string r [ Marshal.Closures ] in
  let len = String.length payload in
  let hdr = Bytes.create 8 in
  Bytes.set_int32_le hdr 0 (Int32.of_int len);
  Bytes.set_int32_le hdr 4 (Int32.of_int (crc32 payload 0 len));
  Buffer.add_bytes t.buf hdr;
  Buffer.add_string t.buf payload;
  t.buffered <- t.buffered + 1;
  t.appended <- t.appended + 1

(** Append a record.  Commit records flush immediately (acknowledged-
    write durability — and with them every earlier buffered apply, the
    crash-determinism invariant); apply records are group-committed
    every [group_commit] records. *)
let append (t : t) (r : record) : unit =
  frame t r;
  match r with
  | R_commit _ -> flush t
  | R_apply _ -> if t.buffered >= t.group_commit then flush t

(** Hook the WAL into a replica: local commits append [R_commit] (and
    flush) before the previous hook runs, remote applies append
    [R_apply].  Attach once per replica; hooks survive crash recovery
    because {!Replica.reset} keeps them. *)
let attach (t : t) (r : Replica.t) : unit =
  let prev_commit = r.Replica.on_commit and prev_apply = r.Replica.on_apply in
  r.Replica.on_commit <-
    (fun b ->
      append t (R_commit b);
      prev_commit b);
  r.Replica.on_apply <-
    (fun b ->
      append t (R_apply b);
      prev_apply b)

(** Simulate a crash: the unflushed buffer is discarded (that is the
    point) and the channel is abandoned without flushing. *)
let crash (t : t) : unit =
  Buffer.clear t.buf;
  t.buffered <- 0;
  (match t.oc with
  | Some oc -> ( try close_out_noerr oc with _ -> ())
  | None -> ());
  t.oc <- None

(** Orderly close (flushes first). *)
let close (t : t) : unit =
  flush t;
  (match t.oc with Some oc -> close_out oc | None -> ());
  t.oc <- None

(* atomic file write: temp name in the same directory, then rename *)
let write_file_atomic (path : string) (data : string) : unit =
  let tmp = path ^ ".tmp" in
  let oc = open_out_gen [ Open_wronly; Open_creat; Open_trunc; Open_binary ] 0o644 tmp in
  output_string oc data;
  close_out oc;
  Sys.rename tmp path

(** Checkpoint: persist a {!Replica.snapshot} (atomically) and truncate
    the WAL — every logged record is now covered by the snapshot.  When
    [gc] is true (default) the replica first runs {!Replica.gc}, so the
    snapshot's batch log is already truncated to the causal-stability
    window and the WAL restarts from the same cut. *)
let checkpoint ?(gc = true) (t : t) (r : Replica.t) : unit =
  if gc then ignore (Replica.gc r);
  flush t;
  let snap = Replica.snapshot r in
  write_file_atomic
    (snap_path ~dir:t.dir ~id:t.rid)
    (Marshal.to_string snap [ Marshal.Closures ]);
  (match t.oc with Some oc -> close_out_noerr oc | None -> ());
  t.oc <- Some (open_channel ~trunc:true t)

(* ------------------------------------------------------------------ *)
(* Recovery                                                            *)
(* ------------------------------------------------------------------ *)

type recovery = {
  rec_snapshot : bool;  (** a snapshot file was loaded *)
  rec_replayed : int;  (** records applied by replay *)
  rec_skipped : int;  (** records skipped as duplicates / pre-snapshot *)
  rec_valid_bytes : int;  (** length of the valid WAL prefix *)
  rec_dropped_bytes : int;  (** torn / corrupt tail discarded *)
}

let read_file (path : string) : string option =
  if not (Sys.file_exists path) then None
  else begin
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> Some (really_input_string ic (in_channel_length ic)))
  end

(* parse the longest valid frame prefix; anything after the first bad
   length, failed checksum or torn frame is discarded *)
let parse_records (data : string) : record list * int =
  let total = String.length data in
  let records = ref [] in
  let pos = ref 0 in
  let stop = ref false in
  while not !stop do
    if !pos + 8 > total then stop := true
    else begin
      let b = Bytes.of_string (String.sub data !pos 8) in
      let len = Int32.to_int (Bytes.get_int32_le b 0) land 0xFFFFFFFF in
      let crc = Int32.to_int (Bytes.get_int32_le b 4) land 0xFFFFFFFF in
      if len <= 0 || !pos + 8 + len > total then stop := true
      else if crc32 data (!pos + 8) len <> crc then stop := true
      else begin
        match
          (Marshal.from_string (String.sub data (!pos + 8) len) 0 : record)
        with
        | r ->
            records := r :: !records;
            pos := !pos + 8 + len
        | exception _ -> stop := true
      end
    end
  done;
  (List.rev !records, !pos)

(** Recover the replica in place from snapshot + WAL: reset, restore
    the snapshot if one exists, replay the valid WAL prefix in order,
    truncate the torn/corrupt tail (so later appends stay readable) and
    reopen for appending.  Batches the durable prefix does not cover
    are re-acquired through anti-entropy, exactly like batches a faulty
    network lost. *)
let recover (t : t) (r : Replica.t) : recovery =
  Buffer.clear t.buf;
  t.buffered <- 0;
  (match t.oc with Some oc -> close_out_noerr oc | None -> ());
  t.oc <- None;
  Replica.reset r;
  let rec_snapshot =
    match read_file (snap_path ~dir:t.dir ~id:t.rid) with
    | None -> false
    | Some data -> (
        match (Marshal.from_string data 0 : Replica.snapshot) with
        | snap ->
            Replica.restore r snap;
            true
        | exception _ -> false)
  in
  let wal = Option.value ~default:"" (read_file (wal_path ~dir:t.dir ~id:t.rid)) in
  let records, valid = parse_records wal in
  let replayed = ref 0 and skipped = ref 0 in
  List.iter
    (fun rc ->
      let b = match rc with R_commit b | R_apply b -> b in
      let own = b.Replica.b_origin = r.Replica.id in
      let cur =
        if own then r.Replica.seq
        else
          Option.value ~default:0
            (Hashtbl.find_opt r.Replica.applied b.Replica.b_origin)
      in
      if b.Replica.b_seq <= cur then incr skipped
      else begin
        Replica.replay_batch r b;
        incr replayed
      end)
    records;
  if valid < String.length wal then
    write_file_atomic (wal_path ~dir:t.dir ~id:t.rid) (String.sub wal 0 valid);
  t.oc <- Some (open_channel t);
  {
    rec_snapshot;
    rec_replayed = !replayed;
    rec_skipped = !skipped;
    rec_valid_bytes = valid;
    rec_dropped_bytes = String.length wal - valid;
  }

(** Delete the replica's WAL and snapshot files (test hygiene). *)
let remove_files (t : t) : unit =
  (match t.oc with Some oc -> close_out_noerr oc | None -> ());
  t.oc <- None;
  List.iter
    (fun p -> if Sys.file_exists p then Sys.remove p)
    [ wal_path ~dir:t.dir ~id:t.rid; snap_path ~dir:t.dir ~id:t.rid ]
