(** Store objects: a uniform wrapper over the CRDT library so replicas
    can hold heterogeneous objects and route downstream effects by key.

    Each object is created with a {!otype} descriptor (the per-object
    conflict-resolution choice of the paper's system model §2.1). *)

open Ipa_crdt

type t =
  | O_awset of Awset.t
  | O_rwset of Rwset.t
  | O_pncounter of Pncounter.t
  | O_bcounter of Bcounter.t
  | O_lww of Lww.t
  | O_mvreg of Mvreg.t
  | O_compset of Compset.t
  | O_compcounter of Compcounter.t

(** Object type descriptors, fixing the conflict-resolution policy. *)
type otype =
  | T_awset
  | T_rwset
  | T_pncounter
  | T_bcounter
  | T_lww
  | T_mvreg
  | T_compset of { max_size : int }
  | T_compcounter of { min_value : int }

type op =
  | Op_awset of Awset.op
  | Op_rwset of Rwset.op
  | Op_pncounter of Pncounter.op
  | Op_bcounter of Bcounter.op
  | Op_lww of Lww.op
  | Op_mvreg of Mvreg.op
  | Op_compset of Compset.op
  | Op_compcounter of Compcounter.op

exception Type_mismatch of string

let init (ty : otype) : t =
  match ty with
  | T_awset -> O_awset Awset.empty
  | T_rwset -> O_rwset Rwset.empty
  | T_pncounter -> O_pncounter Pncounter.empty
  | T_bcounter -> O_bcounter Bcounter.empty
  | T_lww -> O_lww Lww.empty
  | T_mvreg -> O_mvreg Mvreg.empty
  | T_compset { max_size } -> O_compset (Compset.create ~max_size)
  | T_compcounter { min_value } -> O_compcounter (Compcounter.create ~min_value ())

let apply (o : t) (op : op) : t =
  match (o, op) with
  | O_awset s, Op_awset x -> O_awset (Awset.apply s x)
  | O_rwset s, Op_rwset x -> O_rwset (Rwset.apply s x)
  | O_pncounter s, Op_pncounter x -> O_pncounter (Pncounter.apply s x)
  | O_bcounter s, Op_bcounter x -> O_bcounter (Bcounter.apply s x)
  | O_lww s, Op_lww x -> O_lww (Lww.apply s x)
  | O_mvreg s, Op_mvreg x -> O_mvreg (Mvreg.apply s x)
  | O_compset s, Op_compset x -> O_compset (Compset.apply s x)
  | O_compcounter s, Op_compcounter x -> O_compcounter (Compcounter.apply s x)
  | _ -> raise (Type_mismatch "Obj.apply: op does not match object type")

(* ------------------------------------------------------------------ *)
(* Delta-state view (anti-entropy ships these instead of full state)   *)
(* ------------------------------------------------------------------ *)

(** A joinable state fragment.  Only the set CRDTs ship true deltas:
    their fragments carry causal metadata (dots / contexts / barriers)
    that makes the join idempotent.  Counter and register ops are
    additive or already tiny, so anti-entropy ships them as (compressed)
    ops instead — see {!Sync}. *)
type delta =
  | D_awset of Awset.t
  | D_rwset of Rwset.t
  | D_pncounter of Pncounter.t

(** The delta fragment for one op, or [None] for types that ship ops.
    [after] is the object state immediately after applying the op at its
    origin (needed by counter deltas, which carry absolute slot
    totals). *)
let delta_of ~(after : t) (op : op) : delta option =
  match (op, after) with
  | Op_awset x, _ -> Some (D_awset (Awset.delta_of_op x))
  | Op_rwset x, _ -> Some (D_rwset (Rwset.delta_of_op x))
  | Op_pncounter x, O_pncounter s ->
      Some (D_pncounter (Pncounter.delta_of_op ~after:s x))
  | Op_pncounter _, _ ->
      raise (Type_mismatch "Obj.delta_of: pncounter op on non-counter")
  | ( ( Op_bcounter _ | Op_lww _ | Op_mvreg _ | Op_compset _
      | Op_compcounter _ ),
      _ ) ->
      None

(** Join a delta fragment into a state. *)
let join_delta (o : t) (d : delta) : t =
  match (o, d) with
  | O_awset s, D_awset f -> O_awset (Awset.merge s f)
  | O_rwset s, D_rwset f -> O_rwset (Rwset.merge s f)
  | O_pncounter s, D_pncounter f -> O_pncounter (Pncounter.merge s f)
  | _ -> raise (Type_mismatch "Obj.join_delta: delta does not match object")

(** Join two deltas of the same key (group compaction). *)
let join_deltas (a : delta) (b : delta) : delta =
  match (a, b) with
  | D_awset x, D_awset y -> D_awset (Awset.merge x y)
  | D_rwset x, D_rwset y -> D_rwset (Rwset.merge x y)
  | D_pncounter x, D_pncounter y -> D_pncounter (Pncounter.merge x y)
  | _ -> raise (Type_mismatch "Obj.join_deltas: mismatched deltas")

(** Is full-state merge defined for this object? *)
let mergeable (o : t) : bool =
  match o with
  | O_awset _ | O_rwset _ | O_pncounter _ -> true
  | _ -> false

(** Full-state join (mergeable types only): the whole state viewed as
    one big delta. *)
let as_delta (o : t) : delta option =
  match o with
  | O_awset s -> Some (D_awset s)
  | O_rwset s -> Some (D_rwset s)
  | O_pncounter s -> Some (D_pncounter s)
  | _ -> None

let delta_otype (d : delta) : otype =
  match d with
  | D_awset _ -> T_awset
  | D_rwset _ -> T_rwset
  | D_pncounter _ -> T_pncounter

(* typed accessors *)
let as_awset = function O_awset s -> s | _ -> raise (Type_mismatch "awset")
let as_rwset = function O_rwset s -> s | _ -> raise (Type_mismatch "rwset")

let as_pncounter = function
  | O_pncounter s -> s
  | _ -> raise (Type_mismatch "pncounter")

let as_bcounter = function
  | O_bcounter s -> s
  | _ -> raise (Type_mismatch "bcounter")

let as_lww = function O_lww s -> s | _ -> raise (Type_mismatch "lww")
let as_mvreg = function O_mvreg s -> s | _ -> raise (Type_mismatch "mvreg")

let as_compset = function
  | O_compset s -> s
  | _ -> raise (Type_mismatch "compset")

let as_compcounter = function
  | O_compcounter s -> s
  | _ -> raise (Type_mismatch "compcounter")
