(** Per-replica write-ahead log: length-prefixed CRC-checksummed
    records, group-commit batching, snapshot + replay crash recovery.

    Durability contract: a local commit's record is flushed before
    {!Replica.commit} returns (acknowledged-write durability), and a
    commit flushes every earlier buffered apply with it — so the durable
    prefix always covers a committed batch's causal dependencies.
    Unflushed remote applies may be lost on crash; the per-origin
    applied cursor regresses consistently with the state and
    anti-entropy ({!Sync}) re-delivers them. *)

(** A logged replication event: a batch the replica committed locally,
    or one it applied from a remote origin. *)
type record = R_commit of Replica.batch | R_apply of Replica.batch

type t = {
  dir : string;
  rid : string;  (** owning replica id — names the files *)
  group_commit : int;  (** apply records buffered per flush (≥ 1) *)
  buf : Buffer.t;  (** frames not yet written — lost on crash *)
  mutable oc : out_channel option;
  mutable buffered : int;  (** records currently in [buf] *)
  mutable appended : int;  (** records framed since creation *)
  mutable flushes : int;  (** physical flushes performed *)
}

(** WAL file path for replica [id] under [dir] ([<id>.wal]). *)
val wal_path : dir:string -> id:string -> string

(** Snapshot file path for replica [id] under [dir] ([<id>.snap]). *)
val snap_path : dir:string -> id:string -> string

(** CRC-32 (IEEE 802.3) over [len] bytes of [s] starting at [pos] —
    exposed for the corruption-matrix tests. *)
val crc32 : string -> int -> int -> int

(** Open (creating [dir] and the log file if needed) a WAL for replica
    [id].  [group_commit] is the number of apply records buffered per
    physical flush (default 8; commits always flush immediately). *)
val create : ?group_commit:int -> dir:string -> id:string -> unit -> t

(** Write and physically flush every buffered frame. *)
val flush : t -> unit

(** Append one record; commits flush immediately, applies are
    group-committed. *)
val append : t -> record -> unit

(** Hook the WAL into a replica's [on_commit] / [on_apply] (composing
    with, and running before, any existing hooks).  Attach once per
    replica; the hooks survive {!recover} because {!Replica.reset}
    keeps them. *)
val attach : t -> Replica.t -> unit

(** Simulate a crash: discard the unflushed buffer and abandon the
    channel. *)
val crash : t -> unit

(** Orderly close (flushes first). *)
val close : t -> unit

(** Persist a snapshot (written to a temp file, then renamed — atomic)
    and truncate the WAL, which the snapshot now covers.  With [gc]
    (default [true]) the replica first runs {!Replica.gc}, aligning the
    snapshot's batch log and the WAL restart with the causal-stability
    window. *)
val checkpoint : ?gc:bool -> t -> Replica.t -> unit

type recovery = {
  rec_snapshot : bool;  (** a snapshot file was loaded *)
  rec_replayed : int;  (** records applied by replay *)
  rec_skipped : int;  (** records skipped as duplicates / pre-snapshot *)
  rec_valid_bytes : int;  (** length of the valid WAL prefix *)
  rec_dropped_bytes : int;  (** torn / corrupt tail discarded *)
}

(** Recover the replica in place: {!Replica.reset}, restore the
    snapshot if present, replay the longest valid WAL prefix through
    {!Replica.replay_batch} (stopping at the first torn or
    checksum-failed frame), truncate the invalid tail and reopen for
    appending. *)
val recover : t -> Replica.t -> recovery

(** Delete the replica's WAL and snapshot files (test hygiene). *)
val remove_files : t -> unit
