(** A cluster of replicas with pluggable batch transport: tests use
    {!broadcast_now}; the simulator routes batches through its latency
    model and calls {!Replica.receive} itself. *)

type t = { replicas : Replica.t list }

(** One replica per (id, region) pair; membership is distributed for
    causal-stability tracking.  [shards] sets every replica's keyspace
    partition count. *)
val create : ?shards:int -> (string * string) list -> t

val replica : t -> string -> Replica.t
val others : t -> string -> Replica.t list

(** Deliver a batch to every other replica immediately. *)
val broadcast_now : t -> Replica.batch -> unit

(** Commit a transaction and broadcast instantly (test convenience). *)
val commit_and_sync : t -> Txn.t -> unit

(** A snapshot of every replica, for the fuzzer's shrink re-runs. *)
type snapshot

val snapshot : t -> snapshot
val restore : t -> snapshot -> unit

(** Do all replicas agree (equal clocks, equal observable-state digests,
    no pending batches)? *)
val quiescent : t -> bool
