(** Runtime toggles for the replication fast path — all observably
    equivalence-preserving; used by the [runtime] benchmark and the
    on-vs-off equivalence tests to measure the unoptimized baseline. *)

(** Incremental state digests (dirty-key tracking + rolling digest). *)
val digest_cache : bool ref

(** Hash-set membership index in [Sync.missing_for]. *)
val sync_index : bool ref

(** Causally-stable batch-log truncation during [Replica.gc]. *)
val truncate_log : bool ref

(** Set every flag at once. *)
val set_all : bool -> unit

(** Run a thunk with all flags forced on/off, restoring them after. *)
val with_all : bool -> (unit -> 'a) -> 'a
