(** Anti-entropy: digest exchange + retransmission of lost batches.

    With a faulty network, a dropped batch would wedge causal delivery
    at its destination forever (every later batch from the same origin
    buffers behind the gap).  Anti-entropy closes such gaps: replicas
    periodically exchange vector-clock digests (plus the keys of batches
    already buffered), and every replica retransmits, from its batch
    log, the batches a peer is missing.  Because {!Replica.receive} is
    idempotent, over-sending is harmless; a per-(destination, batch)
    capped exponential backoff keeps retransmission traffic bounded
    while a gap persists (e.g. across a partition).

    The digest exchange itself is modelled as an out-of-band control
    channel (instant and reliable); only the retransmitted {e batches}
    travel through the faulty data path the caller's [send] implements,
    so retransmissions can themselves be lost, duplicated or delayed. *)

(** What a replica advertises: its applied clock plus the (origin, seq)
    keys it has buffered — buffered batches need no retransmission. *)
type digest = { d_vv : Ipa_crdt.Vclock.t; d_have : (string * int) list }

type t = {
  cluster : Cluster.t;
  base_backoff_ms : float;
  max_backoff_ms : float;
  next_retry : (string * string * int, float * float) Hashtbl.t;
      (** (destination, origin, seq) → (earliest next retransmit time,
          backoff to apply after it) *)
  mutable rounds : int;
  mutable retransmitted : int;
}

let create ?(base_backoff_ms = 200.0) ?(max_backoff_ms = 5_000.0)
    (cluster : Cluster.t) : t =
  {
    cluster;
    base_backoff_ms;
    max_backoff_ms;
    next_retry = Hashtbl.create 256;
    rounds = 0;
    retransmitted = 0;
  }

let digest_of (r : Replica.t) : digest =
  { d_vv = r.Replica.vv; d_have = Replica.pending_keys r }

(** Batches in [src]'s log that [d] (a peer's digest) is missing.
    The buffered-key membership test uses a hash set built once per
    digest (instead of an O(n·m) [List.mem] scan per candidate), and the
    per-origin results are concatenated once instead of appended inside
    the fold; the returned batches and their order are unchanged. *)
let missing_for ~(src : Replica.t) (d : digest) : Replica.batch list =
  let have_mem : string * int -> bool =
    if !Fastpath.sync_index then begin
      let have = Hashtbl.create (max 16 (2 * List.length d.d_have)) in
      List.iter (fun k -> Hashtbl.replace have k ()) d.d_have;
      Hashtbl.mem have
    end
    else fun k -> List.mem k d.d_have
  in
  List.concat
    (Hashtbl.fold
       (fun origin _ acc ->
         let known = Ipa_crdt.Vclock.get d.d_vv origin in
         List.filter
           (fun (b : Replica.batch) ->
             not (have_mem (b.Replica.b_origin, b.Replica.b_seq)))
           (Replica.log_after src ~origin ~known)
         :: acc)
       src.Replica.log [])

(* ------------------------------------------------------------------ *)
(* Digest-tree descent                                                 *)
(* ------------------------------------------------------------------ *)

(** Result of a digest-tree comparison between two replicas: the keys
    whose rendered observable state differs, plus how many tree nodes
    the descent actually examined (1 root + one node per shard digest
    compared + one per key hash compared in a divergent shard) — the
    scale experiment's evidence that divergence localization costs
    O(divergent keys), not O(total state). *)
type descent = { divergent : string list; nodes_visited : int }

(** Merkle-style descent over the per-shard digest tree of two replicas
    (which must have the same shard count): compare the root digests
    first; if they agree the replicas' observable states agree and
    nothing else is touched.  Otherwise compare the per-shard rolling
    digests and, only inside the shards that disagree, the per-key line
    hashes — keys present on one side only, or hashing differently,
    are the divergent set (sorted).  Both replicas' dirty keys are
    re-rendered on the way, so the comparison always reflects current
    state. *)
let divergent_keys ~(a : Replica.t) ~(b : Replica.t) : descent =
  let na = Replica.shard_count a and nb = Replica.shard_count b in
  if na <> nb then
    invalid_arg "Sync.divergent_keys: shard counts differ";
  let visited = ref 1 in
  if Replica.digest_equal a b then { divergent = []; nodes_visited = !visited }
  else begin
    let divergent = ref [] in
    for i = 0 to na - 1 do
      incr visited;
      if Replica.shard_digest a i <> Replica.shard_digest b i then begin
        (* leaf level: compare per-key line hashes of the two shards
           (digest_equal / shard_digest refreshed both sides already) *)
        let sa = a.Replica.shards.(i) and sb = b.Replica.shards.(i) in
        let contributing (c : Replica.cell) = c.Replica.c_h <> 0 in
        Hashtbl.iter
          (fun kid (ca : Replica.cell) ->
            if contributing ca then begin
              incr visited;
              match Hashtbl.find_opt sb.Replica.sh_data kid with
              | Some cb when cb.Replica.c_h = ca.Replica.c_h -> ()
              | _ -> divergent := Ipa_crdt.Intern.name kid :: !divergent
            end)
          sa.Replica.sh_data;
        Hashtbl.iter
          (fun kid (cb : Replica.cell) ->
            if contributing cb then
              match Hashtbl.find_opt sa.Replica.sh_data kid with
              | Some ca when contributing ca -> ()  (* already compared *)
              | _ ->
                  incr visited;
                  divergent := Ipa_crdt.Intern.name kid :: !divergent)
          sb.Replica.sh_data
      end
    done;
    {
      divergent = List.sort_uniq String.compare !divergent;
      nodes_visited = !visited;
    }
  end

(* is this (dst, batch) due for (re)transmission at [now]?  A batch seen
   missing for the first time gets a grace period of one base backoff —
   it is usually just in flight — and is only retransmitted if it is
   still missing afterwards; each retransmission doubles the backoff up
   to the cap *)
let due (s : t) ~(now : float) (dst : Replica.t) (b : Replica.batch) : bool =
  let key = (dst.Replica.id, b.Replica.b_origin, b.Replica.b_seq) in
  match Hashtbl.find_opt s.next_retry key with
  | None ->
      Hashtbl.replace s.next_retry key
        (now +. s.base_backoff_ms, s.base_backoff_ms);
      false
  | Some (at, _) when now < at -> false
  | Some (_, backoff) ->
      Hashtbl.replace s.next_retry key
        (now +. backoff, Float.min (2.0 *. backoff) s.max_backoff_ms);
      true

(** One anti-entropy round at time [now]: every replica compares every
    peer's digest against its own log and hands the batches the peer is
    missing (and whose backoff has elapsed) to [send] — the caller's
    faulty data path.  Returns the number of batches retransmitted. *)
let round (s : t) ~(now : float)
    ~(send : src:Replica.t -> dst:Replica.t -> Replica.batch -> unit) : int =
  s.rounds <- s.rounds + 1;
  let n = ref 0 in
  List.iter
    (fun (dst : Replica.t) ->
      let d = digest_of dst in
      List.iter
        (fun (src : Replica.t) ->
          List.iter
            (fun (b : Replica.batch) ->
              if due s ~now dst b then begin
                incr n;
                send ~src ~dst b
              end)
            (missing_for ~src d))
        (Cluster.others s.cluster dst.Replica.id))
    s.cluster.Cluster.replicas;
  s.retransmitted <- s.retransmitted + !n;
  !n
