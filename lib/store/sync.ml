(** Anti-entropy: digest exchange + retransmission of lost batches.

    With a faulty network, a dropped batch would wedge causal delivery
    at its destination forever (every later batch from the same origin
    buffers behind the gap).  Anti-entropy closes such gaps: replicas
    periodically exchange vector-clock digests (plus the keys of batches
    already buffered), and every replica retransmits, from its batch
    log, the batches a peer is missing.  Because {!Replica.receive} is
    idempotent, over-sending is harmless; a per-(destination, batch)
    capped exponential backoff keeps retransmission traffic bounded
    while a gap persists (e.g. across a partition).

    The digest exchange itself is modelled as an out-of-band control
    channel (instant and reliable); only the retransmitted {e batches}
    travel through the faulty data path the caller's [send] implements,
    so retransmissions can themselves be lost, duplicated or delayed. *)

(** What a replica advertises: its applied clock plus the (origin, seq)
    keys it has buffered — buffered batches need no retransmission. *)
type digest = { d_vv : Ipa_crdt.Vclock.t; d_have : (string * int) list }

type t = {
  cluster : Cluster.t;
  base_backoff_ms : float;
  max_backoff_ms : float;
  next_retry : (string * string * int, float * float) Hashtbl.t;
      (** (destination, origin, seq) → (earliest next retransmit time,
          backoff to apply after it) *)
  mutable rounds : int;
  mutable retransmitted : int;
  delta_buf : (string * string, int * Replica.delta_group) Hashtbl.t;
      (** per-peer delta-interval buffer: (destination, origin) → the
          group last built for that peer, keyed by the [known] event
          count it was built against.  Reused while the peer has not
          acknowledged progress (its clock entry is unchanged) and the
          interval has not grown; evicted on acknowledgement *)
  mutable delta_buf_hits : int;  (** groups served from the buffer *)
  mutable on_round : (now:float -> unit) option;
      (** piggyback hook, invoked at the start of every {!round}: work
          that should amortize into the anti-entropy cadence — e.g. the
          escrow planner's proactive rights migrations — runs here, so
          any batches it commits ride the same round instead of paying
          their own blocking exchange *)
}

let create ?(base_backoff_ms = 200.0) ?(max_backoff_ms = 5_000.0)
    (cluster : Cluster.t) : t =
  {
    cluster;
    base_backoff_ms;
    max_backoff_ms;
    next_retry = Hashtbl.create 256;
    rounds = 0;
    retransmitted = 0;
    delta_buf = Hashtbl.create 64;
    delta_buf_hits = 0;
    on_round = None;
  }

let digest_of (r : Replica.t) : digest =
  { d_vv = r.Replica.vv; d_have = Replica.pending_keys r }

(** Batches in [src]'s log that [d] (a peer's digest) is missing.
    The buffered-key membership test uses a hash set built once per
    digest (instead of an O(n·m) [List.mem] scan per candidate), and the
    per-origin results are concatenated once instead of appended inside
    the fold; the returned batches and their order are unchanged. *)
let missing_for ~(src : Replica.t) (d : digest) : Replica.batch list =
  let have_mem : string * int -> bool =
    if !Fastpath.sync_index then begin
      let have = Hashtbl.create (max 16 (2 * List.length d.d_have)) in
      List.iter (fun k -> Hashtbl.replace have k ()) d.d_have;
      Hashtbl.mem have
    end
    else fun k -> List.mem k d.d_have
  in
  List.concat
    (Hashtbl.fold
       (fun origin _ acc ->
         let known = Ipa_crdt.Vclock.get d.d_vv origin in
         List.filter
           (fun (b : Replica.batch) ->
             not (have_mem (b.Replica.b_origin, b.Replica.b_seq)))
           (Replica.log_after src ~origin ~known)
         :: acc)
       src.Replica.log [])

(* ------------------------------------------------------------------ *)
(* Digest-tree descent                                                 *)
(* ------------------------------------------------------------------ *)

(** Result of a digest-tree comparison between two replicas: the keys
    whose rendered observable state differs, plus how many tree nodes
    the descent actually examined (1 root + one node per shard digest
    compared + one per key hash compared in a divergent shard) — the
    scale experiment's evidence that divergence localization costs
    O(divergent keys), not O(total state). *)
type descent = { divergent : string list; nodes_visited : int }

(** Merkle-style descent over the per-shard digest tree of two replicas
    (which must have the same shard and sub-bucket counts): compare the
    root digests first; if they agree the replicas' observable states
    agree and nothing else is touched.  Otherwise compare the per-shard
    rolling digests; inside each shard that disagrees, compare the
    per-sub-bucket digests (the tree's third level); and only for the
    buckets that disagree, the per-key line hashes — keys present on one
    side only, or hashing differently, are the divergent set (sorted).
    The third level is what keeps the descent sublinear when divergence
    reaches every shard (divergent keys ≈ shard count): each divergent
    shard then scans only its divergent buckets' cells, not the whole
    shard.  Both replicas' dirty keys are re-rendered on the way, so the
    comparison always reflects current state. *)
let divergent_keys ~(a : Replica.t) ~(b : Replica.t) : descent =
  let na = Replica.shard_count a and nb = Replica.shard_count b in
  if na <> nb then
    invalid_arg "Sync.divergent_keys: shard counts differ";
  let subs = Replica.sub_count a in
  if subs <> Replica.sub_count b then
    invalid_arg "Sync.divergent_keys: sub-bucket counts differ";
  let visited = ref 1 in
  if Replica.digest_equal a b then { divergent = []; nodes_visited = !visited }
  else begin
    let divergent = ref [] in
    let div_sub = Array.make subs false in
    for i = 0 to na - 1 do
      incr visited;
      let (ea, _, _) as da = Replica.shard_digest a i
      and (eb, _, _) as db = Replica.shard_digest b i in
      if da <> db then begin
        (* third level: per-sub-bucket digests (shard_digest refreshed
           both sides already) — engaged only when the shard holds
           enough entries to amortize the [subs] bucket comparisons;
           a small shard goes straight to its leaves, as before *)
        let use_subs = ea + eb > 2 * subs in
        let any = ref (not use_subs) in
        if use_subs then
          for sb = 0 to subs - 1 do
            incr visited;
            let d = Replica.sub_digest a i sb <> Replica.sub_digest b i sb in
            div_sub.(sb) <- d;
            if d then any := true
          done;
        if !any then begin
          (* leaf level: compare per-key line hashes, but only of cells
             routed to a divergent bucket *)
          let sa = a.Replica.shards.(i) and sb_ = b.Replica.shards.(i) in
          let contributing (c : Replica.cell) = c.Replica.c_h <> 0 in
          let in_div kid =
            (not use_subs) || div_sub.(Replica.sub_of_id subs kid)
          in
          Hashtbl.iter
            (fun kid (ca : Replica.cell) ->
              if contributing ca && in_div kid then begin
                incr visited;
                match Hashtbl.find_opt sb_.Replica.sh_data kid with
                | Some cb when cb.Replica.c_h = ca.Replica.c_h -> ()
                | _ -> divergent := Ipa_crdt.Intern.name kid :: !divergent
              end)
            sa.Replica.sh_data;
          Hashtbl.iter
            (fun kid (cb : Replica.cell) ->
              if contributing cb && in_div kid then
                match Hashtbl.find_opt sa.Replica.sh_data kid with
                | Some ca when contributing ca -> ()  (* already compared *)
                | _ ->
                    incr visited;
                    divergent := Ipa_crdt.Intern.name kid :: !divergent)
            sb_.Replica.sh_data
        end
      end
    done;
    {
      divergent = List.sort_uniq String.compare !divergent;
      nodes_visited = !visited;
    }
  end

(* ------------------------------------------------------------------ *)
(* State repair strategies                                             *)
(* ------------------------------------------------------------------ *)

(** How a repair ships the state a lagging peer is missing:
    retransmit the raw logged batches; render and ship the full current
    state of every divergent key; or collapse the missed log interval
    into Lamport-stamped delta groups ({!Replica.delta_group}). *)
type repair_mode = Batches | Full_state | Deltas

type repair_stats = {
  r_bytes : int;  (** bytes shipped over the (modelled) wire *)
  r_units : int;  (** batches / keys / groups shipped *)
  r_accepted : int;  (** units the destination accepted *)
}

(** Serialized size of a value — the simulator's wire model.  [Closures]
    because rem-wins and wildcard ops carry selector closures; the
    encoding is the in-process one, but relative sizes (full state vs
    batches vs delta groups) are what the durability experiment
    measures. *)
let wire_bytes (v : 'a) : int =
  String.length (Marshal.to_string v [ Marshal.Closures ])

(* full-state repair: join src's rendered state of every divergent key
   into dst, then adopt src's delivery knowledge wholesale (clock,
   per-origin cursors, peer clocks).  The adoption is what keeps later
   batch deliveries exactly-once: every effect included in src's states
   is now below dst's cursors.  Sound only when the divergent keys are
   all mergeable (set/counter CRDTs) — the durability experiment's
   baseline strategy *)
let repair_full_state ~(src : Replica.t) ~(dst : Replica.t) : repair_stats =
  let d = divergent_keys ~a:src ~b:dst in
  let bytes = ref 0 and units = ref 0 and accepted = ref 0 in
  List.iter
    (fun key ->
      match Replica.peek src key with
      | None -> ()  (* dst-only key: nothing to ship, join cannot erase *)
      | Some o -> (
          match Obj.as_delta o with
          | None ->
              raise
                (Obj.Type_mismatch
                   "Sync.repair: full-state repair of a non-mergeable object")
          | Some frag ->
              incr units;
              bytes := !bytes + wire_bytes (key, frag);
              Replica.join_delta_key dst key frag;
              incr accepted))
    d.divergent;
  dst.Replica.vv <- Ipa_crdt.Vclock.merge dst.Replica.vv src.Replica.vv;
  Hashtbl.iter
    (fun origin seq ->
      let cur =
        Option.value ~default:0 (Hashtbl.find_opt dst.Replica.applied origin)
      in
      if origin <> dst.Replica.id && seq > cur then
        Hashtbl.replace dst.Replica.applied origin seq)
    src.Replica.applied;
  (* src's own commits are below src.vv too; advance dst's cursor *)
  (let cur =
     Option.value ~default:0
       (Hashtbl.find_opt dst.Replica.applied src.Replica.id)
   in
   if src.Replica.seq > cur then
     Hashtbl.replace dst.Replica.applied src.Replica.id src.Replica.seq);
  let learn peer vv =
    let prev =
      Option.value ~default:Ipa_crdt.Vclock.empty
        (Hashtbl.find_opt dst.Replica.peer_vvs peer)
    in
    Hashtbl.replace dst.Replica.peer_vvs peer (Ipa_crdt.Vclock.merge prev vv)
  in
  Hashtbl.iter learn src.Replica.peer_vvs;
  learn src.Replica.id src.Replica.vv;
  { r_bytes = !bytes; r_units = !units; r_accepted = !accepted }

(* delta repair: one group per origin the peer lags on, served from the
   per-peer interval buffer when the peer has not advanced *)
let repair_deltas (s : t) ~(src : Replica.t) ~(dst : Replica.t) :
    repair_stats =
  let bytes = ref 0 and units = ref 0 and accepted = ref 0 in
  let origins =
    List.sort String.compare
      (Hashtbl.fold (fun o _ acc -> o :: acc) src.Replica.log [])
  in
  List.iter
    (fun origin ->
      if origin <> dst.Replica.id then begin
        let known = Ipa_crdt.Vclock.get dst.Replica.vv origin in
        let bkey = (dst.Replica.id, origin) in
        let cached =
          match Hashtbl.find_opt s.delta_buf bkey with
          | Some (k, g)
            when k = known
                 && (match Hashtbl.find_opt src.Replica.log origin with
                    | Some ol -> g.Replica.g_to = ol.Replica.max_seq
                    | None -> false) ->
              s.delta_buf_hits <- s.delta_buf_hits + 1;
              Some g
          | _ -> None
        in
        let group =
          match cached with
          | Some g -> Some g
          | None ->
              let g = Replica.delta_group_of src ~origin ~known in
              Option.iter
                (fun g -> Hashtbl.replace s.delta_buf bkey (known, g))
                g;
              g
        in
        match group with
        | None -> ()
        | Some g ->
            incr units;
            bytes := !bytes + wire_bytes g;
            if Replica.apply_delta_group dst g then begin
              incr accepted;
              Hashtbl.remove s.delta_buf bkey  (* acknowledged *)
            end
      end)
    origins;
  { r_bytes = !bytes; r_units = !units; r_accepted = !accepted }

(** Repair [dst] from [src] directly (over the reliable control
    channel), shipping what the chosen {!repair_mode} dictates, and
    return the wire cost.  [Deltas] and [Batches] preserve exactly-once
    causal delivery for later batches; [Full_state] additionally adopts
    [src]'s delivery knowledge and requires every divergent key to be
    mergeable. *)
let repair (s : t) ~(mode : repair_mode) ~(src : Replica.t)
    ~(dst : Replica.t) : repair_stats =
  match mode with
  | Full_state -> repair_full_state ~src ~dst
  | Deltas -> repair_deltas s ~src ~dst
  | Batches ->
      let bytes = ref 0 and units = ref 0 and accepted = ref 0 in
      List.iter
        (fun (b : Replica.batch) ->
          incr units;
          bytes := !bytes + wire_bytes b;
          let before = dst.Replica.delivered in
          Replica.receive dst b;
          if dst.Replica.delivered > before then incr accepted)
        (missing_for ~src (digest_of dst));
      { r_bytes = !bytes; r_units = !units; r_accepted = !accepted }

(* is this (dst, batch) due for (re)transmission at [now]?  A batch seen
   missing for the first time gets a grace period of one base backoff —
   it is usually just in flight — and is only retransmitted if it is
   still missing afterwards; each retransmission doubles the backoff up
   to the cap *)
let due (s : t) ~(now : float) (dst : Replica.t) (b : Replica.batch) : bool =
  let key = (dst.Replica.id, b.Replica.b_origin, b.Replica.b_seq) in
  match Hashtbl.find_opt s.next_retry key with
  | None ->
      Hashtbl.replace s.next_retry key
        (now +. s.base_backoff_ms, s.base_backoff_ms);
      false
  | Some (at, _) when now < at -> false
  | Some (_, backoff) ->
      Hashtbl.replace s.next_retry key
        (now +. backoff, Float.min (2.0 *. backoff) s.max_backoff_ms);
      true

(** One anti-entropy round at time [now]: every replica compares every
    peer's digest against its own log and hands the batches the peer is
    missing (and whose backoff has elapsed) to [send] — the caller's
    faulty data path.  Returns the number of batches retransmitted. *)
let round (s : t) ~(now : float)
    ~(send : src:Replica.t -> dst:Replica.t -> Replica.batch -> unit) : int =
  s.rounds <- s.rounds + 1;
  (match s.on_round with Some f -> f ~now | None -> ());
  let n = ref 0 in
  List.iter
    (fun (dst : Replica.t) ->
      let d = digest_of dst in
      List.iter
        (fun (src : Replica.t) ->
          List.iter
            (fun (b : Replica.batch) ->
              if due s ~now dst b then begin
                incr n;
                send ~src ~dst b
              end)
            (missing_for ~src d))
        (Cluster.others s.cluster dst.Replica.id))
    s.cluster.Cluster.replicas;
  s.retransmitted <- s.retransmitted + !n;
  !n
