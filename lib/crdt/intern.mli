(** String interners for replica ids and hot object keys.

    Assigns dense small-int ids to strings so the hot replication path
    ({!Vclock} merges, per-key caches) can use array indexing instead of
    string-keyed map operations.  Ids are process-global, start at 0,
    and are never recycled.

    Two independent namespaces: the toplevel functions intern {e object
    keys}; {!Rep} interns {e replica ids} (the namespace {!Vclock}
    indexes by).  Keeping them separate bounds a vector clock's width by
    the replica population — interning a million keys never widens a
    clock.

    Domain-safe: lookups are lock-free reads of an immutable snapshot
    published through an [Atomic]; interning a {e new} string takes a
    process-wide mutex and publishes an extended copy.  Concurrent
    interning of the same string from several domains yields one id. *)

type id = int

(** Intern a key, assigning a fresh dense id on first sight. *)
val id : string -> id

(** The id of an already-interned key, without interning it. *)
val find : string -> id option

(** The key an id was assigned for (inverse of {!id}). *)
val name : id -> string

(** Number of distinct keys interned so far. *)
val count : unit -> int

(** The replica-id namespace.  {!Vclock} stores clocks as flat arrays
    indexed by these ids, so only replica ids may enter this table —
    its density is what keeps clocks small. *)
module Rep : sig
  (** Intern a replica id, assigning a fresh dense id on first sight. *)
  val id : string -> id

  (** The id of an already-interned replica id. *)
  val find : string -> id option

  (** The replica id an id was assigned for. *)
  val name : id -> string

  (** Number of distinct replica ids interned so far. *)
  val count : unit -> int
end
