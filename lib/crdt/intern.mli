(** Global string interner for replica ids and hot object keys.

    Assigns dense small-int ids to strings so the hot replication path
    ({!Vclock} merges, per-key caches) can use array indexing instead of
    string-keyed map operations.  Ids are process-global, start at 0,
    and are never recycled.

    Domain-safe: lookups are lock-free reads of an immutable snapshot
    published through an [Atomic]; interning a {e new} string takes a
    process-wide mutex and publishes an extended copy.  Concurrent
    interning of the same string from several domains yields one id. *)

type id = int

(** Intern a string, assigning a fresh dense id on first sight. *)
val id : string -> id

(** The id of an already-interned string, without interning it. *)
val find : string -> id option

(** The string an id was assigned for (inverse of {!id}). *)
val name : id -> string

(** Number of distinct strings interned so far. *)
val count : unit -> int
