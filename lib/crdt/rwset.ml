(** Op-based remove-wins set with wildcard removes (paper §4.2.1).

    Dual of {!Awset}: when an add and a remove of the same element are
    concurrent, the remove wins.  An add is visible only if every remove
    of the element happened strictly before it (the add's source had
    observed the remove).  Wildcard removes install a {e barrier} that
    also cancels adds the source had not observed — including adds
    performed concurrently at other replicas — which is exactly the
    semantics needed for [enrolled( *, t) := false] (Figure 2c).

    Metadata (remove barriers) grows with removes; {!gc} prunes it with
    causal-stability information (SwiftCloud's mechanism): once a remove
    barrier is stable — included in every replica's state — no
    concurrent add can still arrive, so the barrier and the adds it
    masks can be discarded without changing any observable state. *)

module EM = Map.Make (String)

type add_rec = { adot : Vclock.dot; avv : Vclock.t }

type entry = {
  adds : add_rec list;
  removes : Vclock.t list;  (** per-element remove barriers *)
  pl : (Vclock.dot * string) option;
}

type selector = All | Matching of (string -> bool)

type t = {
  entries : entry EM.t;
  wild : (selector * Vclock.t) list;  (** wildcard remove barriers *)
}

type op =
  | Add of { elt : string; dot : Vclock.dot; vv : Vclock.t; payload : string option }
  | Remove of { elt : string; vv : Vclock.t }
  | Remove_where of { sel : selector; vv : Vclock.t }

let empty : t = { entries = EM.empty; wild = [] }

let entry_of (s : t) e =
  match EM.find_opt e s.entries with
  | Some en -> en
  | None -> { adds = []; removes = []; pl = None }

let matches sel e = match sel with All -> true | Matching f -> f e

(* an add survives iff every remove barrier affecting the element
   happened-before the add *)
let visible (s : t) (e : string) (a : add_rec) : bool =
  let en = entry_of s e in
  List.for_all (fun rvv -> Vclock.leq rvv a.avv) en.removes
  && List.for_all
       (fun (sel, rvv) -> (not (matches sel e)) || Vclock.leq rvv a.avv)
       s.wild

let mem (e : string) (s : t) : bool =
  List.exists (visible s e) (entry_of s e).adds

let payload (e : string) (s : t) : string option =
  if mem e s then
    match (entry_of s e).pl with Some (_, p) -> Some p | None -> None
  else None

let elements (s : t) : string list =
  EM.fold
    (fun e _ acc -> if mem e s then e :: acc else acc)
    s.entries []
  |> List.sort String.compare

let size (s : t) : int = List.length (elements s)

(* ------------------------------------------------------------------ *)
(* Prepare                                                             *)
(* ------------------------------------------------------------------ *)

(** [vv] must be the source replica's clock {e including} this event. *)
let prepare_add ?payload (_ : t) ~(dot : Vclock.dot) ~(vv : Vclock.t)
    (e : string) : op =
  Add { elt = e; dot; vv; payload }

let prepare_remove (_ : t) ~(vv : Vclock.t) (e : string) : op =
  Remove { elt = e; vv }

let prepare_remove_where (_ : t) ~(vv : Vclock.t) (sel : selector) : op =
  Remove_where { sel; vv }

(* ------------------------------------------------------------------ *)
(* Effect                                                              *)
(* ------------------------------------------------------------------ *)

let merge_payload a b =
  match (a, b) with
  | None, p | p, None -> p
  | Some (da, _), Some (db, _) -> if Vclock.dot_compare da db >= 0 then a else b

let apply (s : t) (o : op) : t =
  match o with
  | Add { elt; dot; vv; payload = p } ->
      let en = entry_of s elt in
      let pl =
        match p with
        | Some v -> merge_payload en.pl (Some (dot, v))
        | None -> en.pl
      in
      {
        s with
        entries =
          EM.add elt
            { en with adds = { adot = dot; avv = vv } :: en.adds; pl }
            s.entries;
      }
  | Remove { elt; vv } ->
      let en = entry_of s elt in
      {
        s with
        entries = EM.add elt { en with removes = vv :: en.removes } s.entries;
      }
  | Remove_where { sel; vv } -> { s with wild = (sel, vv) :: s.wild }

(* ------------------------------------------------------------------ *)
(* Delta-state view                                                    *)
(* ------------------------------------------------------------------ *)

(* The state already carries full causal metadata (per-add source
   clocks, explicit barriers), so the join is a deduplicating union.
   Selectors are closures: dedup is by physical equality, which holds
   in-process because the simulator delivers the same op value to every
   replica; a missed duplicate is harmless (visibility is a for_all over
   barriers). *)

let merge_entry (ea : entry) (eb : entry) : entry =
  let adds =
    List.fold_left
      (fun acc a ->
        if List.exists (fun x -> Vclock.dot_compare x.adot a.adot = 0) acc
        then acc
        else a :: acc)
      ea.adds eb.adds
  in
  let removes =
    List.fold_left
      (fun acc vv ->
        if List.exists (Vclock.equal vv) acc then acc else vv :: acc)
      ea.removes eb.removes
  in
  { adds; removes; pl = merge_payload ea.pl eb.pl }

(** Join two states — commutative, associative, idempotent (up to
    barrier duplicates, which do not affect visibility). *)
let merge (a : t) (b : t) : t =
  let entries =
    EM.union (fun _ ea eb -> Some (merge_entry ea eb)) a.entries b.entries
  in
  let wild =
    List.fold_left
      (fun acc (sel, vv) ->
        if
          List.exists
            (fun (sel', vv') -> sel' == sel && Vclock.equal vv vv')
            acc
        then acc
        else (sel, vv) :: acc)
      a.wild b.wild
  in
  { entries; wild }

(** The state fragment carrying exactly one op's effect:
    [apply s o = merge s (delta_of_op o)] for any [s] that has not yet
    observed the op. *)
let delta_of_op (o : op) : t =
  match o with
  | Add { elt; dot; vv; payload = p } ->
      let pl = match p with Some v -> Some (dot, v) | None -> None in
      {
        entries =
          EM.singleton elt
            { adds = [ { adot = dot; avv = vv } ]; removes = []; pl };
        wild = [];
      }
  | Remove { elt; vv } ->
      {
        entries = EM.singleton elt { adds = []; removes = [ vv ]; pl = None };
        wild = [];
      }
  | Remove_where { sel; vv } -> { entries = EM.empty; wild = [ (sel, vv) ] }

let pp ppf (s : t) =
  Fmt.pf ppf "{%a}" Fmt.(list ~sep:(any "; ") string) (elements s)

(* ------------------------------------------------------------------ *)
(* Stability-based garbage collection                                  *)
(* ------------------------------------------------------------------ *)

(** Number of metadata records held (add records + remove barriers). *)
let metadata_size (s : t) : int =
  EM.fold
    (fun _ en acc -> acc + List.length en.adds + List.length en.removes)
    s.entries (List.length s.wild)

(** [gc ~stable s] discards remove barriers that are causally stable
    (every replica has seen them) together with the add records they
    permanently mask.  Safe because any add not yet delivered anywhere
    must be causally after a stable barrier, hence unaffected by it;
    visibility of every element is unchanged. *)
let gc ~(stable : Vclock.t) (s : t) : t =
  let stable_barrier vv = Vclock.leq vv stable in
  (* wild barriers that remain *)
  let wild_live, wild_stable =
    List.partition (fun (_, vv) -> not (stable_barrier vv)) s.wild
  in
  let entries =
    EM.filter_map
      (fun e en ->
        let removes_live, removes_stable =
          List.partition (fun vv -> not (stable_barrier vv)) en.removes
        in
        (* an add masked by a stable barrier is permanently invisible *)
        let masked a =
          List.exists (fun vv -> not (Vclock.leq vv a.avv)) removes_stable
          || List.exists
               (fun (sel, vv) ->
                 matches sel e && not (Vclock.leq vv a.avv))
               wild_stable
        in
        let adds = List.filter (fun a -> not (masked a)) en.adds in
        if adds = [] && removes_live = [] && en.pl = None then None
        else Some { en with adds; removes = removes_live })
      s.entries
  in
  { entries; wild = wild_live }
