(** Op-based PN-counter: concurrent increments and decrements commute.

    The downstream effect carries the origin replica and the delta; state
    tracks per-replica positive and negative totals so the value is
    well-defined under any causal delivery order.

    The per-replica totals live in small parallel arrays scanned
    linearly: real deployments have a handful of replicas, and for that
    size an array scan plus one small copy per applied effect is several
    times cheaper than rebuilding a balanced-map path (the apply path
    runs once per update per replica, so this is the store's hottest
    allocation site).  Entry order is arrival order; no observable
    depends on it ([value], [quick_value] and [pp] are order-free). *)

type t = {
  reps : string array;  (** replica ids, in first-seen order *)
  pos : int array;  (** positive total per replica (parallel to [reps]) *)
  neg : int array;  (** negative total per replica (parallel to [reps]) *)
  total : int;
      (** maintained [Σpos − Σneg] aggregate: every applied delta is
          commutative, so converged replicas agree on it exactly as they
          do on the per-replica totals.  Read through {!quick_value};
          the reference {!value} keeps folding the arrays so the two
          stay independent *)
}

type op = Delta of { rep : string; d : int }

let empty : t = { reps = [||]; pos = [||]; neg = [||]; total = 0 }

let value (c : t) : int =
  Array.fold_left ( + ) 0 c.pos - Array.fold_left ( + ) 0 c.neg

(** The maintained aggregate — always equal to {!value}, in O(1) instead
    of a fold.  Hot digest paths use this; reference renderings keep
    calling {!value}. *)
let quick_value (c : t) : int = c.total

let prepare (_ : t) ~(rep : string) (d : int) : op = Delta { rep; d }

(* index of [rep]'s entry, or -1 *)
let find (c : t) (rep : string) : int =
  let n = Array.length c.reps in
  let rec go i =
    if i = n then -1 else if String.equal c.reps.(i) rep then i else go (i + 1)
  in
  go 0

(* copy [a] with slot [i] bumped by [d] *)
let bump (a : int array) (i : int) (d : int) : int array =
  let a' = Array.copy a in
  a'.(i) <- a'.(i) + d;
  a'

(* append one entry to every parallel array *)
let extend (c : t) (rep : string) ~(pos : int) ~(neg : int) : t =
  {
    c with
    reps = Array.append c.reps [| rep |];
    pos = Array.append c.pos [| pos |];
    neg = Array.append c.neg [| neg |];
  }

let apply (c : t) (Delta { rep; d } : op) : t =
  let i = find c rep in
  let total = c.total + d in
  if i >= 0 then
    if d >= 0 then { c with pos = bump c.pos i d; total }
    else { c with neg = bump c.neg i (-d); total }
  else if d >= 0 then { (extend c rep ~pos:d ~neg:0) with total }
  else { (extend c rep ~pos:0 ~neg:(-d)) with total }

let pp ppf c = Fmt.int ppf (value c)
