(** Op-based PN-counter: concurrent increments and decrements commute.

    The downstream effect carries the origin replica and the delta; state
    tracks per-replica positive and negative totals so the value is
    well-defined under any causal delivery order.

    The per-replica totals live in small parallel arrays scanned
    linearly: real deployments have a handful of replicas, and for that
    size an array scan plus one small copy per applied effect is several
    times cheaper than rebuilding a balanced-map path (the apply path
    runs once per update per replica, so this is the store's hottest
    allocation site).  Entry order is arrival order; no observable
    depends on it ([value], [quick_value] and [pp] are order-free). *)

type t = {
  reps : string array;  (** replica ids, in first-seen order *)
  pos : int array;  (** positive total per replica (parallel to [reps]) *)
  neg : int array;  (** negative total per replica (parallel to [reps]) *)
  total : int;
      (** maintained [Σpos − Σneg] aggregate: every applied delta is
          commutative, so converged replicas agree on it exactly as they
          do on the per-replica totals.  Read through {!quick_value};
          the reference {!value} keeps folding the arrays so the two
          stay independent *)
}

type op = Delta of { rep : string; d : int }

let empty : t = { reps = [||]; pos = [||]; neg = [||]; total = 0 }

let value (c : t) : int =
  Array.fold_left ( + ) 0 c.pos - Array.fold_left ( + ) 0 c.neg

(** The maintained aggregate — always equal to {!value}, in O(1) instead
    of a fold.  Hot digest paths use this; reference renderings keep
    calling {!value}. *)
let quick_value (c : t) : int = c.total

let prepare (_ : t) ~(rep : string) (d : int) : op = Delta { rep; d }
let op_rep (Delta { rep; _ } : op) : string = rep
let op_delta (Delta { d; _ } : op) : int = d

(* index of [rep]'s entry, or -1 *)
let find (c : t) (rep : string) : int =
  let n = Array.length c.reps in
  let rec go i =
    if i = n then -1 else if String.equal c.reps.(i) rep then i else go (i + 1)
  in
  go 0

(* copy [a] with slot [i] bumped by [d] *)
let bump (a : int array) (i : int) (d : int) : int array =
  let a' = Array.copy a in
  a'.(i) <- a'.(i) + d;
  a'

(* append one entry to every parallel array *)
let extend (c : t) (rep : string) ~(pos : int) ~(neg : int) : t =
  {
    c with
    reps = Array.append c.reps [| rep |];
    pos = Array.append c.pos [| pos |];
    neg = Array.append c.neg [| neg |];
  }

let apply (c : t) (Delta { rep; d } : op) : t =
  let i = find c rep in
  let total = c.total + d in
  if i >= 0 then
    if d >= 0 then { c with pos = bump c.pos i d; total }
    else { c with neg = bump c.neg i (-d); total }
  else if d >= 0 then { (extend c rep ~pos:d ~neg:0) with total }
  else { (extend c rep ~pos:0 ~neg:(-d)) with total }

(* ------------------------------------------------------------------ *)
(* Delta-state view                                                    *)
(* ------------------------------------------------------------------ *)

(** Join two states by pointwise maximum of each replica's positive and
    negative totals.  Sound because each slot is written only by its
    owning replica and grows monotonically under FIFO application, so
    the larger total is always the later one.  Commutative, associative,
    idempotent. *)
let merge (a : t) (b : t) : t =
  let c = ref a in
  Array.iteri
    (fun j rep ->
      let i = find !c rep in
      if i >= 0 then begin
        let cur = !c in
        let pos = Array.copy cur.pos and neg = Array.copy cur.neg in
        pos.(i) <- max pos.(i) b.pos.(j);
        neg.(i) <- max neg.(i) b.neg.(j);
        c := { cur with pos; neg }
      end
      else c := extend !c rep ~pos:b.pos.(j) ~neg:b.neg.(j))
    b.reps;
  let r = !c in
  { r with total = Array.fold_left ( + ) 0 r.pos - Array.fold_left ( + ) 0 r.neg }

(** The delta-state fragment for one op: the {e post-apply} state
    restricted to the op's replica slot, so that max-join of the
    fragment reproduces the op's effect on any state that has applied
    the replica's earlier ops (FIFO).  [after] must be the state
    immediately after applying the op at its origin. *)
let delta_of_op ~(after : t) (Delta { rep; d = _ } : op) : t =
  let i = find after rep in
  if i < 0 then empty
  else
    {
      reps = [| rep |];
      pos = [| after.pos.(i) |];
      neg = [| after.neg.(i) |];
      total = after.pos.(i) - after.neg.(i);
    }

let pp ppf c = Fmt.int ppf (value c)
