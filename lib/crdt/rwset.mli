(** Op-based remove-wins set with wildcard removes (paper §4.2.1).

    Dual of {!Awset}: when an add and a remove of the same element are
    concurrent, the remove wins.  An add is visible only if every remove
    of the element happened strictly before it.  Wildcard removes
    install a barrier that also cancels adds the source had not
    observed — including concurrent adds at other replicas — the
    semantics of [enrolled( *, t) := false] (Figure 2c). *)

type t

type selector = All | Matching of (string -> bool)

(** Downstream effects (commute under causal delivery). *)
type op

val empty : t
val mem : string -> t -> bool
val payload : string -> t -> string option
val elements : t -> string list
val size : t -> int

(** {1 Prepare}

    [vv] must be the source replica's clock {e including} the prepared
    event (see {!Ipa_store.Txn.fresh_vv} for removes). *)

val prepare_add :
  ?payload:string -> t -> dot:Vclock.dot -> vv:Vclock.t -> string -> op

val prepare_remove : t -> vv:Vclock.t -> string -> op
val prepare_remove_where : t -> vv:Vclock.t -> selector -> op

(** {1 Effect} *)

val apply : t -> op -> t

(** {1 Delta-state view}

    The state already carries full causal metadata (per-add source
    clocks, explicit barriers), so the join is a deduplicating union. *)

(** Join two states — commutative, associative, idempotent (up to
    barrier duplicates, which do not affect visibility). *)
val merge : t -> t -> t

(** The state fragment carrying exactly one op's effect:
    [apply s o = merge s (delta_of_op o)] for any [s] that has not yet
    observed the op. *)
val delta_of_op : op -> t

(** {1 Maintenance} *)

(** Metadata records held (add records + remove barriers). *)
val metadata_size : t -> int

(** Discard causally-stable remove barriers and the adds they
    permanently mask; observable state is unchanged. *)
val gc : stable:Vclock.t -> t -> t

val pp : Format.formatter -> t -> unit
