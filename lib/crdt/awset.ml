(** Op-based add-wins set (observed-remove set) with payloads, the
    {e touch} operation, and wildcard removes (paper §4.2.1).

    Elements are strings (application-level keys); each element may carry
    a payload (the entity's associated information).  Under causal
    delivery the downstream effects commute, and concurrent add/remove of
    the same element resolves in favour of the add: a remove only cancels
    the add-dots its source had observed.

    [Touch] is an add that does {e not} set a payload: it makes the
    element a member again while preserving whatever information was
    associated with it — the restoring effect IPA attaches to modified
    operations.  Payloads are kept across removals and reclaimed by
    {!gc} once the removal is causally stable (the paper's SwiftCloud
    mechanism, §4.2.1). *)

module EM = Map.Make (String)
module DS = Vclock.DotSet

(* payload resolution: the payload written by the causally-greatest dot,
   with the dot order as a deterministic tiebreak for concurrent writes *)
type payload = (Vclock.dot * string) option

let merge_payload (a : payload) (b : payload) : payload =
  match (a, b) with
  | None, p | p, None -> p
  | Some (da, _), Some (db, _) ->
      if Vclock.dot_compare da db >= 0 then a else b

(* [cc] is the entry's causal context: every add-dot ever observed for
   the element, live or since removed.  It is what makes the state
   joinable (delta-state semantics): when merging two states, a dot that
   one side holds live but the other has in its context-without-dots was
   removed, not unseen — so the join drops it instead of resurrecting
   it. *)
type entry = { dots : DS.t; cc : DS.t; pl : payload }

type t = entry EM.t

(** Wildcard selectors for predicate-scoped removes
    ([enrolled( *, t) := false]). *)
type selector = All | Matching of (string -> bool)

type op =
  | Add of { elt : string; dot : Vclock.dot; payload : string option }
  | Touch of { elt : string; dot : Vclock.dot }
  | Remove of { elt : string; observed : DS.t }
  | Remove_where of { sel : selector; observed : (string * DS.t) list }
      (** wildcard remove: per-element observed dots at the source, plus
          the selector so it also cancels nothing it did not observe
          (add-wins) *)

let empty : t = EM.empty

let entry_of (s : t) e =
  match EM.find_opt e s with
  | Some en -> en
  | None -> { dots = DS.empty; cc = DS.empty; pl = None }

(** Membership: an element is in the set while it has live add-dots. *)
let mem (e : string) (s : t) : bool = not (DS.is_empty (entry_of s e).dots)

(** Current payload of a member element. *)
let payload (e : string) (s : t) : string option =
  let en = entry_of s e in
  if DS.is_empty en.dots then None
  else match en.pl with Some (_, p) -> Some p | None -> None

(** The payload remembered for [e] even if currently removed (touch
    semantics: information survives removal). *)
let saved_payload (e : string) (s : t) : string option =
  match (entry_of s e).pl with Some (_, p) -> Some p | None -> None

let elements (s : t) : string list =
  EM.fold (fun e en acc -> if DS.is_empty en.dots then acc else e :: acc) s []
  |> List.sort String.compare

let size (s : t) : int =
  EM.fold (fun _ en acc -> if DS.is_empty en.dots then acc else acc + 1) s 0

(* ------------------------------------------------------------------ *)
(* Prepare (at the source replica)                                     *)
(* ------------------------------------------------------------------ *)

let prepare_add ?payload (s : t) ~(dot : Vclock.dot) (e : string) : op =
  ignore s;
  Add { elt = e; dot; payload }

let prepare_touch (s : t) ~(dot : Vclock.dot) (e : string) : op =
  ignore s;
  Touch { elt = e; dot }

let prepare_remove (s : t) (e : string) : op =
  Remove { elt = e; observed = (entry_of s e).dots }

(** Prepare a wildcard remove: collects the observed dots of every
    currently-matching member. *)
let prepare_remove_where (s : t) (sel : selector) : op =
  let matches e =
    match sel with All -> true | Matching f -> f e
  in
  let observed =
    EM.fold
      (fun e en acc ->
        if (not (DS.is_empty en.dots)) && matches e then (e, en.dots) :: acc
        else acc)
      s []
  in
  Remove_where { sel; observed }

(* ------------------------------------------------------------------ *)
(* Effect (at every replica, causally delivered)                       *)
(* ------------------------------------------------------------------ *)

let apply (s : t) (o : op) : t =
  match o with
  | Add { elt; dot; payload = p } ->
      let en = entry_of s elt in
      let pl =
        match p with
        | Some v -> merge_payload en.pl (Some (dot, v))
        | None -> en.pl
      in
      EM.add elt { dots = DS.add dot en.dots; cc = DS.add dot en.cc; pl } s
  | Touch { elt; dot } ->
      let en = entry_of s elt in
      EM.add elt
        { en with dots = DS.add dot en.dots; cc = DS.add dot en.cc }
        s
  | Remove { elt; observed } ->
      let en = entry_of s elt in
      EM.add elt
        { en with dots = DS.diff en.dots observed; cc = DS.union en.cc observed }
        s
  | Remove_where { sel = _; observed } ->
      List.fold_left
        (fun s (elt, dots) ->
          let en = entry_of s elt in
          EM.add elt
            { en with dots = DS.diff en.dots dots; cc = DS.union en.cc dots }
            s)
        s observed

(* ------------------------------------------------------------------ *)
(* Delta-state view (optimized OR-set join, Bieniusa et al.)           *)
(* ------------------------------------------------------------------ *)

let merge_entry (a : entry) (b : entry) : entry =
  (* a dot survives iff it is live on every side that has heard of it *)
  let dots =
    DS.union
      (DS.inter a.dots b.dots)
      (DS.union (DS.diff a.dots b.cc) (DS.diff b.dots a.cc))
  in
  { dots; cc = DS.union a.cc b.cc; pl = merge_payload a.pl b.pl }

(** Join two states (or a state and a delta fragment — fragments are
    just small states).  Commutative, associative, idempotent.  Assumes
    neither side has {!gc}'d an entry the other still holds live, which
    the store's causal-stability cut guarantees. *)
let merge (a : t) (b : t) : t =
  EM.union (fun _ ea eb -> Some (merge_entry ea eb)) a b

(** The state fragment (delta) carrying exactly one op's effect:
    [apply s o = merge s (delta_of_op o)] for any [s] that has not yet
    observed the op (exactly-once, causal delivery). *)
let delta_of_op (o : op) : t =
  match o with
  | Add { elt; dot; payload = p } ->
      let pl = match p with Some v -> Some (dot, v) | None -> None in
      EM.singleton elt
        { dots = DS.singleton dot; cc = DS.singleton dot; pl }
  | Touch { elt; dot } ->
      EM.singleton elt
        { dots = DS.singleton dot; cc = DS.singleton dot; pl = None }
  | Remove { elt; observed } ->
      EM.singleton elt { dots = DS.empty; cc = observed; pl = None }
  | Remove_where { sel = _; observed } ->
      List.fold_left
        (fun s (elt, dots) ->
          EM.add elt { dots = DS.empty; cc = dots; pl = None } s)
        EM.empty observed

let pp ppf (s : t) =
  Fmt.pf ppf "{%a}" Fmt.(list ~sep:(any "; ") string) (elements s)

(* ------------------------------------------------------------------ *)
(* Stability-based garbage collection                                  *)
(* ------------------------------------------------------------------ *)

(** Number of entries held, including removed-but-remembered ones. *)
let metadata_size (s : t) : int = EM.cardinal s

(** [gc ~stable s] forgets removed entries whose payload write is
    causally stable (paper §4.2.1: removed elements are kept for the
    touch operation and garbage-collected with stability information).
    Once the removal is stable, no concurrent touch that would need the
    payload can still be in flight. *)
let gc ~(stable : Vclock.t) (s : t) : t =
  EM.filter
    (fun _ en ->
      not
        (DS.is_empty en.dots
        &&
        match en.pl with
        | Some (d, _) -> Vclock.contains stable d
        | None -> true))
    s
