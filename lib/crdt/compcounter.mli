(** Compensation counter (paper §3.4 — the Ticket application): a
    PN-counter with a lower bound, repaired by a correction
    max-register.

    Concurrent decrements can drive the raw value below the bound
    (overselling); a {!read} that observes this publishes the correction
    restoring it (cancel-and-reimburse / restock).  The correction is a
    grow-only max-register — commutative, idempotent and monotonic,
    exactly the properties §3.4 requires of compensations. *)

type t
type op

val create : ?min_value:int -> unit -> t
val apply : t -> op -> t

(** The lower bound of the op's source object — carried in every op so a
    replica receiving the effect before any local access creates the
    object with the real bound (not a sentinel). *)
val op_bound : op -> int

(** Observable value: raw counter plus published corrections. *)
val value : t -> int

(** Alias of {!value} (negative means a violation is pending repair). *)
val raw_value : t -> int

(** Always equal to {!raw_value}, in O(1) (maintained aggregate). *)
val quick_raw_value : t -> int

val violated : t -> bool

(** Units already compensated. *)
val compensated : t -> int

(** Consistent read: the repaired value, the compensation ops to
    commit, and the number of new violation units repaired. *)
val read : t -> rep:string -> int * op list * int

val prepare_delta : t -> rep:string -> int -> op
val pp : Format.formatter -> t -> unit
