(** Vector clocks and dots.

    The replicated store tags every update batch with the origin's vector
    clock; CRDT conflict resolution (add-wins / rem-wins) compares these
    to decide causality between concurrent operations.

    Representation: a clock is a flat int array indexed by the replica's
    {!Intern.Rep} id — [merge], [leq] and [get] (executed on every
    commit, delivery and stability computation) are short array walks
    instead of string-map operations.  The replica-id namespace is
    separate from the key namespace precisely so these arrays stay as
    short as the replica population: indexing by a shared namespace once
    let a late-interned replica id pad every clock to keyspace width.  Absent entries and entries beyond an array's
    physical length read as zero; trailing zeros are permitted, so two
    arrays of different length can denote the same clock (all comparisons
    account for this).  Arrays are never mutated after construction,
    which makes sharing between clocks safe — [merge] returns one of its
    arguments unchanged whenever it dominates the other.  The public API
    stays string-based; interning happens at the edges. *)

(** A vector clock: {!Intern.Rep} id → number of events observed. *)
type t = int array

(** A dot: one specific event of one replica. *)
type dot = { rep : string; cnt : int }

let empty : t = [||]

let get (vv : t) (rep : string) : int =
  match Intern.Rep.find rep with
  | None -> 0
  | Some i -> if i < Array.length vv then vv.(i) else 0

let set (vv : t) (rep : string) (n : int) : t =
  let i = Intern.Rep.id rep in
  let len = max (Array.length vv) (i + 1) in
  let a = Array.make len 0 in
  Array.blit vv 0 a 0 (Array.length vv);
  a.(i) <- n;
  a

(** Record the next event of [rep]; returns the new clock and the dot of
    the event. *)
let tick (vv : t) (rep : string) : t * dot =
  let n = get vv rep + 1 in
  (set vv rep n, { rep; cnt = n })

(** [leq a b] — every event in [a] is in [b] (a ≼ b). *)
let leq (a : t) (b : t) : bool =
  let la = Array.length a and lb = Array.length b in
  let rec go i =
    i >= la || (a.(i) <= (if i < lb then b.(i) else 0) && go (i + 1))
  in
  go 0

(** Pointwise maximum.  Returns a dominating argument unchanged (no
    allocation) — the common case when applying causally-ordered
    batches. *)
let merge (a : t) (b : t) : t =
  if leq a b then b
  else if leq b a then a
  else begin
    let la = Array.length a and lb = Array.length b in
    let r = Array.make (max la lb) 0 in
    for i = 0 to Array.length r - 1 do
      let x = if i < la then a.(i) else 0
      and y = if i < lb then b.(i) else 0 in
      r.(i) <- max x y
    done;
    r
  end

(** Pointwise minimum (entries absent in either side read as zero) —
    the causal-stability cut computation. *)
let min_pointwise (a : t) (b : t) : t =
  let l = min (Array.length a) (Array.length b) in
  if l = Array.length a && leq a b then a
  else if l = Array.length b && leq b a then b
  else Array.init l (fun i -> min a.(i) b.(i))

let equal (a : t) (b : t) : bool = leq a b && leq b a

(** Strict happened-before. *)
let lt (a : t) (b : t) : bool = leq a b && not (leq b a)

type ordering = Before | After | Equal | Concurrent

let compare_vv (a : t) (b : t) : ordering =
  match (leq a b, leq b a) with
  | true, true -> Equal
  | true, false -> Before
  | false, true -> After
  | false, false -> Concurrent

let concurrent (a : t) (b : t) : bool = compare_vv a b = Concurrent

(** Does the clock contain the dot? *)
let contains (vv : t) (d : dot) : bool = get vv d.rep >= d.cnt

(** Sum of all entries (event count) — used as a cheap progress metric. *)
let total (vv : t) : int = Array.fold_left ( + ) 0 vv

let to_list (vv : t) : (string * int) list =
  let l = ref [] in
  for i = Array.length vv - 1 downto 0 do
    if vv.(i) <> 0 then l := (Intern.Rep.name i, vv.(i)) :: !l
  done;
  List.sort (fun (a, _) (b, _) -> String.compare a b) !l

let of_list (l : (string * int) list) : t =
  List.fold_left (fun vv (r, n) -> set vv r n) empty l

let pp ppf (vv : t) =
  Fmt.pf ppf "{%a}"
    Fmt.(list ~sep:(any ", ") (pair ~sep:(any ":") string int))
    (to_list vv)

let pp_dot ppf (d : dot) = Fmt.pf ppf "%s#%d" d.rep d.cnt
let dot_compare (a : dot) (b : dot) = compare (a.rep, a.cnt) (b.rep, b.cnt)

module DotSet = Set.Make (struct
  type t = dot

  let compare = dot_compare
end)
