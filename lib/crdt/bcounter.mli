(** Bounded counter (escrow): never goes below zero without
    coordination, by pre-partitioning decrement {e rights} among
    replicas (O'Neil's escrow method, cited by the paper for numeric
    invariants).

    A decrement must be covered by locally-held rights; an exhausted
    replica needs a {!prepare_transfer} from a peer — the coordination
    path whose latency the Indigo configuration models.

    The dual {e headroom} ledger caps the counter from above: once
    headroom has been granted ({!prepare_grant}, seed-time), increments
    must be covered by locally-held headroom, decrements replenish it,
    and {!prepare_hmove} ships it between replicas.  A capped counter's
    {!interval} bounds the strongly-consistent value from both sides
    using only local state — the escrow interval behind the
    consistency-typed read API ({!Ipa_store.Read}). *)

type t

type op =
  | Inc of { rep : string; n : int }
  | Dec of { rep : string; n : int }
  | Transfer of { from_ : string; to_ : string; n : int }
  | Grant of { rep : string; n : int }
  | Hmove of { from_ : string; to_ : string; n : int }
  | Demand of { rep : string; n : int }
      (** advisory: [n] decrement attempts observed at [rep]; feeds the
          escrow planner's windowed demand estimates, never safety *)
  | Hdemand of { rep : string; n : int }
      (** advisory dual: increment attempts, drives headroom migration *)

exception Insufficient_rights of { rep : string; have : int; need : int }
exception Insufficient_headroom of { rep : string; have : int; need : int }

val empty : t

(** Global counter value. *)
val value : t -> int

(** Always equal to {!value}, in O(1) (maintained aggregate; transfers
    leave it unchanged). *)
val quick_value : t -> int

(** Decrement rights currently held by a replica. *)
val local_rights : t -> string -> int

(** Increment headroom currently held by a replica (capped counters). *)
val local_headroom : t -> string -> int

(** Cumulative decrement attempts published by a replica ({!Demand}
    ops) — the escrow planner's raw demand signal. *)
val local_demand : t -> string -> int

(** Cumulative increment attempts published by a replica ({!Hdemand}). *)
val local_hdemand : t -> string -> int

(** Has headroom ever been granted?  Capped counters check headroom on
    {!prepare_inc} and have a finite {!interval} upper bound. *)
val capped : t -> bool

(** Total headroom ever granted — the cap when {!capped}. *)
val granted : t -> int

(** The escrow interval at a replica's purely local view: the
    strongly-consistent value is ≥ [lo] always, and ≤ [hi] when the
    counter is capped ([hi = None] otherwise).  [lo] is the rights only
    this replica can spend; [hi] is the cap minus the headroom only
    this replica can consume. *)
type interval = { lo : int; hi : int option }

val interval : t -> rep:string -> interval

(** Raises {!Insufficient_headroom} when the counter is capped and the
    replica does not hold enough headroom; free when uncapped. *)
val prepare_inc : t -> rep:string -> int -> op

(** Raises {!Insufficient_rights} when the replica does not hold enough
    rights. *)
val prepare_dec : t -> rep:string -> int -> op

val prepare_transfer : t -> from_:string -> to_:string -> int -> op

(** Create increment headroom at a replica, capping the counter.  Seed
    grants before concurrent use: the {!interval} upper bound is only
    sound for observers that have applied every grant. *)
val prepare_grant : t -> rep:string -> int -> op

(** Raises {!Insufficient_headroom} when the source replica does not
    hold enough headroom. *)
val prepare_hmove : t -> from_:string -> to_:string -> int -> op

(** Publish decrement attempts observed at a replica.  Advisory — no
    guard, and applying the op changes no replica's rights, headroom or
    the value. *)
val prepare_demand : t -> rep:string -> int -> op

(** Advisory dual of {!prepare_demand} for increment attempts. *)
val prepare_hdemand : t -> rep:string -> int -> op

val apply : t -> op -> t

(** Every replica id mentioned by any ledger, sorted. *)
val replicas : t -> string list

(** [(replica, rights held)] over {!replicas} — the per-replica rights
    histogram surfaced by the escrow metrics. *)
val rights_histogram : t -> (string * int) list

(** Dual histogram: per-replica increment headroom. *)
val headroom_histogram : t -> (string * int) list

(** Conservation audit of a causally consistent view: maintained
    aggregates match their folds, Σ local_rights = value, and (capped)
    Σ local_headroom = granted − value with no ledger overdrawn and the
    value inside [0, granted].  [Some msg] describes the first broken
    identity. *)
val audit : t -> string option

val pp : Format.formatter -> t -> unit
