(** Bounded counter (escrow): never goes below zero without
    coordination, by pre-partitioning decrement {e rights} among
    replicas (O'Neil's escrow method, cited by the paper for numeric
    invariants).

    A decrement must be covered by locally-held rights; an exhausted
    replica needs a {!prepare_transfer} from a peer — the coordination
    path whose latency the Indigo configuration models. *)

type t

type op =
  | Inc of { rep : string; n : int }
  | Dec of { rep : string; n : int }
  | Transfer of { from_ : string; to_ : string; n : int }

exception Insufficient_rights of { rep : string; have : int; need : int }

val empty : t

(** Global counter value. *)
val value : t -> int

(** Always equal to {!value}, in O(1) (maintained aggregate; transfers
    leave it unchanged). *)
val quick_value : t -> int

(** Decrement rights currently held by a replica. *)
val local_rights : t -> string -> int

val prepare_inc : t -> rep:string -> int -> op

(** Raises {!Insufficient_rights} when the replica does not hold enough
    rights. *)
val prepare_dec : t -> rep:string -> int -> op

val prepare_transfer : t -> from_:string -> to_:string -> int -> op
val apply : t -> op -> t
val pp : Format.formatter -> t -> unit
