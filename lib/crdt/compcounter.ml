(** Compensation counter (paper §3.4, §5.1.2 — the Ticket application).

    A PN-counter with a lower bound, repaired by a {e correction
    max-register}.  Concurrent decrements can drive the raw value below
    the bound (overselling); a {e read} that observes the violation
    computes the correction that restores the bound (cancel the oversold
    tickets and reimburse, or restock in TPC-C/W) and publishes it.

    The correction is a grow-only max-register, which gives the
    compensation exactly the properties §3.4 requires:
    {e commutative} (max), {e idempotent} (two replicas repairing the
    same deficit publish the same correction; merging changes nothing),
    and {e monotonic} (corrections only grow).  The observable value is
    [raw + correction].

    [read] also reports how many new violation units it repaired, which
    the benchmark harness counts (the red dots of Figure 7). *)

type t = {
  base : Pncounter.t;
  correction : int;  (** max-register: total units compensated *)
  min_value : int;
}

(** Every op carries the source object's bound so a replica receiving
    the effect before any local access can create the object with the
    real bound instead of a sentinel (which would silently weaken the
    invariant until the first local read). *)
type op =
  | Delta of { d : Pncounter.op; bound : int }
  | Correct of { k : int; bound : int }
      (** absolute correction value; applied with [max] *)

let create ?(min_value = 0) () : t =
  { base = Pncounter.empty; correction = 0; min_value }

let apply (c : t) (o : op) : t =
  match o with
  | Delta { d; _ } -> { c with base = Pncounter.apply c.base d }
  | Correct { k; _ } -> { c with correction = max c.correction k }

(** The lower bound the op's source object was created with. *)
let op_bound : op -> int = function
  | Delta { bound; _ } | Correct { bound; _ } -> bound

(** The observable value: raw counter plus published corrections. *)
let value (c : t) : int = Pncounter.value c.base + c.correction

(** Raw value including corrections — kept for diagnostics; negative
    means the state is currently violated. *)
let raw_value (c : t) : int = value c

(** Always equal to {!raw_value}, in O(1) (reads the base counter's
    maintained aggregate instead of folding its maps). *)
let quick_raw_value (c : t) : int =
  Pncounter.quick_value c.base + c.correction

let violated (c : t) : bool = value c < c.min_value

(** Units already compensated. *)
let compensated (c : t) : int = c.correction

(** Consistent read: the repaired value, the compensation ops to commit,
    and the number of new violation units repaired by this read. *)
let read (c : t) ~(rep : string) : int * op list * int =
  ignore rep;
  let v = value c in
  if v >= c.min_value then (v, [], 0)
  else
    let deficit = c.min_value - v in
    ( c.min_value,
      [ Correct { k = c.correction + deficit; bound = c.min_value } ],
      deficit )

let prepare_delta (c : t) ~(rep : string) (d : int) : op =
  Delta { d = Pncounter.prepare c.base ~rep d; bound = c.min_value }

let pp ppf (c : t) =
  Fmt.pf ppf "%d (min %d, compensated %d)" (value c) c.min_value c.correction
