(** Compensation Set CRDT (paper §4.2.2).

    Wraps an add-wins set with a size bound.  The bound can be violated
    by concurrent additions (an aggregation constraint is not
    I-Confluent); instead of preventing this, every {e read} checks the
    constraint and, when violated, produces compensation operations that
    remove excess elements.  The victims are chosen deterministically
    (largest element first) so that replicas that observe the same
    violation independently pick the same victims and converge; removal
    of an already-removed element is a no-op, making the compensation
    idempotent.

    [read] returns the consistent view (never more than [max_size]
    elements) together with the compensation ops the caller must commit
    with its transaction — "the effects of the compensation are committed
    alongside the effects of the operation that accessed the set". *)

type t = { set : Awset.t; max_size : int }

(** Every op carries the source object's bound so a replica receiving
    the effect before any local access can create the object with the
    real bound instead of a sentinel (which would silently weaken the
    invariant until the first local read). *)
type op = Set_op of { o : Awset.op; bound : int }

let create ~(max_size : int) : t = { set = Awset.empty; max_size }

let apply (c : t) (Set_op { o; bound = _ } : op) : t =
  (* the local object's bound is authoritative; the carried bound only
     matters at remote-first creation (see Replica.apply_update) *)
  { c with set = Awset.apply c.set o }

(** The size bound the op's source object was created with. *)
let op_bound (Set_op { bound; _ } : op) : int = bound

let size (c : t) : int = Awset.size c.set
let mem e (c : t) : bool = Awset.mem e c.set

(** Raw elements, possibly over the bound (diagnostics only). *)
let raw_elements (c : t) : string list = Awset.elements c.set

(** The underlying add-wins set (diagnostics / invariant checkers). *)
let raw_set (c : t) : Awset.t = c.set

(** Whether the underlying state currently violates the bound — the
    signal counted as an "invariant violation" when no compensation runs
    (Figure 7's red dots for the Causal configuration). *)
let violated (c : t) : bool = size c > c.max_size

(** Consistent read: the visible elements (at most [max_size], smallest
    elements kept) and the compensation ops that repair any violation.
    The caller commits the ops in its transaction. *)
let read (c : t) : string list * op list =
  let elems = Awset.elements c.set in
  let n = List.length elems in
  if n <= c.max_size then (elems, [])
  else begin
    (* deterministic victims: the largest elements beyond the bound *)
    let sorted_desc = List.rev elems in
    let rec take k = function
      | [] -> []
      | x :: rest -> if k = 0 then [] else x :: take (k - 1) rest
    in
    let victims = take (n - c.max_size) sorted_desc in
    let comp_ops =
      List.map
        (fun v ->
          Set_op { o = Awset.prepare_remove c.set v; bound = c.max_size })
        victims
    in
    (List.filter (fun e -> not (List.mem e victims)) elems, comp_ops)
  end

(* prepare proxies *)
let prepare_add ?payload (c : t) ~dot e : op =
  Set_op { o = Awset.prepare_add ?payload c.set ~dot e; bound = c.max_size }

let prepare_touch (c : t) ~dot e : op =
  Set_op { o = Awset.prepare_touch c.set ~dot e; bound = c.max_size }

let prepare_remove (c : t) e : op =
  Set_op { o = Awset.prepare_remove c.set e; bound = c.max_size }

let pp ppf (c : t) =
  Fmt.pf ppf "%a (bound %d)" Awset.pp c.set c.max_size
