(** Global string interner for replica ids and hot object keys.

    The replication hot path compares and merges vector clocks on every
    commit, delivery and stability computation.  Interning the small,
    stable population of replica ids into dense small ints lets
    {!Vclock} store clocks as flat int arrays (index = interned id)
    instead of string maps, turning [merge]/[leq]/[get] into short array
    walks.  The store also interns hot object keys so per-key caches can
    be array-indexed.

    Ids are process-global and never recycled: an id, once assigned,
    always maps back to the same string.  The table only grows with the
    number of {e distinct} strings interned (replica ids and object
    keys), which is tiny compared to the event volume. *)

type id = int

type state = {
  ids : (string, int) Hashtbl.t;
  mutable names : string array;  (** id → string *)
  mutable count : int;
}

let st : state =
  { ids = Hashtbl.create 256; names = Array.make 64 ""; count = 0 }

(** Intern a string, assigning a fresh dense id on first sight. *)
let id (s : string) : id =
  match Hashtbl.find_opt st.ids s with
  | Some i -> i
  | None ->
      let i = st.count in
      if i = Array.length st.names then begin
        let bigger = Array.make (2 * i) "" in
        Array.blit st.names 0 bigger 0 i;
        st.names <- bigger
      end;
      st.names.(i) <- s;
      st.count <- i + 1;
      Hashtbl.replace st.ids s i;
      i

(** The id of an already-interned string, without interning it. *)
let find (s : string) : id option = Hashtbl.find_opt st.ids s

(** The string an id was assigned for.  Raises [Invalid_argument] for an
    id never returned by {!id}. *)
let name (i : id) : string =
  if i < 0 || i >= st.count then invalid_arg "Intern.name: unknown id"
  else st.names.(i)

(** Number of distinct strings interned so far. *)
let count () : int = st.count
