(** Global string interner for replica ids and hot object keys.

    The replication hot path compares and merges vector clocks on every
    commit, delivery and stability computation.  Interning the small,
    stable population of replica ids into dense small ints lets
    {!Vclock} store clocks as flat int arrays (index = interned id)
    instead of string maps, turning [merge]/[leq]/[get] into short array
    walks.  The store also interns hot object keys so per-key caches can
    be array-indexed.

    Ids are process-global and never recycled: an id, once assigned,
    always maps back to the same string.  The table only grows with the
    number of {e distinct} strings interned (replica ids and object
    keys), which is tiny compared to the event volume.

    {b Domain safety.}  The table is read on every clock operation but
    written only on first sight of a string, so it is published as an
    {e immutable snapshot} through an [Atomic]: lookups are lock-free
    reads of a table/array that is never mutated after publication.
    Writers take a mutex, re-check against the latest snapshot, and
    publish a copy extended with the new string — copy-on-intern costs
    O(distinct strings) per {e new} string, which the tiny population
    amortizes to noise, and concurrent interning of the same string from
    several domains converges on one id. *)

type id = int

type snapshot = {
  ids : (string, int) Hashtbl.t;  (** frozen after publication *)
  names : string array;  (** id → string; frozen after publication *)
  count : int;
}

let empty_snapshot : snapshot =
  { ids = Hashtbl.create 16; names = [||]; count = 0 }

let current : snapshot Atomic.t = Atomic.make empty_snapshot
let write_lock = Mutex.create ()

(** Intern a string, assigning a fresh dense id on first sight. *)
let id (s : string) : id =
  let snap = Atomic.get current in
  match Hashtbl.find_opt snap.ids s with
  | Some i -> i
  | None ->
      Mutex.lock write_lock;
      let result =
        (* re-check: another domain may have interned [s] while we were
           acquiring the lock *)
        let snap = Atomic.get current in
        match Hashtbl.find_opt snap.ids s with
        | Some i -> i
        | None ->
            let i = snap.count in
            let ids = Hashtbl.copy snap.ids in
            Hashtbl.replace ids s i;
            let grown = max 64 (2 * Array.length snap.names) in
            let cap = if i < Array.length snap.names then Array.length snap.names else grown in
            let names = Array.make cap "" in
            Array.blit snap.names 0 names 0 snap.count;
            names.(i) <- s;
            Atomic.set current { ids; names; count = i + 1 };
            i
      in
      Mutex.unlock write_lock;
      result

(** The id of an already-interned string, without interning it. *)
let find (s : string) : id option =
  Hashtbl.find_opt (Atomic.get current).ids s

(** The string an id was assigned for.  Raises [Invalid_argument] for an
    id never returned by {!id}. *)
let name (i : id) : string =
  let snap = Atomic.get current in
  if i < 0 || i >= snap.count then invalid_arg "Intern.name: unknown id"
  else snap.names.(i)

(** Number of distinct strings interned so far. *)
let count () : int = (Atomic.get current).count
