(** String interners for replica ids and hot object keys.

    The replication hot path compares and merges vector clocks on every
    commit, delivery and stability computation.  Interning strings into
    dense small ints lets {!Vclock} store clocks as flat int arrays
    (index = interned id) instead of string maps, turning [merge]/[leq]/
    [get] into short array walks.  The store also interns object keys so
    per-key caches, dirty sets and shard routing can work over dense
    ints.

    There are {e two independent namespaces}: the toplevel one for
    object keys, and {!Rep} for replica ids.  Vector clocks index by
    {!Rep} ids, so a clock's width is bounded by the number of distinct
    replica ids ever seen — never by the keyspace.  A single shared
    namespace once coupled the two: a replica id first interned after a
    million keys received id 1M+, padding every subsequent clock (and
    every commit's clock copy) to a million entries.

    Ids are process-global and never recycled: an id, once assigned,
    always maps back to the same string.

    {b Domain safety and cost.}  A table is read on every clock and
    store operation but written only on first sight of a string, so
    lookups go through an {e immutable snapshot} published via an
    [Atomic]: lock-free reads of a table/array that is never mutated
    after publication.  Writers take a mutex and extend a private master
    table; the snapshot is re-published only when the master has grown
    geometrically past it (or by an absolute cap), so interning [n]
    distinct strings costs O(n) {e total} copy work — a million-key
    store population interns in linear time.  A string interned since
    the last publication is still found, through the mutex, until the
    next snapshot catches up.  Concurrent interning of the same string
    from several domains converges on one id. *)

type id = int

module Make () : sig
  val id : string -> id
  val find : string -> id option
  val name : id -> string
  val count : unit -> int
end = struct
  type snapshot = {
    ids : (string, int) Hashtbl.t;  (* frozen after publication *)
    names : string array;  (* id → string; frozen after publication *)
    count : int;
  }

  let empty_snapshot : snapshot =
    { ids = Hashtbl.create 16; names = [||]; count = 0 }

  let current : snapshot Atomic.t = Atomic.make empty_snapshot
  let write_lock = Mutex.create ()

  (* the master copy, guarded by [write_lock] *)
  let master_ids : (string, int) Hashtbl.t = Hashtbl.create 256
  let master_names : string array ref = ref (Array.make 256 "")
  let master_count = ref 0

  (* publish a fresh immutable snapshot of the master (holding the
     lock); called when the published snapshot has lagged far enough
     behind that the copy cost is amortized to O(1) per interned
     string *)
  let publish_locked () : unit =
    Atomic.set current
      {
        ids = Hashtbl.copy master_ids;
        names = Array.sub !master_names 0 !master_count;
        count = !master_count;
      }

  (* lag 1 while small — a near-empty table (replica ids; a test's
     handful of keys) republishes on every intern, keeping even those
     reads lock-free — then geometric *)
  let lag_budget (published : int) : int =
    max 1 (min (published / 4) 65_536)

  let id (s : string) : id =
    let snap = Atomic.get current in
    match Hashtbl.find_opt snap.ids s with
    | Some i -> i
    | None ->
        Mutex.lock write_lock;
        let result =
          (* re-check: another domain may have interned [s] while we
             were acquiring the lock, or it may predate the last
             publication *)
          match Hashtbl.find_opt master_ids s with
          | Some i -> i
          | None ->
              let i = !master_count in
              Hashtbl.replace master_ids s i;
              if i >= Array.length !master_names then begin
                let grown = Array.make (2 * Array.length !master_names) "" in
                Array.blit !master_names 0 grown 0 i;
                master_names := grown
              end;
              !master_names.(i) <- s;
              master_count := i + 1;
              let published = (Atomic.get current).count in
              if !master_count - published >= lag_budget published then
                publish_locked ();
              i
        in
        Mutex.unlock write_lock;
        result

  let find (s : string) : id option =
    match Hashtbl.find_opt (Atomic.get current).ids s with
    | Some i -> Some i
    | None ->
        (* may have been interned since the last publication *)
        Mutex.lock write_lock;
        let r = Hashtbl.find_opt master_ids s in
        Mutex.unlock write_lock;
        r

  let name (i : id) : string =
    let snap = Atomic.get current in
    if i >= 0 && i < snap.count then snap.names.(i)
    else begin
      Mutex.lock write_lock;
      let r =
        if i >= 0 && i < !master_count then Some !master_names.(i) else None
      in
      Mutex.unlock write_lock;
      match r with
      | Some s -> s
      | None -> invalid_arg "Intern.name: unknown id"
    end

  let count () : int =
    Mutex.lock write_lock;
    let n = !master_count in
    Mutex.unlock write_lock;
    n
end

(* the object-key namespace *)
include Make ()

(* the replica-id namespace, indexed into by Vclock — separate so clock
   width tracks the replica population, never the keyspace *)
module Rep = Make ()
