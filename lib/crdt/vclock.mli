(** Vector clocks and dots.

    The replicated store tags every update batch with the origin's vector
    clock; CRDT conflict resolution (add-wins / rem-wins) compares these
    to decide causality between concurrent operations.

    Clocks are stored compactly as flat int arrays indexed by {!Intern}
    replica ids, so [merge]/[leq]/[get] — the per-commit, per-delivery
    hot path — are short array walks.  The API stays string-based. *)

(** A vector clock: replica id → number of events observed.  Absent
    entries read as zero. *)
type t

(** A dot: one specific event of one replica. *)
type dot = { rep : string; cnt : int }

val empty : t

(** Entry of a replica (0 when absent). *)
val get : t -> string -> int

(** Functional update of one entry. *)
val set : t -> string -> int -> t

(** Record the next event of a replica; returns the new clock and the
    dot of the event. *)
val tick : t -> string -> t * dot

(** Pointwise maximum (least upper bound).  Returns a dominating
    argument unchanged (no allocation). *)
val merge : t -> t -> t

(** Pointwise minimum (entries absent in either side read as zero) —
    the causal-stability cut computation. *)
val min_pointwise : t -> t -> t

(** [leq a b] — every event in [a] is in [b] (a ≼ b). *)
val leq : t -> t -> bool

val equal : t -> t -> bool

(** Strict happened-before. *)
val lt : t -> t -> bool

type ordering = Before | After | Equal | Concurrent

val compare_vv : t -> t -> ordering
val concurrent : t -> t -> bool

(** Does the clock contain the dot? *)
val contains : t -> dot -> bool

(** Sum of all entries (total event count). *)
val total : t -> int

val to_list : t -> (string * int) list
val of_list : (string * int) list -> t
val pp : Format.formatter -> t -> unit
val pp_dot : Format.formatter -> dot -> unit

(** Total order on dots (replica id, then counter). *)
val dot_compare : dot -> dot -> int

module DotSet : Set.S with type elt = dot
