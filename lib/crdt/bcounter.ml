(** Bounded counter (escrow): a counter that never goes below zero
    without coordination, by pre-partitioning decrement {e rights} among
    replicas (O'Neil's escrow method; used by Indigo-style reservations
    and cited by the paper for numeric invariants).

    Increments create rights at the incrementing replica.  A decrement
    must be covered by locally-held rights; when a replica runs out it
    must obtain a {!Transfer} from a peer — the coordination path whose
    latency the Indigo configuration models. *)

module M = Map.Make (String)

type t = {
  inc : int M.t;  (** increments (rights created) per replica *)
  dec : int M.t;  (** decrements per replica *)
  moved : int M.t M.t;  (** moved.(from).(to) = rights transferred *)
  total : int;
      (** maintained [inc − dec] aggregate (transfers don't change it);
          read through {!quick_value} — the reference {!value} keeps
          folding the maps *)
}

type op =
  | Inc of { rep : string; n : int }
  | Dec of { rep : string; n : int }
  | Transfer of { from_ : string; to_ : string; n : int }

exception Insufficient_rights of { rep : string; have : int; need : int }

let empty : t = { inc = M.empty; dec = M.empty; moved = M.empty; total = 0 }

let get m r = match M.find_opt r m with Some n -> n | None -> 0
let get2 mm a b = match M.find_opt a mm with Some m -> get m b | None -> 0

(** Global counter value. *)
let value (c : t) : int =
  M.fold (fun _ n acc -> acc + n) c.inc 0
  - M.fold (fun _ n acc -> acc + n) c.dec 0

(** Always equal to {!value}, in O(1) (maintained aggregate). *)
let quick_value (c : t) : int = c.total

(** Decrement rights currently held by [rep]. *)
let local_rights (c : t) (rep : string) : int =
  get c.inc rep - get c.dec rep
  + M.fold (fun from_ m acc -> ignore from_; acc + get m rep) c.moved 0
  - (match M.find_opt rep c.moved with
    | Some m -> M.fold (fun _ n acc -> acc + n) m 0
    | None -> 0)

(* ------------------------------------------------------------------ *)
(* Prepare                                                             *)
(* ------------------------------------------------------------------ *)

let prepare_inc (_ : t) ~(rep : string) (n : int) : op = Inc { rep; n }

(** Fails with {!Insufficient_rights} when [rep] does not hold [n]
    rights — the caller must transfer rights first (coordination). *)
let prepare_dec (c : t) ~(rep : string) (n : int) : op =
  let have = local_rights c rep in
  if have < n then raise (Insufficient_rights { rep; have; need = n });
  Dec { rep; n }

let prepare_transfer (c : t) ~(from_ : string) ~(to_ : string) (n : int) : op =
  let have = local_rights c from_ in
  if have < n then raise (Insufficient_rights { rep = from_; have; need = n });
  Transfer { from_; to_; n }

(* ------------------------------------------------------------------ *)
(* Effect                                                              *)
(* ------------------------------------------------------------------ *)

(* single tree walk per effect (update), not a find followed by an add *)
let bump (m : int M.t) (rep : string) (n : int) : int M.t =
  M.update rep (fun cur -> Some (Option.value ~default:0 cur + n)) m

let apply (c : t) (o : op) : t =
  match o with
  | Inc { rep; n } -> { c with inc = bump c.inc rep n; total = c.total + n }
  | Dec { rep; n } -> { c with dec = bump c.dec rep n; total = c.total - n }
  | Transfer { from_; to_; n } ->
      let row = Option.value ~default:M.empty (M.find_opt from_ c.moved) in
      {
        c with
        moved = M.add from_ (M.add to_ (get2 c.moved from_ to_ + n) row) c.moved;
      }

let pp ppf c = Fmt.pf ppf "%d" (value c)
