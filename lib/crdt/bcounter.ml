(** Bounded counter (escrow): a counter that never goes below zero
    without coordination, by pre-partitioning decrement {e rights} among
    replicas (O'Neil's escrow method; used by Indigo-style reservations
    and cited by the paper for numeric invariants).

    Increments create rights at the incrementing replica.  A decrement
    must be covered by locally-held rights; when a replica runs out it
    must obtain a {!Transfer} from a peer — the coordination path whose
    latency the Indigo configuration models.

    {b Headroom (upper-side escrow).}  A counter becomes {e capped} when
    increment {e headroom} is granted ({!Grant}); from then on an
    increment must be covered by locally-held headroom, decrements
    replenish headroom at the decrementing replica, and {!Hmove} ships
    headroom between replicas — the exact dual of the rights ledger.
    Capping is what makes {!interval} finite on both sides: with every
    unseen increment covered by peer headroom and every unseen decrement
    covered by peer rights, a replica's purely local view bounds the
    strongly-consistent value from both directions (the derivation is in
    DESIGN.md "Consistency-typed reads").  Grants must be seeded before
    concurrent use (a replica that has not yet applied a grant still
    admits unchecked increments); an ungranted counter behaves exactly
    as before — increments are free and {!interval} has no upper
    bound. *)

module M = Map.Make (String)

type t = {
  inc : int M.t;  (** increments (rights created) per replica *)
  dec : int M.t;  (** decrements per replica *)
  moved : int M.t M.t;  (** moved.(from).(to) = rights transferred *)
  total : int;
      (** maintained [inc − dec] aggregate (transfers don't change it);
          read through {!quick_value} — the reference {!value} keeps
          folding the maps *)
  grant : int M.t;  (** increment headroom granted per replica *)
  hmoved : int M.t M.t;  (** hmoved.(from).(to) = headroom shipped *)
  granted : int;
      (** maintained Σ grants; [> 0] means the counter is capped (the
          cap is exactly [granted]: value = Σinc − Σdec and global
          headroom = granted − value ≥ 0 force value ≤ granted) *)
  demand : int M.t;
      (** advisory demand ledger: cumulative decrement {e attempts}
          (covered or not) observed per replica, published as {!Demand}
          ops riding ordinary batches.  Feeds the escrow planner's
          windowed estimates ({!Ipa_runtime.Escrow}); never consulted by
          any prepare guard, so it cannot affect safety *)
  hdemand : int M.t;
      (** dual advisory ledger: cumulative increment attempts per
          replica, driving headroom migration on capped counters *)
}

type op =
  | Inc of { rep : string; n : int }
  | Dec of { rep : string; n : int }
  | Transfer of { from_ : string; to_ : string; n : int }
  | Grant of { rep : string; n : int }
      (** create [n] increment headroom at [rep] (seed-time only) *)
  | Hmove of { from_ : string; to_ : string; n : int }
      (** ship increment headroom between replicas *)
  | Demand of { rep : string; n : int }
      (** publish [n] decrement attempts observed at [rep] (advisory;
          drives demand-aware rights migration, never safety) *)
  | Hdemand of { rep : string; n : int }
      (** publish [n] increment attempts observed at [rep] (advisory
          dual, drives headroom migration on capped counters) *)

exception Insufficient_rights of { rep : string; have : int; need : int }
exception Insufficient_headroom of { rep : string; have : int; need : int }

let empty : t =
  {
    inc = M.empty;
    dec = M.empty;
    moved = M.empty;
    total = 0;
    grant = M.empty;
    hmoved = M.empty;
    granted = 0;
    demand = M.empty;
    hdemand = M.empty;
  }

let get m r = match M.find_opt r m with Some n -> n | None -> 0
let get2 mm a b = match M.find_opt a mm with Some m -> get m b | None -> 0

(** Global counter value. *)
let value (c : t) : int =
  M.fold (fun _ n acc -> acc + n) c.inc 0
  - M.fold (fun _ n acc -> acc + n) c.dec 0

(** Always equal to {!value}, in O(1) (maintained aggregate). *)
let quick_value (c : t) : int = c.total

(* rights/headroom shipped into minus out of [rep] through a transfer map *)
let net_moved (mm : int M.t M.t) (rep : string) : int =
  M.fold (fun from_ m acc -> ignore from_; acc + get m rep) mm 0
  - (match M.find_opt rep mm with
    | Some m -> M.fold (fun _ n acc -> acc + n) m 0
    | None -> 0)

(** Decrement rights currently held by [rep]. *)
let local_rights (c : t) (rep : string) : int =
  get c.inc rep - get c.dec rep + net_moved c.moved rep

(** Increment headroom currently held by [rep]: grants plus the
    headroom its own decrements released, minus what its increments
    consumed, adjusted by {!Hmove} traffic.  Meaningless (and unused)
    while the counter is uncapped. *)
let local_headroom (c : t) (rep : string) : int =
  get c.grant rep + get c.dec rep - get c.inc rep + net_moved c.hmoved rep

(** Cumulative decrement attempts published by [rep] ({!Demand} ops) —
    the planner's raw demand signal. *)
let local_demand (c : t) (rep : string) : int = get c.demand rep

(** Cumulative increment attempts published by [rep] ({!Hdemand}). *)
let local_hdemand (c : t) (rep : string) : int = get c.hdemand rep

(** Has increment headroom ever been granted?  A capped counter checks
    headroom on {!prepare_inc} and has a finite {!interval} upper
    bound. *)
let capped (c : t) : bool = c.granted > 0

(** Total headroom ever granted — the counter's cap when {!capped}. *)
let granted (c : t) : int = c.granted

(** The escrow interval at [rep]'s purely local view: the
    strongly-consistent value (over all operations committed anywhere)
    is ≥ [lo] always, and ≤ [hi] when the counter is capped ([hi] is
    [None] otherwise — unseen increments are unbounded without a
    headroom discipline).

    [lo = local_rights rep]: unseen decrements are covered by peer
    rights (locally visible) plus rights that unseen increments create,
    and those increments add back what they enable, so the true value
    cannot fall below the rights only this replica can spend.
    [hi = granted − local_headroom rep]: dually, unseen increments are
    covered by peer headroom = (granted − value) − local headroom. *)
type interval = { lo : int; hi : int option }

let interval (c : t) ~(rep : string) : interval =
  {
    lo = local_rights c rep;
    hi = (if capped c then Some (c.granted - local_headroom c rep) else None);
  }

(* ------------------------------------------------------------------ *)
(* Prepare                                                             *)
(* ------------------------------------------------------------------ *)

(** Fails with {!Insufficient_headroom} when the counter is capped and
    [rep] does not hold [n] headroom — the caller must {!Hmove} headroom
    first (coordination, dual to the rights transfer).  Free on an
    uncapped counter. *)
let prepare_inc (c : t) ~(rep : string) (n : int) : op =
  if capped c then begin
    let have = local_headroom c rep in
    if have < n then raise (Insufficient_headroom { rep; have; need = n })
  end;
  Inc { rep; n }

(** Fails with {!Insufficient_rights} when [rep] does not hold [n]
    rights — the caller must transfer rights first (coordination). *)
let prepare_dec (c : t) ~(rep : string) (n : int) : op =
  let have = local_rights c rep in
  if have < n then raise (Insufficient_rights { rep; have; need = n });
  Dec { rep; n }

let prepare_transfer (c : t) ~(from_ : string) ~(to_ : string) (n : int) : op =
  let have = local_rights c from_ in
  if have < n then raise (Insufficient_rights { rep = from_; have; need = n });
  Transfer { from_; to_; n }

(** Create [n] increment headroom at [rep], capping the counter.  Grants
    belong in seed data, reliably delivered before concurrent use —
    the {!interval} upper bound is only sound against observers that
    have applied every grant. *)
let prepare_grant (_ : t) ~(rep : string) (n : int) : op = Grant { rep; n }

let prepare_hmove (c : t) ~(from_ : string) ~(to_ : string) (n : int) : op =
  let have = local_headroom c from_ in
  if have < n then
    raise (Insufficient_headroom { rep = from_; have; need = n });
  Hmove { from_; to_; n }

(** Publish [n] decrement attempts observed at [rep].  Advisory — no
    guard, always succeeds, and applying it never changes the value,
    rights or headroom of any replica. *)
let prepare_demand (_ : t) ~(rep : string) (n : int) : op = Demand { rep; n }

let prepare_hdemand (_ : t) ~(rep : string) (n : int) : op =
  Hdemand { rep; n }

(* ------------------------------------------------------------------ *)
(* Effect                                                              *)
(* ------------------------------------------------------------------ *)

(* single tree walk per effect (update), not a find followed by an add *)
let bump (m : int M.t) (rep : string) (n : int) : int M.t =
  M.update rep (fun cur -> Some (Option.value ~default:0 cur + n)) m

let bump2 (mm : int M.t M.t) (from_ : string) (to_ : string) (n : int) :
    int M.t M.t =
  let row = Option.value ~default:M.empty (M.find_opt from_ mm) in
  M.add from_ (M.add to_ (get2 mm from_ to_ + n) row) mm

let apply (c : t) (o : op) : t =
  match o with
  | Inc { rep; n } -> { c with inc = bump c.inc rep n; total = c.total + n }
  | Dec { rep; n } -> { c with dec = bump c.dec rep n; total = c.total - n }
  | Transfer { from_; to_; n } -> { c with moved = bump2 c.moved from_ to_ n }
  | Grant { rep; n } ->
      { c with grant = bump c.grant rep n; granted = c.granted + n }
  | Hmove { from_; to_; n } -> { c with hmoved = bump2 c.hmoved from_ to_ n }
  | Demand { rep; n } -> { c with demand = bump c.demand rep n }
  | Hdemand { rep; n } -> { c with hdemand = bump c.hdemand rep n }

(* ------------------------------------------------------------------ *)
(* Introspection & conservation audit                                  *)
(* ------------------------------------------------------------------ *)

(** Every replica id mentioned by any ledger of the counter, sorted.
    The audit and the planner's rights histogram iterate over this. *)
let replicas (c : t) : string list =
  let add r acc = if List.mem r acc then acc else r :: acc in
  let of_map m acc = M.fold (fun r _ acc -> add r acc) m acc in
  let of_map2 mm acc =
    M.fold (fun from_ row acc -> of_map row (add from_ acc)) mm acc
  in
  []
  |> of_map c.inc |> of_map c.dec |> of_map c.grant |> of_map c.demand
  |> of_map c.hdemand |> of_map2 c.moved |> of_map2 c.hmoved
  |> List.sort compare

(** [(replica, rights held)] for every replica the counter mentions —
    the per-replica rights histogram surfaced by the escrow metrics. *)
let rights_histogram (c : t) : (string * int) list =
  List.map (fun r -> (r, local_rights c r)) (replicas c)

(** Dual histogram: per-replica increment headroom (capped counters). *)
let headroom_histogram (c : t) : (string * int) list =
  List.map (fun r -> (r, local_headroom c r)) (replicas c)

(** Conservation audit over a (causally consistent) view of the
    counter.  Checks the escrow identities that every reachable state
    must satisfy — [Some msg] pinpoints the first broken one:

    - the maintained aggregates match their reference folds
      ([total] = Σinc − Σdec, [granted] = Σgrants);
    - rights conservation: Σ_r local_rights(r) = value (transfers net
      to zero — no rights minted or leaked in flight);
    - headroom conservation (capped): Σ_r local_headroom(r) =
      granted − value, i.e. {e rights remaining + spent = bound};
    - no replica's rights (or headroom, when capped) are overdrawn,
      and the value sits inside [0, granted] — causal delivery makes
      these hold at every intermediate view, not just at quiescence. *)
let audit (c : t) : string option =
  let v = value c in
  let reps = replicas c in
  let sum f = List.fold_left (fun acc r -> acc + f c r) 0 reps in
  if v <> c.total then
    Some (Fmt.str "aggregate drift: total=%d but Σinc−Σdec=%d" c.total v)
  else if M.fold (fun _ n acc -> acc + n) c.grant 0 <> c.granted then
    Some
      (Fmt.str "aggregate drift: granted=%d but Σgrant=%d" c.granted
         (M.fold (fun _ n acc -> acc + n) c.grant 0))
  else if sum local_rights <> v then
    Some
      (Fmt.str "rights leak: Σ local_rights=%d but value=%d"
         (sum local_rights) v)
  else if capped c && sum local_headroom <> c.granted - v then
    Some
      (Fmt.str "headroom leak: Σ local_headroom=%d but granted−value=%d"
         (sum local_headroom) (c.granted - v))
  else
    match List.find_opt (fun r -> local_rights c r < 0) reps with
    | Some r ->
        Some (Fmt.str "overdrawn rights at %s: %d" r (local_rights c r))
    | None -> (
        if not (capped c) then None
        else
          match List.find_opt (fun r -> local_headroom c r < 0) reps with
          | Some r ->
              Some
                (Fmt.str "overdrawn headroom at %s: %d" r
                   (local_headroom c r))
          | None ->
              if v < 0 || v > c.granted then
                Some (Fmt.str "value %d outside [0, %d]" v c.granted)
              else None)

let pp ppf c = Fmt.pf ppf "%d" (value c)
