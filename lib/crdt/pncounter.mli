(** Op-based PN-counter: concurrent increments and decrements commute. *)

type t
type op

val empty : t
val value : t -> int

(** Always equal to {!value}, but O(1): reads a maintained aggregate
    instead of folding the per-replica maps.  Hot digest paths use this;
    reference renderings keep calling {!value} so the two implementations
    check each other. *)
val quick_value : t -> int

(** Prepare a delta issued by replica [rep]. *)
val prepare : t -> rep:string -> int -> op

val apply : t -> op -> t
val pp : Format.formatter -> t -> unit
