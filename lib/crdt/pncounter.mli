(** Op-based PN-counter: concurrent increments and decrements commute. *)

type t
type op

val empty : t
val value : t -> int

(** Always equal to {!value}, but O(1): reads a maintained aggregate
    instead of folding the per-replica maps.  Hot digest paths use this;
    reference renderings keep calling {!value} so the two implementations
    check each other. *)
val quick_value : t -> int

(** Prepare a delta issued by replica [rep]. *)
val prepare : t -> rep:string -> int -> op

(** The op's issuing replica / signed delta (anti-entropy compresses a
    log interval into one summed delta per key and replica). *)
val op_rep : op -> string

val op_delta : op -> int

val apply : t -> op -> t

(** {1 Delta-state view} *)

(** Join two states by pointwise maximum of each replica's positive and
    negative totals — sound because each slot is written only by its
    owning replica and grows monotonically under FIFO application.
    Commutative, associative, idempotent. *)
val merge : t -> t -> t

(** The delta-state fragment for one op: the {e post-apply} state
    restricted to the op's replica slot.  [after] must be the state
    immediately after applying the op at its origin; max-join of the
    fragment then reproduces the op on any state that has applied the
    replica's earlier ops (FIFO). *)
val delta_of_op : after:t -> op -> t

val pp : Format.formatter -> t -> unit
