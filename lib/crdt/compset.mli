(** Compensation Set CRDT (paper §4.2.2): an add-wins set with a size
    bound enforced by read-time compensation.

    Concurrent additions can exceed the bound (aggregation constraints
    are not I-Confluent); every {!read} detects this and produces
    compensation operations removing excess elements.  Victims are
    chosen deterministically (largest first) so replicas repairing the
    same violation independently converge; removals are idempotent. *)

type t
type op

val create : max_size:int -> t
val apply : t -> op -> t

(** The size bound of the op's source object — carried in every op so a
    replica receiving the effect before any local access creates the
    object with the real bound (not a sentinel). *)
val op_bound : op -> int

(** Live element count, possibly over the bound. *)
val size : t -> int

val mem : string -> t -> bool

(** Raw members, possibly over the bound (diagnostics only). *)
val raw_elements : t -> string list

(** The underlying add-wins set (diagnostics / invariant checkers). *)
val raw_set : t -> Awset.t

(** Does the raw state currently violate the bound? (What a Causal
    configuration would expose — Figure 7's red dots.) *)
val violated : t -> bool

(** Consistent read: at most [max_size] elements, plus the compensation
    ops the caller must commit with its transaction. *)
val read : t -> string list * op list

val prepare_add : ?payload:string -> t -> dot:Vclock.dot -> string -> op
val prepare_touch : t -> dot:Vclock.dot -> string -> op
val prepare_remove : t -> string -> op
val pp : Format.formatter -> t -> unit
