(** Coordination-free unique identifiers (Table 1, "Unique id."):
    pre-partitioned identifier spaces make uniqueness I-Confluent.

    Not domain-safe, by design: every generator is per-instance mutable
    state owned by one replica (and hence one domain at a time) — there
    is no process-global table here, unlike {!Intern}.  The parallel
    layers (DESIGN.md §8) never share a generator across workers. *)

type t

val create : string -> t

(** A globally-unique identifier ["<replica>-<n>"]. *)
val fresh : t -> string

(** Numeric identifiers from pre-partitioned blocks: replica [index]
    draws ids ≡ index (mod n_replicas). *)
type block

val block : index:int -> n_replicas:int -> block
val fresh_int : block -> int
