(** Op-based add-wins set (observed-remove set) with payloads, the
    {e touch} operation, and wildcard removes (paper §4.2.1).

    Elements are strings (application-level keys); each element may
    carry a payload.  Under causal delivery the downstream effects
    commute, and a concurrent add/remove of the same element resolves in
    favour of the add: a remove only cancels the add-dots its source had
    observed.

    [Touch] is an add that does not set a payload: it makes the element
    a member again while preserving the information previously
    associated with it — the restoring effect IPA attaches to modified
    operations.  Payloads survive removal and are reclaimed by {!gc}
    once the removal is causally stable. *)

type t

(** Wildcard selectors for predicate-scoped removes
    ([enrolled( *, t) := false]). *)
type selector = All | Matching of (string -> bool)

(** Downstream effects (commute under causal delivery). *)
type op

val empty : t

(** Membership: an element is in the set while it has live add-dots. *)
val mem : string -> t -> bool

(** Current payload of a member element ([None] if absent or none). *)
val payload : string -> t -> string option

(** The payload remembered for an element even if currently removed
    (touch semantics: information survives removal). *)
val saved_payload : string -> t -> string option

(** Members, sorted. *)
val elements : t -> string list

val size : t -> int

(** {1 Prepare (at the source replica)} *)

val prepare_add : ?payload:string -> t -> dot:Vclock.dot -> string -> op
val prepare_touch : t -> dot:Vclock.dot -> string -> op

(** Remove the element's currently-observed add-dots (concurrent adds
    survive: add-wins). *)
val prepare_remove : t -> string -> op

(** Wildcard remove: collects the observed dots of every matching
    member. *)
val prepare_remove_where : t -> selector -> op

(** {1 Effect (at every replica)} *)

val apply : t -> op -> t

(** {1 Delta-state view}

    States carry a per-entry causal context (every add-dot ever
    observed), which makes them joinable: a dot live on one side but
    inside the other's context-without-dots was removed, not unseen, so
    the join drops it instead of resurrecting it (optimized OR-set,
    Bieniusa et al.). *)

(** Join two states — commutative, associative, idempotent.  Assumes
    neither side has {!gc}'d an entry the other still holds live (the
    store's causal-stability cut guarantees this). *)
val merge : t -> t -> t

(** The state fragment (delta) carrying exactly one op's effect:
    [apply s o = merge s (delta_of_op o)] for any [s] that has not yet
    observed the op. *)
val delta_of_op : op -> t

(** {1 Maintenance} *)

(** Entries held, including removed-but-remembered ones. *)
val metadata_size : t -> int

(** Forget removed entries whose payload write is causally stable
    (§4.2.1): once the removal is stable, no concurrent touch needing
    the payload can still be in flight. *)
val gc : stable:Vclock.t -> t -> t

val pp : Format.formatter -> t -> unit
