(** A CDCL SAT solver.

    This replaces the Z3 SMT solver used by the paper's prototype: the IPA
    analysis only needs satisfiability of ground formulas over small finite
    domains (see DESIGN.md §2), which {!Encode} reduces to propositional
    CNF solved here.

    Features: two-watched-literal unit propagation, first-UIP conflict
    analysis with clause learning, VSIDS-style activity decision heuristic,
    phase saving, geometric restarts, and activity-based learnt-clause DB
    reduction.  The solver is incremental in the
    sense that clauses and variables may be added between [solve] calls
    (used for model enumeration via blocking clauses). *)

(** A literal: [+v] for the positive literal of variable [v >= 1],
    [-v] for its negation. *)
type lit = int

type result = Sat | Unsat

type clause = { lits : lit array; mutable activity : float }

type t = {
  mutable nvars : int;
  mutable clauses : clause list;  (** original clauses *)
  mutable learnts : clause list;
  mutable n_learnts : int;  (** live learnt clauses (length of [learnts]) *)
  mutable max_learnts : int;  (** reduce the learnt DB past this size *)
  mutable learnts_total : int;  (** learnt clauses ever created *)
  mutable learnts_removed : int;  (** learnt clauses deleted by reduction *)
  (* var-indexed state; index 0 unused *)
  mutable assign : int array;  (** -1 unassigned, 0 false, 1 true *)
  mutable level : int array;
  mutable reason : clause option array;
  mutable activity : float array;
  mutable phase : bool array;  (** saved phase *)
  mutable watches : clause list array;  (** indexed by literal encoding *)
  mutable trail : lit array;
  mutable trail_len : int;
  mutable trail_lim : int list;  (** decision level boundaries *)
  mutable qhead : int;
  mutable var_inc : float;
  mutable cla_inc : float;
  mutable ok : bool;  (** false once a top-level conflict was derived *)
  mutable true_lit : int;  (** lazily allocated always-true literal; 0 = none *)
  mutable next_var_hint : int;  (** rotating cursor for decisions *)
  mutable conflicts : int;
  mutable decisions : int;
  mutable propagations : int;
}

let lit_var (l : lit) = abs l
let lit_sign (l : lit) = l > 0

(* watch-list index for a literal: positive lits at 2v, negative at 2v+1 *)
let widx (l : lit) = if l > 0 then 2 * l else (-2 * l) + 1

let fresh () =
  {
    nvars = 0;
    clauses = [];
    learnts = [];
    n_learnts = 0;
    max_learnts = 0;
    learnts_total = 0;
    learnts_removed = 0;
    assign = Array.make 16 (-1);
    level = Array.make 16 0;
    reason = Array.make 16 None;
    activity = Array.make 16 0.0;
    phase = Array.make 16 false;
    watches = Array.make 32 [];
    trail = Array.make 16 0;
    trail_len = 0;
    trail_lim = [];
    qhead = 0;
    var_inc = 1.0;
    cla_inc = 1.0;
    ok = true;
    true_lit = 0;
    next_var_hint = 1;
    conflicts = 0;
    decisions = 0;
    propagations = 0;
  }

(* ------------------------------------------------------------------ *)
(* Per-domain instance recycling                                       *)
(*                                                                     *)
(* The analysis allocates one single-use solver per query — thousands  *)
(* per obligation block — and the dominant allocation cost is the      *)
(* var-indexed arrays, which grow to the same grounded-formula size    *)
(* query after query.  Each worker domain keeps a small free list of   *)
(* released instances; [create] pops one and [release] scrubs every    *)
(* field back to its [fresh] default, so a recycled solver is          *)
(* observationally identical to a new one (capacity is the only        *)
(* difference, and capacity is invisible: arrays grow on demand and    *)
(* nothing scans past [nvars]).  The list is domain-local (DLS), so    *)
(* recycling needs no synchronization and cannot leak instances        *)
(* across concurrent workers.                                          *)
(* ------------------------------------------------------------------ *)

let pool_key : t list ref Domain.DLS.key = Domain.DLS.new_key (fun () -> ref [])
let pool_max = 8

(* cross-domain counters so tests can assert recycling actually runs *)
let n_released = Atomic.make 0
let n_reused = Atomic.make 0

(** (instances accepted by [release], instances handed back out by
    [create]) over the whole process — monotone, cross-domain. *)
let recycle_stats () = (Atomic.get n_released, Atomic.get n_reused)

(* scrub every field back to the value [fresh] would give it; arrays
   are cleared in place up to their (retained) capacity *)
let scrub (s : t) : unit =
  s.nvars <- 0;
  s.clauses <- [];
  s.learnts <- [];
  s.n_learnts <- 0;
  s.max_learnts <- 0;
  s.learnts_total <- 0;
  s.learnts_removed <- 0;
  Array.fill s.assign 0 (Array.length s.assign) (-1);
  Array.fill s.level 0 (Array.length s.level) 0;
  Array.fill s.reason 0 (Array.length s.reason) None;
  Array.fill s.activity 0 (Array.length s.activity) 0.0;
  Array.fill s.phase 0 (Array.length s.phase) false;
  Array.fill s.watches 0 (Array.length s.watches) [];
  Array.fill s.trail 0 (Array.length s.trail) 0;
  s.trail_len <- 0;
  s.trail_lim <- [];
  s.qhead <- 0;
  s.var_inc <- 1.0;
  s.cla_inc <- 1.0;
  s.ok <- true;
  s.true_lit <- 0;
  s.next_var_hint <- 1;
  s.conflicts <- 0;
  s.decisions <- 0;
  s.propagations <- 0

(** Return a finished solver to this domain's free list (after reading
    any stats/model — release wipes them).  The instance must not be
    used again by the caller; a later [create] on the same domain may
    hand it back out, scrubbed to a fresh-equivalent state. *)
let release (s : t) : unit =
  scrub s;
  let pool = Domain.DLS.get pool_key in
  if List.length !pool < pool_max then begin
    pool := s :: !pool;
    Atomic.incr n_released
  end

let create () =
  let pool = Domain.DLS.get pool_key in
  match !pool with
  | s :: rest ->
      pool := rest;
      Atomic.incr n_reused;
      s
  | [] -> fresh ()

let ensure_capacity s n =
  let cap = Array.length s.assign in
  if n >= cap then begin
    let ncap = max (n + 1) (2 * cap) in
    let grow a def =
      let b = Array.make ncap def in
      Array.blit a 0 b 0 cap;
      b
    in
    s.assign <- grow s.assign (-1);
    s.level <- grow s.level 0;
    s.reason <- grow s.reason None;
    s.activity <- grow s.activity 0.0;
    s.phase <- grow s.phase false;
    s.trail <- grow s.trail 0;
    let wcap = Array.length s.watches in
    if 2 * n + 1 >= wcap then begin
      let nw = Array.make (max (2 * n + 2) (2 * wcap)) [] in
      Array.blit s.watches 0 nw 0 wcap;
      s.watches <- nw
    end
  end

(** Allocate a fresh variable, returning its index ([>= 1]). *)
let new_var s =
  s.nvars <- s.nvars + 1;
  ensure_capacity s s.nvars;
  s.nvars

let value (s : t) (l : lit) : int =
  (* -1 unassigned, 1 true, 0 false, from the literal's viewpoint *)
  let v = s.assign.(lit_var l) in
  if v = -1 then -1 else if lit_sign l then v else 1 - v

let decision_level s = List.length s.trail_lim

let var_bump s v =
  s.activity.(v) <- s.activity.(v) +. s.var_inc;
  if s.activity.(v) > 1e100 then begin
    for i = 1 to s.nvars do
      s.activity.(i) <- s.activity.(i) *. 1e-100
    done;
    s.var_inc <- s.var_inc *. 1e-100
  end

let var_decay s = s.var_inc <- s.var_inc /. 0.95

let cla_bump s (c : clause) =
  c.activity <- c.activity +. s.cla_inc;
  if c.activity > 1e20 then begin
    List.iter (fun (c : clause) -> c.activity <- c.activity *. 1e-20) s.learnts;
    s.cla_inc <- s.cla_inc *. 1e-20
  end

let cla_decay s = s.cla_inc <- s.cla_inc /. 0.999

let enqueue s (l : lit) (from : clause option) =
  let v = lit_var l in
  s.assign.(v) <- (if lit_sign l then 1 else 0);
  s.level.(v) <- decision_level s;
  s.reason.(v) <- from;
  s.phase.(v) <- lit_sign l;
  s.trail.(s.trail_len) <- l;
  s.trail_len <- s.trail_len + 1

(* Propagate all enqueued facts. Returns the conflicting clause, if any. *)
let propagate s : clause option =
  let conflict = ref None in
  while !conflict = None && s.qhead < s.trail_len do
    let l = s.trail.(s.qhead) in
    s.qhead <- s.qhead + 1;
    s.propagations <- s.propagations + 1;
    (* clauses watching ¬l must be inspected *)
    let falsified = -l in
    let ws = s.watches.(widx falsified) in
    s.watches.(widx falsified) <- [];
    let rec go = function
      | [] -> ()
      | c :: rest -> (
          if !conflict <> None then
            (* keep remaining watchers *)
            s.watches.(widx falsified) <-
              c :: (rest @ s.watches.(widx falsified))
          else
            (* make sure falsified literal is at position 1 *)
            let lits = c.lits in
            (if lits.(0) = falsified then begin
               lits.(0) <- lits.(1);
               lits.(1) <- falsified
             end);
            if value s lits.(0) = 1 then begin
              (* clause satisfied; keep watching *)
              s.watches.(widx falsified) <- c :: s.watches.(widx falsified);
              go rest
            end
            else begin
              (* search a new literal to watch *)
              let n = Array.length lits in
              let found = ref false in
              let i = ref 2 in
              while (not !found) && !i < n do
                if value s lits.(!i) <> 0 then begin
                  lits.(1) <- lits.(!i);
                  lits.(!i) <- falsified;
                  s.watches.(widx lits.(1)) <- c :: s.watches.(widx lits.(1));
                  found := true
                end;
                incr i
              done;
              if !found then go rest
              else begin
                (* unit or conflicting *)
                s.watches.(widx falsified) <- c :: s.watches.(widx falsified);
                if value s lits.(0) = 0 then begin
                  conflict := Some c;
                  s.qhead <- s.trail_len;
                  go rest
                end
                else begin
                  enqueue s lits.(0) (Some c);
                  go rest
                end
              end
            end)
    in
    go ws
  done;
  !conflict

let attach_clause s c =
  s.watches.(widx c.lits.(0)) <- c :: s.watches.(widx c.lits.(0));
  s.watches.(widx c.lits.(1)) <- c :: s.watches.(widx c.lits.(1))

let detach_clause s c =
  let rm l = s.watches.(widx l) <- List.filter (fun c' -> c' != c) s.watches.(widx l) in
  rm c.lits.(0);
  rm c.lits.(1)

(* a clause currently acting as the reason of an assignment must not be
   deleted: conflict analysis may still traverse it *)
let locked s (c : clause) =
  match s.reason.(lit_var c.lits.(0)) with
  | Some r -> r == c
  | None -> false

(** Activity-based learnt-clause DB reduction: drop the low-activity half
    of the learnt clauses (keeping locked and binary ones) so the DB —
    and unit-propagation cost — stays bounded on long searches. *)
let reduce_db s =
  let arr = Array.of_list s.learnts in
  Array.sort (fun (a : clause) b -> compare a.activity b.activity) arr;
  let n = Array.length arr in
  let kept = ref [] and n_kept = ref 0 in
  Array.iteri
    (fun i c ->
      if i >= n / 2 || Array.length c.lits <= 2 || locked s c then begin
        kept := c :: !kept;
        incr n_kept
      end
      else begin
        detach_clause s c;
        s.learnts_removed <- s.learnts_removed + 1
      end)
    arr;
  s.learnts <- !kept;
  s.n_learnts <- !n_kept;
  (* geometric growth of the allowance, so reductions stay rare *)
  s.max_learnts <- s.max_learnts + (s.max_learnts / 2)

(** Add a clause (list of literals). Must be called at decision level 0
    (i.e. before or between [solve] calls). *)
let add_clause s (lits : lit list) =
  if s.ok then begin
    (* simplify: dedupe, drop false lits, detect tautology / satisfied *)
    let lits = List.sort_uniq compare lits in
    let taut =
      List.exists (fun l -> List.mem (-l) lits) lits
      || List.exists (fun l -> value s l = 1) lits
    in
    if not taut then begin
      let lits = List.filter (fun l -> value s l <> 0) lits in
      List.iter (fun l -> ensure_capacity s (lit_var l)) lits;
      match lits with
      | [] -> s.ok <- false
      | [ l ] -> (
          enqueue s l None;
          match propagate s with Some _ -> s.ok <- false | None -> ())
      | _ ->
          let c = { lits = Array.of_list lits; activity = 0.0 } in
          s.clauses <- c :: s.clauses;
          attach_clause s c
    end
  end

(* backtrack to a given decision level *)
let cancel_until s lvl =
  if decision_level s > lvl then begin
    let rec boundary lim n =
      (* trail length at start of level lvl+1 *)
      match lim with
      | [] -> 0
      | b :: rest -> if n = lvl + 1 then b else boundary rest (n - 1)
    in
    let b = boundary s.trail_lim (decision_level s) in
    for i = s.trail_len - 1 downto b do
      let v = lit_var s.trail.(i) in
      s.assign.(v) <- -1;
      s.reason.(v) <- None
    done;
    s.trail_len <- b;
    s.qhead <- b;
    let rec drop lim n = if n = lvl then lim else drop (List.tl lim) (n - 1) in
    s.trail_lim <- drop s.trail_lim (decision_level s)
  end

(* First-UIP conflict analysis. Returns (learnt clause lits, backtrack level).
   learnt.(0) is the asserting literal. *)
let analyze s (confl : clause) : lit list * int =
  let seen = Hashtbl.create 32 in
  let counter = ref 0 in
  let learnt = ref [] in
  let btlevel = ref 0 in
  let cur_level = decision_level s in
  let p = ref 0 in
  (* 0 = undefined *)
  let c = ref confl in
  let idx = ref (s.trail_len - 1) in
  let continue_ = ref true in
  while !continue_ do
    (* bump + process reason clause *)
    cla_bump s !c;
    Array.iter
      (fun q ->
        let v = lit_var q in
        if (not (Hashtbl.mem seen v)) && s.level.(v) > 0 && q <> !p then begin
          Hashtbl.add seen v ();
          var_bump s v;
          if s.level.(v) >= cur_level then incr counter
          else begin
            learnt := q :: !learnt;
            if s.level.(v) > !btlevel then btlevel := s.level.(v)
          end
        end)
      !c.lits;
    (* select next literal to look at *)
    let rec find_next () =
      let l = s.trail.(!idx) in
      decr idx;
      if Hashtbl.mem seen (lit_var l) then l else find_next ()
    in
    let l = find_next () in
    Hashtbl.remove seen (lit_var l);
    decr counter;
    if !counter = 0 then begin
      learnt := -l :: !learnt;
      continue_ := false
    end
    else begin
      p := l;
      c :=
        (match s.reason.(lit_var l) with
        | Some r -> r
        | None -> assert false)
    end
  done;
  (!learnt, !btlevel)

(* Decision heuristic: scan from a rotating cursor for the next
   unassigned variable, preferring recently-bumped (high-activity)
   variables seen in a bounded window.  This keeps decisions O(1)
   amortized on the large, mostly-easy instances produced by grounding,
   while still following conflict activity. *)
let pick_branch_var s : int option =
  (* first try: highest-activity var among those bumped since the last
     conflict (cheap approximation of VSIDS) *)
  let best = ref 0 in
  let best_act = ref 0.0 in
  let scanned = ref 0 in
  let v = ref s.next_var_hint in
  let n = s.nvars in
  if n = 0 then None
  else begin
    (* bounded scan window for an active variable *)
    while !scanned < n && (!best = 0 || !scanned < 64) do
      incr scanned;
      let cand = !v in
      v := if cand >= n then 1 else cand + 1;
      if s.assign.(cand) = -1 && (!best = 0 || s.activity.(cand) > !best_act)
      then begin
        best := cand;
        best_act := s.activity.(cand)
      end
    done;
    if !best = 0 then None
    else begin
      s.next_var_hint <- !best;
      Some !best
    end
  end

(** Decide satisfiability of the clauses added so far. After [Sat],
    {!model_value} reads the satisfying assignment. *)
let solve s : result =
  if not s.ok then Unsat
  else begin
    (match propagate s with Some _ -> s.ok <- false | None -> ());
    if not s.ok then Unsat
    else begin
      if s.max_learnts = 0 then
        s.max_learnts <- max 256 (List.length s.clauses / 3);
      let status = ref None in
      let conflicts_since_restart = ref 0 in
      let restart_limit = ref 100 in
      while !status = None do
        match propagate s with
        | Some confl ->
            s.conflicts <- s.conflicts + 1;
            incr conflicts_since_restart;
            if decision_level s = 0 then begin
              s.ok <- false;
              status := Some Unsat
            end
            else begin
              let learnt, btlevel = analyze s confl in
              cancel_until s btlevel;
              (match learnt with
              | [] -> assert false
              | [ l ] -> enqueue s l None
              | l :: _ ->
                  let c =
                    { lits = Array.of_list learnt; activity = s.cla_inc }
                  in
                  (* ensure second watched literal is from the conflict level *)
                  let lits = c.lits in
                  let max_i = ref 1 in
                  for i = 2 to Array.length lits - 1 do
                    if s.level.(lit_var lits.(i)) > s.level.(lit_var lits.(!max_i))
                    then max_i := i
                  done;
                  let tmp = lits.(1) in
                  lits.(1) <- lits.(!max_i);
                  lits.(!max_i) <- tmp;
                  s.learnts <- c :: s.learnts;
                  s.n_learnts <- s.n_learnts + 1;
                  s.learnts_total <- s.learnts_total + 1;
                  attach_clause s c;
                  enqueue s l (Some c));
              var_decay s;
              cla_decay s;
              if s.n_learnts > s.max_learnts then reduce_db s
            end
        | None ->
            if
              !conflicts_since_restart >= !restart_limit
              && decision_level s > 0
            then begin
              conflicts_since_restart := 0;
              restart_limit := !restart_limit * 3 / 2;
              cancel_until s 0
            end
            else begin
              match pick_branch_var s with
              | None -> status := Some Sat
              | Some v ->
                  s.decisions <- s.decisions + 1;
                  s.trail_lim <- s.trail_len :: s.trail_lim;
                  let l = if s.phase.(v) then v else -v in
                  enqueue s l None
            end
      done;
      (match !status with
      | Some Sat -> ()
      | _ -> cancel_until s 0);
      match !status with Some r -> r | None -> assert false
    end
  end

(** Truth value of a literal in the model found by the last [Sat] answer.
    Unassigned variables (don't-cares) read as [false]. *)
let model_value s (l : lit) : bool =
  let v = value s l in
  v = 1

(** Reset the assignment to level 0 so further clauses can be added.
    Call after reading the model of a [Sat] answer. *)
let reset s = cancel_until s 0

type stats = {
  n_conflicts : int;
  n_decisions : int;
  n_propagations : int;
  n_learnts : int;  (** learnt clauses ever created *)
  n_removed : int;  (** learnt clauses deleted by DB reduction *)
}

let stats s =
  {
    n_conflicts = s.conflicts;
    n_decisions = s.decisions;
    n_propagations = s.propagations;
    n_learnts = s.learnts_total;
    n_removed = s.learnts_removed;
  }

let true_lit_get s = s.true_lit
let true_lit_set s v = s.true_lit <- v
