(** Encoding of ground formulas into SAT: atoms become variables,
    bounded-integer state functions are order-encoded, linear
    comparisons flatten to totalizer cardinality tests, and the boolean
    skeleton is Tseitin-encoded so results compose under negation.
    Together with {!Sat} this is the solver backend replacing Z3. *)

open Ipa_logic

type lit = Sat.lit
type ctx

(** Default integer bounds for numeric state functions: [(0, 16)]. *)
val default_bounds : Ground.gnum -> int * int

val create : ?int_bounds:(Ground.gnum -> int * int) -> unit -> ctx
val solver : ctx -> Sat.t

(** Release the context's solver back to this domain's recycling pool
    ({!Sat.release}) once its result, stats and model values have been
    read; the context must not be used afterwards. *)
val release : ctx -> unit

(** The SAT literal representing a ground boolean atom. *)
val lit_of_atom : ctx -> Ground.gatom -> lit

(** A literal equivalent to the ground formula. *)
val encode : ctx -> Ground.gformula -> lit

(** Assert that the formula holds. *)
val assert_formula : ctx -> Ground.gformula -> unit

val solve : ctx -> Sat.result

(** Model values (valid after a [Sat] answer); unmentioned atoms read
    [false], unmentioned numerics read their lower bound. *)
val model_atom : ctx -> Ground.gatom -> bool

val model_num : ctx -> Ground.gnum -> int

(** Forbid the current model's assignment to the given atoms (model
    enumeration); resets the trail. *)
val block_model : ctx -> Ground.gatom list -> unit

(** One-shot satisfiability of a closed formula. *)
val check :
  ?int_bounds:(Ground.gnum -> int * int) ->
  sg:Ground.signature ->
  consts:(string * int) list ->
  dom:Ground.domain ->
  Ast.formula ->
  [ `Sat of (Ground.gatom -> bool) * (Ground.gnum -> int) | `Unsat ]
