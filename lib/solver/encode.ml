(** Encoding of ground formulas ({!Ipa_logic.Ground.gformula}) into SAT.

    Boolean atoms become SAT variables; bounded-integer state functions
    are order-encoded ([v = lo + sum of ladder bits]); linear comparisons
    are flattened to unit-literal sums and decided by a totalizer
    ({!Cnf.at_least}); the boolean skeleton is Tseitin-encoded so the
    resulting literal is fully compositional (usable under negation).

    Together with {!Sat} this forms the solver backend replacing Z3 in the
    paper's prototype. *)

open Ipa_logic

type lit = Sat.lit

module AtomTbl = Hashtbl
module NumTbl = Hashtbl

type intvar = { lo : int; hi : int; bits : lit array }

type ctx = {
  sat : Sat.t;
  atoms : (Ground.gatom, lit) AtomTbl.t;
  nums : (Ground.gnum, intvar) NumTbl.t;
  int_bounds : Ground.gnum -> int * int;
}

(** Default integer bounds for numeric state functions: [0, 16]. *)
let default_bounds (_ : Ground.gnum) = (0, 16)

let create ?(int_bounds = default_bounds) () =
  {
    sat = Sat.create ();
    atoms = AtomTbl.create 64;
    nums = NumTbl.create 16;
    int_bounds;
  }

let solver ctx = ctx.sat

(** Release the context's solver back to this domain's recycling pool
    ({!Sat.release}).  Call once the query's result, stats and model
    values have all been read; the context is dead afterwards. *)
let release ctx = Sat.release ctx.sat

(** The SAT literal representing a ground boolean atom. *)
let lit_of_atom ctx (a : Ground.gatom) : lit =
  match AtomTbl.find_opt ctx.atoms a with
  | Some l -> l
  | None ->
      let v = Sat.new_var ctx.sat in
      AtomTbl.replace ctx.atoms a v;
      v

let intvar_of_num ctx (n : Ground.gnum) : intvar =
  match NumTbl.find_opt ctx.nums n with
  | Some iv -> iv
  | None ->
      let lo, hi = ctx.int_bounds n in
      if hi < lo then
        invalid_arg
          (Fmt.str "Encode: empty bounds [%d,%d] for %s" lo hi
             (Ground.gnum_to_string n));
      let bits = Array.init (hi - lo) (fun _ -> Sat.new_var ctx.sat) in
      (* ladder: bit i+1 -> bit i  (order encoding) *)
      for i = 0 to Array.length bits - 2 do
        Sat.add_clause ctx.sat [ -bits.(i + 1); bits.(i) ]
      done;
      let iv = { lo; hi; bits } in
      NumTbl.replace ctx.nums n iv;
      iv

(* Flatten a ground linear expression into (unit literals, constant):
   value = (number of true literals) + constant. *)
let flatten ctx (l : Ground.glin) : lit list * int =
  let lits = ref [] and const = ref l.const in
  List.iter (fun a -> lits := lit_of_atom ctx a :: !lits) l.pos;
  List.iter
    (fun a ->
      (* -[a] = [¬a] - 1 *)
      lits := -lit_of_atom ctx a :: !lits;
      decr const)
    l.negs;
  List.iter
    (fun (c, n) ->
      let iv = intvar_of_num ctx n in
      let nbits = Array.length iv.bits in
      if c > 0 then begin
        const := !const + (c * iv.lo);
        for _copy = 1 to c do
          Array.iter (fun b -> lits := b :: !lits) iv.bits
        done
      end
      else if c < 0 then begin
        let k = -c in
        (* c*v = c*lo + c*Σbits ; -q = ¬q - 1 per bit copy *)
        const := !const + (c * iv.lo) - (k * nbits);
        for _copy = 1 to k do
          Array.iter (fun b -> lits := -b :: !lits) iv.bits
        done
      end)
    l.funs;
  (!lits, !const)

(** [encode ctx g] returns a literal equivalent to the ground formula [g]. *)
let rec encode ctx (g : Ground.gformula) : lit =
  match g with
  | GTrue -> Cnf.lit_true ctx.sat
  | GFalse -> Cnf.lit_false ctx.sat
  | GAtom a -> lit_of_atom ctx a
  | GNot f -> -encode ctx f
  | GAnd (a, b) -> Cnf.gate_and ctx.sat [ encode ctx a; encode ctx b ]
  | GOr (a, b) -> Cnf.gate_or ctx.sat [ encode ctx a; encode ctx b ]
  | GCmp (op, lin) -> (
      let lits, c = flatten ctx lin in
      (* value = Σ lits + c ; compare with 0 *)
      let ge k = Cnf.at_least ctx.sat lits k in
      match op with
      | Ast.Ge -> ge (-c)
      | Ast.Gt -> ge (-c + 1)
      | Ast.Le -> -ge (-c + 1)
      | Ast.Lt -> -ge (-c)
      | Ast.EqN -> Cnf.gate_and ctx.sat [ ge (-c); -ge (-c + 1) ]
      | Ast.NeN -> Cnf.gate_or ctx.sat [ -ge (-c); ge (-c + 1) ])

(** Assert that [g] holds. *)
let assert_formula ctx g = Sat.add_clause ctx.sat [ encode ctx g ]

(** Decide satisfiability of everything asserted so far. *)
let solve ctx : Sat.result = Sat.solve ctx.sat

(** Model value of a boolean atom (valid after a [Sat] answer).
    Atoms never mentioned read as [false]. *)
let model_atom ctx (a : Ground.gatom) : bool =
  match AtomTbl.find_opt ctx.atoms a with
  | None -> false
  | Some l -> Sat.model_value ctx.sat l

(** Model value of a numeric state function (valid after [Sat]).
    Unmentioned functions read as their lower bound. *)
let model_num ctx (n : Ground.gnum) : int =
  match NumTbl.find_opt ctx.nums n with
  | None -> fst (ctx.int_bounds n)
  | Some iv ->
      iv.lo
      + Array.fold_left
          (fun acc b -> if Sat.model_value ctx.sat b then acc + 1 else acc)
          0 iv.bits

(** Add a clause forbidding the current model's assignment to [atoms]
    (model enumeration). Call after a [Sat] answer; resets the trail. *)
let block_model ctx (atoms : Ground.gatom list) : unit =
  let blocking =
    List.map
      (fun a ->
        let l = lit_of_atom ctx a in
        if Sat.model_value ctx.sat l then -l else l)
      atoms
  in
  Sat.reset ctx.sat;
  Sat.add_clause ctx.sat blocking

(** Convenience: satisfiability of a single closed formula over a
    signature/domain. Returns the witness valuation on [Sat]. *)
let check ?(int_bounds = default_bounds) ~sg ~consts ~dom (f : Ast.formula) :
    [ `Sat of (Ground.gatom -> bool) * (Ground.gnum -> int) | `Unsat ] =
  let g = Ground.ground ~sg ~consts ~dom f in
  let ctx = create ~int_bounds () in
  assert_formula ctx g;
  match solve ctx with
  | Sat -> `Sat (model_atom ctx, model_num ctx)
  | Unsat -> `Unsat
