(** A CDCL SAT solver — the decision backend replacing the paper's Z3
    (the analysis only needs satisfiability of ground formulas over
    small finite domains; see DESIGN.md §2).

    Features: two-watched-literal unit propagation, first-UIP conflict
    analysis with clause learning, activity-guided decisions with phase
    saving, geometric restarts, and activity-based learnt-clause DB
    reduction.  Clauses and variables may be added between [solve] calls
    (model enumeration via blocking clauses).

    All solver state is per-instance, so distinct domains may each run
    their own solver concurrently — the contract the parallel pair
    analysis (DESIGN.md §8) relies on.  Instances are recycled through
    a small {e domain-local} free list: {!release} scrubs a finished
    solver back to a fresh-equivalent state (retaining its grown
    arrays) and {!create} prefers a recycled instance, so the
    one-solver-per-query analysis stops re-growing the same var-indexed
    arrays thousands of times per obligation block.  Scrubbed state is
    bit-equivalent to fresh, so recycling can never change a
    verdict. *)

(** A literal: [+v] for the positive literal of variable [v >= 1], [-v]
    for its negation. *)
type lit = int

type result = Sat | Unsat

type t

(** Exposed for {!Cnf}'s true-literal cache. *)
val new_var : t -> int

val create : unit -> t

(** Add a clause; must be called at decision level 0 (before or between
    [solve] calls — use {!reset} after a [Sat] answer). *)
val add_clause : t -> lit list -> unit

(** Decide satisfiability of the clauses added so far. *)
val solve : t -> result

(** Truth value of a literal in the model of the last [Sat] answer
    (don't-cares read as [false]). *)
val model_value : t -> lit -> bool

(** Reset the assignment to level 0 so further clauses can be added. *)
val reset : t -> unit

type stats = {
  n_conflicts : int;
  n_decisions : int;
  n_propagations : int;
  n_learnts : int;  (** learnt clauses ever created *)
  n_removed : int;  (** learnt clauses deleted by activity-based DB reduction *)
}

val stats : t -> stats

(** Return a finished solver to this domain's free list, scrubbed to a
    fresh-equivalent state (read stats and model values first — release
    wipes them).  The caller must not touch the instance afterwards. *)
val release : t -> unit

(** (instances accepted by {!release}, instances handed back out by
    {!create}) process-wide — lets tests assert recycling runs. *)
val recycle_stats : unit -> int * int

(**/**)

(* internal, used by Cnf's true-literal allocation *)
val true_lit_get : t -> int
val true_lit_set : t -> int -> unit
