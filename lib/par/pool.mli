(** Fixed-size domain pool with order-preserving parallel iteration.

    One pool owns [jobs - 1] worker domains (the caller participates as
    worker 0) and hands them batches of indexed tasks through a shared
    claim counter — chunk-free self-scheduling, so an expensive item
    never strands the rest of the batch behind it.  Results are written
    into per-index slots, making {!map} and {!filter_map} preserve input
    order regardless of completion order.

    A pool with [jobs = 1] spawns no domains and runs every batch
    sequentially on the caller — the zero-overhead fallback used by the
    default library configuration, which keeps single-threaded runs
    byte-for-byte identical to the pre-multicore code path.

    Built on stdlib [Domain]/[Mutex]/[Condition]/[Atomic] only. *)

type t

(** [create ~jobs ()] spawns [jobs - 1] worker domains.  [jobs] is
    clamped to [\[1, cap\]].  Default: {!default_jobs}. *)
val create : ?jobs:int -> unit -> t

(** Number of concurrent workers (caller included). *)
val jobs : t -> int

(** Join the worker domains.  The pool must not be used afterwards.
    Idempotent. *)
val shutdown : t -> unit

(** [with_pool ~jobs f] runs [f] with a fresh pool and shuts it down
    afterwards (also on exception). *)
val with_pool : ?jobs:int -> (t -> 'a) -> 'a

(** [map_worker p ~f xs] — order-preserving parallel map; [f] also
    receives the index of the worker executing the item ([0] is the
    caller, [1 .. jobs-1] the pooled domains), so callers can maintain
    per-domain state (caches, contexts) without synchronization.  The
    first exception raised by any item is re-raised on the caller after
    the batch drains. *)
val map_worker : t -> f:(worker:int -> 'a -> 'b) -> 'a list -> 'b list

(** Order-preserving parallel map. *)
val map : t -> ('a -> 'b) -> 'a list -> 'b list

(** Order-preserving parallel filter-map. *)
val filter_map : t -> ('a -> 'b option) -> 'a list -> 'b list

(** Like {!filter_map}, with the worker index. *)
val filter_map_worker : t -> f:(worker:int -> 'a -> 'b option) -> 'a list -> 'b list

(* ------------------------------------------------------------------ *)
(* Job-count policy                                                    *)
(* ------------------------------------------------------------------ *)

(** Hard cap on pool width (memory per worker context dominates past
    this; see DESIGN.md §8). *)
val cap : int

(** [Domain.recommended_domain_count ()] clamped to [\[1, cap\]] — the
    default for the command-line tools. *)
val recommended : unit -> int

(** The [IPA_JOBS] environment override clamped to [\[1, cap\]], or [1]
    when unset/unparsable — the default for library entry points
    ({!Ipa_core.Ipa.run}, [Fuzz.campaign]), so embedded and test runs
    stay sequential unless explicitly opted in. *)
val env_jobs : unit -> int

(** [IPA_JOBS] when set, {!recommended} otherwise — the CLI default. *)
val default_jobs : unit -> int
