(** Fixed-size domain pool with order-preserving parallel iteration.

    Scheduling: a batch is an array of indexed tasks plus one shared
    {!Atomic} claim counter.  Every participant — the caller and each
    worker domain — repeatedly [fetch_and_add]s the counter and executes
    the item it claimed, so load balances itself at item granularity
    (work-stealing behaviour without per-worker deques: the "stealable"
    unit is the next unclaimed index).  Results land in per-index slots;
    order is restored for free.

    Synchronization: the claim and completion counters are [Atomic]
    (sequentially consistent, so a slot write by a worker happens-before
    the caller's read of the completion count that covers it); the
    mutex/condition pair only parks idle workers between batches and the
    caller while a batch drains.

    Determinism: the pool runs {e which} item {e where} and {e when}
    nondeterministically, but [map]/[filter_map] return results in input
    order, so any caller whose per-item function is a pure function of
    the item (per-worker caches may memoize but must not change results)
    gets output independent of the schedule.  That is the contract the
    parallel analysis and fuzzing layers build their bit-identical
    guarantees on. *)

(* ------------------------------------------------------------------ *)
(* Job-count policy                                                    *)
(* ------------------------------------------------------------------ *)

let cap = 8
let clamp n = max 1 (min cap n)
let recommended () = clamp (Domain.recommended_domain_count ())

let env_override () =
  match Sys.getenv_opt "IPA_JOBS" with
  | Some s -> Option.map clamp (int_of_string_opt (String.trim s))
  | None -> None

let env_jobs () = Option.value ~default:1 (env_override ())

let default_jobs () =
  match env_override () with Some n -> n | None -> recommended ()

(* ------------------------------------------------------------------ *)
(* The pool                                                            *)
(* ------------------------------------------------------------------ *)

type job = {
  total : int;
  next : int Atomic.t;  (** next unclaimed index *)
  completed : int Atomic.t;
  run1 : worker:int -> int -> unit;
  failed : (exn * Printexc.raw_backtrace) option Atomic.t;
      (** first exception of the batch; losers of the race are dropped *)
}

type t = {
  n_jobs : int;
  m : Mutex.t;
  work : Condition.t;  (** a batch was published (or the pool is closing) *)
  done_ : Condition.t;  (** the last item of a batch completed *)
  mutable job : job option;
  mutable epoch : int;  (** bumped per published batch *)
  mutable closing : bool;
  mutable domains : unit Domain.t list;
}

let jobs t = t.n_jobs

(* execute items of [j] until the claim counter runs off the end.  An
   item's exception is recorded (first wins) rather than raised: the
   batch must drain normally or the caller would deadlock waiting for
   completions. *)
let drain t (j : job) ~(worker : int) : unit =
  let rec claim () =
    let i = Atomic.fetch_and_add j.next 1 in
    if i < j.total then begin
      (try j.run1 ~worker i
       with e ->
         let bt = Printexc.get_raw_backtrace () in
         ignore (Atomic.compare_and_set j.failed None (Some (e, bt))));
      if Atomic.fetch_and_add j.completed 1 + 1 = j.total then begin
        Mutex.lock t.m;
        Condition.broadcast t.done_;
        Mutex.unlock t.m
      end;
      claim ()
    end
  in
  claim ()

let worker_loop (t : t) ~(worker : int) : unit =
  let rec loop last_epoch =
    Mutex.lock t.m;
    while (not t.closing) && t.epoch = last_epoch do
      Condition.wait t.work t.m
    done;
    let j = t.job and epoch = t.epoch and closing = t.closing in
    Mutex.unlock t.m;
    if not closing then begin
      (* [j] may already be fully claimed (or cleared: [None]) by the
         time we wake — [drain] then finds nothing and we re-park *)
      (match j with Some job -> drain t job ~worker | None -> ());
      loop epoch
    end
  in
  loop 0

let create ?jobs () : t =
  let n_jobs = clamp (match jobs with Some j -> j | None -> default_jobs ()) in
  let t =
    {
      n_jobs;
      m = Mutex.create ();
      work = Condition.create ();
      done_ = Condition.create ();
      job = None;
      epoch = 0;
      closing = false;
      domains = [];
    }
  in
  t.domains <-
    List.init (n_jobs - 1) (fun i ->
        Domain.spawn (fun () -> worker_loop t ~worker:(i + 1)));
  t

let shutdown (t : t) : unit =
  Mutex.lock t.m;
  t.closing <- true;
  Condition.broadcast t.work;
  Mutex.unlock t.m;
  List.iter Domain.join t.domains;
  t.domains <- []

let with_pool ?jobs (f : t -> 'a) : 'a =
  let t = create ?jobs () in
  Fun.protect ~finally:(fun () -> shutdown t) (fun () -> f t)

(** Run [total] indexed tasks to completion across the pool, caller
    participating as worker 0; re-raises the batch's first exception. *)
let run_batch (t : t) ~(total : int) ~(run1 : worker:int -> int -> unit) :
    unit =
  if total > 0 then
    if t.n_jobs = 1 || total = 1 then
      (* sequential fallback: no publication, no atomics, exceptions
         propagate from the failing item directly *)
      for i = 0 to total - 1 do
        run1 ~worker:0 i
      done
    else begin
      let j =
        {
          total;
          next = Atomic.make 0;
          completed = Atomic.make 0;
          run1;
          failed = Atomic.make None;
        }
      in
      Mutex.lock t.m;
      t.job <- Some j;
      t.epoch <- t.epoch + 1;
      Condition.broadcast t.work;
      Mutex.unlock t.m;
      drain t j ~worker:0;
      Mutex.lock t.m;
      while Atomic.get j.completed < total do
        Condition.wait t.done_ t.m
      done;
      t.job <- None;
      Mutex.unlock t.m;
      match Atomic.get j.failed with
      | Some (e, bt) -> Printexc.raise_with_backtrace e bt
      | None -> ()
    end

(* ------------------------------------------------------------------ *)
(* Order-preserving iteration                                          *)
(* ------------------------------------------------------------------ *)

let map_worker (t : t) ~(f : worker:int -> 'a -> 'b) (xs : 'a list) : 'b list
    =
  match xs with
  | [] -> []
  | _ ->
      let arr = Array.of_list xs in
      let n = Array.length arr in
      let res : 'b option array = Array.make n None in
      run_batch t ~total:n ~run1:(fun ~worker i ->
          res.(i) <- Some (f ~worker arr.(i)));
      List.init n (fun i ->
          match res.(i) with Some v -> v | None -> assert false)

let map (t : t) (f : 'a -> 'b) (xs : 'a list) : 'b list =
  map_worker t ~f:(fun ~worker:_ x -> f x) xs

let filter_map_worker (t : t) ~(f : worker:int -> 'a -> 'b option)
    (xs : 'a list) : 'b list =
  List.filter_map Fun.id (map_worker t ~f xs)

let filter_map (t : t) (f : 'a -> 'b option) (xs : 'a list) : 'b list =
  filter_map_worker t ~f:(fun ~worker:_ x -> f x) xs
