(** Deterministic execution of a trace plus the fuzzer's oracles.

    A run has three phases:

    {ol
    {- {b Seed}: the harness's seed operations execute at replica 0 and
       are broadcast reliably, establishing initial data everywhere.}
    {- {b Faulty schedule}: every trace event is scheduled on the
       discrete-event engine.  Operation events run the real application
       transaction at their replica and replicate the committed batch
       through the fault-injected {!Net} (loss, duplication, tail
       delays, partitions, scripted fault phases); sync events run one
       {!Sync} anti-entropy round whose retransmissions travel the same
       faulty path.  The engine then drains to the trace horizon and
       flushes in-flight deliveries.}
    {- {b Healing}: bounded reliable anti-entropy rounds close every
       remaining delivery gap, driving the cluster to quiescence — the
       paper's "network heals eventually" assumption, after which the
       oracles are judged.}}

    Oracles at quiescence: (1) {e convergence} — all replicas reach
    bit-identical state digests; (2) {e invariance} — every checked
    invariant of the app's spec, grounded over the harness domain,
    holds in each replica's observable state.  Anything else is a
    counterexample.  Every decision (fault, delay, argument) descends
    from the trace's seed, so a run is exactly reproducible — the
    property the shrinker and [--replay] rely on.

    For shrink re-runs, {!make_env} snapshots the seeded cluster once
    ({!Replica.snapshot}) and {!run} restores it instead of re-seeding,
    so candidate executions start from an identical, cheaply-reset
    state. *)

open Ipa_store
open Ipa_sim

type failure =
  | Diverged of (string * string) list
      (** replica id → digest: healing drove the cluster to quiescence
          yet the digests still disagree — a real convergence bug *)
  | Healing_exhausted of {
      rounds : int;  (** healing rounds spent before giving up *)
      pending : int;  (** batches still buffered across the cluster *)
      divergent : string list;
          (** keys whose observable state still differs from replica 0
              (via {!Sync.divergent_keys} tree descent), capped *)
    }
      (** the healing loop hit its round budget before quiescence.
          Distinct from {!Diverged}: this says the {e oracle harness}
          could not finish healing (wedged delivery, or a budget too
          small for the trace), not that converged replicas disagree —
          the two need opposite investigations, so conflating them
          (as a generic "diverged") buries real wedges *)
  | Violation of { inv : string; replica : string }
      (** invariant [inv] is false in [replica]'s observable state *)

type outcome = {
  failures : failure list;  (** empty = the trace passed both oracles *)
  digest : string;  (** replica 0's state digest after healing *)
  committed : int;  (** operations that committed a batch *)
  aborted : int;  (** operations whose precondition failed (or reads) *)
  healing_rounds : int;
}

let pp_failure ppf = function
  | Diverged ds ->
      Fmt.pf ppf "diverged: %a"
        Fmt.(list ~sep:(any ", ") (pair ~sep:(any "=") string string))
        ds
  | Healing_exhausted { rounds; pending; divergent } ->
      Fmt.pf ppf
        "healing exhausted after %d rounds without quiescence (%d batches \
         still pending; %d divergent keys%s%a)"
        rounds pending (List.length divergent)
        (if divergent = [] then "" else ": ")
        Fmt.(list ~sep:(any ", ") string)
        divergent
  | Violation { inv; replica } ->
      Fmt.pf ppf "invariant %s violated at %s" inv replica

let replica_specs =
  [ ("dc-east", "us-east"); ("dc-west", "us-west"); ("dc-eu", "eu-west") ]

(** A reusable execution environment: the harness, its ground checked
    invariants, and a snapshot of the freshly seeded cluster. *)
type env = {
  harness : Harness.t;
  ground : (string * Ipa_logic.Ground.gformula) list;
  cluster : Cluster.t;
  seeded : Cluster.snapshot;
}

let exec_exn (h : Harness.t) ~(name : string) ~(args : string list) :
    Ipa_runtime.Config.op_exec =
  match h.Harness.exec ~name ~args with
  | Some op -> op
  | None ->
      invalid_arg
        (Fmt.str "Oracle: unknown operation %s(%s) for app %s" name
           (String.concat ", " args) h.Harness.app_name)

let make_env (h : Harness.t) : env =
  let cluster = Cluster.create replica_specs in
  let r0 = List.hd cluster.Cluster.replicas in
  List.iter
    (fun (name, args) ->
      let op = exec_exn h ~name ~args in
      let o = op.Ipa_runtime.Config.run r0 in
      match o.Ipa_runtime.Config.batch with
      | Some b -> Cluster.broadcast_now cluster b
      | None -> ())
    h.Harness.seed_ops;
  { harness = h; ground = Harness.ground_checked h; cluster;
    seeded = Cluster.snapshot cluster }

let max_healing_rounds = 500

let run ?(heal_budget = max_healing_rounds) (env : env) (tr : Trace.t) :
    outcome =
  let h = env.harness in
  let cluster = env.cluster in
  Cluster.restore cluster env.seeded;
  let engine = Engine.create () in
  let net =
    Net.create
      ~plan:{ Net.faults = tr.Trace.faults; partitions = tr.Trace.partitions }
      ~phases:tr.Trace.phases ~seed:tr.Trace.seed ()
  in
  let reps = Array.of_list cluster.Cluster.replicas in
  let committed = ref 0 and aborted = ref 0 in
  (* replicate a batch through the faulty path *)
  let send_faulty ~(src : Replica.t) ~(dst : Replica.t) (b : Replica.batch) =
    let now = Engine.now engine in
    List.iter
      (fun delay ->
        Engine.schedule engine ~delay (fun () -> Replica.receive dst b))
      (Net.deliveries net ~now ~src:src.Replica.region
         ~dst:dst.Replica.region)
  in
  let sync = Sync.create cluster in
  List.iter
    (fun ev ->
      Engine.schedule engine ~delay:(Trace.event_time ev) (fun () ->
          match ev with
          | Trace.Ev_sync _ -> ignore (Sync.round sync ~now:(Engine.now engine) ~send:send_faulty)
          | Trace.Ev_op { replica; name; args; _ } ->
              let rep = reps.(replica mod Array.length reps) in
              let op = exec_exn h ~name ~args in
              let o = op.Ipa_runtime.Config.run rep in
              (match o.Ipa_runtime.Config.batch with
              | Some b ->
                  incr committed;
                  List.iter
                    (fun dst -> send_faulty ~src:rep ~dst b)
                    (Cluster.others cluster rep.Replica.id)
              | None -> incr aborted)))
    tr.Trace.events;
  Engine.run_until engine tr.Trace.horizon_ms;
  (* flush in-flight deliveries scheduled past the horizon *)
  Engine.run engine;
  (* healing: reliable direct anti-entropy until quiescent.  A fresh
     Sync avoids inheriting multi-second backoffs from the faulty
     phase; 1 ms base backoff + 10 ms round spacing means every still
     missing batch is retransmitted from the second round on. *)
  let heal = Sync.create ~base_backoff_ms:1.0 ~max_backoff_ms:1.0 cluster in
  let heal_now = ref (Float.max (Engine.now engine) tr.Trace.horizon_ms) in
  let rounds = ref 0 in
  let direct ~src:_ ~(dst : Replica.t) (b : Replica.batch) =
    Replica.receive dst b
  in
  while (not (Cluster.quiescent cluster)) && !rounds < heal_budget do
    incr rounds;
    heal_now := !heal_now +. 10.0;
    ignore (Sync.round heal ~now:!heal_now ~send:direct)
  done;
  (* oracle 1: convergence to bit-identical digests *)
  let digests =
    List.map
      (fun (r : Replica.t) -> (r.Replica.id, Replica.state_digest r))
      cluster.Cluster.replicas
  in
  let digest = snd (List.hd digests) in
  let div =
    if not (Cluster.quiescent cluster) then begin
      (* the healing loop gave up — report that loudly and distinctly,
         never as a silent pass or a generic divergence *)
      let r0 = List.hd cluster.Cluster.replicas in
      let divergent =
        List.concat_map
          (fun (r : Replica.t) ->
            (Sync.divergent_keys ~a:r0 ~b:r).Sync.divergent)
          (Cluster.others cluster r0.Replica.id)
      in
      let divergent =
        List.filteri (fun i _ -> i < 16) (List.sort_uniq compare divergent)
      in
      let pending =
        List.fold_left
          (fun acc (r : Replica.t) -> acc + Replica.pending_count r)
          0 cluster.Cluster.replicas
      in
      [ Healing_exhausted { rounds = !rounds; pending; divergent } ]
    end
    else if List.for_all (fun (_, d) -> d = digest) digests then []
    else [ Diverged digests ]
  in
  (* oracle 2: every checked invariant holds in each replica's
     observable state *)
  let violations =
    List.concat_map
      (fun (r : Replica.t) ->
        let batom, bnum = h.Harness.valuation r in
        List.filter_map
          (fun (inv, gf) ->
            if Ipa_logic.Ground.eval ~batom ~bnum gf then None
            else Some (Violation { inv; replica = r.Replica.id }))
          env.ground)
      cluster.Cluster.replicas
  in
  {
    failures = div @ violations;
    digest;
    committed = !committed;
    aborted = !aborted;
    healing_rounds = !rounds;
  }

(** One-shot convenience: build an environment and run the trace. *)
let check ?heal_budget (h : Harness.t) (tr : Trace.t) : outcome =
  run ?heal_budget (make_env h) tr
