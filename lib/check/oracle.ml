(** Deterministic execution of a trace plus the fuzzer's oracles.

    A run has three phases:

    {ol
    {- {b Seed}: the harness's seed operations execute at replica 0 and
       are broadcast reliably, establishing initial data everywhere.}
    {- {b Faulty schedule}: every trace event is scheduled on the
       discrete-event engine.  Operation events run the real application
       transaction at their replica and replicate the committed batch
       through the fault-injected {!Net} (loss, duplication, tail
       delays, partitions, scripted fault phases); sync events run one
       {!Sync} anti-entropy round whose retransmissions travel the same
       faulty path.  The engine then drains to the trace horizon and
       flushes in-flight deliveries.}
    {- {b Healing}: bounded reliable anti-entropy rounds close every
       remaining delivery gap, driving the cluster to quiescence — the
       paper's "network heals eventually" assumption, after which the
       oracles are judged.}}

    Oracles at quiescence: (1) {e convergence} — all replicas reach
    bit-identical state digests; (2) {e invariance} — every checked
    invariant of the app's spec, grounded over the harness domain,
    holds in each replica's observable state.  Anything else is a
    counterexample.  Every decision (fault, delay, argument) descends
    from the trace's seed, so a run is exactly reproducible — the
    property the shrinker and [--replay] rely on.

    For shrink re-runs, {!make_env} snapshots the seeded cluster once
    ({!Replica.snapshot}) and {!run} restores it instead of re-seeding,
    so candidate executions start from an identical, cheaply-reset
    state. *)

open Ipa_store
open Ipa_sim

type failure =
  | Diverged of (string * string) list
      (** replica id → digest: healing drove the cluster to quiescence
          yet the digests still disagree — a real convergence bug *)
  | Healing_exhausted of {
      rounds : int;  (** healing rounds spent before giving up *)
      pending : int;  (** batches still buffered across the cluster *)
      divergent : string list;
          (** keys whose observable state still differs from replica 0
              (via {!Sync.divergent_keys} tree descent), capped *)
    }
      (** the healing loop hit its round budget before quiescence.
          Distinct from {!Diverged}: this says the {e oracle harness}
          could not finish healing (wedged delivery, or a budget too
          small for the trace), not that converged replicas disagree —
          the two need opposite investigations, so conflating them
          (as a generic "diverged") buries real wedges *)
  | Violation of { inv : string; replica : string }
      (** invariant [inv] is false in [replica]'s observable state *)
  | Recovery_diverged of { expected : string; got : string }
      (** the cluster converged, but to a different digest than the
          same schedule with its crash events stripped — WAL recovery
          lost or invented state.  Only judged when the crash-free
          reference itself passes both oracles (otherwise the trace is
          broken with or without crashes) *)
  | Interval_escape of {
      at : float;
      replica : string;
      lo : int;
      hi : int option;
      truth : int;
    }
      (** an escrow interval read promised [lo ≤ strong value ≤ hi] but
          the true committed value (the omniscient shadow replica's)
          escaped the interval — the local-escrow bound derivation is
          unsound *)
  | Stale_read of { at : float; replica : string; served_by : string }
      (** a bounded-staleness read was served by a replica whose clock
          does not cover the resolved bound — the cover rule admitted a
          reader staler than the budget promised *)
  | Strong_read_lag of { at : float; replica : string; got : int; want : int }
      (** a strong read returned a value different from the true
          committed value — the quiesce barrier let an update slip by *)
  | Rights_leak of { at : float; replica : string; detail : string }
      (** an escrow conservation identity broke in [replica]'s
          causally-consistent view ({!Ipa_crdt.Bcounter.audit}): rights
          or headroom leaked, a replica overdrew its ledger, or the
          value escaped [0, granted].  Audited after every escrow commit
          at the committing replica and at quiescence everywhere —
          escrowed rights must always satisfy
          {e remaining + spent = bound}, no matter how Transfer / Grant
          / Hmove / migration ops interleave *)

type outcome = {
  failures : failure list;  (** empty = the trace passed both oracles *)
  digest : string;  (** replica 0's state digest after healing *)
  committed : int;  (** operations that committed a batch *)
  aborted : int;  (** operations whose precondition failed (or reads) *)
  healing_rounds : int;
}

let pp_failure ppf = function
  | Diverged ds ->
      Fmt.pf ppf "diverged: %a"
        Fmt.(list ~sep:(any ", ") (pair ~sep:(any "=") string string))
        ds
  | Healing_exhausted { rounds; pending; divergent } ->
      Fmt.pf ppf
        "healing exhausted after %d rounds without quiescence (%d batches \
         still pending; %d divergent keys%s%a)"
        rounds pending (List.length divergent)
        (if divergent = [] then "" else ": ")
        Fmt.(list ~sep:(any ", ") string)
        divergent
  | Violation { inv; replica } ->
      Fmt.pf ppf "invariant %s violated at %s" inv replica
  | Recovery_diverged { expected; got } ->
      Fmt.pf ppf
        "crash recovery diverged: cluster converged to %s but the \
         crash-free reference converges to %s"
        got expected
  | Interval_escape { at; replica; lo; hi; truth } ->
      Fmt.pf ppf
        "interval read at %s (t=%g) escaped: true committed value %d \
         outside [%d, %s]"
        replica at truth lo
        (match hi with Some h -> string_of_int h | None -> "∞")
  | Stale_read { at; replica; served_by } ->
      Fmt.pf ppf
        "bounded read at %s (t=%g) served by %s, whose clock does not \
         cover the resolved bound"
        replica at served_by
  | Strong_read_lag { at; replica; got; want } ->
      Fmt.pf ppf "strong read at %s (t=%g) returned %d, truth is %d"
        replica at got want
  | Rights_leak { at; replica; detail } ->
      Fmt.pf ppf "escrow conservation broke at %s (t=%g): %s" replica at
        detail

let replica_specs =
  [ ("dc-east", "us-east"); ("dc-west", "us-west"); ("dc-eu", "eu-west") ]

(** The fuzzer-owned escrow counter key, seeded in every environment
    regardless of app: its grants/rights partition is what the interval
    and staleness oracles exercise. *)
let escrow_key = "__escrow"

(** A reusable execution environment: the harness, its ground checked
    invariants, a snapshot of the freshly seeded cluster, and the
    omniscient {e shadow} replica — a replica outside the cluster that
    receives every committed batch instantly, so its state is the true
    committed ("strongly consistent") value the read oracles judge
    against. *)
type env = {
  harness : Harness.t;
  ground : (string * Ipa_logic.Ground.gformula) list;
  cluster : Cluster.t;
  seeded : Cluster.snapshot;
  shadow : Replica.t;
  shadow_seeded : Replica.snapshot;
}

let exec_exn (h : Harness.t) ~(name : string) ~(args : string list) :
    Ipa_runtime.Config.op_exec =
  match h.Harness.exec ~name ~args with
  | Some op -> op
  | None ->
      invalid_arg
        (Fmt.str "Oracle: unknown operation %s(%s) for app %s" name
           (String.concat ", " args) h.Harness.app_name)

let make_env (h : Harness.t) : env =
  let cluster = Cluster.create replica_specs in
  let r0 = List.hd cluster.Cluster.replicas in
  let ids = List.map fst replica_specs in
  let shadow = Replica.create ~region:"shadow" "shadow" in
  shadow.Replica.peers <- ids;
  let commit_everywhere b =
    Cluster.broadcast_now cluster b;
    Replica.receive shadow b
  in
  List.iter
    (fun (name, args) ->
      let op = exec_exn h ~name ~args in
      let o = op.Ipa_runtime.Config.run r0 in
      match o.Ipa_runtime.Config.batch with
      | Some b -> commit_everywhere b
      | None -> ())
    h.Harness.seed_ops;
  (* seed the fuzzer-owned escrow counter: grants are seed-only (the
     interval upper bound is only sound against observers that applied
     every grant), so cap it here and spread both rights and headroom
     across the replicas before the faulty schedule runs *)
  (let tx = Txn.begin_ r0 in
   let open Ipa_crdt in
   let bc () = Obj.as_bcounter (Txn.get tx escrow_key Obj.T_bcounter) in
   let upd op = Txn.update tx escrow_key (Obj.Op_bcounter op) in
   let id i = List.nth ids i in
   upd (Bcounter.prepare_grant (bc ()) ~rep:(id 0) 30);
   upd (Bcounter.prepare_hmove (bc ()) ~from_:(id 0) ~to_:(id 1) 10);
   upd (Bcounter.prepare_hmove (bc ()) ~from_:(id 0) ~to_:(id 2) 10);
   upd (Bcounter.prepare_inc (bc ()) ~rep:(id 0) 6);
   upd (Bcounter.prepare_transfer (bc ()) ~from_:(id 0) ~to_:(id 1) 2);
   upd (Bcounter.prepare_transfer (bc ()) ~from_:(id 0) ~to_:(id 2) 2);
   match Txn.commit tx with
   | Some b -> commit_everywhere b
   | None -> assert false);
  { harness = h; ground = Harness.ground_checked h; cluster;
    seeded = Cluster.snapshot cluster; shadow;
    shadow_seeded = Replica.snapshot shadow }

let max_healing_rounds = 500

(* distinct on-disk WAL directory per crash run: never reuses a stale
   directory (mkdir fails on an existing one and the counter moves on),
   so leftover logs from a killed process cannot leak into replay *)
let wal_dir_seq = Atomic.make 0

let fresh_wal_dir () =
  let base = Filename.get_temp_dir_name () in
  let rec go () =
    let n = Atomic.fetch_and_add wal_dir_seq 1 in
    let d = Filename.concat base (Printf.sprintf "ipa-oracle-wal-%d" n) in
    match Sys.mkdir d 0o755 with () -> d | exception Sys_error _ -> go ()
  in
  go ()

let rec run ?(heal_budget = max_healing_rounds) (env : env) (tr : Trace.t) :
    outcome =
  let h = env.harness in
  let cluster = env.cluster in
  (* recovery oracle, part 1: a trace with crash events is first
     executed with them stripped.  Crashes are generated after the last
     operation (see {!Gen.generate}), so the committed-batch sets of
     the two runs coincide and confluence demands identical converged
     digests — recursion depth is at most one *)
  let reference =
    if Trace.n_crashes tr = 0 then None
    else
      Some
        (run ~heal_budget env
           {
             tr with
             Trace.events =
               List.filter
                 (function Trace.Ev_crash _ -> false | _ -> true)
                 tr.Trace.events;
           })
  in
  Cluster.restore cluster env.seeded;
  Replica.restore env.shadow env.shadow_seeded;
  let engine = Engine.create () in
  let net =
    Net.create
      ~plan:{ Net.faults = tr.Trace.faults; partitions = tr.Trace.partitions }
      ~phases:tr.Trace.phases ~seed:tr.Trace.seed ()
  in
  let reps = Array.of_list cluster.Cluster.replicas in
  let committed = ref 0 and aborted = ref 0 in
  (* replicate a batch through the faulty path *)
  let send_faulty ~(src : Replica.t) ~(dst : Replica.t) (b : Replica.batch) =
    let now = Engine.now engine in
    List.iter
      (fun delay ->
        Engine.schedule engine ~delay (fun () -> Replica.receive dst b))
      (Net.deliveries net ~now ~src:src.Replica.region
         ~dst:dst.Replica.region)
  in
  let sync = Sync.create cluster in
  (* global commit clock + its history: the merge of every committed
     batch's after-clock, checkpointed at commit time.  A bounded read's
     staleness budget δ resolves against this history — the newest
     checkpoint at or before now − δ (the seeded clock when the cutoff
     predates every commit, which every replica trivially covers). *)
  let gvv = ref (List.hd cluster.Cluster.replicas).Replica.vv in
  let ghist = ref [ (0.0, !gvv) ] in
  let push_clock now after =
    gvv := Ipa_crdt.Vclock.merge !gvv after;
    ghist := (now, !gvv) :: !ghist
  in
  let resolve_bound now delta =
    let cutoff = now -. delta in
    let rec go = function
      | [ (_, vv) ] -> vv
      | (t, vv) :: rest -> if t <= cutoff then vv else go rest
      | [] -> Ipa_crdt.Vclock.empty
    in
    go !ghist
  in
  (* the true committed value of the escrow counter: the shadow replica
     receives every committed batch the instant it commits *)
  let shadow_value () =
    match Replica.peek env.shadow escrow_key with
    | Some o -> Ipa_crdt.Bcounter.quick_value (Obj.as_bcounter o)
    | None -> 0
  in
  let read_failures = ref [] in
  (* recovery oracle, part 2: rig per-replica WALs.  The baseline
     checkpoint captures the seeded state (which predates the log);
     afterwards every local commit is flushed synchronously and remote
     applies are group-committed, exactly the durability contract the
     crash events then attack.  Hooks are restored and the directory
     removed before returning, so the environment stays reusable. *)
  let wal_rig =
    if Trace.n_crashes tr = 0 then None
    else begin
      let dir = fresh_wal_dir () in
      let saved =
        Array.map
          (fun (r : Replica.t) -> (r.Replica.on_commit, r.Replica.on_apply))
          reps
      in
      let ws =
        Array.map
          (fun (r : Replica.t) ->
            let w = Wal.create ~dir ~id:r.Replica.id () in
            Wal.attach w r;
            Wal.checkpoint ~gc:false w r;
            w)
          reps
      in
      Some (dir, ws, saved)
    end
  in
  (* a committed batch goes everywhere: the faulty path to the cluster
     peers, instantly to the shadow, and into the commit-clock history *)
  let commit_batch (rep : Replica.t) (b : Replica.batch) =
    incr committed;
    Replica.receive env.shadow b;
    push_clock (Engine.now engine) b.Replica.b_after;
    List.iter
      (fun dst -> send_faulty ~src:rep ~dst b)
      (Cluster.others cluster rep.Replica.id)
  in
  let syncs_run = ref 0 in
  List.iter
    (fun ev ->
      Engine.schedule engine ~delay:(Trace.event_time ev) (fun () ->
          match ev with
          | Trace.Ev_sync _ ->
              ignore (Sync.round sync ~now:(Engine.now engine) ~send:send_faulty);
              (match wal_rig with
              | Some (_, ws, _) ->
                  (* periodic checkpoints exercise snapshot + replay
                     from mid-workload cuts, not just the seed baseline *)
                  incr syncs_run;
                  if !syncs_run mod 3 = 0 then
                    Array.iteri
                      (fun i (r : Replica.t) -> Wal.checkpoint ws.(i) r)
                      reps
              | None -> ())
          | Trace.Ev_crash { replica; _ } -> (
              match wal_rig with
              | Some (_, ws, _) ->
                  let i = replica mod Array.length reps in
                  Wal.crash ws.(i);
                  ignore (Wal.recover ws.(i) reps.(i))
              | None -> ())
          | Trace.Ev_op { replica; name; args; _ } ->
              let rep = reps.(replica mod Array.length reps) in
              let op = exec_exn h ~name ~args in
              let o = op.Ipa_runtime.Config.run rep in
              (match o.Ipa_runtime.Config.batch with
              | Some b -> commit_batch rep b
              | None -> incr aborted)
          | Trace.Ev_escrow { at; replica; eop } -> (
              let rep = reps.(replica mod Array.length reps) in
              let tx = Txn.begin_ rep in
              let c () =
                Obj.as_bcounter (Txn.get tx escrow_key Obj.T_bcounter)
              in
              let me = rep.Replica.id in
              let dst_id d = reps.(d mod Array.length reps).Replica.id in
              let open Ipa_crdt in
              match
                match eop with
                | Trace.Es_inc n -> Some (Bcounter.prepare_inc (c ()) ~rep:me n)
                | Trace.Es_dec n -> Some (Bcounter.prepare_dec (c ()) ~rep:me n)
                | Trace.Es_transfer { dst; n } ->
                    let to_ = dst_id dst in
                    if to_ = me then None
                    else Some (Bcounter.prepare_transfer (c ()) ~from_:me ~to_ n)
                | Trace.Es_hmove { dst; n } ->
                    let to_ = dst_id dst in
                    if to_ = me then None
                    else Some (Bcounter.prepare_hmove (c ()) ~from_:me ~to_ n)
                | Trace.Es_demand n ->
                    Some (Bcounter.prepare_demand (c ()) ~rep:me n)
                | Trace.Es_hdemand n ->
                    Some (Bcounter.prepare_hdemand (c ()) ~rep:me n)
              with
              | exception
                  ( Bcounter.Insufficient_rights _
                  | Bcounter.Insufficient_headroom _ ) ->
                  (* out of escrow at this replica: the precondition
                     fails locally, like any aborted app operation *)
                  Txn.abort tx;
                  incr aborted
              | None ->
                  Txn.abort tx;
                  incr aborted
              | Some op -> (
                  Txn.update tx escrow_key (Obj.Op_bcounter op);
                  match Txn.commit tx with
                  | Some b ->
                      commit_batch rep b;
                      (* conservation oracle, mid-run: the committing
                         replica's view is causally consistent, so every
                         ledger identity must already hold in it *)
                      (match Replica.peek rep escrow_key with
                      | Some o -> (
                          match Bcounter.audit (Obj.as_bcounter o) with
                          | Some detail ->
                              read_failures :=
                                Rights_leak
                                  { at; replica = rep.Replica.id; detail }
                                :: !read_failures
                          | None -> ())
                      | None -> ())
                  | None -> incr aborted))
          | Trace.Ev_read { at; replica; level } -> (
              let rep = reps.(replica mod Array.length reps) in
              let fail f = read_failures := f :: !read_failures in
              incr aborted (* reads never commit a batch *);
              match level with
              | Trace.R_weak ->
                  (* no guarantee to judge — exercises the weak path *)
                  ignore
                    (Read.read cluster Read.Weak ~prefer:rep.Replica.id
                       escrow_key)
              | Trace.R_interval ->
                  let iv = Read.interval_at rep escrow_key in
                  let truth = shadow_value () in
                  let contained =
                    iv.Read.lo <= truth
                    && (match iv.Read.hi with
                       | None -> true
                       | Some h -> truth <= h)
                  in
                  if not contained then
                    fail
                      (Interval_escape
                         { at; replica = rep.Replica.id; lo = iv.Read.lo;
                           hi = iv.Read.hi; truth })
              | Trace.R_bounded delta ->
                  let bound = resolve_bound (Engine.now engine) delta in
                  let res =
                    Read.read cluster (Read.Bounded bound)
                      ~prefer:rep.Replica.id escrow_key
                  in
                  if not (Ipa_crdt.Vclock.leq bound res.Read.at) then
                    fail
                      (Stale_read
                         { at; replica = rep.Replica.id;
                           served_by = res.Read.served_by })
              | Trace.R_strong ->
                  let res =
                    Read.read cluster Read.Strong ~prefer:rep.Replica.id
                      escrow_key
                  in
                  let got =
                    match Read.value res with
                    | Some o ->
                        Ipa_crdt.Bcounter.quick_value (Obj.as_bcounter o)
                    | None -> 0
                  in
                  let want = shadow_value () in
                  if got <> want then
                    fail
                      (Strong_read_lag
                         { at; replica = rep.Replica.id; got; want }))))
    tr.Trace.events;
  Engine.run_until engine tr.Trace.horizon_ms;
  (* flush in-flight deliveries scheduled past the horizon *)
  Engine.run engine;
  (* healing: reliable direct anti-entropy until quiescent.  A fresh
     Sync avoids inheriting multi-second backoffs from the faulty
     phase; 1 ms base backoff + 10 ms round spacing means every still
     missing batch is retransmitted from the second round on. *)
  let heal = Sync.create ~base_backoff_ms:1.0 ~max_backoff_ms:1.0 cluster in
  let heal_now = ref (Float.max (Engine.now engine) tr.Trace.horizon_ms) in
  let rounds = ref 0 in
  let direct ~src:_ ~(dst : Replica.t) (b : Replica.batch) =
    Replica.receive dst b
  in
  while (not (Cluster.quiescent cluster)) && !rounds < heal_budget do
    incr rounds;
    heal_now := !heal_now +. 10.0;
    ignore (Sync.round heal ~now:!heal_now ~send:direct)
  done;
  (* dismantle the WAL rig before judging: restore the replicas' hooks
     (the env outlives this run) and remove the on-disk files *)
  (match wal_rig with
  | Some (dir, ws, saved) ->
      Array.iteri
        (fun i (r : Replica.t) ->
          let pc, pa = saved.(i) in
          r.Replica.on_commit <- pc;
          r.Replica.on_apply <- pa;
          Wal.remove_files ws.(i))
        reps;
      (try Sys.rmdir dir with Sys_error _ -> ())
  | None -> ());
  (* oracle 1: convergence to bit-identical digests *)
  let digests =
    List.map
      (fun (r : Replica.t) -> (r.Replica.id, Replica.state_digest r))
      cluster.Cluster.replicas
  in
  let digest = snd (List.hd digests) in
  let div =
    if not (Cluster.quiescent cluster) then begin
      (* the healing loop gave up — report that loudly and distinctly,
         never as a silent pass or a generic divergence *)
      let r0 = List.hd cluster.Cluster.replicas in
      let divergent =
        List.concat_map
          (fun (r : Replica.t) ->
            (Sync.divergent_keys ~a:r0 ~b:r).Sync.divergent)
          (Cluster.others cluster r0.Replica.id)
      in
      let divergent =
        List.filteri (fun i _ -> i < 16) (List.sort_uniq compare divergent)
      in
      let pending =
        List.fold_left
          (fun acc (r : Replica.t) -> acc + Replica.pending_count r)
          0 cluster.Cluster.replicas
      in
      [ Healing_exhausted { rounds = !rounds; pending; divergent } ]
    end
    else if List.for_all (fun (_, d) -> d = digest) digests then []
    else [ Diverged digests ]
  in
  (* recovery oracle, part 3: a converged crash run must land on the
     crash-free reference digest (judged only when both runs otherwise
     pass — a trace that fails without crashes indicts something else) *)
  let recovery =
    match reference with
    | Some ref_o
      when div = []
           && ref_o.failures = []
           && not (String.equal ref_o.digest digest) ->
        [ Recovery_diverged { expected = ref_o.digest; got = digest } ]
    | _ -> []
  in
  (* oracle 2: every checked invariant holds in each replica's
     observable state *)
  let violations =
    List.concat_map
      (fun (r : Replica.t) ->
        let batom, bnum = h.Harness.valuation r in
        List.filter_map
          (fun (inv, gf) ->
            if Ipa_logic.Ground.eval ~batom ~bnum gf then None
            else Some (Violation { inv; replica = r.Replica.id }))
          env.ground)
      cluster.Cluster.replicas
  in
  (* oracle 3: escrow conservation at quiescence — after healing, every
     replica's view of the fuzzer-owned counter must satisfy all the
     ledger identities (rights remaining + spent = bound, no overdrawn
     replica, value within [0, granted]) *)
  let leaks =
    List.filter_map
      (fun (r : Replica.t) ->
        match Replica.peek r escrow_key with
        | Some o -> (
            match Ipa_crdt.Bcounter.audit (Obj.as_bcounter o) with
            | Some detail ->
                Some
                  (Rights_leak
                     { at = !heal_now; replica = r.Replica.id; detail })
            | None -> None)
        | None -> None)
      cluster.Cluster.replicas
  in
  {
    failures = div @ recovery @ violations @ leaks @ List.rev !read_failures;
    digest;
    committed = !committed;
    aborted = !aborted;
    healing_rounds = !rounds;
  }

(** One-shot convenience: build an environment and run the trace. *)
let check ?heal_budget (h : Harness.t) (tr : Trace.t) : outcome =
  run ?heal_budget (make_env h) tr
