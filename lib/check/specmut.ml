(** Validity-preserving random specification mutations.

    Used by the parser/renderer round-trip property: the identity
    [parse ∘ render] must hold not just on the hand-written catalog
    specs but on a whole neighbourhood of structurally distinct specs
    around them.  Every mutation keeps the spec well-formed (it still
    passes [Validate.check]), exercising renderer paths the catalog
    alone would not: negative and zero deltas, touch annotations on
    arbitrary effects, every convergence rule, fresh consts and
    sorts. *)

open Ipa_spec.Types
open Ipa_sim

(* replace the [i]th element *)
let replace_nth (i : int) (f : 'a -> 'a) (l : 'a list) : 'a list =
  List.mapi (fun j x -> if j = i then f x else x) l

(* one validity-preserving perturbation of an operation's effect list;
   the name, parameters and spec signature are untouched *)
let perturb_op (rng : Rng.t) (op : operation) : operation =
  match op.oeffects with
  | [] -> op
  | effs -> (
      let ei = Rng.int rng (List.length effs) in
      match Rng.int rng 4 with
      | 0 ->
          (* flip a boolean assignment / negate a delta *)
          let flip (ae : annotated_effect) =
            let eff =
              match ae.eff.evalue with
              | Set b -> { ae.eff with evalue = Set (not b) }
              | Delta d -> { ae.eff with evalue = Delta (-d) }
            in
            { ae with eff }
          in
          { op with oeffects = replace_nth ei flip effs }
      | 1 ->
          (* toggle the touch annotation *)
          let toggle (ae : annotated_effect) =
            {
              ae with
              mode = (match ae.mode with Write -> Touch | Touch -> Write);
            }
          in
          { op with oeffects = replace_nth ei toggle effs }
      | 2 ->
          (* bump a delta (no-op for boolean effects) *)
          let bump (ae : annotated_effect) =
            match ae.eff.evalue with
            | Delta d -> { ae with eff = { ae.eff with evalue = Delta (d + 1) } }
            | Set _ -> ae
          in
          { op with oeffects = replace_nth ei bump effs }
      | _ ->
          (* duplicate an effect *)
          { op with oeffects = effs @ [ List.nth effs ei ] })

let mutate_operation (rng : Rng.t) (spec : t) : t =
  match spec.operations with
  | [] -> spec
  | ops ->
      let oi = Rng.int rng (List.length ops) in
      let mutate_op (op : operation) =
        match op.oeffects with
        | [] -> { op with oname = op.oname ^ "_m" }
        | _ -> perturb_op rng op
      in
      { spec with operations = replace_nth oi mutate_op ops }

let rotate_rule : conv_rule -> conv_rule = function
  | Add_wins -> Rem_wins
  | Rem_wins -> Lww
  | Lww -> Add_wins

(** Apply one random validity-preserving mutation. *)
let mutate (rng : Rng.t) (spec : t) : t =
  match Rng.int rng 5 with
  | 0 -> { spec with consts = spec.consts @ [ ("K_mut", Rng.int rng 10) ] }
  | 1 -> { spec with sorts = spec.sorts @ [ "MutSort" ] }
  | 2 when spec.rules <> [] ->
      let ri = Rng.int rng (List.length spec.rules) in
      {
        spec with
        rules = replace_nth ri (fun (p, r) -> (p, rotate_rule r)) spec.rules;
      }
  | 3 when spec.operations <> [] ->
      let oi = Rng.int rng (List.length spec.operations) in
      {
        spec with
        operations =
          replace_nth oi
            (fun (op : operation) -> { op with oname = op.oname ^ "_m" })
            spec.operations;
      }
  | _ -> mutate_operation rng spec

(** Apply [n] random mutations in sequence. *)
let mutations (rng : Rng.t) (spec : t) (n : int) : t =
  let rec go spec n = if n <= 0 then spec else go (mutate rng spec) (n - 1) in
  go spec n

(** [grow rng spec n] appends [n] operations cloned from existing ones
    under fresh names, with perturbed effects.  The signature (sorts,
    predicates, constants) is untouched, so analysis contexts survive:
    growing inflates the pair matrix — which is what the incremental
    edit-loop benchmark needs — without resembling a different
    application. *)
let grow (rng : Rng.t) (spec : t) (n : int) : t =
  match spec.operations with
  | [] -> spec
  | ops ->
      let base = Array.of_list ops in
      let clones =
        List.init n (fun i ->
            let src = base.(Rng.int rng (Array.length base)) in
            let src = perturb_op rng src in
            { src with oname = Fmt.str "%s_g%d" src.oname (i + 1) })
      in
      { spec with operations = ops @ clones }

(** [edit_operation rng spec] perturbs the effects of one randomly
    chosen operation {e in place} — name, parameters and signature
    preserved — modelling the canonical single-operation edit of an
    editing session.  Returns the edited spec and the operation's name
    (the empty string when nothing is editable).  Retries a few
    perturbations so the edit is a real change whenever one exists. *)
let edit_operation (rng : Rng.t) (spec : t) : t * string =
  match
    List.filter (fun (o : operation) -> o.oeffects <> []) spec.operations
  with
  | [] -> (spec, "")
  | editable ->
      let name =
        (List.nth editable (Rng.int rng (List.length editable))).oname
      in
      let edit () =
        List.map
          (fun (o : operation) ->
            if o.oname = name then perturb_op rng o else o)
          spec.operations
      in
      let rec try_ n =
        let ops' = edit () in
        if ops' <> spec.operations || n = 0 then ops' else try_ (n - 1)
      in
      ({ spec with operations = try_ 8 }, name)

(** [edit_stream rng spec k]: a session of [k] cumulative
    single-operation edits; element [i] is the spec after edits
    [0..i] together with the name of the operation edit [i] touched. *)
let edit_stream (rng : Rng.t) (spec : t) (k : int) : (t * string) list =
  let rec go spec k acc =
    if k <= 0 then List.rev acc
    else
      let spec', name = edit_operation rng spec in
      go spec' (k - 1) ((spec', name) :: acc)
  in
  go spec k []
