(** Validity-preserving random specification mutations.

    Used by the parser/renderer round-trip property: the identity
    [parse ∘ render] must hold not just on the hand-written catalog
    specs but on a whole neighbourhood of structurally distinct specs
    around them.  Every mutation keeps the spec well-formed (it still
    passes [Validate.check]), exercising renderer paths the catalog
    alone would not: negative and zero deltas, touch annotations on
    arbitrary effects, every convergence rule, fresh consts and
    sorts. *)

open Ipa_spec.Types
open Ipa_sim

(* replace the [i]th element *)
let replace_nth (i : int) (f : 'a -> 'a) (l : 'a list) : 'a list =
  List.mapi (fun j x -> if j = i then f x else x) l

let mutate_operation (rng : Rng.t) (spec : t) : t =
  match spec.operations with
  | [] -> spec
  | ops ->
      let oi = Rng.int rng (List.length ops) in
      let mutate_op (op : operation) =
        match op.oeffects with
        | [] -> { op with oname = op.oname ^ "_m" }
        | effs -> (
            let ei = Rng.int rng (List.length effs) in
            match Rng.int rng 4 with
            | 0 ->
                (* flip a boolean assignment / negate a delta *)
                let flip (ae : annotated_effect) =
                  let eff =
                    match ae.eff.evalue with
                    | Set b -> { ae.eff with evalue = Set (not b) }
                    | Delta d -> { ae.eff with evalue = Delta (-d) }
                  in
                  { ae with eff }
                in
                { op with oeffects = replace_nth ei flip effs }
            | 1 ->
                (* toggle the touch annotation *)
                let toggle (ae : annotated_effect) =
                  {
                    ae with
                    mode = (match ae.mode with Write -> Touch | Touch -> Write);
                  }
                in
                { op with oeffects = replace_nth ei toggle effs }
            | 2 ->
                (* bump a delta (or rename, for boolean effects) *)
                let bump (ae : annotated_effect) =
                  match ae.eff.evalue with
                  | Delta d -> { ae with eff = { ae.eff with evalue = Delta (d + 1) } }
                  | Set _ -> ae
                in
                { op with oeffects = replace_nth ei bump effs; oname = op.oname }
            | _ ->
                (* duplicate an effect *)
                { op with oeffects = effs @ [ List.nth effs ei ] })
      in
      { spec with operations = replace_nth oi mutate_op ops }

let rotate_rule : conv_rule -> conv_rule = function
  | Add_wins -> Rem_wins
  | Rem_wins -> Lww
  | Lww -> Add_wins

(** Apply one random validity-preserving mutation. *)
let mutate (rng : Rng.t) (spec : t) : t =
  match Rng.int rng 5 with
  | 0 -> { spec with consts = spec.consts @ [ ("K_mut", Rng.int rng 10) ] }
  | 1 -> { spec with sorts = spec.sorts @ [ "MutSort" ] }
  | 2 when spec.rules <> [] ->
      let ri = Rng.int rng (List.length spec.rules) in
      {
        spec with
        rules = replace_nth ri (fun (p, r) -> (p, rotate_rule r)) spec.rules;
      }
  | 3 when spec.operations <> [] ->
      let oi = Rng.int rng (List.length spec.operations) in
      {
        spec with
        operations =
          replace_nth oi
            (fun (op : operation) -> { op with oname = op.oname ^ "_m" })
            spec.operations;
      }
  | _ -> mutate_operation rng spec

(** Apply [n] random mutations in sequence. *)
let mutations (rng : Rng.t) (spec : t) (n : int) : t =
  let rec go spec n = if n <= 0 then spec else go (mutate rng spec) (n - 1) in
  go spec n
