(** Seed-driven random schedule generation: the trace is a pure
    function of [(app, repaired, seed, n_ops, crashes)].

    [crashes] (default 0) appends that many crash–recover events, drawn
    in the tail window after the last operation so the recovery oracle
    can demand bit-identical convergence with the crash-free reference
    run; the crash draws follow every other draw, so [crashes = 0]
    reproduces older schedules byte for byte. *)

val generate :
  app:string ->
  repaired:bool ->
  seed:int ->
  ?n_ops:int ->
  ?crashes:int ->
  unit ->
  Trace.t
