(** Seed-driven random schedule generation: the trace is a pure
    function of [(app, repaired, seed, n_ops)]. *)

val generate :
  app:string -> repaired:bool -> seed:int -> ?n_ops:int -> unit -> Trace.t
