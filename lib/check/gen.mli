(** Seed-driven random schedule generation: the trace is a pure
    function of [(app, repaired, seed, n_ops, crashes, reads)].

    [crashes] (default 0) appends that many crash–recover events, drawn
    in the tail window after the last operation so the recovery oracle
    can demand bit-identical convergence with the crash-free reference
    run; the crash draws follow every other draw, so [crashes = 0]
    reproduces older schedules byte for byte.

    [reads] (default 0) adds that many read/escrow events — weak,
    bounded-staleness, strong and interval reads of the fuzzer-owned
    escrow counter ({!Oracle.escrow_key}) plus mutations of it — placed
    inside the operation span, before any crash tail.  Their draws
    follow the crash draws, so [reads = 0] also reproduces older
    schedules byte for byte.

    [escrow_skew] (default 0) adds that many demand-skewed escrow
    events: one hot replica (drawn once) issues ~70% of them with a
    decrement-heavy mix plus occasional transfers and advisory
    [Demand]/[Hdemand] publications — draining one replica's rights so
    the conservation oracle sees the interleavings the escrow planner's
    migrations create.  These draws follow every other draw, so
    [escrow_skew = 0] keeps older schedules byte-identical. *)

val generate :
  app:string ->
  repaired:bool ->
  seed:int ->
  ?n_ops:int ->
  ?crashes:int ->
  ?reads:int ->
  ?escrow_skew:int ->
  unit ->
  Trace.t
