(** Fuzzer traces and their replay codec.

    A trace is a complete, self-contained description of one simulated
    execution: which app (and whether its repaired variant runs), the
    RNG seed driving the network's fault decisions, the fault plan
    (baseline probabilities, scripted fault phases, partition windows),
    and the scheduled events — operations at specific replicas and
    anti-entropy rounds, each at an absolute simulation time.  Replaying
    a trace through {!Oracle.run} is bit-deterministic: same trace, same
    final digests, same verdict.

    The codec is a line-oriented text format (one [key value...] pair
    per line, [#] comments) so counterexamples shrunk in CI can be
    replayed locally with [ipa_tool fuzz --replay FILE].  Floats are
    printed with 17 significant digits, which round-trips IEEE doubles
    exactly — a parsed trace replays identically to the in-memory one
    that produced it. *)

open Ipa_sim

(** The level a scheduled read observes the store at; [R_bounded d] is a
    staleness budget in milliseconds, resolved against the global commit
    history at execution time. *)
type read_level = R_weak | R_bounded of float | R_strong | R_interval

(** Operations on the fuzzer-owned escrow counter key (seeded in every
    run by {!Oracle.make_env}); [dst] is a replica index. *)
type escrow_op =
  | Es_inc of int
  | Es_dec of int
  | Es_transfer of { dst : int; n : int }  (** move decrement rights *)
  | Es_hmove of { dst : int; n : int }  (** move increment headroom *)
  | Es_demand of int  (** publish advisory decrement-demand *)
  | Es_hdemand of int  (** publish advisory increment-demand *)

type event =
  | Ev_op of { at : float; replica : int; name : string; args : string list }
      (** execute operation [name(args)] at the replica with this index *)
  | Ev_sync of { at : float }  (** one anti-entropy round (faulty path) *)
  | Ev_crash of { at : float; replica : int }
      (** crash the replica (losing its unflushed WAL tail) and recover
          it in place from snapshot + WAL *)
  | Ev_read of { at : float; replica : int; level : read_level }
      (** client read at the replica, judged by the oracle: interval
          reads must contain the true committed value, bounded reads
          must reflect everything at or below the resolved bound *)
  | Ev_escrow of { at : float; replica : int; eop : escrow_op }
      (** operation on the fuzzer-owned escrow counter *)

type t = {
  app : string;  (** catalog app: tournament | twitter | ticket | tpcw *)
  repaired : bool;  (** IPA-repaired variant vs the causal baseline *)
  seed : int;  (** seeds the network RNG (fault decisions, jitter) *)
  faults : Net.faults;  (** baseline fault probabilities *)
  phases : Net.phase list;  (** scripted fault bursts *)
  partitions : Net.partition list;
  horizon_ms : float;  (** faulty phase ends here; healing follows *)
  expect_failure : bool;  (** this trace is a saved counterexample *)
  expect_digest : string option;
      (** converged digest of the failing run, for replay comparison *)
  events : event list;  (** in schedule order (non-decreasing time) *)
}

let event_time = function
  | Ev_op { at; _ } -> at
  | Ev_sync { at } -> at
  | Ev_crash { at; _ } -> at
  | Ev_read { at; _ } -> at
  | Ev_escrow { at; _ } -> at

let n_events (tr : t) : int = List.length tr.events

let n_ops (tr : t) : int =
  List.length
    (List.filter (function Ev_op _ -> true | _ -> false) tr.events)

let n_crashes (tr : t) : int =
  List.length
    (List.filter (function Ev_crash _ -> true | _ -> false) tr.events)

let n_reads (tr : t) : int =
  List.length
    (List.filter
       (function Ev_read _ | Ev_escrow _ -> true | _ -> false)
       tr.events)

(* ------------------------------------------------------------------ *)
(* Encoder                                                             *)
(* ------------------------------------------------------------------ *)

(* %.17g round-trips any IEEE double through float_of_string *)
let fl (x : float) : string = Printf.sprintf "%.17g" x

let group (rs : string list) : string = String.concat "," rs

let to_string (tr : t) : string =
  let buf = Buffer.create 1024 in
  let line fmt = Printf.ksprintf (fun s -> Buffer.add_string buf (s ^ "\n")) fmt in
  line "ipa-fuzz-trace v1";
  line "app %s" tr.app;
  line "repaired %b" tr.repaired;
  line "seed %d" tr.seed;
  if tr.expect_failure then line "expect fail";
  (match tr.expect_digest with
  | Some d -> line "digest %s" d
  | None -> ());
  line "faults %s %s %s %s" (fl tr.faults.Net.loss)
    (fl tr.faults.Net.duplication) (fl tr.faults.Net.tail)
    (fl tr.faults.Net.tail_factor);
  List.iter
    (fun (p : Net.phase) ->
      line "phase %s %s %s %s %s %s" (fl p.Net.p_from) (fl p.Net.p_until)
        (fl p.Net.p_faults.Net.loss) (fl p.Net.p_faults.Net.duplication)
        (fl p.Net.p_faults.Net.tail) (fl p.Net.p_faults.Net.tail_factor))
    tr.phases;
  List.iter
    (fun (p : Net.partition) ->
      let g1, g2 = p.Net.parts in
      line "partition %s %s %s|%s" (fl p.Net.from_ms) (fl p.Net.until_ms)
        (group g1) (group g2))
    tr.partitions;
  line "horizon %s" (fl tr.horizon_ms);
  List.iter
    (function
      | Ev_op { at; replica; name; args } ->
          line "op %s %d %s%s" (fl at) replica name
            (String.concat "" (List.map (fun a -> " " ^ a) args))
      | Ev_sync { at } -> line "sync %s" (fl at)
      | Ev_crash { at; replica } -> line "crash %s %d" (fl at) replica
      | Ev_read { at; replica; level } -> (
          match level with
          | R_weak -> line "read %s %d weak" (fl at) replica
          | R_strong -> line "read %s %d strong" (fl at) replica
          | R_interval -> line "read %s %d interval" (fl at) replica
          | R_bounded d -> line "read %s %d bounded %s" (fl at) replica (fl d))
      | Ev_escrow { at; replica; eop } -> (
          match eop with
          | Es_inc n -> line "escrow %s %d inc %d" (fl at) replica n
          | Es_dec n -> line "escrow %s %d dec %d" (fl at) replica n
          | Es_transfer { dst; n } ->
              line "escrow %s %d transfer %d %d" (fl at) replica dst n
          | Es_hmove { dst; n } ->
              line "escrow %s %d hmove %d %d" (fl at) replica dst n
          | Es_demand n -> line "escrow %s %d demand %d" (fl at) replica n
          | Es_hdemand n -> line "escrow %s %d hdemand %d" (fl at) replica n))
    tr.events;
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* Decoder                                                             *)
(* ------------------------------------------------------------------ *)

exception Parse_error of string

let perr fmt = Printf.ksprintf (fun s -> raise (Parse_error s)) fmt

let float_field (where : string) (s : string) : float =
  match float_of_string_opt s with
  | Some f -> f
  | None -> perr "%s: bad float %S" where s

let int_field (where : string) (s : string) : int =
  match int_of_string_opt s with
  | Some i -> i
  | None -> perr "%s: bad int %S" where s

let split_ws (s : string) : string list =
  String.split_on_char ' ' s |> List.filter (fun t -> t <> "")

let parse_group (s : string) : string list =
  String.split_on_char ',' s |> List.filter (fun t -> t <> "")

let of_string (src : string) : t =
  let app = ref None
  and repaired = ref false
  and seed = ref None
  and expect_failure = ref false
  and expect_digest = ref None
  and faults = ref Net.no_faults.Net.faults
  and phases = ref []
  and partitions = ref []
  and horizon = ref None
  and events = ref []
  and header_seen = ref false in
  let lines = String.split_on_char '\n' src in
  List.iteri
    (fun i raw ->
      let ln = String.trim raw in
      let where = Printf.sprintf "line %d" (i + 1) in
      if ln = "" || ln.[0] = '#' then ()
      else if not !header_seen then
        (* the first substantive line must be the versioned header, so a
           truncated or foreign file fails fast with its line named *)
        match split_ws ln with
        | [ "ipa-fuzz-trace"; "v1" ] -> header_seen := true
        | [ "ipa-fuzz-trace"; v ] ->
            perr "%s: unsupported trace version %S (expected v1)" where v
        | _ ->
            perr "%s: expected header \"ipa-fuzz-trace v1\", got %S" where ln
      else
        match split_ws ln with
        | [ "ipa-fuzz-trace"; "v1" ] -> ()
        | [ "app"; a ] -> app := Some a
        | [ "repaired"; b ] -> (
            match bool_of_string_opt b with
            | Some v -> repaired := v
            | None -> perr "%s: bad bool %S" where b)
        | [ "seed"; n ] -> seed := Some (int_field where n)
        | [ "expect"; "fail" ] -> expect_failure := true
        | [ "digest"; d ] -> expect_digest := Some d
        | [ "faults"; l; d; t; tf ] ->
            faults :=
              {
                Net.loss = float_field where l;
                duplication = float_field where d;
                tail = float_field where t;
                tail_factor = float_field where tf;
              }
        | [ "phase"; f; u; l; d; t; tf ] ->
            phases :=
              {
                Net.p_from = float_field where f;
                p_until = float_field where u;
                p_faults =
                  {
                    Net.loss = float_field where l;
                    duplication = float_field where d;
                    tail = float_field where t;
                    tail_factor = float_field where tf;
                  };
              }
              :: !phases
        | [ "partition"; f; u; groups ] -> (
            match String.index_opt groups '|' with
            | None -> perr "%s: partition needs g1|g2" where
            | Some k ->
                let g1 = parse_group (String.sub groups 0 k) in
                let g2 =
                  parse_group
                    (String.sub groups (k + 1) (String.length groups - k - 1))
                in
                partitions :=
                  {
                    Net.parts = (g1, g2);
                    from_ms = float_field where f;
                    until_ms = float_field where u;
                  }
                  :: !partitions)
        | [ "horizon"; h ] -> horizon := Some (float_field where h)
        | "op" :: at :: rep :: name :: args ->
            events :=
              Ev_op
                {
                  at = float_field where at;
                  replica = int_field where rep;
                  name;
                  args;
                }
              :: !events
        | [ "sync"; at ] ->
            events := Ev_sync { at = float_field where at } :: !events
        | [ "crash"; at; rep ] ->
            events :=
              Ev_crash
                { at = float_field where at; replica = int_field where rep }
              :: !events
        | "read" :: at :: rep :: rest ->
            let level =
              match rest with
              | [ "weak" ] -> R_weak
              | [ "strong" ] -> R_strong
              | [ "interval" ] -> R_interval
              | [ "bounded"; d ] -> R_bounded (float_field where d)
              | _ -> perr "%s: bad read level in %S" where ln
            in
            events :=
              Ev_read
                { at = float_field where at; replica = int_field where rep;
                  level }
              :: !events
        | "escrow" :: at :: rep :: rest ->
            let eop =
              match rest with
              | [ "inc"; n ] -> Es_inc (int_field where n)
              | [ "dec"; n ] -> Es_dec (int_field where n)
              | [ "transfer"; dst; n ] ->
                  Es_transfer
                    { dst = int_field where dst; n = int_field where n }
              | [ "hmove"; dst; n ] ->
                  Es_hmove { dst = int_field where dst; n = int_field where n }
              | [ "demand"; n ] -> Es_demand (int_field where n)
              | [ "hdemand"; n ] -> Es_hdemand (int_field where n)
              | _ -> perr "%s: bad escrow op in %S" where ln
            in
            events :=
              Ev_escrow
                { at = float_field where at; replica = int_field where rep;
                  eop }
              :: !events
        | _ -> perr "%s: unrecognized line %S" where ln)
    lines;
  if not !header_seen then
    perr "line 1: missing header \"ipa-fuzz-trace v1\" (empty trace?)";
  let n_lines = List.length lines in
  let req what = function
    | Some v -> v
    | None -> perr "line %d: reached end of trace without a %s line" n_lines what
  in
  {
    app = req "app" !app;
    repaired = !repaired;
    seed = req "seed" !seed;
    faults = !faults;
    phases = List.rev !phases;
    partitions = List.rev !partitions;
    horizon_ms = req "horizon" !horizon;
    expect_failure = !expect_failure;
    expect_digest = !expect_digest;
    events = List.rev !events;
  }

(* atomic: a crash (or a concurrent reader, e.g. CI collecting artifacts
   while a campaign is still shrinking) never observes a half-written
   trace — the temp file is renamed into place only once complete.
   Binary mode keeps the byte-exact float encoding portable. *)
let save (file : string) (tr : t) : unit =
  let tmp = file ^ ".tmp" in
  let oc =
    open_out_gen [ Open_wronly; Open_creat; Open_trunc; Open_binary ] 0o644 tmp
  in
  (try output_string oc (to_string tr)
   with e ->
     close_out_noerr oc;
     (try Sys.remove tmp with Sys_error _ -> ());
     raise e);
  close_out oc;
  Sys.rename tmp file

let load (file : string) : t =
  let ic = open_in file in
  let n = in_channel_length ic in
  let src = really_input_string ic n in
  close_in ic;
  of_string src
