(** Deterministic trace execution plus the fuzzer's oracles: at
    quiescence (after bounded reliable healing) all replicas must reach
    bit-identical state digests and every checked invariant must hold
    in each replica's observable state. *)

type failure =
  | Diverged of (string * string) list
      (** replica id → digest: healing reached quiescence but the
          digests still disagree — a real convergence bug *)
  | Healing_exhausted of {
      rounds : int;
      pending : int;  (** batches still buffered cluster-wide *)
      divergent : string list;  (** sample of still-divergent keys *)
    }
      (** the healing loop hit its round budget before quiescence —
          reported loudly and distinctly (a wedged harness is not a
          divergence between converged replicas) *)
  | Violation of { inv : string; replica : string }
  | Recovery_diverged of { expected : string; got : string }
      (** the crash run converged, but to a different digest than the
          same schedule without its crash events — WAL recovery lost or
          invented state *)
  | Interval_escape of {
      at : float;
      replica : string;
      lo : int;
      hi : int option;
      truth : int;
    }
      (** an escrow interval read promised [lo ≤ strong value ≤ hi] but
          the true committed value (the omniscient shadow replica's)
          escaped the interval *)
  | Stale_read of { at : float; replica : string; served_by : string }
      (** a bounded-staleness read was served by a replica whose clock
          does not cover the resolved bound *)
  | Strong_read_lag of { at : float; replica : string; got : int; want : int }
      (** a strong read returned a value different from the true
          committed value *)
  | Rights_leak of { at : float; replica : string; detail : string }
      (** an escrow conservation identity broke in [replica]'s
          causally-consistent view ({!Ipa_crdt.Bcounter.audit}), audited
          after every escrow commit and at quiescence everywhere *)

type outcome = {
  failures : failure list;  (** empty = passed both oracles *)
  digest : string;  (** replica 0's digest after healing *)
  committed : int;
  aborted : int;
  healing_rounds : int;
}

val pp_failure : Format.formatter -> failure -> unit

(** The fuzzer's fixed three-replica deployment (id, region). *)
val replica_specs : (string * string) list

(** The fuzzer-owned escrow counter key, seeded (capped at 30, with
    rights and headroom spread across the replicas) in every
    environment regardless of app — the object {!Trace.Ev_read} and
    {!Trace.Ev_escrow} events target. *)
val escrow_key : string

(** Reusable execution environment: ground invariants + a snapshot of
    the seeded cluster, restored at the start of every {!run} — the
    cheap reset shrink re-runs depend on. *)
type env

val make_env : Harness.t -> env

(** Healing-round budget used when [?heal_budget] is omitted. *)
val max_healing_rounds : int

(** Execute [tr] deterministically and judge the oracles.  Same trace,
    same outcome, bit for bit.  [heal_budget] bounds the reliable
    healing rounds (default {!max_healing_rounds}); exhausting it
    yields a {!Healing_exhausted} failure.

    A trace containing {!Trace.Ev_crash} events additionally runs the
    crash-free version of the schedule first as a reference, rigs every
    replica with a {!Wal} (baseline checkpoint of the seeded state,
    then a checkpoint every third sync round), crashes and recovers the
    named replicas in place, and demands the healed cluster converge
    bit-identically to the reference digest ({!Recovery_diverged}
    otherwise). *)
val run : ?heal_budget:int -> env -> Trace.t -> outcome

(** One-shot [make_env] + [run]. *)
val check : ?heal_budget:int -> Harness.t -> Trace.t -> outcome
