(** Trace shrinking: reduce a failing trace to a minimal counterexample.

    Delta-debugging over the event list (chunked removal, halving chunk
    sizes down to single events — this drops both operations and sync
    rounds), then dropping and shortening partition windows, dropping
    scripted fault phases, and zeroing baseline fault probabilities.
    Every candidate is re-executed deterministically from the trace's
    seed via {!Oracle.run} (which restores the seeded-cluster snapshot
    instead of rebuilding it) and is kept only if it still fails {e the
    same way}: a shrunk divergence stays a divergence, a shrunk
    violation still violates the same invariant — shrinking never
    trades the original bug for a different one.  Passes repeat to a
    fixpoint. *)

type kind =
  | K_diverged
  | K_healing_exhausted
  | K_violation of string
  | K_recovery_diverged
  | K_interval_escape
  | K_stale_read
  | K_strong_read_lag
  | K_rights_leak

let kind_of : Oracle.failure -> kind = function
  | Oracle.Diverged _ -> K_diverged
  | Oracle.Healing_exhausted _ -> K_healing_exhausted
  | Oracle.Violation { inv; _ } -> K_violation inv
  | Oracle.Recovery_diverged _ -> K_recovery_diverged
  | Oracle.Interval_escape _ -> K_interval_escape
  | Oracle.Stale_read _ -> K_stale_read
  | Oracle.Strong_read_lag _ -> K_strong_read_lag
  | Oracle.Rights_leak _ -> K_rights_leak

let preserves (target : kind) (failures : Oracle.failure list) : bool =
  List.exists (fun f -> kind_of f = target) failures

let still_fails (env : Oracle.env) (target : kind) (tr : Trace.t) : bool =
  preserves target (Oracle.run env tr).Oracle.failures

let remove_slice (i : int) (n : int) (l : 'a list) : 'a list =
  List.filteri (fun j _ -> j < i || j >= i + n) l

let replace_nth (i : int) (x : 'a) (l : 'a list) : 'a list =
  List.mapi (fun j y -> if j = i then x else y) l

(* ddmin-style pass over the event list: try removing chunks of [n]
   events at every position, halving [n] down to 1 *)
let shrink_events env target (tr : Trace.t) : Trace.t =
  let rec at_chunk tr n =
    if n < 1 then tr
    else
      let rec at i tr =
        if i >= List.length tr.Trace.events then tr
        else
          let cand =
            { tr with Trace.events = remove_slice i n tr.Trace.events }
          in
          if still_fails env target cand then at i cand else at (i + n) tr
      in
      at_chunk (at 0 tr) (n / 2)
  in
  let len = List.length tr.Trace.events in
  if len = 0 then tr else at_chunk tr (max 1 (len / 2))

let shrink_partitions env target (tr : Trace.t) : Trace.t =
  (* drop whole windows *)
  let rec drop tr i =
    if i >= List.length tr.Trace.partitions then tr
    else
      let cand =
        { tr with Trace.partitions = remove_slice i 1 tr.Trace.partitions }
      in
      if still_fails env target cand then drop cand i else drop tr (i + 1)
  in
  let tr = drop tr 0 in
  (* halve the duration of the survivors *)
  let rec shorten tr i =
    if i >= List.length tr.Trace.partitions then tr
    else
      let p = List.nth tr.Trace.partitions i in
      let dur = p.Ipa_sim.Net.until_ms -. p.Ipa_sim.Net.from_ms in
      if dur <= 100.0 then shorten tr (i + 1)
      else
        let p' =
          { p with Ipa_sim.Net.until_ms = p.Ipa_sim.Net.from_ms +. (dur /. 2.0) }
        in
        let cand =
          { tr with Trace.partitions = replace_nth i p' tr.Trace.partitions }
        in
        if still_fails env target cand then shorten cand i
        else shorten tr (i + 1)
  in
  shorten tr 0

let shrink_phases env target (tr : Trace.t) : Trace.t =
  let rec drop tr i =
    if i >= List.length tr.Trace.phases then tr
    else
      let cand = { tr with Trace.phases = remove_slice i 1 tr.Trace.phases } in
      if still_fails env target cand then drop cand i else drop tr (i + 1)
  in
  drop tr 0

let shrink_faults env target (tr : Trace.t) : Trace.t =
  let zero tr (mk : Ipa_sim.Net.faults -> Ipa_sim.Net.faults) =
    let cand = { tr with Trace.faults = mk tr.Trace.faults } in
    if still_fails env target cand then cand else tr
  in
  let tr = zero tr (fun f -> { f with Ipa_sim.Net.loss = 0.0 }) in
  let tr = zero tr (fun f -> { f with Ipa_sim.Net.duplication = 0.0 }) in
  zero tr (fun f -> { f with Ipa_sim.Net.tail = 0.0 })

(** Shrink [tr], which failed with [failures], to a fixpoint-minimal
    trace that still exhibits the first failure's kind.  Returns [tr]
    unchanged when [failures] is empty. *)
let shrink (env : Oracle.env) (tr : Trace.t) (failures : Oracle.failure list)
    : Trace.t =
  match failures with
  | [] -> tr
  | f0 :: _ ->
      let target = kind_of f0 in
      let pass tr =
        tr
        |> shrink_events env target
        |> shrink_partitions env target
        |> shrink_phases env target
        |> shrink_faults env target
      in
      let rec fix tr budget =
        let tr' = pass tr in
        if budget <= 0 || tr' = tr then tr' else fix tr' (budget - 1)
      in
      fix tr 4
