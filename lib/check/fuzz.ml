(** Fuzzing campaigns: generate → execute → (on failure) shrink →
    save a replay file; plus replay of saved counterexamples.

    A campaign over [(app, repaired, seed, runs)] executes the traces
    generated from seeds [seed, seed+1, ..., seed+runs-1].  On the
    first oracle failure the trace is shrunk to a minimal
    counterexample, normalized through the text codec (so the saved
    file and the in-memory trace are byte-equivalent), re-executed to
    record the failing digest, and returned for saving.  Repaired
    catalog apps are expected to survive every schedule; the causal
    baselines are expected to fail — the fuzzer {e finding} their
    anomalies is the oracle-has-teeth check. *)

type counterexample = {
  trace : Trace.t;  (** shrunk, normalized, [expect_failure = true] *)
  failures : Oracle.failure list;  (** of the shrunk trace *)
  outcome : Oracle.outcome;
}

type report = {
  app : string;
  repaired : bool;
  seed : int;
  runs : int;  (** traces executed (≤ requested when stopping early) *)
  failed_runs : int;
  first : counterexample option;  (** first failure, shrunk *)
}

(* round-trip through the codec: the trace we report is byte-for-byte
   the trace a replay of the saved file will execute *)
let normalize (tr : Trace.t) : Trace.t = Trace.of_string (Trace.to_string tr)

let counterexample_of (env : Oracle.env) (tr : Trace.t)
    (failures : Oracle.failure list) : counterexample =
  let shrunk = Shrink.shrink env tr failures in
  let shrunk = normalize { shrunk with Trace.expect_failure = true } in
  let outcome = Oracle.run env shrunk in
  let shrunk = { shrunk with Trace.expect_digest = Some outcome.Oracle.digest } in
  { trace = shrunk; failures = outcome.Oracle.failures; outcome }

(** Run a campaign.  [stop_on_failure] (default true) stops at the
    first counterexample; [on_run] is a per-trace progress hook. *)
let campaign ~(app : string) ~(repaired : bool) ~(seed : int) ~(runs : int)
    ?(n_ops = 40) ?(stop_on_failure = true)
    ?(on_run = fun (_ : int) (_ : Oracle.outcome) -> ()) () : report =
  let h = Harness.make ~app ~repaired in
  let env = Oracle.make_env h in
  let failed = ref 0 and first = ref None and executed = ref 0 in
  (try
     for i = 0 to runs - 1 do
       let tr = Gen.generate ~app ~repaired ~seed:(seed + i) ~n_ops () in
       let o = Oracle.run env tr in
       incr executed;
       on_run (seed + i) o;
       if o.Oracle.failures <> [] then begin
         incr failed;
         if !first = None then
           first := Some (counterexample_of env tr o.Oracle.failures);
         if stop_on_failure then raise Exit
       end
     done
   with Exit -> ());
  { app; repaired; seed; runs = !executed; failed_runs = !failed;
    first = !first }

(** Result of replaying a saved trace. *)
type replay_result = {
  r_outcome : Oracle.outcome;
  r_failed : bool;
  r_as_expected : bool;
      (** failure status matches [expect_failure] and, when the file
          records a digest, the digest reproduced bit-identically *)
}

(** Re-execute a saved trace and compare against its recorded
    expectations. *)
let replay (tr : Trace.t) : replay_result =
  let h = Harness.make ~app:tr.Trace.app ~repaired:tr.Trace.repaired in
  let o = Oracle.check h tr in
  let failed = o.Oracle.failures <> [] in
  let digest_ok =
    match tr.Trace.expect_digest with
    | Some d -> d = o.Oracle.digest
    | None -> true
  in
  {
    r_outcome = o;
    r_failed = failed;
    r_as_expected = failed = tr.Trace.expect_failure && digest_ok;
  }
