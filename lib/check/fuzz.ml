(** Fuzzing campaigns: generate → execute → (on failure) shrink →
    save a replay file; plus replay of saved counterexamples.

    A campaign over [(app, repaired, seed, runs)] executes the traces
    generated from seeds [seed, seed+1, ..., seed+runs-1].  On the
    first oracle failure the trace is shrunk to a minimal
    counterexample, normalized through the text codec (so the saved
    file and the in-memory trace are byte-equivalent), re-executed to
    record the failing digest, and returned for saving.  Repaired
    catalog apps are expected to survive every schedule; the causal
    baselines are expected to fail — the fuzzer {e finding} their
    anomalies is the oracle-has-teeth check. *)

type counterexample = {
  trace : Trace.t;  (** shrunk, normalized, [expect_failure = true] *)
  failures : Oracle.failure list;  (** of the shrunk trace *)
  outcome : Oracle.outcome;
}

type report = {
  app : string;
  repaired : bool;
  seed : int;
  runs : int;  (** traces executed (≤ requested when stopping early) *)
  failed_runs : int;
  failed_seeds : int list;  (** seeds of the failing runs, in run order *)
  first : counterexample option;  (** first failure, shrunk *)
}

(* round-trip through the codec: the trace we report is byte-for-byte
   the trace a replay of the saved file will execute *)
let normalize (tr : Trace.t) : Trace.t = Trace.of_string (Trace.to_string tr)

let counterexample_of (env : Oracle.env) (tr : Trace.t)
    (failures : Oracle.failure list) : counterexample =
  let shrunk = Shrink.shrink env tr failures in
  let shrunk = normalize { shrunk with Trace.expect_failure = true } in
  let outcome = Oracle.run env shrunk in
  let shrunk = { shrunk with Trace.expect_digest = Some outcome.Oracle.digest } in
  { trace = shrunk; failures = outcome.Oracle.failures; outcome }

(** Run a campaign.  [stop_on_failure] (default true) stops at the
    first counterexample; [on_run] is a per-trace progress hook.

    [jobs > 1] shards the run range across a domain pool.  Each worker
    owns a private harness/cluster environment (the substrate is not
    domain-safe beyond the interner) and executes complete runs; since
    every run is a pure function of [(app, repaired, seed + i, n_ops)],
    the sharding cannot change any outcome.  The sequential early-stop
    semantics are reconstructed exactly: the report covers the prefix up
    to and including the earliest failing run index (later speculative
    runs are discarded), the counterexample is shrunk for that earliest
    failure on the caller's environment, and [on_run] fires on the
    caller, in run order, for exactly the reported prefix. *)
let campaign ~(app : string) ~(repaired : bool) ~(seed : int) ~(runs : int)
    ?(n_ops = 40) ?(crashes = 0) ?(reads = 0) ?(escrow_skew = 0)
    ?(stop_on_failure = true)
    ?(on_run = fun (_ : int) (_ : Oracle.outcome) -> ()) ?jobs () : report =
  let jobs =
    match jobs with
    | Some j -> max 1 (min Ipa_par.Pool.cap j)
    | None -> Ipa_par.Pool.env_jobs ()
  in
  if jobs <= 1 || runs <= 1 then begin
    let h = Harness.make ~app ~repaired in
    let env = Oracle.make_env h in
    let failed = ref 0 and first = ref None and executed = ref 0 in
    let failed_seeds = ref [] in
    (try
       for i = 0 to runs - 1 do
         let tr =
           Gen.generate ~app ~repaired ~seed:(seed + i) ~n_ops ~crashes ~reads
             ~escrow_skew ()
         in
         let o = Oracle.run env tr in
         incr executed;
         on_run (seed + i) o;
         if o.Oracle.failures <> [] then begin
           incr failed;
           failed_seeds := (seed + i) :: !failed_seeds;
           if !first = None then
             first := Some (counterexample_of env tr o.Oracle.failures);
           if stop_on_failure then raise Exit
         end
       done
     with Exit -> ());
    { app; repaired; seed; runs = !executed; failed_runs = !failed;
      failed_seeds = List.rev !failed_seeds; first = !first }
  end
  else
    Ipa_par.Pool.with_pool ~jobs @@ fun pool ->
    (* worker → its lazily created private environment.  Only the owning
       worker index touches its slot during the batch; the caller reads
       them afterwards (the pool's completion barrier orders both). *)
    let envs : Oracle.env option array = Array.make jobs None in
    let env_for w =
      match envs.(w) with
      | Some e -> e
      | None ->
          let e = Oracle.make_env (Harness.make ~app ~repaired) in
          envs.(w) <- Some e;
          e
    in
    let outcomes =
      Array.of_list
        (Ipa_par.Pool.map_worker pool
           ~f:(fun ~worker i ->
             let tr =
               Gen.generate ~app ~repaired ~seed:(seed + i) ~n_ops ~crashes
                 ~reads ~escrow_skew ()
             in
             Oracle.run (env_for worker) tr)
           (List.init runs Fun.id))
    in
    let failing_ix =
      List.filter
        (fun i -> outcomes.(i).Oracle.failures <> [])
        (List.init runs Fun.id)
    in
    let executed =
      match failing_ix with
      | m :: _ when stop_on_failure -> m + 1
      | _ -> runs
    in
    for i = 0 to executed - 1 do
      on_run (seed + i) outcomes.(i)
    done;
    let failing_ix = List.filter (fun i -> i < executed) failing_ix in
    let first =
      match failing_ix with
      | [] -> None
      | m :: _ ->
          let tr =
            Gen.generate ~app ~repaired ~seed:(seed + m) ~n_ops ~crashes
              ~reads ~escrow_skew ()
          in
          Some (counterexample_of (env_for 0) tr outcomes.(m).Oracle.failures)
    in
    {
      app;
      repaired;
      seed;
      runs = executed;
      failed_runs = List.length failing_ix;
      failed_seeds = List.map (fun i -> seed + i) failing_ix;
      first;
    }

(** Result of replaying a saved trace. *)
type replay_result = {
  r_outcome : Oracle.outcome;
  r_failed : bool;
  r_as_expected : bool;
      (** failure status matches [expect_failure] and, when the file
          records a digest, the digest reproduced bit-identically *)
}

(** Re-execute a saved trace and compare against its recorded
    expectations. *)
let replay (tr : Trace.t) : replay_result =
  let h = Harness.make ~app:tr.Trace.app ~repaired:tr.Trace.repaired in
  let o = Oracle.check h tr in
  let failed = o.Oracle.failures <> [] in
  let digest_ok =
    match tr.Trace.expect_digest with
    | Some d -> d = o.Oracle.digest
    | None -> true
  in
  {
    r_outcome = o;
    r_failed = failed;
    r_as_expected = failed = tr.Trace.expect_failure && digest_ok;
  }
