(** Fuzzer traces and their replay codec (line-oriented text format).

    A trace fully determines one simulated execution — app, seed, fault
    plan, scheduled events — so replaying it through {!Oracle} is
    bit-deterministic.  Floats are encoded with 17 significant digits
    (exact IEEE round-trip): a decoded trace replays identically. *)

open Ipa_sim

(** The level a scheduled read observes the store at; [R_bounded d] is a
    staleness budget in milliseconds. *)
type read_level = R_weak | R_bounded of float | R_strong | R_interval

(** Operations on the fuzzer-owned escrow counter key; [dst] is a
    replica index. *)
type escrow_op =
  | Es_inc of int
  | Es_dec of int
  | Es_transfer of { dst : int; n : int }  (** move decrement rights *)
  | Es_hmove of { dst : int; n : int }  (** move increment headroom *)
  | Es_demand of int  (** publish advisory decrement-demand *)
  | Es_hdemand of int  (** publish advisory increment-demand *)

type event =
  | Ev_op of { at : float; replica : int; name : string; args : string list }
  | Ev_sync of { at : float }
  | Ev_crash of { at : float; replica : int }
      (** crash the replica (losing its unflushed WAL tail) and recover
          it in place from snapshot + WAL *)
  | Ev_read of { at : float; replica : int; level : read_level }
      (** client read at the replica, judged by {!Oracle} *)
  | Ev_escrow of { at : float; replica : int; eop : escrow_op }
      (** operation on the fuzzer-owned escrow counter *)

type t = {
  app : string;
  repaired : bool;
  seed : int;
  faults : Net.faults;
  phases : Net.phase list;
  partitions : Net.partition list;
  horizon_ms : float;
  expect_failure : bool;
  expect_digest : string option;
  events : event list;
}

val event_time : event -> float
val n_events : t -> int
val n_ops : t -> int
val n_crashes : t -> int

(** Count of read + escrow events. *)
val n_reads : t -> int

val to_string : t -> string

exception Parse_error of string

(** Decode; raises {!Parse_error} on malformed input, naming the
    offending line (including a missing or foreign header). *)
val of_string : string -> t

(** Atomic write: the trace is written to a temp file in binary mode
    and renamed into place, so no reader ever sees a partial trace. *)
val save : string -> t -> unit
val load : string -> t
