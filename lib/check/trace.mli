(** Fuzzer traces and their replay codec (line-oriented text format).

    A trace fully determines one simulated execution — app, seed, fault
    plan, scheduled events — so replaying it through {!Oracle} is
    bit-deterministic.  Floats are encoded with 17 significant digits
    (exact IEEE round-trip): a decoded trace replays identically. *)

open Ipa_sim

type event =
  | Ev_op of { at : float; replica : int; name : string; args : string list }
  | Ev_sync of { at : float }
  | Ev_crash of { at : float; replica : int }
      (** crash the replica (losing its unflushed WAL tail) and recover
          it in place from snapshot + WAL *)

type t = {
  app : string;
  repaired : bool;
  seed : int;
  faults : Net.faults;
  phases : Net.phase list;
  partitions : Net.partition list;
  horizon_ms : float;
  expect_failure : bool;
  expect_digest : string option;
  events : event list;
}

val event_time : event -> float
val n_events : t -> int
val n_ops : t -> int
val n_crashes : t -> int

val to_string : t -> string

exception Parse_error of string

(** Decode; raises {!Parse_error} on malformed input, naming the
    offending line (including a missing or foreign header). *)
val of_string : string -> t

(** Atomic write: the trace is written to a temp file in binary mode
    and renamed into place, so no reader ever sees a partial trace. *)
val save : string -> t -> unit
val load : string -> t
