(** Trace shrinking: delta-debugging over events, partitions, fault
    phases and fault probabilities, re-running each candidate
    deterministically and keeping it only if it fails the same way. *)

(** Shrink a failing trace to a fixpoint-minimal counterexample
    preserving the first failure's kind. *)
val shrink : Oracle.env -> Trace.t -> Oracle.failure list -> Trace.t
