(** Seed-driven random schedule generation.

    Every choice — fault probabilities, partition windows, operation
    names, arguments, replicas, timing — is drawn from a splitmix64
    stream seeded by the trace seed, so generation is a pure function
    of [(app, repaired, seed, n_ops)]: the fuzzer never needs to store
    generated traces, only seeds.  Argument domains are deliberately
    tiny (a handful of players, events, items) so concurrent operations
    collide on the same objects, which is where the paper's anomalies
    live. *)

open Ipa_sim

let op_gap_ms = 120.0  (* mean inter-operation gap *)
let sync_every_ms = 500.0

let gen_faults (rng : Rng.t) : Net.faults =
  {
    Net.loss = Rng.choose rng [ 0.0; 0.05; 0.15; 0.3 ];
    duplication = Rng.choose rng [ 0.0; 0.05; 0.1 ];
    tail = Rng.choose rng [ 0.0; 0.1; 0.2 ];
    tail_factor = 10.0;
  }

let gen_partitions (rng : Rng.t) ~(span : float) : Net.partition list =
  List.init (Rng.int rng 3) (fun _ ->
      let isolated = Rng.choose rng Net.paper_regions in
      let rest = List.filter (fun r -> r <> isolated) Net.paper_regions in
      let from_ms = Rng.uniform rng 0.0 (0.6 *. span) in
      let until_ms = from_ms +. Rng.uniform rng 300.0 2_000.0 in
      { Net.parts = ([ isolated ], rest); from_ms; until_ms })

let gen_phases (rng : Rng.t) ~(span : float) : Net.phase list =
  if not (Rng.flip rng 0.3) then []
  else
    let p_from = Rng.uniform rng 0.0 (0.7 *. span) in
    [
      {
        Net.p_from;
        p_until = p_from +. Rng.uniform rng 200.0 1_000.0;
        p_faults =
          { Net.loss = 0.6; duplication = 0.1; tail = 0.0; tail_factor = 10.0 };
      };
    ]

(** Generate the trace for [(app, repaired, seed)] with [n_ops]
    operation events (sync rounds are interleaved every ~500 ms) and
    [crashes] crash–recover events.

    Crashes are drawn in the tail window between the last operation and
    the horizon.  That placement is what makes the recovery oracle's
    bit-identical comparison sound: every operation executes against
    state untouched by any crash, so the committed-batch set matches the
    crash-free reference run exactly, and CRDT confluence then demands
    the healed cluster converge to the reference digest — any difference
    indicts recovery itself.  (A crash amid the operations would let
    regressed state change later commit/abort decisions, a legitimate
    behavioral difference the oracle must not flag.)

    The crash draws come {e after} every existing draw, so for a fixed
    seed the schedule with [crashes = 0] is byte-identical to what older
    fuzzers generated — saved seeds keep reproducing.

    [reads] adds that many read/escrow events (weak, bounded-staleness,
    strong and interval reads of the fuzzer-owned escrow counter, plus
    inc/dec/transfer/hmove mutations of it), drawn {e after} the crash
    draws (so [reads = 0] also reproduces older schedules byte for
    byte) and placed inside the operation span — before the crash tail,
    which keeps the recovery oracle's reference comparison sound.

    [escrow_skew] adds that many {e demand-skewed} escrow events: one
    replica (drawn once per trace) is hot and issues ~70% of them, the
    mix is decrement-heavy with occasional transfers and advisory
    [Demand]/[Hdemand] publications — the regime the escrow planner's
    migration machinery targets, concentrated enough to drain one
    replica's rights while the conservation oracle watches.  These
    draws come after {e all} other draws ([escrow_skew = 0] keeps every
    older schedule byte-identical) and land inside the operation
    span. *)
let generate ~(app : string) ~(repaired : bool) ~(seed : int) ?(n_ops = 40)
    ?(crashes = 0) ?(reads = 0) ?(escrow_skew = 0) () : Trace.t =
  let h = Harness.make ~app ~repaired in
  let rng = Rng.create seed in
  let n_replicas = List.length Oracle.replica_specs in
  let t = ref 0.0 in
  let ops =
    List.init n_ops (fun _ ->
        t := !t +. Rng.uniform rng 10.0 (2.0 *. op_gap_ms);
        let spec = Rng.choose rng h.Harness.ops in
        let args = List.map (Rng.choose rng) spec.Harness.argdoms in
        Trace.Ev_op
          {
            at = !t;
            replica = Rng.int rng n_replicas;
            name = spec.Harness.opname;
            args;
          })
  in
  let span = !t in
  let horizon_ms = span +. 500.0 in
  let syncs =
    List.init
      (int_of_float (span /. sync_every_ms))
      (fun i -> Trace.Ev_sync { at = float_of_int (i + 1) *. sync_every_ms })
  in
  let events =
    List.stable_sort
      (fun a b -> compare (Trace.event_time a) (Trace.event_time b))
      (ops @ syncs)
  in
  let base =
    {
      Trace.app;
      repaired;
      seed;
      faults = gen_faults rng;
      phases = gen_phases rng ~span;
      partitions = gen_partitions rng ~span;
      horizon_ms;
      expect_failure = false;
      expect_digest = None;
      events;
    }
  in
  let with_crashes =
    if crashes <= 0 then base
    else
      let crash_evs =
        List.init crashes (fun _ ->
            Trace.Ev_crash
              {
                at = span +. Rng.uniform rng 10.0 400.0;
                replica = Rng.int rng n_replicas;
              })
        |> List.stable_sort (fun a b ->
               compare (Trace.event_time a) (Trace.event_time b))
      in
      (* all crash times exceed every op/sync time — plain append keeps
         the schedule sorted *)
      { base with Trace.events = base.Trace.events @ crash_evs }
  in
  (* merge span-resident events into the sorted op/sync prefix, keeping
     the crash tail last (crash times all exceed the span) *)
  let merge_into_span (tr : Trace.t) (evs : Trace.event list) : Trace.t =
    let crash_tail, prefix =
      List.partition
        (function Trace.Ev_crash _ -> true | _ -> false)
        tr.Trace.events
    in
    let prefix =
      List.stable_sort
        (fun a b -> compare (Trace.event_time a) (Trace.event_time b))
        (prefix @ evs)
    in
    { tr with Trace.events = prefix @ crash_tail }
  in
  let with_reads =
    if reads <= 0 then with_crashes
    else
      let read_evs =
      List.init reads (fun _ ->
          let at = Rng.uniform rng 0.0 span in
          let replica = Rng.int rng n_replicas in
          if Rng.flip rng 0.5 then
            let eop =
              match Rng.int rng 4 with
              | 0 -> Trace.Es_inc (1 + Rng.int rng 3)
              | 1 -> Trace.Es_dec (1 + Rng.int rng 3)
              | 2 ->
                  Trace.Es_transfer
                    { dst = Rng.int rng n_replicas; n = 1 + Rng.int rng 2 }
              | _ ->
                  Trace.Es_hmove
                    { dst = Rng.int rng n_replicas; n = 1 + Rng.int rng 2 }
            in
            Trace.Ev_escrow { at; replica; eop }
          else
            let level =
              match Rng.int rng 4 with
              | 0 -> Trace.R_weak
              | 1 -> Trace.R_bounded (Rng.choose rng [ 0.0; 50.0; 250.0; 1000.0 ])
              | 2 -> Trace.R_strong
              | _ -> Trace.R_interval
            in
            Trace.Ev_read { at; replica; level })
      in
      (* read/escrow events live inside the operation span *)
      merge_into_span with_crashes read_evs
  in
  if escrow_skew <= 0 then with_reads
  else
    (* demand-skewed escrow campaign: a single hot replica issues most
       of the events and the mix is decrement-heavy, so its rights
       drain and transfers/demand publications must reconcile — the
       interleavings the conservation oracle exists to check *)
    let hot = Rng.int rng n_replicas in
    let skew_evs =
      List.init escrow_skew (fun _ ->
          let at = Rng.uniform rng 0.0 span in
          let replica =
            if Rng.flip rng 0.7 then hot else Rng.int rng n_replicas
          in
          let eop =
            match Rng.int rng 10 with
            | 0 | 1 | 2 | 3 | 4 | 5 -> Trace.Es_dec (1 + Rng.int rng 2)
            | 6 -> Trace.Es_inc (1 + Rng.int rng 2)
            | 7 ->
                Trace.Es_transfer
                  { dst = Rng.int rng n_replicas; n = 1 + Rng.int rng 2 }
            | 8 -> Trace.Es_demand (1 + Rng.int rng 4)
            | _ -> Trace.Es_hdemand (1 + Rng.int rng 4)
          in
          Trace.Ev_escrow { at; replica; eop })
    in
    merge_into_span with_reads skew_evs
