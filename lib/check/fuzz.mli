(** Fuzzing campaigns (generate → execute → shrink → replay file) and
    replay of saved counterexamples. *)

type counterexample = {
  trace : Trace.t;
  failures : Oracle.failure list;
  outcome : Oracle.outcome;
}

type report = {
  app : string;
  repaired : bool;
  seed : int;
  runs : int;
  failed_runs : int;
  first : counterexample option;
}

val campaign :
  app:string ->
  repaired:bool ->
  seed:int ->
  runs:int ->
  ?n_ops:int ->
  ?stop_on_failure:bool ->
  ?on_run:(int -> Oracle.outcome -> unit) ->
  unit ->
  report

type replay_result = {
  r_outcome : Oracle.outcome;
  r_failed : bool;
  r_as_expected : bool;
}

val replay : Trace.t -> replay_result
