(** Fuzzing campaigns (generate → execute → shrink → replay file) and
    replay of saved counterexamples. *)

type counterexample = {
  trace : Trace.t;
  failures : Oracle.failure list;
  outcome : Oracle.outcome;
}

type report = {
  app : string;
  repaired : bool;
  seed : int;
  runs : int;
  failed_runs : int;
  failed_seeds : int list;  (** seeds of the failing runs, in run order *)
  first : counterexample option;
}

(** Run a campaign.  [crashes] (default 0) injects that many tail-window
    crash–recover events per trace, arming the WAL recovery oracle
    ({!Oracle.Recovery_diverged}).  [reads] (default 0) injects that
    many read/escrow events per trace, arming the consistency-read
    oracles ({!Oracle.Interval_escape}, {!Oracle.Stale_read},
    {!Oracle.Strong_read_lag}).  [escrow_skew] (default 0) injects that
    many demand-skewed escrow events per trace (one hot replica,
    decrement-heavy mix, advisory demand publications), arming the
    conservation oracle ({!Oracle.Rights_leak}).  [jobs] (default: the
    [IPA_JOBS]
    environment override, else 1) shards the run range over a domain
    pool, each
    worker executing complete runs against its own private
    harness/cluster environment.  Every run is a pure function of its
    seed ([seed + i]), so a parallel campaign reports the identical
    [failed_seeds] set, counterexample and counts as a sequential one —
    including the early-stop semantics of [stop_on_failure], which are
    reconstructed from the earliest failing run index. *)
val campaign :
  app:string ->
  repaired:bool ->
  seed:int ->
  runs:int ->
  ?n_ops:int ->
  ?crashes:int ->
  ?reads:int ->
  ?escrow_skew:int ->
  ?stop_on_failure:bool ->
  ?on_run:(int -> Oracle.outcome -> unit) ->
  ?jobs:int ->
  unit ->
  report

type replay_result = {
  r_outcome : Oracle.outcome;
  r_failed : bool;
  r_as_expected : bool;
}

val replay : Trace.t -> replay_result
