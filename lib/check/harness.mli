(** Per-app glue between the fuzzer and the runtime applications: the
    spec to check, finite argument domains, op dispatch into the real
    application transactions, and the variant-aware observable-state
    valuation the ground invariants are evaluated against. *)

open Ipa_logic
open Ipa_store

(** A fuzzable operation: name and per-position argument domains. *)
type opspec = { opname : string; argdoms : string list list }

type t = {
  app_name : string;
  repaired : bool;
  spec : Ipa_spec.Types.t;
  sg : Ground.signature;
  consts : (string * int) list;
  dom : Ground.domain;
  ops : opspec list;
  checked : Ipa_spec.Types.invariant list;
  seed_ops : (string * string list) list;
  exec : name:string -> args:string list -> Ipa_runtime.Config.op_exec option;
  valuation : Replica.t -> (Ground.gatom -> bool) * (Ground.gnum -> int);
}

(** The four fuzzable catalog apps. *)
val app_names : string list

(** Fresh harness (and app instance); raises [Invalid_argument] on an
    unknown app name. *)
val make : app:string -> repaired:bool -> t

(** Ground every checked invariant once, for repeated evaluation. *)
val ground_checked : t -> (string * Ground.gformula) list
