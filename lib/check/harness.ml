(** Per-app glue between the fuzzer and the runtime applications.

    For each catalog app the harness bundles: the specification (whose
    invariants the oracle evaluates via the grounder), a small finite
    argument domain per sort (small domains maximize contention, which
    is what surfaces the paper's anomalies), the fuzzable operations
    with per-position argument domains, seed operations establishing
    initial data, an executor dispatching (name, args) to the real
    application transaction, and a {e valuation}: the boolean/numeric
    reading of a replica's observable state that the ground invariants
    are evaluated against.

    The valuation encodes each variant's read discipline.  The causal
    baseline reads raw CRDT state — concurrency anomalies are visible,
    which is exactly what gives the oracle teeth.  The repaired variants
    read what a client observes under the paper's repairs: IPA
    compensation sets/counters are read through [Compset.read] /
    [Compcounter.read] (capacity eviction, lower-bound clamping), and
    Twitter's rem-wins variant filters dangling references the read-side
    compensation hides.  Filtering only removes atoms that occur in
    invariant antecedents, so it can never mask a genuine violation. *)

open Ipa_logic
open Ipa_crdt
open Ipa_store

type opspec = { opname : string; argdoms : string list list }

type t = {
  app_name : string;
  repaired : bool;
  spec : Ipa_spec.Types.t;
  sg : Ground.signature;
  consts : (string * int) list;
  dom : Ground.domain;
  ops : opspec list;
  checked : Ipa_spec.Types.invariant list;
      (** the invariants the oracle evaluates (those whose predicates
          the runtime app actually materializes) *)
  seed_ops : (string * string list) list;
      (** executed reliably at replica 0 before the fuzzed schedule *)
  exec : name:string -> args:string list -> Ipa_runtime.Config.op_exec option;
  valuation : Replica.t -> (Ground.gatom -> bool) * (Ground.gnum -> int);
}

let app_names = [ "tournament"; "twitter"; "ticket"; "tpcw" ]

(* ------------------------------------------------------------------ *)
(* Observable-state readers                                            *)
(* ------------------------------------------------------------------ *)

let aw_elements (rep : Replica.t) (key : string) : string list =
  match Replica.peek rep key with
  | Some (Obj.O_awset s) -> Awset.elements s
  | Some (Obj.O_compset s) -> Compset.raw_elements s
  | _ -> []

let aw_mem (rep : Replica.t) (key : string) (x : string) : bool =
  match Replica.peek rep key with
  | Some (Obj.O_awset s) -> Awset.mem x s
  | Some (Obj.O_compset s) -> Compset.mem x s
  | _ -> false

let rw_mem (rep : Replica.t) (key : string) (x : string) : bool =
  match Replica.peek rep key with
  | Some (Obj.O_rwset s) -> Rwset.mem x s
  | _ -> false

(* compensation sets: the capacity-bounded view a read returns *)
let visible_set (rep : Replica.t) (key : string) : string list =
  match Replica.peek rep key with
  | Some (Obj.O_compset s) -> fst (Compset.read s)
  | Some (Obj.O_awset s) -> Awset.elements s
  | _ -> []

let counter_raw (rep : Replica.t) (key : string) : int =
  match Replica.peek rep key with
  | Some (Obj.O_pncounter c) -> Pncounter.value c
  | Some (Obj.O_compcounter c) -> Compcounter.raw_value c
  | _ -> 0

(* compensation counters: the repaired (lower-bound-clamped) view *)
let counter_read (rep : Replica.t) (key : string) : int =
  match Replica.peek rep key with
  | Some (Obj.O_compcounter c) ->
      let v, _, _ = Compcounter.read c ~rep:rep.Replica.id in
      v
  | Some (Obj.O_pncounter c) -> Pncounter.value c
  | _ -> 0

let no_nums : Ground.gnum -> int = fun _ -> 0

let invariants_named (spec : Ipa_spec.Types.t) (names : string list) :
    Ipa_spec.Types.invariant list =
  List.filter
    (fun (i : Ipa_spec.Types.invariant) ->
      List.mem i.Ipa_spec.Types.iname names)
    spec.Ipa_spec.Types.invariants

(* ------------------------------------------------------------------ *)
(* Tournament                                                          *)
(* ------------------------------------------------------------------ *)

let players = [ "p0"; "p1"; "p2"; "p3"; "p4" ]
let tourns = [ "t0"; "t1" ]

let tournament (repaired : bool) : t =
  let spec = Ipa_spec.Catalog.tournament () in
  let capacity = List.assoc "Capacity" spec.Ipa_spec.Types.consts in
  let app =
    Ipa_apps.Tournament.create ~capacity
      (if repaired then Ipa_apps.Tournament.Ipa else Ipa_apps.Tournament.Causal)
  in
  let doms sorts =
    List.map (function "Player" -> players | _ -> tourns) sorts
  in
  let valuation (rep : Replica.t) =
    let enrolled_vis t =
      if repaired then visible_set rep ("enrolled:" ^ t)
      else aw_elements rep ("enrolled:" ^ t)
    in
    let batom (a : Ground.gatom) =
      match (a.Ground.gpred, a.Ground.gargs) with
      | "player", [ p ] -> aw_mem rep "players" p
      | "tournament", [ t ] -> aw_mem rep "tournaments" t
      | "enrolled", [ p; t ] -> List.mem p (enrolled_vis t)
      | "active", [ t ] -> rw_mem rep "active" t
      | "finished", [ t ] -> aw_mem rep "finished" t
      | "inMatch", [ p; q; t ] ->
          List.mem (p ^ "|" ^ q) (aw_elements rep ("matches:" ^ t))
          && (not repaired
             ||
             let vis = enrolled_vis t in
             List.mem p vis && List.mem q vis)
      | _ -> false
    in
    (batom, no_nums)
  in
  {
    app_name = "tournament";
    repaired;
    spec;
    sg = Ipa_spec.Types.signature spec;
    consts = spec.Ipa_spec.Types.consts;
    dom = [ ("Player", players); ("Tournament", tourns) ];
    ops =
      List.map
        (fun (opname, sorts) -> { opname; argdoms = doms sorts })
        Ipa_apps.Tournament.fuzz_ops;
    checked = spec.Ipa_spec.Types.invariants;
    seed_ops =
      List.map (fun p -> ("add_player", [ p ])) players
      @ List.map (fun t -> ("add_tourn", [ t ])) tourns;
    exec =
      (fun ~name ~args -> Ipa_apps.Tournament.exec_op app name args);
    valuation;
  }

(* ------------------------------------------------------------------ *)
(* Twitter                                                             *)
(* ------------------------------------------------------------------ *)

let users = [ "u0"; "u1"; "u2"; "u3" ]
let tweets = [ "tw0"; "tw1"; "tw2"; "tw3" ]
let n_users = List.length users

let twitter (repaired : bool) : t =
  let spec = Ipa_spec.Catalog.twitter () in
  let app =
    Ipa_apps.Twitter.create ~followers_per_user:2
      (if repaired then Ipa_apps.Twitter.Rem_wins else Ipa_apps.Twitter.Causal)
  in
  let doms sorts = List.map (function "User" -> users | _ -> tweets) sorts in
  let valuation (rep : Replica.t) =
    let user u = aw_mem rep "users" u in
    let tweet t = aw_mem rep "tweets" t in
    let batom (a : Ground.gatom) =
      match (a.Ground.gpred, a.Ground.gargs) with
      | "user", [ u ] -> user u
      | "tweet", [ t ] -> tweet t
      | "follows", [ a; b ] ->
          aw_mem rep ("follows:" ^ a) b
          && (not repaired || (user a && user b))
      | "timeline", [ u; t ] ->
          List.exists
            (fun entry ->
              match String.index_opt entry ':' with
              | Some k ->
                  String.sub entry 0 k = t
                  && (not repaired
                     ||
                     let author =
                       String.sub entry (k + 1) (String.length entry - k - 1)
                     in
                     user u && tweet t && user author)
              | None -> false)
            (aw_elements rep ("timeline:" ^ u))
      | "retweeted", [ t; u ] ->
          aw_mem rep ("retweets:" ^ t) u
          && (not repaired || (tweet t && user u))
      | _ -> false
    in
    (batom, no_nums)
  in
  {
    app_name = "twitter";
    repaired;
    spec;
    sg = Ipa_spec.Types.signature spec;
    consts = spec.Ipa_spec.Types.consts;
    dom = [ ("User", users); ("Tweet", tweets) ];
    ops =
      List.map
        (fun (opname, sorts) -> { opname; argdoms = doms sorts })
        Ipa_apps.Twitter.fuzz_ops;
    checked = spec.Ipa_spec.Types.invariants;
    seed_ops = List.map (fun u -> ("add_user", [ u ])) users;
    exec =
      (fun ~name ~args -> Ipa_apps.Twitter.exec_op app ~n_users name args);
    valuation;
  }

(* ------------------------------------------------------------------ *)
(* Ticket                                                              *)
(* ------------------------------------------------------------------ *)

let events_dom = [ "e0"; "e1" ]

let ticket (repaired : bool) : t =
  let spec = Ipa_spec.Catalog.ticket () in
  let app =
    Ipa_apps.Ticket.create ~initial_stock:0
      (if repaired then Ipa_apps.Ticket.Ipa else Ipa_apps.Ticket.Causal)
  in
  let doms sorts =
    List.map
      (function "Event" -> events_dom | _ -> [ "1"; "2"; "3" ])
      sorts
  in
  let valuation (rep : Replica.t) =
    let batom (a : Ground.gatom) =
      match (a.Ground.gpred, a.Ground.gargs) with
      | "event", [ e ] -> aw_mem rep "events" e
      | _ -> false
    in
    let bnum (n : Ground.gnum) =
      match (n.Ground.gfun, n.Ground.gnargs) with
      | "available", [ e ] ->
          if repaired then counter_read rep ("avail:" ^ e)
          else counter_raw rep ("avail:" ^ e)
      | _ -> 0
    in
    (batom, bnum)
  in
  {
    app_name = "ticket";
    repaired;
    spec;
    sg = Ipa_spec.Types.signature spec;
    consts = spec.Ipa_spec.Types.consts;
    dom = [ ("Event", events_dom) ];
    ops =
      List.map
        (fun (opname, sorts) -> { opname; argdoms = doms sorts })
        Ipa_apps.Ticket.fuzz_ops;
    (* only no_oversell: the upper bound (event_ref) is a spec-level
       artifact the runtime app does not enforce on add_tickets *)
    checked = invariants_named spec [ "no_oversell" ];
    (* scarce stock: two concurrent buys of the same event suffice to
       oversell, so the causal baseline's anomaly is reachable within a
       small schedule budget *)
    seed_ops = [ ("add_tickets", [ "e0"; "2" ]); ("add_tickets", [ "e1"; "1" ]) ];
    exec = (fun ~name ~args -> Ipa_apps.Ticket.exec_op app name args);
    valuation;
  }

(* ------------------------------------------------------------------ *)
(* TPC-W                                                               *)
(* ------------------------------------------------------------------ *)

let items = [ "i0"; "i1"; "i2" ]
let orders = [ "o0"; "o1"; "o2"; "o3"; "o4"; "o5" ]
let customers = [ "c0"; "c1" ]

let tpcw (repaired : bool) : t =
  let spec = Ipa_spec.Catalog.tpcw () in
  let app =
    Ipa_apps.Tpc.create ~initial_stock:3
      (if repaired then Ipa_apps.Tpc.Ipa else Ipa_apps.Tpc.Causal)
  in
  let doms sorts =
    List.map
      (function
        | "Item" -> items
        | "Order" -> orders
        | "Customer" -> customers
        | _ -> [ "id0" ])
      sorts
  in
  let valuation (rep : Replica.t) =
    let batom (a : Ground.gatom) =
      match (a.Ground.gpred, a.Ground.gargs) with
      | "item", [ i ] -> aw_mem rep "items" i
      | "order", [ o ] -> aw_mem rep "orders" o
      | "orderLine", [ o; i ] -> aw_mem rep ("lines:" ^ o) i
      | _ -> false
    in
    let bnum (n : Ground.gnum) =
      match (n.Ground.gfun, n.Ground.gnargs) with
      | "stock", [ i ] ->
          if repaired then counter_read rep ("stock:" ^ i)
          else counter_raw rep ("stock:" ^ i)
      | _ -> 0
    in
    (batom, bnum)
  in
  {
    app_name = "tpcw";
    repaired;
    spec;
    sg = Ipa_spec.Types.signature spec;
    consts = spec.Ipa_spec.Types.consts;
    dom =
      [
        ("Item", items);
        ("Order", orders);
        ("Customer", customers);
        ("Id", [ "id0" ]);
      ];
    ops =
      List.map
        (fun (opname, sorts) -> { opname; argdoms = doms sorts })
        Ipa_apps.Tpc.fuzz_ops;
    (* the runtime slice materializes listings, orders, lines and stock;
       owner/customer-id bookkeeping is not part of the runtime app *)
    checked = invariants_named spec [ "stock_nonneg"; "line_ref" ];
    seed_ops = List.map (fun i -> ("add_item", [ i ])) items;
    exec = (fun ~name ~args -> Ipa_apps.Tpc.exec_op app name args);
    valuation;
  }

(* ------------------------------------------------------------------ *)

(** Fresh harness (with a fresh app instance) for [app]; raises
    [Invalid_argument] on an unknown app name. *)
let make ~(app : string) ~(repaired : bool) : t =
  match app with
  | "tournament" -> tournament repaired
  | "twitter" -> twitter repaired
  | "ticket" -> ticket repaired
  | "tpcw" -> tpcw repaired
  | a -> invalid_arg (Fmt.str "Harness.make: unknown app %s" a)

(** Ground every checked invariant of [h] once (shared across the
    replicas and runs the oracle evaluates). *)
let ground_checked (h : t) : (string * Ground.gformula) list =
  List.map
    (fun (i : Ipa_spec.Types.invariant) ->
      ( i.Ipa_spec.Types.iname,
        Ground.ground ~sg:h.sg ~consts:h.consts ~dom:h.dom
          i.Ipa_spec.Types.iformula ))
    h.checked
