(** Validity-preserving random specification mutations, for the
    parser/renderer round-trip property. *)

(** One random mutation (flip/negate an effect value, toggle touch,
    duplicate an effect, rename an operation, rotate a convergence
    rule, add a const or sort). *)
val mutate : Ipa_sim.Rng.t -> Ipa_spec.Types.t -> Ipa_spec.Types.t

(** [n] random mutations in sequence. *)
val mutations : Ipa_sim.Rng.t -> Ipa_spec.Types.t -> int -> Ipa_spec.Types.t

(** [grow rng spec n] appends [n] perturbed clones of existing
    operations under fresh names; the signature (sorts, predicates,
    constants) is untouched, so analysis contexts survive. *)
val grow : Ipa_sim.Rng.t -> Ipa_spec.Types.t -> int -> Ipa_spec.Types.t

(** Perturb one randomly chosen operation's effects in place (name and
    signature preserved); returns the edited spec and the operation's
    name ([""] when nothing is editable). *)
val edit_operation :
  Ipa_sim.Rng.t -> Ipa_spec.Types.t -> Ipa_spec.Types.t * string

(** A session of [k] cumulative single-operation edits: spec after each
    edit, plus the edited operation's name. *)
val edit_stream :
  Ipa_sim.Rng.t -> Ipa_spec.Types.t -> int ->
  (Ipa_spec.Types.t * string) list
