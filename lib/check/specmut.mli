(** Validity-preserving random specification mutations, for the
    parser/renderer round-trip property. *)

(** One random mutation (flip/negate an effect value, toggle touch,
    duplicate an effect, rename an operation, rotate a convergence
    rule, add a const or sort). *)
val mutate : Ipa_sim.Rng.t -> Ipa_spec.Types.t -> Ipa_spec.Types.t

(** [n] random mutations in sequence. *)
val mutations : Ipa_sim.Rng.t -> Ipa_spec.Types.t -> int -> Ipa_spec.Types.t
