(** Escrow planner, runtime half: demand-aware rights placement and
    adaptive migration for bounded counters.

    One manager per replica.  Decrement (and, for capped counters,
    increment) attempts are noted locally, periodically published as
    advisory [Demand]/[Hdemand] ops riding ordinary batches, and every
    replica differences the replicated ledgers into windowed (EWMA)
    per-replica demand estimates.  At each {!tick} — piggybacked on the
    anti-entropy round via [Ipa_store.Sync.t.on_round] — a replica
    proactively ships part of its rights surplus toward replicas whose
    demand share outruns their holdings, with hysteresis (minimum
    deficit, minimum batch, per-destination cooldown) so rights don't
    ping-pong.  Amortizing transfers into rounds already being paid for
    is what removes the blocking WAN round-trip on exhaustion. *)

open Ipa_crdt

type policy = {
  alpha : float;
      (** EWMA smoothing of per-tick demand deltas, in (0, 1] *)
  hysteresis : float;
      (** minimum peer deficit, as a fraction of the peer's target
          holding, before rights ship toward it *)
  min_batch : int;  (** never ship fewer rights than this *)
  cooldown_ms : float;
      (** minimum time between ships to the same (key, destination) *)
  slack : int;
      (** burst headroom: peers are topped up to fair share + [slack] *)
}

val default_policy : policy

type stats = {
  mutable migrations : int;  (** proactive rights-moving ops committed *)
  mutable rights_migrated : int;  (** rights units shipped proactively *)
  mutable hmigrations : int;  (** headroom ops among them *)
  mutable headroom_migrated : int;
}

type t = {
  rep : string;  (** the replica this manager decides for *)
  policy : policy;
  pending : (string, int) Hashtbl.t;
  hpending : (string, int) Hashtbl.t;
  last_cum : (string * string * bool, int) Hashtbl.t;
  rate : (string * string * bool, float) Hashtbl.t;
  last_ship : (string * string * bool, float) Hashtbl.t;
  stats : stats;
}

val create : ?policy:policy -> rep:string -> unit -> t

(** Note decrement attempts against a key at this replica — covered or
    blocked; blocked demand is exactly what the planner must learn. *)
val note_dec : t -> key:string -> int -> unit

(** Dual: note increment attempts (headroom demand, capped counters). *)
val note_inc : t -> key:string -> int -> unit

(** Install the planner's predicted per-replica demand for a key as the
    initial EWMA estimate ([?headroom] selects the increment side):
    the first ticks migrate toward forecast demand before the observed
    ledgers have warmed up.  Only the ratios matter. *)
val forecast :
  t -> key:string -> ?headroom:bool -> (string * float) list -> unit

(** Seed operations establishing a counter with value [value] and its
    rights placed per [shares] (an apportioned placement, e.g. from
    [Ipa_core.Escrow_plan.apportion]; the first share's replica hosts
    the seeding increment).  With [?cap] the counter is capped and the
    remaining headroom placed by [hshares] (default [shares]).  The
    sequence is guard-checked end to end; commit it in one transaction
    and deliver it before concurrent use. *)
val seed :
  shares:(string * int) list ->
  value:int ->
  ?cap:int ->
  ?hshares:(string * int) list ->
  unit ->
  Bcounter.op list

(** One migration tick for a key at this replica, given its current
    local view of the counter: the ops to commit here — buffered-demand
    publication, then proactive [Transfer]s (and [Hmove]s on capped
    counters) toward hot replicas.  Prepared against the evolving view,
    so the sequence can never overdraw this replica's ledgers. *)
val tick : t -> now:float -> key:string -> Bcounter.t -> Bcounter.op list
