(** Closed-loop workload driver (§5.2.1–5.2.2).

    Clients are installed in the same availability zones as their
    closest servers; each runs a closed loop: draw an operation from the
    workload mix, execute it through the configuration, record the
    latency, repeat (optionally after a think time).  Peak-throughput
    curves come from sweeping the number of clients per region. *)

open Ipa_sim

type workload = {
  clients_per_region : int;
  duration_ms : float;  (** measured window, after warm-up *)
  warmup_ms : float;
  think_time_ms : float;  (** 0 = back-to-back *)
  only_region : string option;
      (** restrict clients to one region (microbenchmarks) *)
  next_op : Rng.t -> region:string -> Config.op_exec;
}

let default_workload next_op =
  {
    clients_per_region = 4;
    duration_ms = 30_000.0;
    warmup_ms = 2_000.0;
    think_time_ms = 0.0;
    only_region = None;
    next_op;
  }

(** Run a workload against a configuration; returns the metrics of the
    measured window.

    [read_level_of] is the per-operation read-level configuration (by
    operation name): read-only operations mapped to a non-weak level
    take {!Config.execute_read} — bounded-staleness reads served by any
    replica covering the resolved bound, strong reads behind the
    quiesce barrier.  The default maps everything to {!Config.RL_weak},
    which preserves the historical path (reads execute like any Local
    operation) exactly. *)
let run ?(seed = 42) ?(read_level_of = fun (_ : string) -> Config.RL_weak)
    (cfg : Config.t) (w : workload) : Metrics.t =
  let m = Metrics.create () in
  let engine = cfg.Config.engine in
  m.Metrics.started_at <- w.warmup_ms;
  m.Metrics.finished_at <- w.warmup_ms +. w.duration_ms;
  let regions =
    List.map
      (fun (r : Ipa_store.Replica.t) -> r.Ipa_store.Replica.region)
      cfg.Config.cluster.Ipa_store.Cluster.replicas
  in
  let regions =
    match w.only_region with
    | Some r -> List.filter (( = ) r) regions
    | None -> regions
  in
  let master_rng = Rng.create seed in
  let t_end = w.warmup_ms +. w.duration_ms in
  List.iter
    (fun region ->
      for _ = 1 to w.clients_per_region do
        let rng = Rng.split master_rng in
        let rec loop () =
          if Engine.now engine < t_end then begin
            let op = w.next_op rng ~region in
            let execute =
              match
                if op.Config.is_update then Config.RL_weak
                else read_level_of op.Config.op_name
              with
              | Config.RL_weak -> Config.execute cfg ~client_region:region
              | level -> Config.execute_read cfg ~client_region:region ~level
            in
            execute op
              ~complete:(fun lat outcome ->
                let t = Engine.now engine in
                if t >= w.warmup_ms && t <= t_end then
                  if outcome.Config.unavailable then Metrics.record_failure m
                  else begin
                    Metrics.record m ~op:op.Config.op_name lat;
                    Metrics.record_violations m outcome.Config.violations
                  end;
                (* an unavailable op retries after a back-off *)
                let delay =
                  if outcome.Config.unavailable then 50.0
                  else if w.think_time_ms > 0.0 then
                    Rng.exponential rng w.think_time_ms
                  else 0.0
                in
                if delay > 0.0 then Engine.schedule engine ~delay loop
                else loop ())
          end
        in
        (* stagger client start to avoid lock-step *)
        Engine.schedule engine ~delay:(Rng.uniform rng 0.0 50.0) loop
      done)
    regions;
  (* run past the end so in-flight operations complete and replication
     settles (with faults enabled this window also lets anti-entropy
     close any remaining delivery gaps) *)
  Engine.run_until engine (t_end +. 10_000.0);
  Config.collect_delivery cfg m;
  m

(** Drive a precomputed {!Ipa_sim.Workload} event stream (open-loop
    Poisson arrivals or closed-loop think-time schedules, typically
    Zipfian over keys) through a configuration.  [op_of] maps each
    event to the issuing client's region and the operation to execute;
    per-event latencies land in the returned metrics (events completing
    before [warmup_ms] are discarded), and the engine runs [settle_ms]
    past the last arrival so replication settles before delivery
    statistics are collected.

    This is the open-loop complement of {!run}: arrival times come from
    the stream, not from client loops, so offered load stays fixed no
    matter how slow the system responds — the regime of the paper's
    peak-contention figures. *)
let run_stream ?(read_level_of = fun (_ : string) -> Config.RL_weak)
    ?(warmup_ms = 0.0) ?(settle_ms = 10_000.0) (cfg : Config.t)
    ~(events : Workload.event list)
    ~(op_of : Workload.event -> string * Config.op_exec) : Metrics.t =
  let m = Metrics.create () in
  let engine = cfg.Config.engine in
  let horizon =
    List.fold_left
      (fun acc (e : Workload.event) -> Float.max acc e.Workload.at_ms)
      0.0 events
  in
  m.Metrics.started_at <- warmup_ms;
  m.Metrics.finished_at <- horizon;
  List.iter
    (fun (e : Workload.event) ->
      Engine.schedule engine ~delay:e.Workload.at_ms (fun () ->
          let region, op = op_of e in
          let execute =
            match
              if op.Config.is_update then Config.RL_weak
              else read_level_of op.Config.op_name
            with
            | Config.RL_weak -> Config.execute cfg ~client_region:region
            | level -> Config.execute_read cfg ~client_region:region ~level
          in
          execute op
            ~complete:(fun lat outcome ->
              if Engine.now engine >= warmup_ms then
                if outcome.Config.unavailable then Metrics.record_failure m
                else begin
                  Metrics.record m ~op:op.Config.op_name lat;
                  Metrics.record_violations m outcome.Config.violations
                end)))
    events;
  Engine.run_until engine (horizon +. settle_ms);
  Config.collect_delivery cfg m;
  m

(** Sweep client counts and report (clients, throughput, mean latency)
    triples — the shape of Figure 4. *)
let throughput_sweep ?(seed = 42) ~(mk_config : unit -> Config.t)
    (w : workload) (client_counts : int list) :
    (int * float * float) list =
  List.map
    (fun n ->
      let cfg = mk_config () in
      let m = run ~seed cfg { w with clients_per_region = n } in
      (n, Metrics.throughput m, Metrics.mean_latency m ()))
    client_counts
