(** System configurations of the evaluation (§5.2.1).

    All four configurations execute {e real} transactions against the
    replicated store; they differ in where an operation runs and what
    coordination it pays before running:

    - {b Local} (used for both {e Causal} and {e IPA}): execute at the
      client's co-located replica, replicate asynchronously.  IPA differs
      from Causal only in the application code (extra restoring effects),
      so both use this mode.
    - {b Strong}: updates are forwarded to a single primary region
      (us-east in the paper) and pay the WAN round-trip; reads stay
      local.
    - {b Indigo}: an operation needs reservations; if a reservation is
      held by another region the operation pays a WAN round-trip to
      fetch it (reservations migrate to the requester), otherwise it
      executes locally.

    Time model: client↔local-replica LAN RTT plus a service time of
    [service_base] + [service_per_update] × (number of update effects) —
    the cost model behind Figure 8's microbenchmarks. *)

open Ipa_store
open Ipa_sim

(** Result of running an operation's transaction at some replica. *)
type outcome = {
  batch : Replica.batch option;
  violations : int;  (** violation units this operation observed/repaired *)
  extra_work : int;
      (** additional service-time units beyond the update count, e.g.
          objects read and filtered by a read-side compensation *)
  extra_rtts : int;
      (** WAN round-trips the operation performed internally (e.g. an
          escrow rights transfer) — charged to its latency *)
  unavailable : bool;
      (** the configuration could not execute the operation (failure
          injection, §5.2.5): Strong with a down primary, Indigo with an
          unreachable reservation holder *)
}

let outcome ?(violations = 0) ?(extra_work = 0) ?(extra_rtts = 0) batch =
  { batch; violations; extra_work; extra_rtts; unavailable = false }

let unavailable_outcome =
  {
    batch = None;
    violations = 0;
    extra_work = 0;
    extra_rtts = 0;
    unavailable = true;
  }

(** Reservation kinds (Indigo):  [Shared] reservations can be held by
    every replica simultaneously (escrow-style rights for commuting
    operations) — after the first acquisition they never move, which is
    why Indigo's reservations are "exchanged very infrequently" (§5.2.2).
    [Exclusive] reservations (forbid-rights, e.g. for removals) migrate
    to the requesting replica, costing a WAN round-trip on each
    cross-region hand-off. *)
type res_kind = Shared | Exclusive

(** An executable operation: the application provides the real
    transaction code plus the metadata the configurations need. *)
type op_exec = {
  op_name : string;
  is_update : bool;
  reservations : (string * res_kind) list;  (** resources Indigo must hold *)
  run : Replica.t -> outcome;
}

(** Per-operation read-level annotation (the consistency-typed client
    API of {!Ipa_store.Read}, threaded through the runtime's latency
    model).  [RL_bounded] carries a staleness budget in milliseconds;
    the runtime resolves it against its commit-clock history into the
    bound clock a replica must cover. *)
type read_level =
  | RL_weak  (** any replica, immediately — the Local read path *)
  | RL_bounded of float
      (** staleness budget (ms): the reply must reflect every operation
          committed anywhere up to [now − budget] *)
  | RL_strong  (** quiesce-then-read: reflect everything committed *)

type mode =
  | Local  (** Causal / IPA: everything at the client's replica *)
  | Strong  (** updates forwarded to the primary region *)
  | Indigo  (** reservation-protected operations *)
  | Hybrid of (string -> bool)
      (** IPA with coordination fallback: operations the analysis
          {e flagged} (the predicate, by operation name) take the
          reservation path; everything else runs locally.  This is the
          paper's §3 step 3: "for conflicts flagged as unsolvable by
          IPA, the programmer can resort to some coordination
          mechanism". *)

(** Current state of one reservation. *)
type res_state = { mutable ex_holder : string option; mutable sharers : string list }

(** Visibility-latency samples (commit at origin → apply at a remote
    replica); a shared heap record so [{ cfg with mode }] copies keep
    accumulating into the same place. *)
type vis_stats = { mutable vis_samples : float list; mutable vis_n : int }

type t = {
  mode : mode;
  engine : Engine.t;
  net : Net.t;
  cluster : Cluster.t;
  primary : string;  (** primary region for [Strong] *)
  service_base : float;
  service_per_update : float;
      (** processing cost per update effect (object already loaded) *)
  service_per_object : float;
      (** storage read+write cost per {e distinct} object touched — an
          object is read and written once per transaction; further
          updates to it only pay [service_per_update] (§5.2.5) *)
  server_threads : int;  (** per-region service parallelism *)
  reservation_rtt_overhead : float;
      (** extra processing per reservation transfer *)
  holders : (string, res_state) Hashtbl.t;  (** Indigo reservation table *)
  server_slots : (string, float array) Hashtbl.t;
      (** per-region busy-until times: a simple multi-server queue so
          latency rises as the offered load approaches capacity *)
  down_until : (string, float) Hashtbl.t;
      (** failure injection: regions unreachable until the given time *)
  sync : Sync.t option;  (** anti-entropy, when enabled *)
  sync_interval_ms : float;
  sent_at : (string * int, float) Hashtbl.t;
      (** batch key → commit time, for visibility-latency measurement *)
  vis : vis_stats;
  mutable reservation_misses : int;
  mutable reservation_hits : int;
  clock_hist : (float * Ipa_crdt.Vclock.t) array;
      (** ring of (commit time, global committed clock) checkpoints —
          the front-end-side history that resolves a staleness budget
          into a bound clock ({!bound_clock}) *)
  mutable hist_head : int;  (** next ring slot to write *)
  mutable hist_len : int;  (** live entries (≤ ring size) *)
  mutable global_vv : Ipa_crdt.Vclock.t;
      (** merge of every committed batch's after-clock *)
}

(* commit-clock checkpoints retained for bound resolution; staleness
   budgets reaching past the ring resolve to the oldest retained clock
   (a stricter bound — conservative, never unsound) *)
let clock_hist_size = 8192

let create ?(primary = "us-east") ?(service_base = 1.0)
    ?(service_per_update = 0.05) ?(service_per_object = 0.3)
    ?(server_threads = 8) ?(reservation_rtt_overhead = 1.0)
    ?(sync_interval_ms = 0.0) ?sync_base_backoff_ms ?sync_max_backoff_ms
    ~(mode : mode) ~(engine : Engine.t) ~(net : Net.t)
    ~(cluster : Cluster.t) () : t =
  let sync =
    if sync_interval_ms > 0.0 then
      Some
        (Sync.create ?base_backoff_ms:sync_base_backoff_ms
           ?max_backoff_ms:sync_max_backoff_ms cluster)
    else None
  in
  let cfg =
    {
      mode;
      engine;
      net;
      cluster;
      primary;
      service_base;
      service_per_update;
      service_per_object;
      server_threads;
      reservation_rtt_overhead;
      holders = Hashtbl.create 64;
      server_slots = Hashtbl.create 8;
      down_until = Hashtbl.create 4;
      sync;
      sync_interval_ms;
      sent_at = Hashtbl.create 1024;
      vis = { vis_samples = []; vis_n = 0 };
      reservation_misses = 0;
      reservation_hits = 0;
      clock_hist = Array.make clock_hist_size (0.0, Ipa_crdt.Vclock.empty);
      hist_head = 0;
      hist_len = 0;
      global_vv = Ipa_crdt.Vclock.empty;
    }
  in
  (* visibility hook: every remote apply is timed against the origin's
     commit (first-copy-wins; duplicates never reach the hook) *)
  List.iter
    (fun (r : Replica.t) ->
      r.Replica.on_apply <-
        (fun b ->
          match
            Hashtbl.find_opt cfg.sent_at (b.Replica.b_origin, b.Replica.b_seq)
          with
          | Some t0 ->
              cfg.vis.vis_samples <-
                (Engine.now engine -. t0) :: cfg.vis.vis_samples;
              cfg.vis.vis_n <- cfg.vis.vis_n + 1
          | None -> ()))
    cluster.Cluster.replicas;
  (* anti-entropy: a recurring round whose retransmissions travel the
     same faulty data path as first transmissions *)
  (match sync with
  | Some s ->
      let send ~(src : Replica.t) ~(dst : Replica.t) (b : Replica.batch) =
        let now = Engine.now engine in
        let dst_down =
          match Hashtbl.find_opt cfg.down_until dst.Replica.region with
          | Some until -> now < until
          | None -> false
        in
        (* an unreachable region is retried on a later round (backoff) *)
        if not dst_down then
          List.iter
            (fun delay ->
              Engine.schedule engine ~delay (fun () -> Replica.receive dst b))
            (Net.deliveries net ~now ~src:src.Replica.region
               ~dst:dst.Replica.region)
      in
      let rec tick () =
        ignore (Sync.round s ~now:(Engine.now engine) ~send);
        Engine.schedule engine ~delay:sync_interval_ms tick
      in
      Engine.schedule engine ~delay:sync_interval_ms tick
  | None -> ());
  cfg

(** Inject a failure: [region] is unreachable for [for_ms] from now.
    Batches addressed to it are delivered after it recovers. *)
let fail_region (cfg : t) (region : string) ~(for_ms : float) : unit =
  Hashtbl.replace cfg.down_until region (Engine.now cfg.engine +. for_ms)

let is_down (cfg : t) (region : string) : bool =
  match Hashtbl.find_opt cfg.down_until region with
  | Some t -> Engine.now cfg.engine < t
  | None -> false

(* the closest reachable region for a client (its own if alive) *)
let reachable_region (cfg : t) (region : string) : string option =
  if not (is_down cfg region) then Some region
  else
    cfg.cluster.Cluster.replicas
    |> List.filter_map (fun (r : Replica.t) ->
           if is_down cfg r.Replica.region then None
           else Some (r.Replica.region, Net.mean_rtt cfg.net region r.Replica.region))
    |> List.sort (fun (_, a) (_, b) -> compare a b)
    |> function
    | (best, _) :: _ -> Some best
    | [] -> None

let replica_in (cfg : t) (region : string) : Replica.t =
  List.find
    (fun (r : Replica.t) -> r.Replica.region = region)
    cfg.cluster.Cluster.replicas

(* asynchronously replicate a committed batch to all peers through the
   network's fault plan (each transmission can be lost, duplicated or
   tail-delayed; anti-entropy recovers losses); delivery to a down
   region waits for its recovery *)
let replicate (cfg : t) (origin_region : string) (b : Replica.batch) : unit =
  let now = Engine.now cfg.engine in
  Hashtbl.replace cfg.sent_at (b.Replica.b_origin, b.Replica.b_seq) now;
  (* commit-clock checkpoint: the global committed clock after this
     batch, timestamped — what {!bound_clock} resolves budgets against *)
  cfg.global_vv <- Ipa_crdt.Vclock.merge cfg.global_vv b.Replica.b_after;
  cfg.clock_hist.(cfg.hist_head) <- (now, cfg.global_vv);
  cfg.hist_head <- (cfg.hist_head + 1) mod clock_hist_size;
  cfg.hist_len <- min (cfg.hist_len + 1) clock_hist_size;
  List.iter
    (fun (peer : Replica.t) ->
      if peer.Replica.id <> b.Replica.b_origin then
        List.iter
          (fun delay ->
            let delay =
              match Hashtbl.find_opt cfg.down_until peer.Replica.region with
              | Some until -> max delay (until -. now +. delay)
              | None -> delay
            in
            Engine.schedule cfg.engine ~delay (fun () ->
                Replica.receive peer b))
          (Net.deliveries cfg.net ~now ~src:origin_region
             ~dst:peer.Replica.region))
    cfg.cluster.Cluster.replicas

let service_time (cfg : t) (o : outcome) : float =
  let updates, objects =
    match o.batch with
    | Some b ->
        ( List.length b.Replica.b_updates,
          List.length
            (List.sort_uniq compare (List.map fst b.Replica.b_updates)) )
    | None -> (0, 0)
  in
  cfg.service_base
  +. (cfg.service_per_update *. float_of_int (updates + o.extra_work))
  +. (cfg.service_per_object *. float_of_int objects)

(* multi-server FIFO queue per region: returns queueing delay and books
   the service slot *)
let queue_delay (cfg : t) (region : string) (svc : float) : float =
  let slots =
    match Hashtbl.find_opt cfg.server_slots region with
    | Some a -> a
    | None ->
        let a = Array.make (max 1 cfg.server_threads) 0.0 in
        Hashtbl.replace cfg.server_slots region a;
        a
  in
  let now = Engine.now cfg.engine in
  (* earliest-available slot *)
  let best = ref 0 in
  for i = 1 to Array.length slots - 1 do
    if slots.(i) < slots.(!best) then best := i
  done;
  let start = max now slots.(!best) in
  slots.(!best) <- start +. svc;
  start -. now

(* run the op at a replica, replicate, return service time including
   any queueing delay at that region's servers *)
let run_at (cfg : t) (region : string) (op : op_exec) : outcome * float =
  let rep = replica_in cfg region in
  let o = op.run rep in
  (match o.batch with Some b -> replicate cfg region b | None -> ());
  let svc = service_time cfg o in
  let wait = queue_delay cfg region svc in
  (o, wait +. svc)

(** Execute an operation for a client in [client_region]; calls
    [complete] with (latency in ms, outcome) when the client would
    receive the reply. *)
let rec execute (cfg : t) ~(client_region : string) (op : op_exec)
    ~(complete : float -> outcome -> unit) : unit =
  let lan = Net.rtt cfg.net client_region client_region in
  match cfg.mode with
  | Hybrid coordinated ->
      (* route per operation: flagged ops coordinate (with exclusive
         reservations — shared rights would not serialize the pair),
         others run local *)
      if coordinated op.op_name then
        let op =
          {
            op with
            reservations =
              List.map (fun (r, _) -> (r, Exclusive)) op.reservations;
          }
        in
        execute { cfg with mode = Indigo } ~client_region op ~complete
      else execute { cfg with mode = Local } ~client_region op ~complete
  | Local -> (
      (* available while ANY server is reachable (§5.2.5): a client whose
         co-located replica is down uses the closest live one *)
      match reachable_region cfg client_region with
      | None -> complete 0.0 unavailable_outcome
      | Some exec_region ->
          let hop =
            if exec_region = client_region then lan
            else Net.rtt cfg.net client_region exec_region
          in
          let o, svc = run_at cfg exec_region op in
          (* internal coordination rounds (escrow transfers) pay a WAN
             round-trip to the nearest peer each *)
          let coord =
            if o.extra_rtts = 0 then 0.0
            else
              let nearest =
                List.fold_left
                  (fun acc (r : Replica.t) ->
                    if r.Replica.region = exec_region then acc
                    else min acc (Net.mean_rtt cfg.net exec_region r.Replica.region))
                  infinity cfg.cluster.Cluster.replicas
              in
              float_of_int o.extra_rtts *. nearest
          in
          let lat = hop +. svc +. coord in
          Engine.schedule cfg.engine ~delay:lat (fun () -> complete lat o))
  | Strong ->
      if is_down cfg cfg.primary && op.is_update then
        complete 0.0 unavailable_outcome
      else if not op.is_update then begin
        let o, svc = run_at cfg client_region op in
        let lat = lan +. svc in
        Engine.schedule cfg.engine ~delay:lat (fun () -> complete lat o)
      end
      else begin
        (* forward to the primary, execute there, reply over the WAN *)
        let to_primary = Net.one_way cfg.net client_region cfg.primary in
        Engine.schedule cfg.engine ~delay:to_primary (fun () ->
            let o, svc = run_at cfg cfg.primary op in
            let back = Net.one_way cfg.net cfg.primary client_region in
            let lat = lan +. to_primary +. svc +. back in
            Engine.schedule cfg.engine ~delay:(svc +. back) (fun () ->
                complete lat o))
      end
  | Indigo when is_down cfg client_region ->
      (* the local replica (and its reservation state) is unreachable *)
      complete 0.0 unavailable_outcome
  | Indigo ->
      (* a reservation whose holder is unreachable cannot be obtained:
         the operation cannot execute (§5.2.5) *)
      let blocked =
        List.exists
          (fun (res, kind) ->
            match Hashtbl.find_opt cfg.holders res with
            | None -> false
            | Some st -> (
                match kind with
                | Shared -> (
                    match st.ex_holder with
                    | Some h -> h <> client_region && is_down cfg h
                    | None ->
                        (not (List.mem client_region st.sharers))
                        && st.sharers <> []
                        && List.for_all (is_down cfg) st.sharers
                    )
                | Exclusive -> (
                    match st.ex_holder with
                    | Some h -> h <> client_region && is_down cfg h
                    | None ->
                        List.exists
                          (fun r -> r <> client_region && is_down cfg r)
                          st.sharers)))
          op.reservations
      in
      if blocked then complete 0.0 unavailable_outcome
      else
      let state_of res =
        match Hashtbl.find_opt cfg.holders res with
        | Some st -> st
        | None ->
            let st = { ex_holder = None; sharers = [] } in
            Hashtbl.replace cfg.holders res st;
            st
      in
      let acq_delay =
        List.fold_left
          (fun acc (res, kind) ->
            let st = state_of res in
            let peer_cost peer =
              Net.rtt cfg.net client_region peer
              +. cfg.reservation_rtt_overhead
            in
            match kind with
            | Shared -> (
                match st.ex_holder with
                | Some holder when holder <> client_region ->
                    (* demote the exclusive holder, share with us *)
                    st.ex_holder <- None;
                    st.sharers <- [ client_region; holder ];
                    cfg.reservation_misses <- cfg.reservation_misses + 1;
                    max acc (peer_cost holder)
                | Some _ ->
                    cfg.reservation_hits <- cfg.reservation_hits + 1;
                    acc
                | None ->
                    if List.mem client_region st.sharers then begin
                      cfg.reservation_hits <- cfg.reservation_hits + 1;
                      acc
                    end
                    else if st.sharers = [] then begin
                      (* first use anywhere: rights originate here *)
                      st.sharers <- [ client_region ];
                      cfg.reservation_hits <- cfg.reservation_hits + 1;
                      acc
                    end
                    else begin
                      (* fetch a share from an existing sharer *)
                      st.sharers <- client_region :: st.sharers;
                      cfg.reservation_misses <- cfg.reservation_misses + 1;
                      max acc (peer_cost (List.hd st.sharers))
                    end)
            | Exclusive -> (
                match st.ex_holder with
                | Some holder when holder = client_region ->
                    cfg.reservation_hits <- cfg.reservation_hits + 1;
                    acc
                | Some holder ->
                    st.ex_holder <- Some client_region;
                    st.sharers <- [];
                    cfg.reservation_misses <- cfg.reservation_misses + 1;
                    max acc (peer_cost holder)
                | None ->
                    let others =
                      List.filter (fun r -> r <> client_region) st.sharers
                    in
                    st.ex_holder <- Some client_region;
                    st.sharers <- [];
                    if others = [] then begin
                      cfg.reservation_hits <- cfg.reservation_hits + 1;
                      acc
                    end
                    else begin
                      (* revoke every remote share *)
                      cfg.reservation_misses <- cfg.reservation_misses + 1;
                      List.fold_left
                        (fun acc peer -> max acc (peer_cost peer))
                        acc others
                    end))
          0.0 op.reservations
      in
      Engine.schedule cfg.engine ~delay:acq_delay (fun () ->
          let o, svc = run_at cfg client_region op in
          let lat = acq_delay +. lan +. svc in
          Engine.schedule cfg.engine ~delay:(lan +. svc) (fun () ->
              complete lat o))

(* ------------------------------------------------------------------ *)
(* Consistency-typed reads                                             *)
(* ------------------------------------------------------------------ *)

(** Resolve a staleness budget into a bound clock: the newest commit
    checkpoint at or before [now − staleness_ms].  Budget 0 therefore
    resolves to the full current committed clock (a bound only the
    strong path can guarantee mid-divergence); a budget reaching past
    the ring resolves to the oldest retained checkpoint (stricter than
    asked for, never weaker); with no commits yet the bound is empty. *)
let bound_clock (cfg : t) ~(staleness_ms : float) : Ipa_crdt.Vclock.t =
  let target = Engine.now cfg.engine -. staleness_ms in
  let n = cfg.hist_len in
  if n = 0 then Ipa_crdt.Vclock.empty
  else begin
    let found = ref None in
    let i = ref 0 in
    while !found = None && !i < n do
      let idx = (cfg.hist_head - 1 - !i + (2 * clock_hist_size)) mod clock_hist_size in
      let t, c = cfg.clock_hist.(idx) in
      if t <= target then found := Some c;
      incr i
    done;
    match !found with
    | Some c -> c
    | None ->
        if n < clock_hist_size then Ipa_crdt.Vclock.empty
          (* full history retained and every commit is newer than the
             target: nothing was committed before it *)
        else
          snd
            cfg.clock_hist.((cfg.hist_head - n + (2 * clock_hist_size))
                            mod clock_hist_size)
  end

(** Execute a read-only operation at a consistency level (the
    per-operation read-level path; updates and [RL_weak] reads take
    {!execute}, which this mirrors for the weak case).

    Latency model: a weak or in-budget bounded read pays the Local
    price (LAN + queue + service).  A bounded read whose bound the
    local replica cannot cover is forwarded to the nearest covering
    replica (one WAN round-trip); if no replica covers the bound, or
    the level is [RL_strong], the client pays a barrier — a round-trip
    to the farthest peer, during which the cluster is driven to
    quiescence over the control channel — and then reads locally. *)
let execute_read (cfg : t) ~(client_region : string) ~(level : read_level)
    (op : op_exec) ~(complete : float -> outcome -> unit) : unit =
  let lan = Net.rtt cfg.net client_region client_region in
  match reachable_region cfg client_region with
  | None -> complete 0.0 unavailable_outcome
  | Some exec_region -> (
      let hop =
        if exec_region = client_region then lan
        else Net.rtt cfg.net client_region exec_region
      in
      let local_finish extra () =
        let o, svc = run_at cfg exec_region op in
        let lat = hop +. extra +. svc in
        Engine.schedule cfg.engine ~delay:lat (fun () -> complete lat o)
      in
      let barrier_then_read () =
        (* strong path: one round-trip to the farthest peer models the
           read barrier; the state heals (reliable control channel)
           while it is in flight *)
        let barrier =
          List.fold_left
            (fun acc (r : Replica.t) ->
              if r.Replica.region = exec_region then acc
              else max acc (Net.mean_rtt cfg.net exec_region r.Replica.region))
            0.0 cfg.cluster.Cluster.replicas
        in
        Engine.schedule cfg.engine ~delay:barrier (fun () ->
            ignore (Ipa_store.Read.quiesce cfg.cluster);
            let o, svc = run_at cfg exec_region op in
            let lat = hop +. barrier +. svc in
            Engine.schedule cfg.engine ~delay:(hop +. svc) (fun () ->
                complete lat o))
      in
      match level with
      | RL_weak -> local_finish 0.0 ()
      | RL_strong -> barrier_then_read ()
      | RL_bounded staleness_ms -> (
          let b = bound_clock cfg ~staleness_ms in
          let local = replica_in cfg exec_region in
          if Ipa_store.Read.covers local b then local_finish 0.0 ()
          else
            (* serve from the nearest replica whose clock covers the
               bound — the routing freedom bounded staleness buys *)
            let covering =
              cfg.cluster.Cluster.replicas
              |> List.filter_map (fun (r : Replica.t) ->
                     if
                       r.Replica.region <> exec_region
                       && (not (is_down cfg r.Replica.region))
                       && Ipa_store.Read.covers r b
                     then
                       Some
                         ( r.Replica.region,
                           Net.mean_rtt cfg.net exec_region r.Replica.region )
                     else None)
              |> List.sort (fun (_, a) (_, b) -> compare a b)
            in
            match covering with
            | (region, rtt) :: _ ->
                let o, svc = run_at cfg region op in
                let lat = hop +. rtt +. svc in
                Engine.schedule cfg.engine ~delay:lat (fun () ->
                    complete lat o)
            | [] -> barrier_then_read ()))

(* ------------------------------------------------------------------ *)
(* Delivery observability                                              *)
(* ------------------------------------------------------------------ *)

(** Fold the replication-layer delivery statistics (network counters,
    anti-entropy retransmissions, per-replica duplicate suppression and
    pending-buffer high-water marks, visibility-latency samples) into a
    metrics record — called by {!Driver.run} after the workload ends. *)
let collect_delivery (cfg : t) (m : Metrics.t) : unit =
  let d = m.Metrics.delivery in
  let ns = Net.stats cfg.net in
  d.Metrics.batches_sent <- d.Metrics.batches_sent + ns.Net.sent;
  d.Metrics.batches_dropped <- d.Metrics.batches_dropped + ns.Net.dropped;
  d.Metrics.batches_duplicated <-
    d.Metrics.batches_duplicated + ns.Net.duplicated;
  (match cfg.sync with
  | Some s ->
      d.Metrics.batches_retransmitted <-
        d.Metrics.batches_retransmitted + s.Sync.retransmitted
  | None -> ());
  List.iter
    (fun (r : Replica.t) ->
      d.Metrics.duplicates_suppressed <-
        d.Metrics.duplicates_suppressed + r.Replica.duplicates_dropped;
      d.Metrics.pending_hwm <- max d.Metrics.pending_hwm r.Replica.pending_hwm)
    cfg.cluster.Cluster.replicas;
  List.iter (Metrics.record_visibility m) cfg.vis.vis_samples
