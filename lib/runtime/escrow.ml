(** Escrow planner, runtime half: demand-aware rights placement and
    adaptive migration for bounded counters.

    The static half ({!Ipa_core.Escrow_plan}) extracts each bounded
    quantity from the spec and apportions its rights; this module turns
    a placement into the counter's seed operations and then keeps the
    partitioning matched to the {e observed} demand while the system
    runs:

    - every decrement attempt (covered or not) is noted locally and
      periodically published as an advisory {!Ipa_crdt.Bcounter.Demand}
      op riding an ordinary batch, so every replica can reconstruct
      every other replica's demand from its own copy of the counter;
    - at each migration tick (piggybacked on the anti-entropy round via
      {!Ipa_store.Sync.t.on_round}), a replica compares each peer's
      windowed demand share against its rights share and proactively
      ships part of its own surplus toward hot replicas — amortizing
      transfers into batches already flowing instead of paying a
      blocking WAN round-trip on exhaustion;
    - hysteresis (a minimum deficit before shipping, a minimum batch
      size, and a per-destination cooldown) keeps rights from
      ping-ponging between replicas under noisy demand.

    The same machinery drives the dual headroom ledger of capped
    counters (wildcard/aggregate invariants like a tournament's
    enrollment cap): increment attempts feed an [Hdemand] ledger and
    surplus headroom ships via [Hmove]. *)

open Ipa_crdt

type policy = {
  alpha : float;
      (** EWMA smoothing of per-tick demand deltas, in (0, 1]: 1 trusts
          only the last window, small values average long histories *)
  hysteresis : float;
      (** minimum peer deficit, as a fraction of the peer's target
          holding, before any rights ship toward it *)
  min_batch : int;  (** never ship fewer rights than this *)
  cooldown_ms : float;
      (** minimum time between ships to the same (key, destination) *)
  slack : int;
      (** burst headroom: peers are topped up to fair share + [slack],
          so a Poisson burst between ticks doesn't exhaust a low-share
          replica whose exact fair share is only a few rights *)
}

let default_policy =
  {
    alpha = 0.5;
    hysteresis = 0.05;
    min_batch = 2;
    cooldown_ms = 250.0;
    slack = 2;
  }

type stats = {
  mutable migrations : int;  (** proactive rights-moving ops committed *)
  mutable rights_migrated : int;  (** rights units shipped proactively *)
  mutable hmigrations : int;  (** headroom ops among them *)
  mutable headroom_migrated : int;
}

(** One manager per replica: windowed demand estimates and hysteresis
    state for every escrow-guarded key this replica serves. *)
type t = {
  rep : string;  (** the replica this manager decides for *)
  policy : policy;
  pending : (string, int) Hashtbl.t;
      (** key → local decrement attempts not yet published *)
  hpending : (string, int) Hashtbl.t;  (** dual: increment attempts *)
  last_cum : (string * string * bool, int) Hashtbl.t;
      (** (key, replica, headroom side) → cumulative demand at the last
          tick, for differencing the replicated ledgers *)
  rate : (string * string * bool, float) Hashtbl.t;
      (** (key, replica, headroom side) → EWMA of per-tick demand *)
  last_ship : (string * string * bool, float) Hashtbl.t;
      (** (key, destination, headroom side) → time of the last ship
          from this replica (cooldown) *)
  stats : stats;
}

let create ?(policy = default_policy) ~(rep : string) () : t =
  {
    rep;
    policy;
    pending = Hashtbl.create 64;
    hpending = Hashtbl.create 64;
    last_cum = Hashtbl.create 256;
    rate = Hashtbl.create 256;
    last_ship = Hashtbl.create 64;
    stats =
      {
        migrations = 0;
        rights_migrated = 0;
        hmigrations = 0;
        headroom_migrated = 0;
      };
  }

(* ------------------------------------------------------------------ *)
(* Demand bookkeeping                                                  *)
(* ------------------------------------------------------------------ *)

let bump tbl key n =
  Hashtbl.replace tbl key
    (n + match Hashtbl.find_opt tbl key with Some v -> v | None -> 0)

(** Note [n] decrement attempts against [key] at this replica (call on
    every attempt, covered or blocked — blocked demand is exactly what
    the planner must learn about). *)
let note_dec (t : t) ~(key : string) (n : int) : unit =
  bump t.pending key n

(** Dual: note increment attempts (headroom demand, capped counters). *)
let note_inc (t : t) ~(key : string) (n : int) : unit =
  bump t.hpending key n

(** Install the planner's predicted per-replica demand for [key] as the
    initial EWMA estimate ([headroom] selects the increment side), so
    the first ticks already migrate toward forecast demand instead of
    waiting for the observed ledgers to warm up.  Only the ratios
    matter: fair shares normalize by the total rate, and subsequent
    ticks blend real observations in through the EWMA. *)
let forecast (t : t) ~(key : string) ?(headroom = false)
    (weights : (string * float) list) : unit =
  List.iter
    (fun (r, w) -> Hashtbl.replace t.rate (key, r, headroom) w)
    weights

(* ------------------------------------------------------------------ *)
(* Initial placement                                                   *)
(* ------------------------------------------------------------------ *)

(** Seed operations establishing a counter with value [value] and its
    rights placed per [shares] — an apportioned placement, e.g. from
    [Ipa_core.Escrow_plan.apportion] over predicted demand weights (the
    first share's replica hosts the seeding increment).  With [?cap],
    the counter is capped at [cap] and the remaining headroom
    ([cap − value]) is placed by [hshares] (defaulting to [shares]).
    Every op is prepared against the evolving state, so the sequence is
    guard-checked end to end; commit it in one transaction at any
    replica and deliver it before concurrent use (the usual
    grant-seeding rule). *)
let seed ~(shares : (string * int) list) ~(value : int)
    ?(cap : int option) ?(hshares : (string * int) list option) () :
    Bcounter.op list =
  let home =
    match shares with (r, _) :: _ -> r | [] -> invalid_arg "Escrow.seed"
  in
  let ops = ref [] in
  let c = ref Bcounter.empty in
  let push op =
    c := Bcounter.apply !c op;
    ops := op :: !ops
  in
  if value > 0 then push (Bcounter.prepare_inc !c ~rep:home value);
  (match cap with
  | Some cap ->
      if cap < value then invalid_arg "Escrow.seed: cap below value";
      push (Bcounter.prepare_grant !c ~rep:home cap);
      List.iter
        (fun (r, n) ->
          if r <> home && n > 0 then
            push (Bcounter.prepare_hmove !c ~from_:home ~to_:r n))
        (match hshares with Some h -> h | None -> shares)
  | None -> ());
  List.iter
    (fun (r, n) ->
      if r <> home && n > 0 then
        push (Bcounter.prepare_transfer !c ~from_:home ~to_:r n))
    shares;
  List.rev !ops

(* ------------------------------------------------------------------ *)
(* Adaptive migration                                                  *)
(* ------------------------------------------------------------------ *)

(* refresh the EWMA demand rates for [key] from the replicated ledgers
   (cumulative per-replica attempt counts, differenced per tick); the
   caller publishes this replica's buffered attempts into the view
   before refreshing, so its own demand is included *)
let refresh_rates (t : t) ~(key : string) ~(headroom : bool)
    (c : Bcounter.t) ~(replicas : string list) : (string * float) list =
  List.map
    (fun r ->
      let cum =
        if headroom then Bcounter.local_hdemand c r
        else Bcounter.local_demand c r
      in
      let k = (key, r, headroom) in
      let last =
        match Hashtbl.find_opt t.last_cum k with Some v -> v | None -> 0
      in
      Hashtbl.replace t.last_cum k cum;
      let delta = float_of_int (max 0 (cum - last)) in
      let prev =
        match Hashtbl.find_opt t.rate k with Some v -> v | None -> 0.0
      in
      let rate = (t.policy.alpha *. delta) +. ((1.0 -. t.policy.alpha) *. prev) in
      Hashtbl.replace t.rate k rate;
      (r, rate))
    replicas

(* ships from this replica's spare toward peers holding less than their
   windowed need — largest deficit first, with the policy's hysteresis:
   a peer must lag its target by at least [hysteresis × target] (and
   [min_batch]), ships are at least [min_batch], and each
   (key, destination) observes a cooldown.

   A replica's target holding is need-based, not a zero-sum share of
   the pool: enough rights to cover [ship_horizon] ticks of its own
   windowed demand, plus the burst slack.  Everything above the target
   is spare that can ship — so inflow parked at one replica (restocks
   landing at a warehouse) flows toward demand instead of being
   swallowed by the holder's own proportional share. *)
let ship_horizon = 2.0

let plan_ships (t : t) ~(now : float) ~(key : string) ~(headroom : bool)
    ~(pool : int) ~(held : string -> int) (rates : (string * float) list) :
    (string * int) list =
  let total_rate = List.fold_left (fun acc (_, r) -> acc +. r) 0.0 rates in
  if pool <= 0 || total_rate <= 0.0 then []
  else begin
    let target r =
      (ship_horizon
      *. match List.assoc_opt r rates with Some x -> x | None -> 0.0)
      +. float_of_int t.policy.slack
    in
    (* the deficit must be meaningful relative to the peer's own need,
       not to the whole pool — a pool-proportional threshold grows with
       inflow (restocks parked at a warehouse) until it swamps a hot
       replica's target and ships only fire once the peer is empty *)
    let threshold r =
      Float.max
        (float_of_int t.policy.min_batch)
        (t.policy.hysteresis *. target r)
    in
    let cooled r =
      match Hashtbl.find_opt t.last_ship (key, r, headroom) with
      | Some at -> now -. at >= t.policy.cooldown_ms
      | None -> true
    in
    let deficits =
      List.filter_map
        (fun (r, _) ->
          if r = t.rep then None
          else
            let d = target r -. float_of_int (held r) in
            if d >= threshold r && cooled r then Some (r, d) else None)
        rates
      |> List.sort (fun (ra, da) (rb, db) ->
             match compare db da with 0 -> compare ra rb | c -> c)
    in
    let mine = ref (held t.rep) in
    let spare = ref (float_of_int !mine -. target t.rep) in
    List.filter_map
      (fun (r, deficit) ->
        let n =
          min
            (int_of_float !spare)
            (min !mine (int_of_float (Float.ceil deficit)))
        in
        if n >= t.policy.min_batch then begin
          mine := !mine - n;
          spare := !spare -. float_of_int n;
          Hashtbl.replace t.last_ship (key, r, headroom) now;
          Some (r, n)
        end
        else None)
      deficits
  end

(** One migration tick for [key] at this replica, given its current
    local view [c] of the counter: returns the operations to commit
    here — the publication of locally-buffered demand ({!note_dec} /
    {!note_inc} since the last tick) followed by proactive rights
    {!Bcounter.Transfer}s (and, on capped counters, headroom
    {!Bcounter.Hmove}s) toward replicas whose windowed demand outruns
    their holdings.  Every op is prepared against the evolving view, so
    the sequence can never overdraw this replica's ledgers.  Call it
    from the anti-entropy piggyback ({!Ipa_store.Sync.t.on_round}) so
    the resulting batch rides a round already being paid for. *)
let tick (t : t) ~(now : float) ~(key : string) (c : Bcounter.t) :
    Bcounter.op list =
  let own_pending =
    match Hashtbl.find_opt t.pending key with Some n -> n | None -> 0
  in
  Hashtbl.remove t.pending key;
  let own_hpending =
    match Hashtbl.find_opt t.hpending key with Some n -> n | None -> 0
  in
  Hashtbl.remove t.hpending key;
  let ops = ref [] in
  let cc = ref c in
  let push op =
    cc := Bcounter.apply !cc op;
    ops := op :: !ops
  in
  if own_pending > 0 then push (Bcounter.prepare_demand !cc ~rep:t.rep own_pending);
  if own_hpending > 0 then
    push (Bcounter.prepare_hdemand !cc ~rep:t.rep own_hpending);
  let replicas =
    (* every replica the counter's ledgers mention, plus this one, plus
       any the forecast predicts demand for — a forecast-hot replica
       must receive rights before its first op ever lands here *)
    let rs = Bcounter.replicas !cc in
    let rs = if List.mem t.rep rs then rs else t.rep :: rs in
    Hashtbl.fold
      (fun (k, r, _) _ acc ->
        if k = key && not (List.mem r acc) then r :: acc else acc)
      t.rate rs
  in
  (* rights side: pool = everything the cluster may still decrement *)
  let rates = refresh_rates t ~key ~headroom:false !cc ~replicas in
  plan_ships t ~now ~key ~headroom:false
    ~pool:(Bcounter.quick_value !cc)
    ~held:(fun r -> Bcounter.local_rights !cc r)
    rates
  |> List.iter (fun (dst, n) ->
         push (Bcounter.prepare_transfer !cc ~from_:t.rep ~to_:dst n);
         t.stats.migrations <- t.stats.migrations + 1;
         t.stats.rights_migrated <- t.stats.rights_migrated + n);
  (* headroom side, when capped: pool = remaining capacity *)
  if Bcounter.capped !cc then begin
    let hrates = refresh_rates t ~key ~headroom:true !cc ~replicas in
    plan_ships t ~now ~key ~headroom:true
      ~pool:(Bcounter.granted !cc - Bcounter.quick_value !cc)
      ~held:(fun r -> Bcounter.local_headroom !cc r)
      hrates
    |> List.iter (fun (dst, n) ->
           push (Bcounter.prepare_hmove !cc ~from_:t.rep ~to_:dst n);
           t.stats.migrations <- t.stats.migrations + 1;
           t.stats.hmigrations <- t.stats.hmigrations + 1;
           t.stats.headroom_migrated <- t.stats.headroom_migrated + n)
  end;
  List.rev !ops
