(** System configurations of the evaluation (§5.2.1).

    All configurations execute {e real} transactions against the
    replicated store; they differ in where an operation runs and what
    coordination it pays first:

    - {!mode.Local} (Causal and IPA): execute at the client's co-located
      replica, replicate asynchronously;
    - {!mode.Strong}: updates forwarded to the primary region;
    - {!mode.Indigo}: reservation-protected operations;
    - {!mode.Hybrid}: IPA plus coordination only for flagged operations.

    Latency model: client↔replica LAN RTT + queueing at the region's
    servers + service time ([service_base] + [service_per_update] per
    update effect + [service_per_object] per distinct object) + any WAN
    round-trips the configuration requires.  Failure injection
    ({!fail_region}) makes §5.2.5's availability comparison measurable. *)

open Ipa_store
open Ipa_sim

(** Result of running an operation's transaction at some replica. *)
type outcome = {
  batch : Replica.batch option;
  violations : int;  (** violation units observed/repaired *)
  extra_work : int;  (** extra service-time units (read-side work) *)
  extra_rtts : int;  (** internal WAN round-trips (escrow transfers) *)
  unavailable : bool;  (** the configuration could not execute the op *)
}

val outcome :
  ?violations:int -> ?extra_work:int -> ?extra_rtts:int ->
  Replica.batch option -> outcome

val unavailable_outcome : outcome

(** Reservation kinds (Indigo): [Shared] rights replicate to requesters
    and never move again; [Exclusive] rights migrate, paying a WAN
    round-trip per cross-region hand-off. *)
type res_kind = Shared | Exclusive

(** An executable operation: the real transaction plus the metadata the
    configurations need. *)
type op_exec = {
  op_name : string;
  is_update : bool;
  reservations : (string * res_kind) list;
  run : Replica.t -> outcome;
}

(** Per-operation read-level annotation (the consistency-typed client
    API threaded through the latency model): weak reads serve locally,
    [RL_bounded budget_ms] reads must reflect everything committed up
    to [now − budget] (served locally when the co-located replica
    covers the resolved bound, else from the nearest covering replica,
    else via the strong barrier), [RL_strong] reads quiesce first. *)
type read_level =
  | RL_weak
  | RL_bounded of float  (** staleness budget, ms *)
  | RL_strong

type mode =
  | Local
  | Strong
  | Indigo
  | Hybrid of (string -> bool)
      (** flagged-operation predicate: those coordinate (with exclusive
          reservations), the rest run locally (§3, step 3) *)

type res_state = {
  mutable ex_holder : string option;
  mutable sharers : string list;
}

(** Visibility-latency samples (commit at origin → remote apply). *)
type vis_stats = { mutable vis_samples : float list; mutable vis_n : int }

type t = {
  mode : mode;
  engine : Engine.t;
  net : Net.t;
  cluster : Cluster.t;
  primary : string;
  service_base : float;
  service_per_update : float;
  service_per_object : float;
  server_threads : int;
  reservation_rtt_overhead : float;
  holders : (string, res_state) Hashtbl.t;
  server_slots : (string, float array) Hashtbl.t;
  down_until : (string, float) Hashtbl.t;
  sync : Sync.t option;  (** anti-entropy, when enabled *)
  sync_interval_ms : float;
  sent_at : (string * int, float) Hashtbl.t;
  vis : vis_stats;
  mutable reservation_misses : int;
  mutable reservation_hits : int;
  clock_hist : (float * Ipa_crdt.Vclock.t) array;
      (** ring of (commit time, global committed clock) checkpoints *)
  mutable hist_head : int;
  mutable hist_len : int;
  mutable global_vv : Ipa_crdt.Vclock.t;
      (** merge of every committed batch's after-clock *)
}

(** [sync_interval_ms > 0] enables anti-entropy: a recurring digest
    exchange whose retransmissions travel the same fault-injected data
    path as first transmissions (see {!Ipa_store.Sync}).  The network's
    fault plan is configured on [net] ({!Ipa_sim.Net.create}). *)
val create :
  ?primary:string ->
  ?service_base:float ->
  ?service_per_update:float ->
  ?service_per_object:float ->
  ?server_threads:int ->
  ?reservation_rtt_overhead:float ->
  ?sync_interval_ms:float ->
  ?sync_base_backoff_ms:float ->
  ?sync_max_backoff_ms:float ->
  mode:mode ->
  engine:Engine.t ->
  net:Net.t ->
  cluster:Cluster.t ->
  unit ->
  t

(** Inject a failure: the region is unreachable for [for_ms] from now;
    batches addressed to it are delivered after recovery. *)
val fail_region : t -> string -> for_ms:float -> unit

val is_down : t -> string -> bool

(** The replica serving a region. *)
val replica_in : t -> string -> Replica.t

(** Execute an operation for a client; calls [complete] with the
    client-perceived latency and the outcome when the reply arrives
    (immediately, with {!unavailable_outcome}, if the configuration
    cannot run it). *)
val execute :
  t ->
  client_region:string ->
  op_exec ->
  complete:(float -> outcome -> unit) ->
  unit

(** Resolve a staleness budget into a bound clock: the newest commit
    checkpoint at or before [now − staleness_ms] (budget 0 = the full
    current committed clock; past the retained ring = the oldest
    retained checkpoint, which is stricter, never weaker). *)
val bound_clock : t -> staleness_ms:float -> Ipa_crdt.Vclock.t

(** Execute a read-only operation at a consistency level.  Weak and
    in-budget bounded reads pay the Local price; an out-of-budget
    bounded read pays one WAN round-trip to the nearest covering
    replica; a strong read (or a bounded read no replica covers) pays a
    barrier round-trip to the farthest peer, quiescing the cluster
    before serving. *)
val execute_read :
  t ->
  client_region:string ->
  level:read_level ->
  op_exec ->
  complete:(float -> outcome -> unit) ->
  unit

(** Fold the replication-layer delivery statistics (network counters,
    retransmissions, duplicate suppression, pending high-water marks,
    visibility latencies) into a metrics record. *)
val collect_delivery : t -> Metrics.t -> unit
