(** Closed-loop workload driver (§5.2.1–5.2.2): clients co-located with
    their region's replica draw operations from a mix, execute them
    through a configuration, and record latencies; peak-throughput
    curves come from sweeping the client count. *)

open Ipa_sim

type workload = {
  clients_per_region : int;
  duration_ms : float;  (** measured window, after warm-up *)
  warmup_ms : float;
  think_time_ms : float;  (** 0 = back-to-back *)
  only_region : string option;  (** restrict clients to one region *)
  next_op : Rng.t -> region:string -> Config.op_exec;
}

val default_workload : (Rng.t -> region:string -> Config.op_exec) -> workload

(** Run a workload; returns the metrics of the measured window (the
    engine runs 10 s past the end so replication settles).

    [read_level_of] is the per-operation read-level configuration:
    read-only operations mapped to a non-weak {!Config.read_level} go
    through {!Config.execute_read} (bounded-staleness routing, strong
    barrier); the default maps every operation to {!Config.RL_weak},
    preserving the historical Local read path exactly. *)
val run :
  ?seed:int ->
  ?read_level_of:(string -> Config.read_level) ->
  Config.t ->
  workload ->
  Metrics.t

(** Drive a precomputed {!Ipa_sim.Workload} event stream (open-loop
    Poisson or closed-loop think-time arrivals, typically Zipfian over
    keys) through a configuration: [op_of] maps each event to the
    issuing client's region and operation; completions before
    [warmup_ms] are discarded; the engine runs [settle_ms] (default
    10 s) past the last arrival before delivery stats are collected.
    Open-loop complement of {!run}: offered load is fixed by the
    stream, not by client feedback. *)
val run_stream :
  ?read_level_of:(string -> Config.read_level) ->
  ?warmup_ms:float ->
  ?settle_ms:float ->
  Config.t ->
  events:Workload.event list ->
  op_of:(Workload.event -> string * Config.op_exec) ->
  Metrics.t

(** Sweep client counts; returns (clients, throughput, mean latency)
    triples — the shape of Figure 4. *)
val throughput_sweep :
  ?seed:int ->
  mk_config:(unit -> Config.t) ->
  workload ->
  int list ->
  (int * float * float) list
