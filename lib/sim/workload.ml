(** Synthetic workload generation: Zipfian key popularity plus open- and
    closed-loop arrival processes.

    Real key-value workloads are heavily skewed — a few hot keys absorb
    most updates while a long tail is touched rarely — and the store's
    scaling behaviour (digest refresh cost, anti-entropy localization)
    depends on that skew, not on uniform access.  The sampler is the
    standard bounded-Zipf generator (Gray et al.'s algorithm, as used by
    YCSB): after an O(n) precomputation of the harmonic normalizer, each
    draw is O(1), so million-key populations sample as fast as small
    ones.

    Arrival processes produce deterministic, timestamped event streams
    from an {!Rng} seed:

    - {b open loop}: a Poisson process at a fixed offered rate —
      arrivals are independent of completions, the usual model for
      aggregate external demand.
    - {b closed loop}: a fixed population of clients, each issuing its
      next request a think time after the previous one — throughput is
      bounded by [clients / think], the usual model for sessions.

    Every event carries the issuing client and the sampled key {e rank}
    (0 = most popular); mapping ranks to key names is the caller's
    choice (e.g. a permutation, or [Fmt.str "obj-%d"]). *)

type zipf = {
  z_n : int;  (** population size *)
  z_theta : float;  (** skew; 0 = uniform, 0.99 = YCSB default *)
  z_alpha : float;
  z_zetan : float;
  z_eta : float;
  z_half_pow : float;  (** 1 + 0.5^theta *)
}

(* zeta(n, theta) = Σ_{i=1..n} 1/i^theta *)
let zeta (n : int) (theta : float) : float =
  let acc = ref 0.0 in
  for i = 1 to n do
    acc := !acc +. (1.0 /. Float.pow (float_of_int i) theta)
  done;
  !acc

let zipf ?(theta = 0.99) (n : int) : zipf =
  if n <= 0 then invalid_arg "Workload.zipf: population must be positive";
  if theta < 0.0 || theta >= 1.0 then
    invalid_arg "Workload.zipf: theta must be in [0, 1)";
  let zetan = zeta n theta in
  let zeta2 = zeta 2 theta in
  let alpha = 1.0 /. (1.0 -. theta) in
  let eta =
    (1.0 -. Float.pow (2.0 /. float_of_int n) (1.0 -. theta))
    /. (1.0 -. (zeta2 /. zetan))
  in
  {
    z_n = n;
    z_theta = theta;
    z_alpha = alpha;
    z_zetan = zetan;
    z_eta = eta;
    z_half_pow = 1.0 +. Float.pow 0.5 theta;
  }

(** One draw: the rank of the sampled key, 0-based (0 = hottest). *)
let draw (rng : Rng.t) (z : zipf) : int =
  let u = Rng.float rng in
  let uz = u *. z.z_zetan in
  if uz < 1.0 then 0
  else if uz < z.z_half_pow then 1
  else
    let r =
      float_of_int z.z_n
      *. Float.pow ((z.z_eta *. u) -. z.z_eta +. 1.0) z.z_alpha
    in
    min (z.z_n - 1) (int_of_float r)

type event = {
  at_ms : float;  (** issue time *)
  client : int;  (** issuing client (0-based) *)
  rank : int;  (** sampled key rank (0 = most popular) *)
}

(** Open-loop stream: Poisson arrivals at [rate_per_s] until
    [horizon_ms], each picking a Zipfian key.  Clients are assigned
    round-robin.  Events are returned in time order. *)
let open_loop ~(rng : Rng.t) ~(rate_per_s : float) ~(horizon_ms : float)
    ?(clients = 1) (z : zipf) : event list =
  if rate_per_s <= 0.0 then
    invalid_arg "Workload.open_loop: rate must be positive";
  let mean_gap_ms = 1000.0 /. rate_per_s in
  let rec go now i acc =
    let now = now +. Rng.exponential rng mean_gap_ms in
    if now >= horizon_ms then List.rev acc
    else
      go now (i + 1)
        ({ at_ms = now; client = i mod clients; rank = draw rng z } :: acc)
  in
  go 0.0 0 []

(** Closed-loop stream: [clients] independent sessions, each issuing its
    next request an exponential think time (mean [think_ms]) after the
    previous one, until [horizon_ms].  Per-client streams draw from
    {!Rng.split} forks, so adding a client never perturbs the others.
    Events are merged in time order. *)
let closed_loop ~(rng : Rng.t) ~(clients : int) ~(think_ms : float)
    ~(horizon_ms : float) (z : zipf) : event list =
  if clients <= 0 then
    invalid_arg "Workload.closed_loop: need at least one client";
  if think_ms <= 0.0 then
    invalid_arg "Workload.closed_loop: think time must be positive";
  let per_client c =
    let crng = Rng.split rng in
    let rec go now acc =
      let now = now +. Rng.exponential crng think_ms in
      if now >= horizon_ms then acc
      else go now ({ at_ms = now; client = c; rank = draw crng z } :: acc)
    in
    go 0.0 []
  in
  let all = List.concat_map per_client (List.init clients (fun c -> c)) in
  List.sort (fun a b -> Float.compare a.at_ms b.at_ms) all
