(** Measurement collection: per-operation latency series, throughput,
    violation, failure and replication-delivery counts for the benchmark
    harness. *)

(** Replication-layer delivery observability. *)
type delivery = {
  mutable batches_sent : int;  (** batch transmissions handed to the net *)
  mutable batches_dropped : int;  (** transmissions lost (loss/partition) *)
  mutable batches_duplicated : int;  (** extra copies the net injected *)
  mutable batches_retransmitted : int;  (** anti-entropy resends *)
  mutable duplicates_suppressed : int;  (** already-applied batches dropped *)
  mutable pending_hwm : int;  (** deepest causal-delivery buffer seen *)
  mutable visibility : float list;
      (** origin commit → remote apply latencies (ms) *)
  mutable visibility_n : int;
  mutable sync_bytes_batch : int;
      (** anti-entropy bytes on the wire shipping raw batches *)
  mutable sync_bytes_state : int;
      (** bytes shipping full rendered state of divergent keys *)
  mutable sync_bytes_delta : int;  (** bytes shipping delta groups *)
}

(** Escrow/reservation-path observability (the escrow bench and the
    fuzzer's conservation oracle): blocking-miss vs piggyback-hit
    counts, rights moved (total and proactively migrated), final
    per-replica rights histograms. *)
type escrow = {
  mutable blocking_misses : int;
      (** decrements that paid a blocking WAN rights fetch *)
  mutable stockouts : int;
      (** blocking misses among them where the fetch found no rights
          anywhere — a global stock-out no placement could have
          served; [blocking_misses - stockouts] is the placement-miss
          count the planner is judged on *)
  mutable piggyback_hits : int;
      (** decrements covered by locally-held rights *)
  mutable rights_transfers : int;  (** rights-moving ops committed *)
  mutable rights_shipped : int;  (** rights units moved, total *)
  mutable migrations : int;  (** proactive (piggybacked) migration ops *)
  mutable migrated_rights : int;  (** rights units moved proactively *)
  mutable rights_hist : (string * (string * int) list) list;
      (** final per-key, per-replica rights histograms *)
}

type t = {
  by_op : (string, series) Hashtbl.t;
  mutable violations : int;
  mutable failures : int;
  mutable started_at : float;
  mutable finished_at : float;
  delivery : delivery;
  escrow : escrow;
}

and series = { mutable samples : float list; mutable n : int }

val create : unit -> t

(** Record one operation latency (ms). *)
val record : t -> op:string -> float -> unit

val record_violations : t -> int -> unit
val record_failure : t -> unit

(** Record one batch's visibility latency (commit → remote apply). *)
val record_visibility : t -> float -> unit

(** Account anti-entropy wire bytes, bucketed by repair strategy. *)
val record_sync_bytes : t -> kind:[ `Batch | `State | `Delta ] -> int -> unit

(** Record one escrow-guarded decrement attempt: covered locally
    ([`Hit]) or blocked on a synchronous fetch of [n] rights
    ([`Miss n] — [`Miss 0] means the fetch found no rights anywhere
    and counts as a stock-out). *)
val record_escrow_attempt : t -> [ `Hit | `Miss of int ] -> unit

(** Record one proactive (anti-entropy-piggybacked) rights migration. *)
val record_escrow_migration : t -> rights:int -> unit

(** Fraction of escrow-guarded attempts that blocked ([0.0] when none
    were attempted). *)
val escrow_miss_rate : t -> float

(** Fraction of attempted operations that executed successfully. *)
val availability : t -> float

val count : t -> ?op:string -> unit -> int
val all_samples : t -> ?op:string -> unit -> float list

(** {1 Statistics} *)

val mean : float list -> float
val stddev : float list -> float

(** Nearest-rank percentile: the value at rank ⌈p/100·n⌉ of the sorted
    samples (0.0 on an empty list). *)
val percentile : float -> float list -> float

(** Several percentiles of one sample set, sorted once. *)
val percentiles : float list -> float list -> float list

val mean_latency : t -> ?op:string -> unit -> float
val stddev_latency : t -> ?op:string -> unit -> float
val p95_latency : t -> ?op:string -> unit -> float

(** Completed operations per second over the measured window. *)
val throughput : t -> float

val op_names : t -> string list

(** One-line replication-delivery summary for bench output. *)
val pp_delivery : Format.formatter -> t -> unit

(** One-line escrow/reservation-path summary (miss/hit counts, rights
    moved, hottest keys' rights histograms). *)
val pp_escrow : Format.formatter -> t -> unit
