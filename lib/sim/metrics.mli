(** Measurement collection: per-operation latency series, throughput,
    violation, failure and replication-delivery counts for the benchmark
    harness. *)

(** Replication-layer delivery observability. *)
type delivery = {
  mutable batches_sent : int;  (** batch transmissions handed to the net *)
  mutable batches_dropped : int;  (** transmissions lost (loss/partition) *)
  mutable batches_duplicated : int;  (** extra copies the net injected *)
  mutable batches_retransmitted : int;  (** anti-entropy resends *)
  mutable duplicates_suppressed : int;  (** already-applied batches dropped *)
  mutable pending_hwm : int;  (** deepest causal-delivery buffer seen *)
  mutable visibility : float list;
      (** origin commit → remote apply latencies (ms) *)
  mutable visibility_n : int;
  mutable sync_bytes_batch : int;
      (** anti-entropy bytes on the wire shipping raw batches *)
  mutable sync_bytes_state : int;
      (** bytes shipping full rendered state of divergent keys *)
  mutable sync_bytes_delta : int;  (** bytes shipping delta groups *)
}

type t = {
  by_op : (string, series) Hashtbl.t;
  mutable violations : int;
  mutable failures : int;
  mutable started_at : float;
  mutable finished_at : float;
  delivery : delivery;
}

and series = { mutable samples : float list; mutable n : int }

val create : unit -> t

(** Record one operation latency (ms). *)
val record : t -> op:string -> float -> unit

val record_violations : t -> int -> unit
val record_failure : t -> unit

(** Record one batch's visibility latency (commit → remote apply). *)
val record_visibility : t -> float -> unit

(** Account anti-entropy wire bytes, bucketed by repair strategy. *)
val record_sync_bytes : t -> kind:[ `Batch | `State | `Delta ] -> int -> unit

(** Fraction of attempted operations that executed successfully. *)
val availability : t -> float

val count : t -> ?op:string -> unit -> int
val all_samples : t -> ?op:string -> unit -> float list

(** {1 Statistics} *)

val mean : float list -> float
val stddev : float list -> float

(** Nearest-rank percentile: the value at rank ⌈p/100·n⌉ of the sorted
    samples (0.0 on an empty list). *)
val percentile : float -> float list -> float

(** Several percentiles of one sample set, sorted once. *)
val percentiles : float list -> float list -> float list

val mean_latency : t -> ?op:string -> unit -> float
val stddev_latency : t -> ?op:string -> unit -> float
val p95_latency : t -> ?op:string -> unit -> float

(** Completed operations per second over the measured window. *)
val throughput : t -> float

val op_names : t -> string list

(** One-line replication-delivery summary for bench output. *)
val pp_delivery : Format.formatter -> t -> unit
