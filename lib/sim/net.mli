(** Wide-area network model: the paper's three-region EC2 deployment
    (§5.2.1) — 80 ms RTT us-east↔us-west and us-east↔eu-west, 160 ms
    eu-west↔us-west, sub-millisecond LAN within a region, ±[jitter]
    uniform noise per sample — plus seeded, deterministic fault
    injection: per-message loss, duplication, heavy-tail delay
    (reordering) and scheduled region↔region partition windows. *)

(** Per-link fault probabilities, applied to every message copy. *)
type faults = {
  loss : float;  (** probability a transmission is dropped *)
  duplication : float;  (** probability a message is sent twice *)
  tail : float;  (** probability of a heavy-tail (reordering) delay *)
  tail_factor : float;  (** delay multiplier on a tail event *)
}

(** A partition window: links between the two region groups are cut
    during [[from_ms, until_ms)] and heal at [until_ms]. *)
type partition = {
  parts : string list * string list;
  from_ms : float;
  until_ms : float;
}

type plan = { faults : faults; partitions : partition list }

(** A scripted fault phase: during [[p_from, p_until)] the phase's fault
    probabilities replace the plan's baseline (first matching phase
    wins). *)
type phase = { p_from : float; p_until : float; p_faults : faults }

(** The default plan: exactly-once delivery, no partitions. *)
val no_faults : plan

(** Delivery counters for the observability report. *)
type stats = {
  mutable sent : int;  (** messages handed to the network *)
  mutable dropped : int;  (** transmissions lost (loss or partition) *)
  mutable duplicated : int;  (** extra copies injected *)
}

type t

val paper_regions : string list
val paper_rtts : ((string * string) * float) list

val create :
  ?rtts:((string * string) * float) list ->
  ?lan_rtt:float ->
  ?jitter:float ->
  ?plan:plan ->
  ?phases:phase list ->
  seed:int ->
  unit ->
  t

val stats : t -> stats

(** Fault probabilities in force at [now]: the first phase containing
    [now], else the plan's baseline. *)
val faults_at : t -> now:float -> faults

(** Mean RTT without jitter; raises on unknown pairs. *)
val mean_rtt : t -> string -> string -> float

(** Sampled round-trip time (ms). *)
val rtt : t -> string -> string -> float

(** Sampled one-way delay. *)
val one_way : t -> string -> string -> float

(** Is the link between the two regions cut at time [now]? *)
val partitioned : t -> now:float -> string -> string -> bool

(** Send one message through the fault plan.  Returns the delivery
    delays of the surviving copies: [[]] when lost or partitioned, one
    delay normally, two when duplicated (each copy independently subject
    to loss and tail delay). *)
val deliveries : t -> now:float -> src:string -> dst:string -> float list
