(** Measurement collection: per-operation latency series, throughput,
    violation counts and replication-delivery statistics for the
    benchmark harness. *)

type series = { mutable samples : float list; mutable n : int }

(** Replication-layer delivery observability: how the network treated
    update batches and what the store had to do to survive it. *)
type delivery = {
  mutable batches_sent : int;  (** batch transmissions handed to the net *)
  mutable batches_dropped : int;  (** transmissions lost (loss/partition) *)
  mutable batches_duplicated : int;  (** extra copies the net injected *)
  mutable batches_retransmitted : int;  (** anti-entropy resends *)
  mutable duplicates_suppressed : int;  (** already-applied batches dropped *)
  mutable pending_hwm : int;  (** deepest causal-delivery buffer seen *)
  mutable visibility : float list;
      (** per-application visibility latency: commit at the origin →
          apply at a remote replica (ms) *)
  mutable visibility_n : int;
  mutable sync_bytes_batch : int;
      (** anti-entropy bytes on the wire shipping raw batches *)
  mutable sync_bytes_state : int;
      (** bytes shipping full rendered state of divergent keys *)
  mutable sync_bytes_delta : int;  (** bytes shipping delta groups *)
}

(** Escrow/reservation-path observability: how often decrements were
    covered by locally-held rights versus blocked on a synchronous
    rights fetch, how many rights moved and by which mechanism, and the
    final per-replica rights histograms.  Filled by the escrow runtime
    ({!Ipa_runtime.Escrow}-driven benches) and read back by the fuzzer's
    conservation oracle. *)
type escrow = {
  mutable blocking_misses : int;
      (** decrement attempts that found the local rights ledger short
          and paid a blocking WAN round-trip for a transfer *)
  mutable stockouts : int;
      (** blocking misses whose fetch found no rights anywhere — a
          global stock-out no placement could have served *)
  mutable piggyback_hits : int;
      (** decrement attempts covered by locally-held rights (seeded by
          the planner or shipped ahead of demand in anti-entropy
          piggybacks) *)
  mutable rights_transfers : int;
      (** rights-moving ops committed (blocking and proactive) *)
  mutable rights_shipped : int;  (** rights units moved, total *)
  mutable migrations : int;
      (** proactive (piggybacked) migration ops among the transfers *)
  mutable migrated_rights : int;  (** rights units moved proactively *)
  mutable rights_hist : (string * (string * int) list) list;
      (** final per-key, per-replica rights histograms *)
}

type t = {
  by_op : (string, series) Hashtbl.t;
  mutable violations : int;
  mutable failures : int;
      (** operations the configuration could not execute (failure
          injection: unreachable primary / reservation holder) *)
  mutable started_at : float;
  mutable finished_at : float;
  delivery : delivery;
  escrow : escrow;
}

let create () =
  {
    by_op = Hashtbl.create 16;
    violations = 0;
    failures = 0;
    started_at = 0.0;
    finished_at = 0.0;
    delivery =
      {
        batches_sent = 0;
        batches_dropped = 0;
        batches_duplicated = 0;
        batches_retransmitted = 0;
        duplicates_suppressed = 0;
        pending_hwm = 0;
        visibility = [];
        visibility_n = 0;
        sync_bytes_batch = 0;
        sync_bytes_state = 0;
        sync_bytes_delta = 0;
      };
    escrow =
      {
        blocking_misses = 0;
        stockouts = 0;
        piggyback_hits = 0;
        rights_transfers = 0;
        rights_shipped = 0;
        migrations = 0;
        migrated_rights = 0;
        rights_hist = [];
      };
  }

let series_of (m : t) (op : string) : series =
  match Hashtbl.find_opt m.by_op op with
  | Some s -> s
  | None ->
      let s = { samples = []; n = 0 } in
      Hashtbl.replace m.by_op op s;
      s

(** Record one operation latency (ms). *)
let record (m : t) ~(op : string) (latency : float) : unit =
  let s = series_of m op in
  s.samples <- latency :: s.samples;
  s.n <- s.n + 1

let record_violations (m : t) (n : int) : unit =
  m.violations <- m.violations + n

let record_failure (m : t) : unit = m.failures <- m.failures + 1

(** Record one batch's visibility latency (origin commit → remote apply). *)
let record_visibility (m : t) (latency : float) : unit =
  m.delivery.visibility <- latency :: m.delivery.visibility;
  m.delivery.visibility_n <- m.delivery.visibility_n + 1

(** Account anti-entropy bytes on the wire, bucketed by what was
    shipped: raw batches, full rendered state, or delta groups.  The
    store layer cannot depend on this library, so callers holding a
    [Sync.repair_stats] bump these after each repair. *)
let record_sync_bytes (m : t) ~(kind : [ `Batch | `State | `Delta ])
    (bytes : int) : unit =
  let d = m.delivery in
  match kind with
  | `Batch -> d.sync_bytes_batch <- d.sync_bytes_batch + bytes
  | `State -> d.sync_bytes_state <- d.sync_bytes_state + bytes
  | `Delta -> d.sync_bytes_delta <- d.sync_bytes_delta + bytes

(** Record the outcome of one escrow-guarded decrement attempt: covered
    locally ([`Hit]) or blocked on a synchronous rights fetch of [n]
    units ([`Miss n]). *)
let record_escrow_attempt (m : t) = function
  | `Hit -> m.escrow.piggyback_hits <- m.escrow.piggyback_hits + 1
  | `Miss n ->
      m.escrow.blocking_misses <- m.escrow.blocking_misses + 1;
      if n = 0 then m.escrow.stockouts <- m.escrow.stockouts + 1
      else begin
        m.escrow.rights_transfers <- m.escrow.rights_transfers + 1;
        m.escrow.rights_shipped <- m.escrow.rights_shipped + n
      end

(** Record one proactive (anti-entropy-piggybacked) rights migration. *)
let record_escrow_migration (m : t) ~(rights : int) : unit =
  m.escrow.rights_transfers <- m.escrow.rights_transfers + 1;
  m.escrow.rights_shipped <- m.escrow.rights_shipped + rights;
  m.escrow.migrations <- m.escrow.migrations + 1;
  m.escrow.migrated_rights <- m.escrow.migrated_rights + rights

(** Fraction of escrow-guarded attempts that blocked on a rights fetch
    ([0.0] when none were attempted). *)
let escrow_miss_rate (m : t) : float =
  let e = m.escrow in
  let attempts = e.blocking_misses + e.piggyback_hits in
  if attempts = 0 then 0.0
  else float_of_int e.blocking_misses /. float_of_int attempts

(** Fraction of attempted operations that executed successfully. *)
let availability (m : t) : float =
  let total = m.failures + Hashtbl.fold (fun _ s acc -> acc + s.n) m.by_op 0 in
  if total = 0 then 1.0
  else 1.0 -. (float_of_int m.failures /. float_of_int total)

let count (m : t) ?(op : string option) () : int =
  match op with
  | Some o -> (series_of m o).n
  | None -> Hashtbl.fold (fun _ s acc -> acc + s.n) m.by_op 0

let all_samples (m : t) ?(op : string option) () : float list =
  match op with
  | Some o -> (series_of m o).samples
  | None -> Hashtbl.fold (fun _ s acc -> s.samples @ acc) m.by_op []

let mean (l : float list) : float =
  match l with
  | [] -> 0.0
  | _ -> List.fold_left ( +. ) 0.0 l /. float_of_int (List.length l)

let stddev (l : float list) : float =
  match l with
  | [] | [ _ ] -> 0.0
  | _ ->
      let m = mean l in
      sqrt (mean (List.map (fun x -> (x -. m) ** 2.0) l))

(* nearest-rank on a pre-sorted array: the p-th percentile of n samples
   is the value at rank ⌈p/100 · n⌉ (1-based), clamped to the sample
   range — unbiased on small samples, unlike rank truncation *)
let percentile_sorted (a : float array) (p : float) : float =
  let n = Array.length a in
  if n = 0 then 0.0
  else
    let rank = int_of_float (ceil (p /. 100.0 *. float_of_int n)) in
    a.(min (n - 1) (max 0 (rank - 1)))

let sorted_array (l : float list) : float array =
  let a = Array.of_list l in
  Array.sort compare a;
  a

let percentile (p : float) (l : float list) : float =
  percentile_sorted (sorted_array l) p

(** Several percentiles of one sample set, sorting it only once — use
    this when a report needs more than one quantile. *)
let percentiles (ps : float list) (l : float list) : float list =
  let a = sorted_array l in
  List.map (percentile_sorted a) ps

(** Mean latency of an operation (or all operations). *)
let mean_latency (m : t) ?op () : float = mean (all_samples m ?op ())

let stddev_latency (m : t) ?op () : float = stddev (all_samples m ?op ())

let p95_latency (m : t) ?op () : float =
  percentile 95.0 (all_samples m ?op ())

(** Completed operations per second over the measured window. *)
let throughput (m : t) : float =
  let window = m.finished_at -. m.started_at in
  if window <= 0.0 then 0.0
  else float_of_int (count m ()) /. (window /. 1000.0)

let op_names (m : t) : string list =
  Hashtbl.fold (fun k _ acc -> k :: acc) m.by_op [] |> List.sort compare

(** One-line replication-delivery summary for bench output. *)
let pp_delivery ppf (m : t) =
  let d = m.delivery in
  match percentiles [ 50.0; 95.0; 99.0 ] d.visibility with
  | [ p50; p95; p99 ] ->
      Fmt.pf ppf
        "sent %d  dropped %d  dup %d  retrans %d  dup-suppressed %d  \
         pending-hwm %d  visibility p50/p95/p99 %.0f/%.0f/%.0f ms"
        d.batches_sent d.batches_dropped d.batches_duplicated
        d.batches_retransmitted d.duplicates_suppressed d.pending_hwm p50 p95
        p99;
      if d.sync_bytes_batch + d.sync_bytes_state + d.sync_bytes_delta > 0 then
        Fmt.pf ppf "  sync-bytes batch/state/delta %d/%d/%d"
          d.sync_bytes_batch d.sync_bytes_state d.sync_bytes_delta
  | _ -> ()

(** One-line escrow/reservation-path summary: blocking misses vs local
    hits, rights moved (total and proactively migrated), and the rights
    histogram of the hottest keys. *)
let pp_escrow ppf (m : t) =
  let e = m.escrow in
  Fmt.pf ppf
    "blocking-miss %d (stockout %d)  piggyback-hit %d  miss-rate %.4f  \
     transfers %d  rights-shipped %d  migrations %d  migrated-rights %d"
    e.blocking_misses e.stockouts e.piggyback_hits (escrow_miss_rate m)
    e.rights_transfers e.rights_shipped e.migrations e.migrated_rights;
  match e.rights_hist with
  | [] -> ()
  | hist ->
      let top = List.filteri (fun i _ -> i < 3) hist in
      Fmt.pf ppf "  rights%a"
        Fmt.(
          list ~sep:nop (fun ppf (key, per_rep) ->
              Fmt.pf ppf " %s:[%a]" key
                (list ~sep:(any ",") (fun ppf (r, n) ->
                     Fmt.pf ppf "%s=%d" r n))
                per_rep))
        top
