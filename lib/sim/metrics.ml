(** Measurement collection: per-operation latency series, throughput,
    violation counts and replication-delivery statistics for the
    benchmark harness. *)

type series = { mutable samples : float list; mutable n : int }

(** Replication-layer delivery observability: how the network treated
    update batches and what the store had to do to survive it. *)
type delivery = {
  mutable batches_sent : int;  (** batch transmissions handed to the net *)
  mutable batches_dropped : int;  (** transmissions lost (loss/partition) *)
  mutable batches_duplicated : int;  (** extra copies the net injected *)
  mutable batches_retransmitted : int;  (** anti-entropy resends *)
  mutable duplicates_suppressed : int;  (** already-applied batches dropped *)
  mutable pending_hwm : int;  (** deepest causal-delivery buffer seen *)
  mutable visibility : float list;
      (** per-application visibility latency: commit at the origin →
          apply at a remote replica (ms) *)
  mutable visibility_n : int;
  mutable sync_bytes_batch : int;
      (** anti-entropy bytes on the wire shipping raw batches *)
  mutable sync_bytes_state : int;
      (** bytes shipping full rendered state of divergent keys *)
  mutable sync_bytes_delta : int;  (** bytes shipping delta groups *)
}

type t = {
  by_op : (string, series) Hashtbl.t;
  mutable violations : int;
  mutable failures : int;
      (** operations the configuration could not execute (failure
          injection: unreachable primary / reservation holder) *)
  mutable started_at : float;
  mutable finished_at : float;
  delivery : delivery;
}

let create () =
  {
    by_op = Hashtbl.create 16;
    violations = 0;
    failures = 0;
    started_at = 0.0;
    finished_at = 0.0;
    delivery =
      {
        batches_sent = 0;
        batches_dropped = 0;
        batches_duplicated = 0;
        batches_retransmitted = 0;
        duplicates_suppressed = 0;
        pending_hwm = 0;
        visibility = [];
        visibility_n = 0;
        sync_bytes_batch = 0;
        sync_bytes_state = 0;
        sync_bytes_delta = 0;
      };
  }

let series_of (m : t) (op : string) : series =
  match Hashtbl.find_opt m.by_op op with
  | Some s -> s
  | None ->
      let s = { samples = []; n = 0 } in
      Hashtbl.replace m.by_op op s;
      s

(** Record one operation latency (ms). *)
let record (m : t) ~(op : string) (latency : float) : unit =
  let s = series_of m op in
  s.samples <- latency :: s.samples;
  s.n <- s.n + 1

let record_violations (m : t) (n : int) : unit =
  m.violations <- m.violations + n

let record_failure (m : t) : unit = m.failures <- m.failures + 1

(** Record one batch's visibility latency (origin commit → remote apply). *)
let record_visibility (m : t) (latency : float) : unit =
  m.delivery.visibility <- latency :: m.delivery.visibility;
  m.delivery.visibility_n <- m.delivery.visibility_n + 1

(** Account anti-entropy bytes on the wire, bucketed by what was
    shipped: raw batches, full rendered state, or delta groups.  The
    store layer cannot depend on this library, so callers holding a
    [Sync.repair_stats] bump these after each repair. *)
let record_sync_bytes (m : t) ~(kind : [ `Batch | `State | `Delta ])
    (bytes : int) : unit =
  let d = m.delivery in
  match kind with
  | `Batch -> d.sync_bytes_batch <- d.sync_bytes_batch + bytes
  | `State -> d.sync_bytes_state <- d.sync_bytes_state + bytes
  | `Delta -> d.sync_bytes_delta <- d.sync_bytes_delta + bytes

(** Fraction of attempted operations that executed successfully. *)
let availability (m : t) : float =
  let total = m.failures + Hashtbl.fold (fun _ s acc -> acc + s.n) m.by_op 0 in
  if total = 0 then 1.0
  else 1.0 -. (float_of_int m.failures /. float_of_int total)

let count (m : t) ?(op : string option) () : int =
  match op with
  | Some o -> (series_of m o).n
  | None -> Hashtbl.fold (fun _ s acc -> acc + s.n) m.by_op 0

let all_samples (m : t) ?(op : string option) () : float list =
  match op with
  | Some o -> (series_of m o).samples
  | None -> Hashtbl.fold (fun _ s acc -> s.samples @ acc) m.by_op []

let mean (l : float list) : float =
  match l with
  | [] -> 0.0
  | _ -> List.fold_left ( +. ) 0.0 l /. float_of_int (List.length l)

let stddev (l : float list) : float =
  match l with
  | [] | [ _ ] -> 0.0
  | _ ->
      let m = mean l in
      sqrt (mean (List.map (fun x -> (x -. m) ** 2.0) l))

(* nearest-rank on a pre-sorted array: the p-th percentile of n samples
   is the value at rank ⌈p/100 · n⌉ (1-based), clamped to the sample
   range — unbiased on small samples, unlike rank truncation *)
let percentile_sorted (a : float array) (p : float) : float =
  let n = Array.length a in
  if n = 0 then 0.0
  else
    let rank = int_of_float (ceil (p /. 100.0 *. float_of_int n)) in
    a.(min (n - 1) (max 0 (rank - 1)))

let sorted_array (l : float list) : float array =
  let a = Array.of_list l in
  Array.sort compare a;
  a

let percentile (p : float) (l : float list) : float =
  percentile_sorted (sorted_array l) p

(** Several percentiles of one sample set, sorting it only once — use
    this when a report needs more than one quantile. *)
let percentiles (ps : float list) (l : float list) : float list =
  let a = sorted_array l in
  List.map (percentile_sorted a) ps

(** Mean latency of an operation (or all operations). *)
let mean_latency (m : t) ?op () : float = mean (all_samples m ?op ())

let stddev_latency (m : t) ?op () : float = stddev (all_samples m ?op ())

let p95_latency (m : t) ?op () : float =
  percentile 95.0 (all_samples m ?op ())

(** Completed operations per second over the measured window. *)
let throughput (m : t) : float =
  let window = m.finished_at -. m.started_at in
  if window <= 0.0 then 0.0
  else float_of_int (count m ()) /. (window /. 1000.0)

let op_names (m : t) : string list =
  Hashtbl.fold (fun k _ acc -> k :: acc) m.by_op [] |> List.sort compare

(** One-line replication-delivery summary for bench output. *)
let pp_delivery ppf (m : t) =
  let d = m.delivery in
  match percentiles [ 50.0; 95.0; 99.0 ] d.visibility with
  | [ p50; p95; p99 ] ->
      Fmt.pf ppf
        "sent %d  dropped %d  dup %d  retrans %d  dup-suppressed %d  \
         pending-hwm %d  visibility p50/p95/p99 %.0f/%.0f/%.0f ms"
        d.batches_sent d.batches_dropped d.batches_duplicated
        d.batches_retransmitted d.duplicates_suppressed d.pending_hwm p50 p95
        p99;
      if d.sync_bytes_batch + d.sync_bytes_state + d.sync_bytes_delta > 0 then
        Fmt.pf ppf "  sync-bytes batch/state/delta %d/%d/%d"
          d.sync_bytes_batch d.sync_bytes_state d.sync_bytes_delta
  | _ -> ()
