(** Synthetic workload generation: Zipfian key popularity plus open- and
    closed-loop arrival processes, all deterministic from an {!Rng}
    seed.

    The sampler is the standard bounded-Zipf generator (Gray et al.'s
    algorithm, as used by YCSB): O(n) precomputation of the harmonic
    normalizer, then O(1) per draw — million-key populations sample as
    fast as small ones.  Arrival generators model the two canonical load
    shapes: {e open loop} (Poisson arrivals at a fixed offered rate,
    independent of completions) and {e closed loop} (a fixed client
    population, each pausing a think time between requests). *)

(** A prepared Zipfian distribution over ranks [0 .. n-1]
    (0 = most popular). *)
type zipf

(** [zipf ?theta n] prepares a bounded-Zipf sampler over [n] keys.
    [theta] is the skew exponent in [\[0, 1)]: 0 is uniform, 0.99 the
    YCSB default.  O(n) one-time cost. *)
val zipf : ?theta:float -> int -> zipf

(** [draw rng z] samples a key rank in O(1).  Rank 0 is the hottest
    key. *)
val draw : Rng.t -> zipf -> int

type event = {
  at_ms : float;  (** issue time *)
  client : int;  (** issuing client (0-based) *)
  rank : int;  (** sampled key rank (0 = most popular) *)
}

(** Poisson arrivals at [rate_per_s] until [horizon_ms]; clients are
    assigned round-robin across [clients] (default 1).  Time-ordered. *)
val open_loop :
  rng:Rng.t ->
  rate_per_s:float ->
  horizon_ms:float ->
  ?clients:int ->
  zipf ->
  event list

(** [clients] independent sessions, each issuing its next request an
    exponential think time (mean [think_ms]) after the previous one,
    until [horizon_ms].  Per-client streams are {!Rng.split} forks, so
    adding a client never perturbs the others.  Time-ordered. *)
val closed_loop :
  rng:Rng.t ->
  clients:int ->
  think_ms:float ->
  horizon_ms:float ->
  zipf ->
  event list
