(** Wide-area network model: the paper's three-region EC2 deployment,
    plus seeded fault injection.

    Mean round-trip latencies (§5.2.1): 80 ms between us-east ↔ us-west
    and us-east ↔ eu-west, 160 ms between eu-west ↔ us-west.  Within a
    region (client ↔ co-located server) we model a sub-millisecond LAN.
    Sampled latencies get ±[jitter] relative uniform noise.

    The fault model stresses the weak-consistency story: every message
    can independently be dropped, duplicated, or hit a heavy-tail delay
    (reordering), and scheduled partition windows cut all links between
    two region groups until they heal.  All decisions are drawn from the
    network's seeded RNG, so a faulty run is exactly reproducible. *)

(** Per-link fault probabilities, applied to every message copy. *)
type faults = {
  loss : float;  (** probability a transmission is dropped *)
  duplication : float;  (** probability a message is sent twice *)
  tail : float;  (** probability of a heavy-tail (reordering) delay *)
  tail_factor : float;  (** delay multiplier on a tail event *)
}

(** A scheduled partition: all links between a region of [parts]'s first
    group and one of its second group are cut during
    [[from_ms, until_ms)]; the partition heals at [until_ms]. *)
type partition = {
  parts : string list * string list;
  from_ms : float;
  until_ms : float;
}

type plan = { faults : faults; partitions : partition list }

(** A scripted fault phase: during [[p_from, p_until)] the phase's fault
    probabilities replace the plan's baseline (first matching phase
    wins).  Used by the simulation fuzzer to replay time-varying fault
    schedules, e.g. a lossy burst in the middle of a run. *)
type phase = { p_from : float; p_until : float; p_faults : faults }

let no_faults : plan =
  {
    faults = { loss = 0.0; duplication = 0.0; tail = 0.0; tail_factor = 10.0 };
    partitions = [];
  }

(** Delivery counters, for the benchmark's observability report. *)
type stats = {
  mutable sent : int;  (** messages handed to the network *)
  mutable dropped : int;  (** transmissions lost (loss or partition) *)
  mutable duplicated : int;  (** extra copies injected *)
}

type t = {
  rtts : ((string * string) * float) list;  (** mean RTT in ms *)
  lan_rtt : float;
  jitter : float;  (** relative, e.g. 0.1 = ±10% *)
  rng : Rng.t;
  plan : plan;
  phases : phase list;
  stats : stats;
}

let paper_regions = [ "us-east"; "us-west"; "eu-west" ]

let paper_rtts =
  [
    (("us-east", "us-west"), 80.0);
    (("us-east", "eu-west"), 80.0);
    (("us-west", "eu-west"), 160.0);
  ]

let create ?(rtts = paper_rtts) ?(lan_rtt = 0.5) ?(jitter = 0.1)
    ?(plan = no_faults) ?(phases = []) ~(seed : int) () : t =
  {
    rtts;
    lan_rtt;
    jitter;
    rng = Rng.create seed;
    plan;
    phases;
    stats = { sent = 0; dropped = 0; duplicated = 0 };
  }

(** Fault probabilities in force at [now]: the first phase whose window
    contains [now], else the plan's baseline. *)
let faults_at (n : t) ~(now : float) : faults =
  match
    List.find_opt (fun p -> now >= p.p_from && now < p.p_until) n.phases
  with
  | Some p -> p.p_faults
  | None -> n.plan.faults

let stats (n : t) : stats = n.stats

let mean_rtt (n : t) (a : string) (b : string) : float =
  if a = b then n.lan_rtt
  else
    match
      ( List.assoc_opt (a, b) n.rtts,
        List.assoc_opt (b, a) n.rtts )
    with
    | Some r, _ | _, Some r -> r
    | None, None -> invalid_arg (Fmt.str "Net: no RTT between %s and %s" a b)

let with_jitter (n : t) (v : float) : float =
  v *. Rng.uniform n.rng (1.0 -. n.jitter) (1.0 +. n.jitter)

(** Sampled round-trip time between two regions (ms). *)
let rtt (n : t) (a : string) (b : string) : float =
  with_jitter n (mean_rtt n a b)

(** Sampled one-way delay. *)
let one_way (n : t) (a : string) (b : string) : float =
  with_jitter n (mean_rtt n a b /. 2.0)

(** Is the [a]↔[b] link cut by a partition window at time [now]? *)
let partitioned (n : t) ~(now : float) (a : string) (b : string) : bool =
  a <> b
  && List.exists
       (fun p ->
         now >= p.from_ms && now < p.until_ms
         &&
         let g1, g2 = p.parts in
         (List.mem a g1 && List.mem b g2) || (List.mem a g2 && List.mem b g1))
       n.plan.partitions

(* one transmission attempt: None if lost, Some delay otherwise *)
let transmit (n : t) (fl : faults) (src : string) (dst : string) :
    float option =
  if Rng.flip n.rng fl.loss then begin
    n.stats.dropped <- n.stats.dropped + 1;
    None
  end
  else
    let d = one_way n src dst in
    let d = if Rng.flip n.rng fl.tail then d *. fl.tail_factor else d in
    Some d

(** Send one message from [src] to [dst] at time [now] through the fault
    plan.  Returns the delivery delays of the copies that survive: [[]]
    when the message is lost (or the link is partitioned), one delay in
    the common case, two when duplication struck.  Copies fate
    independently, so a duplicated message can still lose one copy. *)
let deliveries (n : t) ~(now : float) ~(src : string) ~(dst : string) :
    float list =
  n.stats.sent <- n.stats.sent + 1;
  if partitioned n ~now src dst then begin
    n.stats.dropped <- n.stats.dropped + 1;
    []
  end
  else begin
    let fl = faults_at n ~now in
    let copies =
      if Rng.flip n.rng fl.duplication then begin
        n.stats.duplicated <- n.stats.duplicated + 1;
        2
      end
      else 1
    in
    List.filter_map (fun _ -> transmit n fl src dst) (List.init copies Fun.id)
  end
