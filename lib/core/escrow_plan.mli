(** Escrow planner, static half: extract a spec's escrow-enforceable
    numeric constraints (the same clause frames {!Oblig} decomposes)
    and compute demand-proportional rights partitionings.

    The runtime half — seeding bounded counters from a placement and
    adaptively migrating rights toward measured demand — lives in
    [Ipa_runtime.Escrow]. *)

open Ipa_spec

type source =
  | Res_numeric  (** a bounded numeric state function *)
  | Res_cardinality  (** a predicate cardinality ([#p(...)]) *)

type resource = {
  r_name : string;  (** the numeric function or predicate *)
  r_source : source;
  r_wild : bool;
      (** a [Star] position: one counter guards the aggregate over every
          element of that sort (wildcard / multi-key reservation) *)
  r_lo : int option;  (** tightest lower bound, rights-guarded *)
  r_hi : int option;  (** tightest upper bound, headroom-guarded *)
  r_dec_ops : string list;  (** operations that decrease the quantity *)
  r_inc_ops : string list;  (** operations that increase the quantity *)
}

(** Every escrow-enforceable bounded resource of the spec, sorted by
    name: numeric-function bounds ([available(e) >= 0]) and cardinality
    caps ([#enrolled( *, t) <= Capacity]).  Bounds from different
    clauses on the same quantity merge to the tightest. *)
val resources : Types.t -> resource list

(** Rights available to partition at value [value]: distance to the
    lower bound ([None] when unbounded below). *)
val rights_pool : resource -> value:int -> int option

(** Headroom available to partition: distance to the upper bound. *)
val headroom_pool : resource -> value:int -> int option

(** Split [total] units across replicas proportionally to demand
    weights (largest-remainder method; deterministic, ties by name;
    non-positive total weight degrades to an even split).  Always sums
    to [total]; each share is within one unit of its exact quota. *)
val apportion : total:int -> (string * float) list -> (string * int) list

val pp_resource : Format.formatter -> resource -> unit
