(** Per-clause proof obligations and their dependency keys.

    The incremental analysis decomposes each pair check into one proof
    obligation per (parameter unification × relevant invariant clause):
    "from a pre-state satisfying every relevant clause, admissible for
    both operations, can the merged concurrent effects falsify {e this}
    clause?"  The pair conflicts iff some obligation is satisfiable, so
    the decomposition is exact (the whole-invariant check asserts the
    disjunction of the per-clause violation targets, and a disjunction
    is satisfiable iff some disjunct is).

    Each obligation carries a {e dependency key}: a content-addressed
    fingerprint of everything its verdict can depend on — the two
    operations' base and current effects, the parameter bindings and
    (widened) domain of the unification case, the relevant clause frame
    (names and formulas), the convergence rules restricted to predicates
    both operations write, and the integer constants.  Verdicts cached
    under these keys in {!Anactx} survive specification edits untouched
    unless the edit actually reaches them: editing one operation changes
    only the keys that embed its effects, so re-analysis of the other
    pairs is pure cache hits — dependency-tracked invalidation without
    an explicit invalidation pass.

    This module sits below {!Anactx} (which stores the verdict tables)
    and {!Detect} (which discharges the obligations); the counterexample
    [witness] type lives here so cached witnesses need no dependency
    cycle. *)

open Ipa_logic
open Ipa_spec

(** A concrete counterexample execution, in the style of Figure 2: a
    valid initial state, per-operation writes, the merged outcome, and
    the invariants that the merged state violates.  (Historically
    defined in {!Detect}, which re-exports it.) *)
type witness = {
  unif : Pairctx.unification;
  pre_atoms : (Ground.gatom * bool) list;
  pre_nums : (Ground.gnum * int) list;
  writes1 : Effects.writes;
  writes2 : Effects.writes;
  merged : Effects.writes;
  violated : string list;  (** names of invariants false after merge *)
}

(** Dependency key of one proof obligation.  Structural equality of two
    keys implies the obligation verdicts coincide: every input of the
    SAT query is either part of the key or fixed for the lifetime of the
    analysis context (the sort/predicate signature — {!Anactx} is reset
    when it changes). *)
type key = {
  k_base1 : Types.annotated_effect list;  (** op1 original effects (wp) *)
  k_cur1 : Types.annotated_effect list;  (** op1 effects after repairs *)
  k_base2 : Types.annotated_effect list;
  k_cur2 : Types.annotated_effect list;
  k_binding1 : (string * string) list;  (** op1 parameter → element *)
  k_binding2 : (string * string) list;
  k_dom : Ground.domain;  (** widened small-model domain of the case *)
  k_frame : (string * Ast.formula) list;
      (** relevant invariant clauses (name, formula) — the pre-state
          constraint, and the namespace of the witness's [violated] *)
  k_rules : (string * Types.conv_rule) list;
      (** canonical convergence rules restricted to predicates written
          by {e both} current operations (the only ones merging
          consults) *)
  k_consts : (string * int) list;  (** named integer constants *)
  k_clause : int;
      (** index into [k_frame] of the violation target, or [-1] for the
          whole-case witness query (all clauses at once) *)
}

(** The key of one unification case, minus the clause choice. *)
let case_key (spec : Types.t) ~(base1 : Types.operation)
    ~(cur1 : Types.operation) ~(base2 : Types.operation)
    ~(cur2 : Types.operation) ~(binding1 : (string * string) list)
    ~(binding2 : (string * string) list) ~(dom : Ground.domain)
    ~(frame : Types.invariant list) : key =
  let both_written =
    let w2 = Types.written_preds cur2 in
    List.filter (fun p -> List.mem p w2) (Types.written_preds cur1)
  in
  {
    k_base1 = base1.oeffects;
    k_cur1 = cur1.oeffects;
    k_base2 = base2.oeffects;
    k_cur2 = cur2.oeffects;
    k_binding1 = binding1;
    k_binding2 = binding2;
    k_dom = dom;
    k_frame =
      List.map (fun (i : Types.invariant) -> (i.iname, i.iformula)) frame;
    k_rules =
      List.filter
        (fun (p, _) -> List.mem p both_written)
        (Types.canonical_rules spec.rules);
    k_consts = spec.consts;
    k_clause = -1;
  }

let with_clause (k : key) (i : int) : key = { k with k_clause = i }

(** Number of clause obligations a case key spans. *)
let n_clauses (k : key) : int = List.length k.k_frame
