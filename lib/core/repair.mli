(** Repair generation (Algorithm 1's [repairConflicts] and [generate]):
    instantiate the violated invariant clauses' atoms through the
    operations' effects (unbound variables become wildcards), search the
    powerset of candidate extra effects smallest-first, and keep
    candidates that are sequentially safe, pair-safe under the
    convergence rules, and preserve the operation's original
    semantics. *)

open Ipa_logic
open Ipa_spec

type target = Op1 | Op2

type solution = {
  s_target : target;
  s_op : string;  (** name of the modified operation *)
  s_added : Types.annotated_effect list;
  s_rules : (string * Types.conv_rule) list;
      (** convergence rules under which the solution is safe *)
  s_pair : Detect.aop * Detect.aop;  (** the repaired pair *)
}

(** Candidate-effect pool for one operation: invariant-clause atoms
    instantiated through its effects ([invPreds], line 15). *)
val pool_for :
  Types.t -> Ast.formula list -> Types.operation ->
  (string * Ast.term list) list

(** Invariant clauses mentioning a predicate either operation writes. *)
val relevant_clauses :
  Types.t -> Types.operation -> Types.operation -> Ast.formula list

(** A modification must not mask the operation's own base effects
    ("preserving the original semantics when no conflicts occur").
    The verdict is memoized in [ctx]. *)
val preserves_intent : ?ctx:Anactx.t -> Types.t -> Detect.aop -> bool

(** Rule assignments tried per candidate: the specification's rules
    first, then (under [search_rules]) all add-wins/rem-wins assignments
    over the given predicates — deduplicated by set-equality of the
    effective assignment.  Exposed for tests. *)
val rule_choices :
  search_rules:bool ->
  Types.t ->
  string list ->
  (string * Types.conv_rule) list list

(** Search for minimal safe extra-effect sets.  [search_rules] also
    proposes convergence rules beyond the specification's;
    [check_intent]/[check_minimality] exist for the ablation
    benchmarks.  [witness] (the conflict that triggered the repair)
    enables exact witness-guided candidate pruning when [ctx] has
    pruning on; candidate generation is lazy, so the exponential
    powerset is never materialized past [max_candidates]. *)
val repair_conflicts :
  ?max_size:int ->
  ?max_candidates:int ->
  ?search_rules:bool ->
  ?check_intent:bool ->
  ?check_minimality:bool ->
  ?ctx:Anactx.t ->
  ?witness:Detect.witness ->
  Types.t ->
  Detect.aop * Detect.aop ->
  solution list

(** Resolution policies (Algorithm 1's [pickResolution]). *)
type policy =
  | Fewest_effects
  | Prefer_op of string  (** prefer solutions where this op's effects win *)
  | Choose of (solution list -> solution option)  (** interactive *)

val pick : policy -> solution list -> solution option
val pp_solution : Format.formatter -> solution -> unit
