(** The IPA main loop (Algorithm 1, function [ipa]).

    Iteratively finds a conflicting pair, searches for repairs, applies
    the resolution chosen by the policy, and continues until no
    unhandled conflicts remain.  Pairs whose conflicts cannot be repaired
    by extra effects are handed to the compensation synthesizer (§3.4);
    if that fails too, the pair is flagged for the programmer to protect
    with coordination (§3, step 3). *)

open Ipa_spec

(** How a conflicting pair was handled. *)
type resolution = {
  r_op1 : string;
  r_op2 : string;
  r_witness : Detect.witness;  (** the conflict that triggered the repair *)
  r_outcome : outcome_kind;
}

and outcome_kind =
  | Repaired of Repair.solution
  | Compensated of Compensation.t list
  | Flagged  (** unsolvable: requires coordination *)

type report = {
  spec : Types.t;  (** input specification *)
  final_ops : Detect.aop list;  (** operations after modification *)
  final_rules : (string * Types.conv_rule) list;
  resolutions : resolution list;
  iterations : int;
  stats : Anactx.stats;  (** solver/cache statistics of the run *)
}

(** The patched specification: modified operations and final rules. *)
let patched_spec (r : report) : Types.t =
  {
    r.spec with
    operations = List.map (fun (o : Detect.aop) -> o.Detect.cur) r.final_ops;
    rules = r.final_rules;
  }

let flagged_pairs (r : report) : (string * string) list =
  List.filter_map
    (fun res ->
      match res.r_outcome with
      | Flagged -> Some (res.r_op1, res.r_op2)
      | _ -> None)
    r.resolutions

let compensations (r : report) : Compensation.t list =
  List.concat_map
    (fun res ->
      match res.r_outcome with Compensated cs -> cs | _ -> [])
    r.resolutions

(** Run the IPA analysis.

    [policy] selects among repair solutions (default: fewest extra
    effects).  [search_rules] lets the repair search propose convergence
    rules different from the specification's (the interactive tool mode).
    [max_iterations] bounds the outer loop.  [ctx] carries the
    grounding/verdict caches and instrumentation; a fresh one (caching
    and pruning enabled) is created when absent. *)
let run ?(policy = Repair.Fewest_effects) ?(search_rules = false)
    ?(max_size = 3) ?(max_iterations = 64) ?ctx (spec : Types.t) : report =
  let ctx = match ctx with Some c -> c | None -> Anactx.create () in
  let ops = ref (List.map Detect.aop_of spec.operations) in
  let rules = ref spec.rules in
  let resolutions = ref [] in
  let ignored : (string * string, unit) Hashtbl.t = Hashtbl.create 16 in
  (* pairs already proven safe; invalidated when an operation of the pair
     is modified or the convergence rules change *)
  let known_safe : (string * string, unit) Hashtbl.t = Hashtbl.create 64 in
  let invalidate name =
    (* modifying an operation stales every cached verdict about it: the
       safe cache, but also the [ignored] table and any compensation or
       flag recorded for a pair involving it — the conflict that
       motivated them may no longer exist (or may now be repairable). *)
    let drop tbl =
      Hashtbl.iter
        (fun (a, b) () -> if a = name || b = name then Hashtbl.remove tbl (a, b))
        (Hashtbl.copy tbl)
    in
    drop known_safe;
    drop ignored;
    resolutions :=
      List.filter
        (fun r ->
          match r.r_outcome with
          | Repaired _ -> true
          | Compensated _ | Flagged -> r.r_op1 <> name && r.r_op2 <> name)
        !resolutions
  in
  let iterations = ref 0 in
  let continue_ = ref true in
  while !continue_ && !iterations < max_iterations do
    incr iterations;
    let spec_now = { spec with rules = !rules } in
    (* find the first conflicting pair that is not already handled *)
    let rec pairs = function
      | [] -> []
      | o :: rest -> List.map (fun o' -> (o, o')) (o :: rest) @ pairs rest
    in
    let unhandled (o1 : Detect.aop) (o2 : Detect.aop) =
      let key = (o1.Detect.cur.oname, o2.Detect.cur.oname) in
      (not (Hashtbl.mem ignored key)) && not (Hashtbl.mem known_safe key)
    in
    let conflict =
      List.find_map
        (fun ((o1 : Detect.aop), (o2 : Detect.aop)) ->
          if not (unhandled o1 o2) then None
          else
            let key = (o1.Detect.cur.oname, o2.Detect.cur.oname) in
            match
              Anactx.time (Some ctx) key (fun () ->
                  Detect.check_pair ~ctx spec_now o1 o2)
            with
            | Detect.Conflict w -> Some (o1, o2, w)
            | Detect.Safe ->
                Hashtbl.replace known_safe
                  (o1.Detect.cur.oname, o2.Detect.cur.oname)
                  ();
                None)
        (pairs !ops)
    in
    match conflict with
    | None -> continue_ := false
    | Some (o1, o2, w) -> (
        let name1 = o1.Detect.cur.oname and name2 = o2.Detect.cur.oname in
        let sols =
          Anactx.time (Some ctx) (name1, name2) (fun () ->
              Repair.repair_conflicts ~max_size ~search_rules ~ctx ~witness:w
                spec_now (o1, o2))
        in
        match Repair.pick policy sols with
        | Some sol ->
            (* install the modified operation and any rule changes *)
            let p1, p2 = sol.Repair.s_pair in
            ops :=
              List.map
                (fun (o : Detect.aop) ->
                  if o.Detect.cur.oname = name1 then p1
                  else if o.Detect.cur.oname = name2 then p2
                  else o)
                !ops;
            invalidate name1;
            invalidate name2;
            (* compare rule assignments as sets: enumeration order must
               not force a spurious full invalidation *)
            if not (Types.rules_equal sol.Repair.s_rules !rules) then
              Hashtbl.reset known_safe;
            rules := sol.Repair.s_rules;
            resolutions :=
              {
                r_op1 = name1;
                r_op2 = name2;
                r_witness = w;
                r_outcome = Repaired sol;
              }
              :: !resolutions
        | None -> (
            (* no effect-based repair: try compensations for the violated
               invariants *)
            let comps = Compensation.synthesize spec_now w.Detect.violated in
            Hashtbl.replace ignored (name1, name2) ();
            if Compensation.covers comps w.Detect.violated then
              resolutions :=
                {
                  r_op1 = name1;
                  r_op2 = name2;
                  r_witness = w;
                  r_outcome = Compensated comps;
                }
                :: !resolutions
            else
              resolutions :=
                {
                  r_op1 = name1;
                  r_op2 = name2;
                  r_witness = w;
                  r_outcome = Flagged;
                }
                :: !resolutions))
  done;
  {
    spec;
    final_ops = !ops;
    final_rules = !rules;
    resolutions = List.rev !resolutions;
    iterations = !iterations;
    stats = Anactx.stats ctx;
  }

(** All conflicting pairs of the unmodified specification — the
    diagnosis step, useful on its own. *)
let diagnose (spec : Types.t) :
    (string * string * Detect.witness) list =
  let ops = List.map Detect.aop_of spec.operations in
  let rec pairs = function
    | [] -> []
    | o :: rest -> List.map (fun o' -> (o, o')) (o :: rest) @ pairs rest
  in
  List.filter_map
    (fun ((o1 : Detect.aop), (o2 : Detect.aop)) ->
      match Detect.check_pair spec o1 o2 with
      | Detect.Conflict w ->
          Some (o1.Detect.cur.oname, o2.Detect.cur.oname, w)
      | Detect.Safe -> None)
    (pairs ops)
