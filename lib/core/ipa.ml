(** The IPA main loop (Algorithm 1, function [ipa]).

    Iteratively finds a conflicting pair, searches for repairs, applies
    the resolution chosen by the policy, and continues until no
    unhandled conflicts remain.  Pairs whose conflicts cannot be repaired
    by extra effects are handed to the compensation synthesizer (§3.4);
    if that fails too, the pair is flagged for the programmer to protect
    with coordination (§3, step 3). *)

open Ipa_spec

(** How a conflicting pair was handled. *)
type resolution = {
  r_op1 : string;
  r_op2 : string;
  r_witness : Detect.witness;  (** the conflict that triggered the repair *)
  r_outcome : outcome_kind;
}

and outcome_kind =
  | Repaired of Repair.solution
  | Compensated of Compensation.t list
  | Flagged  (** unsolvable: requires coordination *)

type report = {
  spec : Types.t;  (** input specification *)
  final_ops : Detect.aop list;  (** operations after modification *)
  final_rules : (string * Types.conv_rule) list;
  resolutions : resolution list;
  iterations : int;
  stats : Anactx.stats;  (** solver/cache statistics of the run *)
}

(** The patched specification: modified operations and final rules. *)
let patched_spec (r : report) : Types.t =
  {
    r.spec with
    operations = List.map (fun (o : Detect.aop) -> o.Detect.cur) r.final_ops;
    rules = r.final_rules;
  }

let flagged_pairs (r : report) : (string * string) list =
  List.filter_map
    (fun res ->
      match res.r_outcome with
      | Flagged -> Some (res.r_op1, res.r_op2)
      | _ -> None)
    r.resolutions

let compensations (r : report) : Compensation.t list =
  List.concat_map
    (fun res ->
      match res.r_outcome with Compensated cs -> cs | _ -> [])
    r.resolutions

(** Per-worker analysis state of a parallel run: the pool plus one
    context per worker (index 0 is the caller's — the parent context
    itself, so its caches keep warming across iterations). *)
type workers = { pool : Ipa_par.Pool.t; wctxs : Anactx.t array }

(** Run [f] with the domain pool and per-worker contexts for [jobs]
    workers ([None] when sequential); fold worker counters back into
    [ctx] afterwards, also on exceptions. *)
let with_workers ~(jobs : int) (ctx : Anactx.t) (f : workers option -> 'a) :
    'a =
  if jobs <= 1 then f None
  else
    Ipa_par.Pool.with_pool ~jobs (fun pool ->
        let wctxs =
          Array.init jobs (fun i ->
              if i = 0 then ctx else Anactx.fresh ~like:ctx)
        in
        Fun.protect
          ~finally:(fun () ->
            for i = 1 to jobs - 1 do
              Anactx.merge_stats ~into:ctx wctxs.(i)
            done)
          (fun () -> f (Some { pool; wctxs })))

(** Run the IPA analysis.

    [policy] selects among repair solutions (default: fewest extra
    effects).  [search_rules] lets the repair search propose convergence
    rules different from the specification's (the interactive tool mode).
    [max_iterations] bounds the outer loop.  [ctx] carries the
    grounding/verdict caches and instrumentation; a fresh one (caching
    and pruning enabled) is created when absent.

    [jobs] spreads each iteration's pair checks over a domain pool; the
    first conflicting pair in specification order is selected, so the
    analysis outcome is identical at every [jobs] level (the verdict of
    a pair is a deterministic function of the current spec — the caches
    and pruning are exact — so checking {e more} pairs per iteration
    than the sequential early-exit scan, and remembering their safe
    verdicts, can never change which conflict is found next). *)
let run ?(policy = Repair.Fewest_effects) ?(search_rules = false)
    ?(max_size = 3) ?(max_iterations = 64) ?ctx ?jobs (spec : Types.t) :
    report =
  let jobs =
    match jobs with
    | Some j -> max 1 (min Ipa_par.Pool.cap j)
    | None -> Ipa_par.Pool.env_jobs ()
  in
  let ctx = match ctx with Some c -> c | None -> Anactx.create () in
  with_workers ~jobs ctx @@ fun workers ->
  let ops = ref (List.map Detect.aop_of spec.operations) in
  let rules = ref spec.rules in
  let resolutions = ref [] in
  let ignored : (string * string, unit) Hashtbl.t = Hashtbl.create 16 in
  (* pairs already proven safe; invalidated when an operation of the pair
     is modified or the convergence rules change *)
  let known_safe : (string * string, unit) Hashtbl.t = Hashtbl.create 64 in
  let invalidate name =
    (* modifying an operation stales every cached verdict about it: the
       safe cache, but also the [ignored] table and any compensation or
       flag recorded for a pair involving it — the conflict that
       motivated them may no longer exist (or may now be repairable). *)
    let drop tbl =
      Hashtbl.iter
        (fun (a, b) () -> if a = name || b = name then Hashtbl.remove tbl (a, b))
        (Hashtbl.copy tbl)
    in
    drop known_safe;
    drop ignored;
    resolutions :=
      List.filter
        (fun r ->
          match r.r_outcome with
          | Repaired _ -> true
          | Compensated _ | Flagged -> r.r_op1 <> name && r.r_op2 <> name)
        !resolutions
  in
  let iterations = ref 0 in
  let continue_ = ref true in
  while !continue_ && !iterations < max_iterations do
    incr iterations;
    let spec_now = { spec with rules = !rules } in
    (* find the first conflicting pair that is not already handled *)
    let rec pairs = function
      | [] -> []
      | o :: rest -> List.map (fun o' -> (o, o')) (o :: rest) @ pairs rest
    in
    let unhandled (o1 : Detect.aop) (o2 : Detect.aop) =
      let key = (o1.Detect.cur.oname, o2.Detect.cur.oname) in
      (not (Hashtbl.mem ignored key)) && not (Hashtbl.mem known_safe key)
    in
    let conflict =
      match workers with
      | None ->
          (* sequential: scan lazily, stop at the first conflict *)
          List.find_map
            (fun ((o1 : Detect.aop), (o2 : Detect.aop)) ->
              if not (unhandled o1 o2) then None
              else
                let key = (o1.Detect.cur.oname, o2.Detect.cur.oname) in
                match
                  Anactx.time (Some ctx) key (fun () ->
                      Detect.check_pair ~ctx spec_now o1 o2)
                with
                | Detect.Conflict w -> Some (o1, o2, w)
                | Detect.Safe ->
                    Hashtbl.replace known_safe key ();
                    None)
            (pairs !ops)
      | Some { pool; wctxs } ->
          (* parallel: fan out per-clause proof obligations, not whole
             pairs.  A block of candidate pairs is sized by its
             obligation count (pairs differ wildly in unification cases
             × relevant clauses, so pair-granular blocks load-balance
             poorly); the block's obligations are discharged
             concurrently into the worker contexts, absorbed into the
             parent, and the pairs are then concluded on the parent in
             deterministic specification order — every obligation lookup
             a cache hit, only a conflicting case's witness extraction
             still solving.  The block bounds speculation: at most one
             block's tail beyond the first conflict is solved, and those
             verdicts are valid under the current spec/rules, so caching
             them is sound — [invalidate] and the rules-change reset
             below stale them exactly as the sequential ones.

             Each block shares a fresh frozen snapshot of the parent's
             caches with workers 1.. (worker 0 is the parent and reads
             its live tables directly), so obligation and grounding work
             any worker paid for in block [i] is a hit for every worker
             in block [i+1].  Blocks whose obligation count cannot keep
             the pool busy skip the fork/join barrier entirely and run
             on the parent — this is what post-repair re-scans (a
             handful of invalidated pairs, everything else cached) hit,
             where the barrier used to cost more than the work. *)
          let candidates =
            List.filter (fun (o1, o2) -> unhandled o1 o2) (pairs !ops)
          in
          let jobs_n = Ipa_par.Pool.jobs pool in
          let target_obls = 16 * jobs_n in
          (* only *fresh* obligations (verdict not already cached on the
             parent) count toward the block size and enter the fan-out:
             cached ones cost a barrier round-trip just to hit in the
             shared snapshot.  On a warm re-scan this collapses the whole
             iteration into one barrier-free block. *)
          let rec take_block nobls acc = function
            | [] -> (List.rev acc, [])
            | (((o1, o2) : Detect.aop * Detect.aop) :: rest) as l ->
                if nobls >= target_obls && acc <> [] then (List.rev acc, l)
                else
                  let obls =
                    List.filter
                      (fun (ob : Detect.oblig) ->
                        not (Anactx.oblig_cached (Some ctx) ob.Detect.ob_key))
                      (Detect.obligations spec_now o1 o2)
                  in
                  take_block
                    (nobls + List.length obls)
                    (((o1, o2), obls) :: acc)
                    rest
          in
          (* snapshot the parent's caches at most once per iteration,
             lazily — the copy is linear in the cache size, so paying
             it per block would dominate warm re-scans.  Workers keep
             their private discoveries for the whole iteration; block
             verdicts flow back to the parent by value (oblig_put), and
             the tables merge once in the iteration-end absorb. *)
          let shared = ref false in
          let ensure_shared () =
            if not !shared then begin
              shared := true;
              let ro = Anactx.freeze ctx in
              Array.iteri (fun i c -> if i > 0 then Anactx.share c ro) wctxs
            end
          in
          let solve_block items =
            if List.length items < 2 * jobs_n then
              (* not enough work to pay for the barrier: the parent
                 discharges the obligations itself *)
              List.iter
                (fun (ob : Detect.oblig) ->
                  let key =
                    ( ob.Detect.ob_o1.Detect.cur.oname,
                      ob.Detect.ob_o2.Detect.cur.oname )
                  in
                  ignore
                    (Anactx.time (Some ctx) key (fun () ->
                         Detect.solve_obligation ~ctx spec_now ob)))
                items
            else begin
              ensure_shared ();
              let verdicts =
                Ipa_par.Pool.map_worker pool
                  ~f:(fun ~worker (ob : Detect.oblig) ->
                    let c = wctxs.(worker) in
                    let key =
                      ( ob.Detect.ob_o1.Detect.cur.oname,
                        ob.Detect.ob_o2.Detect.cur.oname )
                    in
                    ( ob.Detect.ob_key,
                      Anactx.time (Some c) key (fun () ->
                          Detect.solve_obligation ~ctx:c spec_now ob) ))
                  items
              in
              List.iter
                (fun (key, v) -> Anactx.oblig_put (Some ctx) key v)
                verdicts
            end
          in
          let rec scan = function
            | [] -> None
            | cands ->
                let blk, rest = take_block 0 [] cands in
                solve_block (List.concat_map snd blk);
                (* conclude in specification order on the parent *)
                let rec conclude = function
                  | [] -> scan rest
                  | (((o1 : Detect.aop), (o2 : Detect.aop)), _) :: more -> (
                      let key = (o1.Detect.cur.oname, o2.Detect.cur.oname) in
                      match
                        Anactx.time (Some ctx) key (fun () ->
                            Detect.check_pair ~ctx spec_now o1 o2)
                      with
                      | Detect.Conflict w -> Some (o1, o2, w)
                      | Detect.Safe ->
                          Hashtbl.replace known_safe key ();
                          conclude more)
                in
                conclude blk
          in
          (* without decomposition (ablation contexts) worker-side
             obligation verdicts would not feed the parent's
             whole-invariant queries, so fan out pair-granular checks
             as before *)
          let rec take n = function
            | l when n = 0 -> ([], l)
            | [] -> ([], [])
            | x :: rest ->
                let a, b = take (n - 1) rest in
                (x :: a, b)
          in
          let rec scan_pairs = function
            | [] -> None
            | cands -> (
                let block =
                  let n = List.length candidates in
                  min (max (4 * jobs_n) (n / 8)) (64 * jobs_n)
                in
                let blk, rest = take block cands in
                ensure_shared ();
                let verdicts =
                  Ipa_par.Pool.map_worker pool
                    ~f:(fun ~worker ((o1 : Detect.aop), (o2 : Detect.aop)) ->
                      let c = wctxs.(worker) in
                      let key = (o1.Detect.cur.oname, o2.Detect.cur.oname) in
                      let v =
                        Anactx.time (Some c) key (fun () ->
                            Detect.check_pair ~ctx:c spec_now o1 o2)
                      in
                      (o1, o2, v))
                    blk
                in
                List.iter
                  (fun ((o1 : Detect.aop), (o2 : Detect.aop), v) ->
                    if v = Detect.Safe then
                      Hashtbl.replace known_safe
                        (o1.Detect.cur.oname, o2.Detect.cur.oname)
                        ())
                  verdicts;
                match
                  List.find_map
                    (fun (o1, o2, v) ->
                      match v with
                      | Detect.Conflict w -> Some (o1, o2, w)
                      | Detect.Safe -> None)
                    verdicts
                with
                | Some c -> Some c
                | None -> scan_pairs rest)
          in
          let found =
            if Anactx.decompose_enabled (Some ctx) then scan candidates
            else scan_pairs candidates
          in
          (* merge every worker's private discoveries (grounding,
             obligations solved for its blocks, witness cases) into the
             parent so the next iteration's snapshot carries them *)
          Array.iteri
            (fun i c -> if i > 0 then Anactx.absorb ~into:ctx c)
            wctxs;
          found
    in
    match conflict with
    | None -> continue_ := false
    | Some (o1, o2, w) -> (
        let name1 = o1.Detect.cur.oname and name2 = o2.Detect.cur.oname in
        let sols =
          Anactx.time (Some ctx) (name1, name2) (fun () ->
              Repair.repair_conflicts ~max_size ~search_rules ~ctx ~witness:w
                spec_now (o1, o2))
        in
        match Repair.pick policy sols with
        | Some sol ->
            (* install the modified operation and any rule changes *)
            let p1, p2 = sol.Repair.s_pair in
            ops :=
              List.map
                (fun (o : Detect.aop) ->
                  if o.Detect.cur.oname = name1 then p1
                  else if o.Detect.cur.oname = name2 then p2
                  else o)
                !ops;
            invalidate name1;
            invalidate name2;
            (* compare rule assignments as sets: enumeration order must
               not force a spurious full invalidation *)
            if not (Types.rules_equal sol.Repair.s_rules !rules) then
              Hashtbl.reset known_safe;
            rules := sol.Repair.s_rules;
            resolutions :=
              {
                r_op1 = name1;
                r_op2 = name2;
                r_witness = w;
                r_outcome = Repaired sol;
              }
              :: !resolutions
        | None -> (
            (* no effect-based repair: try compensations for the violated
               invariants *)
            let comps = Compensation.synthesize spec_now w.Detect.violated in
            Hashtbl.replace ignored (name1, name2) ();
            if Compensation.covers comps w.Detect.violated then
              resolutions :=
                {
                  r_op1 = name1;
                  r_op2 = name2;
                  r_witness = w;
                  r_outcome = Compensated comps;
                }
                :: !resolutions
            else
              resolutions :=
                {
                  r_op1 = name1;
                  r_op2 = name2;
                  r_witness = w;
                  r_outcome = Flagged;
                }
                :: !resolutions))
  done;
  {
    spec;
    final_ops = !ops;
    final_rules = !rules;
    resolutions = List.rev !resolutions;
    iterations = !iterations;
    stats = Anactx.stats ctx;
  }

(** All conflicting pairs of the unmodified specification — the
    diagnosis step, useful on its own.  Pair checks are independent, so
    [jobs > 1] simply fans them out; the result list is in pair order
    at every level. *)
let diagnose ?jobs (spec : Types.t) :
    (string * string * Detect.witness) list =
  let jobs =
    match jobs with
    | Some j -> max 1 (min Ipa_par.Pool.cap j)
    | None -> Ipa_par.Pool.env_jobs ()
  in
  let ops = List.map Detect.aop_of spec.operations in
  let rec pairs = function
    | [] -> []
    | o :: rest -> List.map (fun o' -> (o, o')) (o :: rest) @ pairs rest
  in
  let check ?ctx ((o1 : Detect.aop), (o2 : Detect.aop)) =
    match Detect.check_pair ?ctx spec o1 o2 with
    | Detect.Conflict w -> Some (o1.Detect.cur.oname, o2.Detect.cur.oname, w)
    | Detect.Safe -> None
  in
  if jobs <= 1 then List.filter_map check (pairs ops)
  else
    Ipa_par.Pool.with_pool ~jobs (fun pool ->
        let wctxs = Array.init jobs (fun _ -> Anactx.create ()) in
        Ipa_par.Pool.filter_map_worker pool
          ~f:(fun ~worker pair -> check ~ctx:wctxs.(worker) pair)
          (pairs ops))
