(** The incremental analysis server behind [ipa_tool serve].

    A line-oriented stdin/stdout protocol for editor and build-tool
    integration: load a specification, re-send it after each edit, and
    re-analyze — the session's {!Anactx} persists across analyses, so a
    re-analysis after an edit re-solves only the proof obligations whose
    content-addressed keys the edit actually changed (see {!Oblig}) and
    answers the rest from cache.

    Protocol (requests are single lines; replies end with an [ok ...] or
    [err ...] line, multi-line payloads are length-prefixed):

    {v
    load <path|catalog-name>      load a spec from disk or the catalog
    spec <n>                      followed by n raw lines of spec text
    analyze                       run the IPA loop, print the report
    stats                         print cumulative solver/cache stats
    jobs <n>                      set worker domains for later analyzes
    reset                         drop the analysis context (cold cache)
    help                          list commands
    quit                          end the session
    v}

    Replies: [load]/[spec] answer
    [ok <cmd> name=<n> ops=<k> invariants=<k> ctx=<kept|reset>] — the
    context is reset only when the edit changed the sort/predicate
    signature or the constants, which the grounding cache assumes fixed;
    any other edit keeps every cache entry it does not invalidate.
    [analyze] answers [report <k>] followed by [k] report lines, then
    [ok analyze iterations=<i> solves=<d> obligations=<hits>/<misses>
    cases=<hits>/<misses> reuse=<pct>%% changed=<bool> seconds=<s>]
    where the counters are {e deltas} for this analysis alone and
    [changed] says whether the report text differs from the previous
    analysis's. *)

open Ipa_logic
open Ipa_spec

type t = {
  mutable spec : Types.t option;
  mutable name : string;
  mutable ctx : Anactx.t;
  mutable sig_key : (Ground.signature * (string * int) list) option;
  mutable last_report : string option;
  mutable jobs : int;
}

let create ?(jobs = 1) () : t =
  {
    spec = None;
    name = "-";
    ctx = Anactx.create ();
    sig_key = None;
    last_report = None;
    jobs;
  }

let catalog_spec = function
  | "tournament" -> Some (Catalog.tournament ())
  | "twitter" -> Some (Catalog.twitter ())
  | "ticket" -> Some (Catalog.ticket ())
  | "tpcw" -> Some (Catalog.tpcw ())
  | "tpcc" -> Some (Catalog.tpcc ())
  | _ -> None

(** Resolve a catalog name, else parse a [.ipa] file. *)
let load_spec (path : string) : Types.t =
  match catalog_spec path with
  | Some s -> s
  | None -> Spec_parser.parse_file path

(* install a (re-)loaded spec; the context survives unless the
   signature or constants changed (the grounding cache assumes both
   fixed — operation, rule and invariant edits are safe to keep) *)
let install (t : t) ~(verb : string) ~(name : string) (spec : Types.t) :
    string =
  let key = (Types.signature spec, spec.consts) in
  let reset = match t.sig_key with Some k -> k <> key | None -> false in
  if reset then t.ctx <- Anactx.create ();
  t.sig_key <- Some key;
  t.spec <- Some spec;
  t.name <- name;
  Fmt.str "ok %s name=%s ops=%d invariants=%d ctx=%s" verb name
    (List.length spec.operations)
    (List.length spec.invariants)
    (if reset then "reset" else "kept")

let split_lines (s : string) : string list =
  match List.rev (String.split_on_char '\n' s) with
  | "" :: rev -> List.rev rev
  | _ -> String.split_on_char '\n' s

let analyze (t : t) : string list =
  match t.spec with
  | None -> [ "err analyze no specification loaded" ]
  | Some spec ->
      let s = Anactx.stats t.ctx in
      let solves0 = s.sat_calls
      and oh0 = s.oblig_hits
      and om0 = s.oblig_misses
      and ch0 = s.case_hits
      and cm0 = s.case_misses in
      let t0 = Unix.gettimeofday () in
      let report = Ipa.run ~ctx:t.ctx ~jobs:t.jobs spec in
      let dt = Unix.gettimeofday () -. t0 in
      let str = Report.report_to_string report in
      let changed =
        match t.last_report with None -> true | Some p -> p <> str
      in
      t.last_report <- Some str;
      let s = Anactx.stats t.ctx in
      let oh = s.oblig_hits - oh0
      and om = s.oblig_misses - om0
      and ch = s.case_hits - ch0
      and cm = s.case_misses - cm0 in
      let total = oh + om + ch + cm in
      let reuse =
        if total = 0 then 0.0
        else 100.0 *. float_of_int (oh + ch) /. float_of_int total
      in
      let lines = split_lines str in
      (Fmt.str "report %d" (List.length lines) :: lines)
      @ [
          Fmt.str
            "ok analyze iterations=%d solves=%d obligations=%d/%d \
             cases=%d/%d reuse=%.1f%% changed=%b seconds=%.3f"
            report.Ipa.iterations
            (s.sat_calls - solves0)
            oh om ch cm reuse changed dt;
        ]

let stats_reply (t : t) : string list =
  let lines =
    split_lines (Fmt.str "%a" Anactx.pp_stats (Anactx.stats t.ctx))
  in
  (Fmt.str "stats %d" (List.length lines) :: lines) @ [ "ok stats" ]

let help_reply : string list =
  [
    "commands:";
    "  load <path|catalog>   load a spec (tournament|twitter|ticket|tpcw|tpcc)";
    "  spec <n>              followed by n raw lines of spec text";
    "  analyze               run the IPA loop, print report + delta stats";
    "  stats                 cumulative solver/cache statistics";
    "  jobs <n>              worker domains for later analyzes";
    "  reset                 drop the analysis context (cold cache)";
    "  quit                  end the session";
    "ok help";
  ]

(** Execute one request line; [readline] supplies the continuation
    lines of [spec <n>].  Returns the reply lines and whether the
    session continues. *)
let exec (t : t) ~(readline : unit -> string option) (line : string) :
    string list * bool =
  let words =
    String.split_on_char ' ' (String.trim line)
    |> List.filter (fun w -> w <> "")
  in
  match words with
  | [] -> ([], true)
  | [ "load"; arg ] -> (
      try ([ install t ~verb:"load" ~name:arg (load_spec arg) ], true)
      with
      | Spec_parser.Syntax_error { line; msg } ->
          ([ Fmt.str "err load line %d: %s" line msg ], true)
      | Sys_error msg | Failure msg -> ([ "err load " ^ msg ], true))
  | [ "spec"; n ] -> (
      match int_of_string_opt n with
      | None | Some 0 -> ([ "err spec bad line count" ], true)
      | Some n -> (
          let buf = Buffer.create 256 in
          let short = ref false in
          for _ = 1 to n do
            match readline () with
            | Some l ->
                Buffer.add_string buf l;
                Buffer.add_char buf '\n'
            | None -> short := true
          done;
          if !short then ([ "err spec truncated input" ], true)
          else
            try
              let spec = Spec_parser.parse_string (Buffer.contents buf) in
              ([ install t ~verb:"spec" ~name:t.name spec ], true)
            with
            | Spec_parser.Syntax_error { line; msg } ->
                ([ Fmt.str "err spec line %d: %s" line msg ], true)
            | Failure msg -> ([ "err spec " ^ msg ], true)))
  | [ "analyze" ] -> (analyze t, true)
  | [ "stats" ] -> (stats_reply t, true)
  | [ "jobs"; n ] -> (
      match int_of_string_opt n with
      | None -> ([ "err jobs bad count" ], true)
      | Some n ->
          t.jobs <- max 1 (min Ipa_par.Pool.cap n);
          ([ Fmt.str "ok jobs n=%d" t.jobs ], true))
  | [ "reset" ] ->
      t.ctx <- Anactx.create ();
      ([ "ok reset" ], true)
  | [ "help" ] -> (help_reply, true)
  | [ "quit" ] | [ "exit" ] -> ([ "ok quit" ], false)
  | cmd :: _ -> ([ "err unknown command " ^ cmd ], true)

(** Serve requests from [ic] to [oc] until [quit] or end of input. *)
let serve ?(jobs = 1) (ic : in_channel) (oc : out_channel) : unit =
  let t = create ~jobs () in
  let readline () = try Some (input_line ic) with End_of_file -> None in
  let rec loop () =
    match readline () with
    | None -> ()
    | Some line ->
        let out, continue_ = exec t ~readline line in
        List.iter
          (fun l ->
            output_string oc l;
            output_char oc '\n')
          out;
        flush oc;
        if continue_ then loop ()
  in
  loop ()

(** Run a whole scripted session (tests): requests in, replies out. *)
let run_lines ?(jobs = 1) (lines : string list) : string list =
  let t = create ~jobs () in
  let input = ref lines in
  let readline () =
    match !input with
    | [] -> None
    | l :: rest ->
        input := rest;
        Some l
  in
  let out = ref [] in
  let rec loop () =
    match readline () with
    | None -> ()
    | Some line ->
        let o, continue_ = exec t ~readline line in
        out := List.rev_append o !out;
        if continue_ then loop ()
  in
  loop ();
  List.rev !out
