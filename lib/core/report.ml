(** Human-readable reports from the analysis: Figure 2–style conflict
    diagrams, repair listings, the Table 1 matrix, and the overall tool
    output. *)

open Ipa_logic
open Ipa_spec

(* group a state's true atoms by predicate: "players {p1, p2}" *)
let pp_state ppf (atoms : (Ground.gatom * bool) list)
    (nums : (Ground.gnum * int) list) =
  let preds =
    List.sort_uniq String.compare
      (List.map (fun ((a : Ground.gatom), _) -> a.gpred) atoms)
  in
  List.iter
    (fun p ->
      let members =
        List.filter_map
          (fun ((a : Ground.gatom), v) ->
            if a.gpred = p && v then Some (String.concat "," a.gargs) else None)
          atoms
      in
      Fmt.pf ppf "  %s {%s}@," p (String.concat "; " members))
    preds;
  List.iter
    (fun ((n : Ground.gnum), v) ->
      Fmt.pf ppf "  %s(%s) = %d@," n.gfun (String.concat "," n.gnargs) v)
    nums

let pp_writes ppf (w : Effects.writes) =
  List.iter
    (fun ((a : Ground.gatom), v) ->
      Fmt.pf ppf "  %s(%s) = %b@," a.gpred (String.concat "," a.gargs) v)
    w.Effects.bool_writes;
  List.iter
    (fun ((n : Ground.gnum), d) ->
      Fmt.pf ppf "  %s(%s) %+d@," n.gfun (String.concat "," n.gnargs) d)
    w.Effects.num_writes

(** Figure 2–style conflict diagram: initial state, the two operations'
    effects, the merged state and the violated invariants. *)
let pp_witness ~op1 ~op2 ppf (w : Detect.witness) =
  let post_atoms =
    List.map
      (fun (a, v) ->
        match Effects.lookup_bool w.Detect.merged a with
        | Some v' -> (a, v')
        | None -> (a, v))
      w.Detect.pre_atoms
  in
  let post_nums =
    List.map
      (fun (n, v) ->
        match Effects.lookup_num w.Detect.merged n with
        | Some d -> (n, v + d)
        | None -> (n, v))
      w.Detect.pre_nums
  in
  Fmt.pf ppf "@[<v>conflict: %s || %s@," op1 op2;
  Fmt.pf ppf "case: %s@," (Pairctx.describe w.Detect.unif);
  Fmt.pf ppf "Sinit (I-valid, admissible for both):@,";
  pp_state ppf w.Detect.pre_atoms w.Detect.pre_nums;
  Fmt.pf ppf "effects of %s:@," op1;
  pp_writes ppf w.Detect.writes1;
  Fmt.pf ppf "effects of %s:@," op2;
  pp_writes ppf w.Detect.writes2;
  Fmt.pf ppf "Sfinal = merge(S1, S2):@,";
  pp_state ppf post_atoms post_nums;
  Fmt.pf ppf "violated: %s@]" (String.concat ", " w.Detect.violated)

let pp_resolution ppf (r : Ipa.resolution) =
  Fmt.pf ppf "@[<v 2>pair (%s, %s):@,%a@,=> %a@]" r.Ipa.r_op1 r.Ipa.r_op2
    (pp_witness ~op1:r.Ipa.r_op1 ~op2:r.Ipa.r_op2)
    r.Ipa.r_witness
    (fun ppf -> function
      | Ipa.Repaired sol -> Repair.pp_solution ppf sol
      | Ipa.Compensated comps ->
          Fmt.pf ppf "@[<v>%a@]" Fmt.(list ~sep:cut Compensation.pp) comps
      | Ipa.Flagged ->
          Fmt.string ppf
            "FLAGGED: no invariant-preserving modification found; protect \
             this pair with coordination")
    r.Ipa.r_outcome

(** Full tool output for an analysis run. *)
let pp_report ppf (r : Ipa.report) =
  Fmt.pf ppf "@[<v>== IPA analysis of %s (%d iterations) ==@,@,"
    r.Ipa.spec.app_name r.Ipa.iterations;
  Fmt.pf ppf "%a@,@," Fmt.(list ~sep:(cut ++ cut) pp_resolution) r.Ipa.resolutions;
  Fmt.pf ppf "== final operations ==@,";
  List.iter
    (fun (o : Detect.aop) ->
      let added =
        List.filter
          (fun e -> not (List.mem e o.Detect.base.oeffects))
          o.Detect.cur.oeffects
      in
      if added = [] then
        Fmt.pf ppf "%s: unchanged@," o.Detect.cur.oname
      else
        Fmt.pf ppf "@[<v 2>%s: added@,%a@]@," o.Detect.cur.oname
          Fmt.(list ~sep:cut Types.pp_annotated_effect)
          added)
    r.Ipa.final_ops;
  Fmt.pf ppf "@,== final convergence rules ==@,";
  List.iter
    (fun (p, rule) ->
      Fmt.pf ppf "%s: %s@," p (Types.conv_rule_to_string rule))
    r.Ipa.final_rules;
  (match Ipa.flagged_pairs r with
  | [] -> Fmt.pf ppf "@,no flagged pairs — application is I-Confluent@]"
  | fps ->
      Fmt.pf ppf "@,flagged pairs (need coordination): %a@]"
        Fmt.(list ~sep:(any ", ") (pair ~sep:(any "/") string string))
        fps)

(** Solver/cache statistics of an analysis run ([--stats]). *)
let pp_stats ppf (r : Ipa.report) =
  Fmt.pf ppf "@[<v>== analysis statistics ==@,%a@,%a@]" Anactx.pp_stats
    r.Ipa.stats Anactx.pp_pair_times r.Ipa.stats

(** Render the Table 1 matrix. *)
let pp_table1 ppf (specs : Types.t list) =
  let tbl = Classify.table specs in
  let apps = List.map (fun (s : Types.t) -> s.app_name) specs in
  let col_w = 11 in
  let pad s w = if String.length s >= w then s else s ^ String.make (w - String.length s) ' ' in
  Fmt.pf ppf "%s %s %s " (pad "Inv. Type" 16) (pad "I-Conf." 8) (pad "IPA" 6);
  List.iter (fun a -> Fmt.pf ppf "%s " (pad a col_w)) apps;
  Fmt.pf ppf "@.";
  List.iter
    (fun (cls, row) ->
      let iconf = if Classify.i_confluent cls then "Yes" else "No" in
      let ipa = Classify.support_name (Classify.ipa_support cls) in
      Fmt.pf ppf "%s %s %s "
        (pad (Classify.class_name cls) 16)
        (pad iconf 8) (pad ipa 6);
      List.iter
        (fun (_, present) ->
          Fmt.pf ppf "%s " (pad (if present then "Yes" else "-") col_w))
        row;
      Fmt.pf ppf "@.")
    tbl

let report_to_string r = Fmt.str "%a" pp_report r
let witness_to_string ~op1 ~op2 w = Fmt.str "%a" (pp_witness ~op1 ~op2) w
