(** The incremental analysis server behind [ipa_tool serve]: a
    line-oriented stdin/stdout protocol whose {!Anactx} persists across
    analyses, so re-analyzing an edited specification re-solves only the
    proof obligations whose content-addressed keys ({!Oblig}) the edit
    reached.

    Requests: [load <path|catalog>], [spec <n>] (+ n raw lines),
    [analyze], [stats], [jobs <n>], [reset], [help], [quit].  Replies
    end with an [ok ...] / [err ...] line; multi-line payloads are
    length-prefixed ([report <k>], [stats <k>]).  [analyze]'s [ok] line
    carries {e delta} counters for that analysis alone (solves,
    obligation and case hits/misses, reuse rate) plus [changed=<bool>]
    against the previous report.  The context is dropped automatically
    only when an edit changes the sort/predicate signature or the
    constants (which the grounding cache assumes fixed). *)

open Ipa_spec

(** One server session: current spec, persistent analysis context,
    previous report. *)
type t

val create : ?jobs:int -> unit -> t

(** Resolve a catalog name ([tournament|twitter|ticket|tpcw|tpcc]),
    else parse a [.ipa] file. *)
val load_spec : string -> Types.t

(** Execute one request line; [readline] supplies the continuation
    lines of [spec <n>].  Returns the reply lines and whether the
    session continues ([false] after [quit]). *)
val exec : t -> readline:(unit -> string option) -> string ->
  string list * bool

(** Serve requests from the channel until [quit] or end of input. *)
val serve : ?jobs:int -> in_channel -> out_channel -> unit

(** Run a whole scripted session (tests): request lines in, reply
    lines out. *)
val run_lines : ?jobs:int -> string list -> string list
