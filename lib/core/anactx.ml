(** Shared analysis context: caches and statistics for one analysis run.

    Every stage of the pipeline ({!Detect}, {!Repair}, {!Ipa}) accepts an
    optional context.  When present it provides

    - a {e grounding cache}: grounded invariant clauses keyed by
      (formula, domain).  The clauses of a pair are identical across all
      repair candidates and rule choices, yet were previously re-ground
      for each of them;
    - {e verdict caches} for [Detect.sequentially_safe] and
      [Repair.preserves_intent], keyed by the operation's base/current
      effects and the canonical convergence rules;
    - the switches for the caches and for witness-guided candidate
      pruning (both on by default), so benchmarks can measure the
      uninstrumented baseline with the same code path;
    - aggregated counters: SAT calls/conflicts/decisions/propagations,
      cache hit rates, candidates generated/pruned/checked, and per-pair
      wall time.

    A context may be reused across runs (counters accumulate) but must
    not be shared between different specifications: the grounding cache
    assumes the signature and constants are fixed — only operations and
    convergence rules may vary, which the cache keys account for. *)

open Ipa_logic
open Ipa_spec

type stats = {
  mutable sat_calls : int;  (** [Encode.solve] invocations *)
  mutable sat_conflicts : int;
  mutable sat_decisions : int;
  mutable sat_propagations : int;
  mutable sat_learnts : int;  (** learnt clauses created *)
  mutable sat_removed : int;  (** learnt clauses deleted by DB reduction *)
  mutable ground_hits : int;
  mutable ground_misses : int;
  mutable verdict_hits : int;
  mutable verdict_misses : int;
  mutable cands_generated : int;  (** repair candidates consumed *)
  mutable cands_pruned : int;  (** (candidate, rules) checks skipped *)
  mutable cands_checked : int;  (** (candidate, rules) full SAT checks *)
  mutable pairs_checked : int;  (** [Detect.check_pair] invocations *)
  mutable oblig_hits : int;  (** clause obligations answered from cache *)
  mutable oblig_misses : int;  (** clause obligations discharged by SAT *)
  mutable case_hits : int;  (** witness extractions answered from cache *)
  mutable case_misses : int;  (** witness extractions solved *)
  pair_seconds : (string * string, float) Hashtbl.t;
      (** accumulated wall time attributed to each operation pair *)
  mutable total_seconds : float;
}

type t = {
  cache : bool;
  prune : bool;
  decompose : bool;
      (** split pair checks into per-clause obligations (exact); off
          reproduces the whole-invariant path for ablations *)
  ground_tbl : (Ast.formula * Ground.domain, Ground.gformula) Hashtbl.t;
  seq_tbl : (verdict_key, bool) Hashtbl.t;
  intent_tbl : (verdict_key, bool) Hashtbl.t;
  oblig_tbl : (Oblig.key, bool) Hashtbl.t;
      (** per-clause obligation verdicts ([true] = violable), keyed by
          content so specification edits invalidate implicitly *)
  case_tbl : (Oblig.key, Oblig.witness option) Hashtbl.t;
      (** whole-case witness extractions ([k_clause = -1]) — replaying
          the exact solver query keeps reports bit-identical *)
  mutable frozen : ro option;
      (** read-only snapshot of another context's caches, consulted on
          a private-table miss; see {!freeze}/{!share} *)
  stats : stats;
}

(** An immutable snapshot of a context's caches.  Workers of a parallel
    scan all {!share} one snapshot: reads of a frozen [Hashtbl] from
    many domains are safe precisely because nobody writes it — every
    insertion goes to the sharing worker's private tables instead. *)
and ro = {
  ro_ground : (Ast.formula * Ground.domain, Ground.gformula) Hashtbl.t;
  ro_seq : (verdict_key, bool) Hashtbl.t;
  ro_intent : (verdict_key, bool) Hashtbl.t;
  ro_oblig : (Oblig.key, bool) Hashtbl.t;
  ro_case : (Oblig.key, Oblig.witness option) Hashtbl.t;
}

(** Everything a per-operation verdict can depend on besides the fixed
    parts of the spec: the operation's base and current effects, its
    parameters, and the effective convergence rules. *)
and verdict_key =
  string
  * Ast.tvar list
  * Types.annotated_effect list
  * Types.annotated_effect list
  * (string * Types.conv_rule) list

let fresh_stats () =
  {
    sat_calls = 0;
    sat_conflicts = 0;
    sat_decisions = 0;
    sat_propagations = 0;
    sat_learnts = 0;
    sat_removed = 0;
    ground_hits = 0;
    ground_misses = 0;
    verdict_hits = 0;
    verdict_misses = 0;
    cands_generated = 0;
    cands_pruned = 0;
    cands_checked = 0;
    pairs_checked = 0;
    oblig_hits = 0;
    oblig_misses = 0;
    case_hits = 0;
    case_misses = 0;
    pair_seconds = Hashtbl.create 16;
    total_seconds = 0.0;
  }

let create ?(cache = true) ?(prune = true) ?(decompose = true) () =
  {
    cache;
    prune;
    decompose;
    ground_tbl = Hashtbl.create 64;
    seq_tbl = Hashtbl.create 64;
    intent_tbl = Hashtbl.create 64;
    oblig_tbl = Hashtbl.create 256;
    case_tbl = Hashtbl.create 64;
    frozen = None;
    stats = fresh_stats ();
  }

(** A context with the same cache/prune switches as [like] but empty
    caches and zeroed counters — per-domain state for parallel analysis
    (the mutable hashtables are not domain-safe and must never be
    shared; a {!frozen} snapshot may be). *)
let fresh ~(like : t) : t =
  create ~cache:like.cache ~prune:like.prune ~decompose:like.decompose ()

(** Snapshot [t]'s caches for read-only sharing.  The copies belong to
    the snapshot alone: [t] may keep mutating its live tables. *)
let freeze (t : t) : ro =
  {
    ro_ground = Hashtbl.copy t.ground_tbl;
    ro_seq = Hashtbl.copy t.seq_tbl;
    ro_intent = Hashtbl.copy t.intent_tbl;
    ro_oblig = Hashtbl.copy t.oblig_tbl;
    ro_case = Hashtbl.copy t.case_tbl;
  }

(** Point [t]'s miss path at a frozen snapshot (replacing any previous
    one).  [t] itself stays private to its worker. *)
let share (t : t) (ro : ro) : unit = t.frozen <- Some ro

(** Fold [child]'s counters (and per-pair wall times) into [into]. *)
let merge_stats ~(into : t) (child : t) : unit =
  let a = into.stats and b = child.stats in
  a.sat_calls <- a.sat_calls + b.sat_calls;
  a.sat_conflicts <- a.sat_conflicts + b.sat_conflicts;
  a.sat_decisions <- a.sat_decisions + b.sat_decisions;
  a.sat_propagations <- a.sat_propagations + b.sat_propagations;
  a.sat_learnts <- a.sat_learnts + b.sat_learnts;
  a.sat_removed <- a.sat_removed + b.sat_removed;
  a.ground_hits <- a.ground_hits + b.ground_hits;
  a.ground_misses <- a.ground_misses + b.ground_misses;
  a.verdict_hits <- a.verdict_hits + b.verdict_hits;
  a.verdict_misses <- a.verdict_misses + b.verdict_misses;
  a.cands_generated <- a.cands_generated + b.cands_generated;
  a.cands_pruned <- a.cands_pruned + b.cands_pruned;
  a.cands_checked <- a.cands_checked + b.cands_checked;
  a.pairs_checked <- a.pairs_checked + b.pairs_checked;
  a.oblig_hits <- a.oblig_hits + b.oblig_hits;
  a.oblig_misses <- a.oblig_misses + b.oblig_misses;
  a.case_hits <- a.case_hits + b.case_hits;
  a.case_misses <- a.case_misses + b.case_misses;
  Hashtbl.iter
    (fun pair dt ->
      let prev =
        Option.value ~default:0.0 (Hashtbl.find_opt a.pair_seconds pair)
      in
      Hashtbl.replace a.pair_seconds pair (prev +. dt))
    b.pair_seconds;
  a.total_seconds <- a.total_seconds +. b.total_seconds

(** Move [child]'s cache entries and counters into [into], leaving
    [child] empty (tables cleared, counters zeroed, snapshot dropped).
    After a parallel scan the parent absorbs every worker, so the next
    {!freeze} hands all of this round's discoveries to all of the next
    round's workers — without absorption each worker re-derives what
    its siblings already paid for.  Zeroing [child]'s counters keeps a
    later {!merge_stats} of the same child (e.g. the pool teardown's
    final sweep) from double-counting this round's work. *)
let absorb ~(into : t) (child : t) : unit =
  let move src dst =
    Hashtbl.iter
      (fun k v -> if not (Hashtbl.mem dst k) then Hashtbl.add dst k v)
      src;
    Hashtbl.reset src
  in
  move child.ground_tbl into.ground_tbl;
  move child.seq_tbl into.seq_tbl;
  move child.intent_tbl into.intent_tbl;
  move child.oblig_tbl into.oblig_tbl;
  move child.case_tbl into.case_tbl;
  child.frozen <- None;
  merge_stats ~into child;
  let s = child.stats in
  s.sat_calls <- 0;
  s.sat_conflicts <- 0;
  s.sat_decisions <- 0;
  s.sat_propagations <- 0;
  s.sat_learnts <- 0;
  s.sat_removed <- 0;
  s.ground_hits <- 0;
  s.ground_misses <- 0;
  s.verdict_hits <- 0;
  s.verdict_misses <- 0;
  s.cands_generated <- 0;
  s.cands_pruned <- 0;
  s.cands_checked <- 0;
  s.pairs_checked <- 0;
  s.oblig_hits <- 0;
  s.oblig_misses <- 0;
  s.case_hits <- 0;
  s.case_misses <- 0;
  Hashtbl.reset s.pair_seconds;
  s.total_seconds <- 0.0

let stats t = t.stats
let prune_enabled = function Some t -> t.prune | None -> false
let decompose_enabled = function Some t -> t.decompose | None -> false

(* ------------------------------------------------------------------ *)
(* Cache operations (all tolerate a missing context)                   *)
(* ------------------------------------------------------------------ *)

(* private table first, then the shared frozen snapshot (a frozen hit
   is still a hit — the work was saved); inserts go to the private
   table only, so the snapshot stays read-only across domains *)
let frozen_find (c : t) (proj : ro -> ('k, 'v) Hashtbl.t) (key : 'k) :
    'v option =
  match c.frozen with
  | None -> None
  | Some ro -> Hashtbl.find_opt (proj ro) key

let ground (ctx : t option) ~sg ~consts ~dom (f : Ast.formula) :
    Ground.gformula =
  match ctx with
  | Some c when c.cache -> (
      let key = (f, dom) in
      let cached =
        match Hashtbl.find_opt c.ground_tbl key with
        | Some _ as hit -> hit
        | None -> frozen_find c (fun ro -> ro.ro_ground) key
      in
      match cached with
      | Some g ->
          c.stats.ground_hits <- c.stats.ground_hits + 1;
          g
      | None ->
          c.stats.ground_misses <- c.stats.ground_misses + 1;
          let g = Ground.ground ~sg ~consts ~dom f in
          Hashtbl.add c.ground_tbl key g;
          g)
  | Some c ->
      c.stats.ground_misses <- c.stats.ground_misses + 1;
      Ground.ground ~sg ~consts ~dom f
  | None -> Ground.ground ~sg ~consts ~dom f

let verdict_key (spec : Types.t) (base : Types.operation)
    (cur : Types.operation) : verdict_key =
  ( base.oname,
    cur.oparams,
    base.oeffects,
    cur.oeffects,
    Types.canonical_rules spec.rules )

(* memoize [f ()] in [tbl] under [key]; bypass when caching is off *)
let cached_verdict (ctx : t option) which (spec : Types.t)
    (base : Types.operation) (cur : Types.operation) (f : unit -> bool) : bool
    =
  match ctx with
  | Some c when c.cache -> (
      let tbl = match which with `Seq -> c.seq_tbl | `Intent -> c.intent_tbl in
      let proj ro = match which with `Seq -> ro.ro_seq | `Intent -> ro.ro_intent in
      let key = verdict_key spec base cur in
      let cached =
        match Hashtbl.find_opt tbl key with
        | Some _ as hit -> hit
        | None -> frozen_find c proj key
      in
      match cached with
      | Some v ->
          c.stats.verdict_hits <- c.stats.verdict_hits + 1;
          v
      | None ->
          c.stats.verdict_misses <- c.stats.verdict_misses + 1;
          let v = f () in
          Hashtbl.add tbl key v;
          v)
  | Some c ->
      c.stats.verdict_misses <- c.stats.verdict_misses + 1;
      f ()
  | None -> f ()

(* memoize under an obligation key: private table, then frozen
   snapshot, then compute-and-insert — same discipline as the verdict
   caches, so parallel workers share a frozen snapshot safely *)
let oblig_lookup (ctx : t option) (key : Oblig.key) (f : unit -> bool) : bool
    =
  match ctx with
  | Some c when c.cache -> (
      let cached =
        match Hashtbl.find_opt c.oblig_tbl key with
        | Some _ as hit -> hit
        | None -> frozen_find c (fun ro -> ro.ro_oblig) key
      in
      match cached with
      | Some v ->
          c.stats.oblig_hits <- c.stats.oblig_hits + 1;
          v
      | None ->
          c.stats.oblig_misses <- c.stats.oblig_misses + 1;
          let v = f () in
          Hashtbl.add c.oblig_tbl key v;
          v)
  | Some c ->
      c.stats.oblig_misses <- c.stats.oblig_misses + 1;
      f ()
  | None -> f ()

(** Is this obligation's verdict already cached (private table or
    shared snapshot)?  A pure query: no counters move — the eventual
    {!oblig_lookup} that consumes the entry counts the hit.  The
    parallel scan uses it to keep cached obligations out of the
    fan-out: a warm re-scan then crosses no barrier at all. *)
let oblig_cached (ctx : t option) (key : Oblig.key) : bool =
  match ctx with
  | Some c when c.cache ->
      Hashtbl.mem c.oblig_tbl key
      || frozen_find c (fun ro -> ro.ro_oblig) key <> None
  | _ -> false

(** Seed an obligation verdict computed elsewhere (a parallel worker)
    into the private table, without touching the hit/miss counters —
    the computing context already counted the miss.  Lets the parent of
    a fan-out record a block's verdicts directly instead of paying a
    snapshot copy per block. *)
let oblig_put (ctx : t option) (key : Oblig.key) (v : bool) : unit =
  match ctx with
  | Some c when c.cache ->
      if not (Hashtbl.mem c.oblig_tbl key) then Hashtbl.add c.oblig_tbl key v
  | _ -> ()

(* memoize a whole-case witness extraction.  The stored value is the
   exact result of the deterministic solver query, so replays from the
   cache keep reports bit-identical to a from-scratch run *)
let case_lookup (ctx : t option) (key : Oblig.key)
    (f : unit -> Oblig.witness option) : Oblig.witness option =
  match ctx with
  | Some c when c.cache -> (
      let cached =
        match Hashtbl.find_opt c.case_tbl key with
        | Some _ as hit -> hit
        | None -> frozen_find c (fun ro -> ro.ro_case) key
      in
      match cached with
      | Some v ->
          c.stats.case_hits <- c.stats.case_hits + 1;
          v
      | None ->
          c.stats.case_misses <- c.stats.case_misses + 1;
          let v = f () in
          Hashtbl.add c.case_tbl key v;
          v)
  | Some c ->
      c.stats.case_misses <- c.stats.case_misses + 1;
      f ()
  | None -> f ()

(* ------------------------------------------------------------------ *)
(* Instrumentation                                                     *)
(* ------------------------------------------------------------------ *)

(** Record one [Encode.solve] call: harvest the (fresh, single-use)
    solver's counters into the aggregate. *)
let record_solve (ctx : t option) (enc : Ipa_solver.Encode.ctx) : unit =
  match ctx with
  | None -> ()
  | Some c ->
      let st = Ipa_solver.Sat.stats (Ipa_solver.Encode.solver enc) in
      let s = c.stats in
      s.sat_calls <- s.sat_calls + 1;
      s.sat_conflicts <- s.sat_conflicts + st.Ipa_solver.Sat.n_conflicts;
      s.sat_decisions <- s.sat_decisions + st.Ipa_solver.Sat.n_decisions;
      s.sat_propagations <- s.sat_propagations + st.Ipa_solver.Sat.n_propagations;
      s.sat_learnts <- s.sat_learnts + st.Ipa_solver.Sat.n_learnts;
      s.sat_removed <- s.sat_removed + st.Ipa_solver.Sat.n_removed

(** Time [f], attributing the elapsed wall time to [pair]. *)
let time (ctx : t option) (pair : string * string) (f : unit -> 'a) : 'a =
  match ctx with
  | None -> f ()
  | Some c ->
      let t0 = Unix.gettimeofday () in
      Fun.protect
        ~finally:(fun () ->
          let dt = Unix.gettimeofday () -. t0 in
          let prev =
            Option.value ~default:0.0 (Hashtbl.find_opt c.stats.pair_seconds pair)
          in
          Hashtbl.replace c.stats.pair_seconds pair (prev +. dt);
          c.stats.total_seconds <- c.stats.total_seconds +. dt)
        f

(* ------------------------------------------------------------------ *)
(* Reporting helpers                                                   *)
(* ------------------------------------------------------------------ *)

(* every reported rate routes through this guard: a zero-solve run
   (cache-only re-analysis, or a spec with no obligations at all) must
   print 0%, never nan *)
let rate hits misses =
  let total = hits + misses in
  if total = 0 then 0.0 else float_of_int hits /. float_of_int total

let ground_hit_rate s = rate s.ground_hits s.ground_misses
let verdict_hit_rate s = rate s.verdict_hits s.verdict_misses
let oblig_hit_rate s = rate s.oblig_hits s.oblig_misses
let case_hit_rate s = rate s.case_hits s.case_misses

let prune_rate s =
  rate s.cands_pruned (s.cands_checked)

(** [hits / (hits + misses)] over obligations {e and} witness
    extractions together: the fraction of an analysis answered without
    any solver work — the figure of merit of an incremental
    re-analysis.  0 when nothing was asked (guarded, never nan). *)
let reuse_rate s =
  rate (s.oblig_hits + s.case_hits)
    (s.oblig_misses + s.case_misses)

let pair_times (s : stats) : ((string * string) * float) list =
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) s.pair_seconds []
  |> List.sort (fun (_, a) (_, b) -> compare b a)

let pp_stats ppf (s : stats) =
  Fmt.pf ppf
    "@[<v>analysis statistics:@,\
    \  wall time          %.3f s@,\
    \  pairs checked      %d@,\
    \  SAT solves         %d  (conflicts %d, decisions %d, propagations %d)@,\
    \  learnt clauses     %d  (%d removed by DB reduction)@,\
    \  grounding cache    %d hits / %d misses  (%.1f%%)@,\
    \  verdict cache      %d hits / %d misses  (%.1f%%)@,\
    \  obligations        %d hits / %d misses  (%.1f%%)@,\
    \  witness cases      %d hits / %d misses  (%.1f%%)@,\
    \  candidates         %d generated, %d pruned by witness, %d solver-checked@]"
    s.total_seconds s.pairs_checked s.sat_calls s.sat_conflicts s.sat_decisions
    s.sat_propagations s.sat_learnts s.sat_removed s.ground_hits
    s.ground_misses
    (100.0 *. ground_hit_rate s)
    s.verdict_hits s.verdict_misses
    (100.0 *. verdict_hit_rate s)
    s.oblig_hits s.oblig_misses
    (100.0 *. oblig_hit_rate s)
    s.case_hits s.case_misses
    (100.0 *. case_hit_rate s)
    s.cands_generated s.cands_pruned s.cands_checked

let pp_pair_times ppf (s : stats) =
  Fmt.pf ppf "@[<v>per-pair wall time:@,";
  List.iter
    (fun ((o1, o2), dt) -> Fmt.pf ppf "  %-40s %.3f s@," (o1 ^ " / " ^ o2) dt)
    (pair_times s);
  Fmt.pf ppf "@]"
