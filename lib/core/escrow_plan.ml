(** Escrow planner, static half: read a (repaired) spec's numeric
    constraints and turn each bounded quantity into a {e resource}
    descriptor plus a demand-proportional initial rights partitioning.

    The extraction walks exactly the clause frames {!Oblig} decomposes —
    top-level conjuncts of each invariant, universally quantified — and
    recognises the two shapes the paper's applications use:

    - numeric state-function bounds: [available(e) >= 0],
      [stock(i) <= 16] → a lower/upper escrow bound on an [NFun];
    - cardinality caps, possibly over a wildcard position:
      [#enrolled( *, t) <= Capacity] → an aggregate invariant spanning
      every object of the starred sort, enforced by one capped counter
      per grounding of the remaining variables.

    A lower bound is enforced by decrement {e rights}, an upper bound by
    increment {e headroom} (see {!Ipa_crdt.Bcounter}); which operations
    consume each side is read off the spec's effect deltas.  The runtime
    half — seeding counters from a placement and migrating rights toward
    measured demand — lives in [Ipa_runtime.Escrow]. *)

open Ipa_logic
open Ipa_spec

(** What kind of quantity the bound constrains. *)
type source =
  | Res_numeric  (** a bounded numeric state function *)
  | Res_cardinality  (** a predicate cardinality ([#p(...)]) *)

type resource = {
  r_name : string;  (** the numeric function or predicate *)
  r_source : source;
  r_wild : bool;
      (** the constrained term has a [Star] position: one counter guards
          the aggregate over every element of that sort (wildcard /
          multi-key reservation) *)
  r_lo : int option;  (** tightest lower bound, rights-guarded *)
  r_hi : int option;  (** tightest upper bound, headroom-guarded *)
  r_dec_ops : string list;  (** operations that decrease the quantity *)
  r_inc_ops : string list;  (** operations that increase the quantity *)
}

(* ------------------------------------------------------------------ *)
(* Constraint extraction                                               *)
(* ------------------------------------------------------------------ *)

let rec const_eval (consts : (string * int) list) (e : Ast.nexpr) : int option
    =
  match e with
  | Ast.Int n -> Some n
  | Ast.NConst c -> List.assoc_opt c consts
  | Ast.NAdd (a, b) -> (
      match (const_eval consts a, const_eval consts b) with
      | Some x, Some y -> Some (x + y)
      | _ -> None)
  | Ast.NSub (a, b) -> (
      match (const_eval consts a, const_eval consts b) with
      | Some x, Some y -> Some (x - y)
      | _ -> None)
  | Ast.Card _ | Ast.NFun _ -> None

let rec strip_forall = function
  | Ast.Forall (_, f) -> strip_forall f
  | f -> f

type bound_side = Lo of int | Hi of int

(* [name OP const] or [const OP name] with OP ∈ {<=,<,>=,>} over an
   NFun or Card — the escrow-enforceable clause shapes *)
let bound_of consts (clause : Ast.formula) :
    (string * source * bool * bound_side) option =
  let named = function
    | Ast.NFun (f, args) ->
        Some (f, Res_numeric, List.exists (fun t -> t = Ast.Star) args)
    | Ast.Card (p, args) ->
        Some (p, Res_cardinality, List.exists (fun t -> t = Ast.Star) args)
    | _ -> None
  in
  match strip_forall clause with
  | Ast.Cmp (op, l, r) -> (
      match (named l, const_eval consts r) with
      | Some (n, src, w), Some c -> (
          match op with
          | Ast.Le -> Some (n, src, w, Hi c)
          | Ast.Lt -> Some (n, src, w, Hi (c - 1))
          | Ast.Ge -> Some (n, src, w, Lo c)
          | Ast.Gt -> Some (n, src, w, Lo (c + 1))
          | Ast.EqN | Ast.NeN -> None)
      | _ -> (
          match (named r, const_eval consts l) with
          | Some (n, src, w), Some c -> (
              match op with
              | Ast.Le -> Some (n, src, w, Lo c)
              | Ast.Lt -> Some (n, src, w, Lo (c + 1))
              | Ast.Ge -> Some (n, src, w, Hi c)
              | Ast.Gt -> Some (n, src, w, Hi (c - 1))
              | Ast.EqN | Ast.NeN -> None)
          | _ -> None))
  | _ -> None

(* ops moving the quantity down/up, from the spec's effect deltas *)
let movers (spec : Types.t) (name : string) (src : source) :
    string list * string list =
  let dec = ref [] and inc = ref [] in
  List.iter
    (fun (o : Types.operation) ->
      List.iter
        (fun (ae : Types.annotated_effect) ->
          if ae.eff.epred = name then
            match (ae.eff.evalue, src) with
            | Types.Delta d, Res_numeric ->
                if d < 0 then dec := o.oname :: !dec
                else if d > 0 then inc := o.oname :: !inc
            | Types.Set b, Res_cardinality ->
                if b then inc := o.oname :: !inc else dec := o.oname :: !dec
            | _ -> ())
        o.oeffects)
    spec.operations;
  (List.sort_uniq compare !dec, List.sort_uniq compare !inc)

(** Every escrow-enforceable bounded resource of the spec, sorted by
    name.  Bounds from different clauses on the same quantity merge to
    the tightest (largest lower, smallest upper). *)
let resources (spec : Types.t) : resource list =
  let tbl : (string * source, resource) Hashtbl.t = Hashtbl.create 8 in
  List.iter
    (fun (i : Types.invariant) ->
      List.iter
        (fun clause ->
          match bound_of spec.consts clause with
          | None -> ()
          | Some (name, src, wild, side) ->
              let cur =
                match Hashtbl.find_opt tbl (name, src) with
                | Some r -> r
                | None ->
                    let r_dec_ops, r_inc_ops = movers spec name src in
                    {
                      r_name = name;
                      r_source = src;
                      r_wild = false;
                      r_lo = None;
                      r_hi = None;
                      r_dec_ops;
                      r_inc_ops;
                    }
              in
              let merged =
                match side with
                | Lo c ->
                    let r_lo =
                      Some
                        (match cur.r_lo with
                        | Some l -> max l c
                        | None -> c)
                    in
                    { cur with r_lo; r_wild = cur.r_wild || wild }
                | Hi c ->
                    let r_hi =
                      Some
                        (match cur.r_hi with
                        | Some h -> min h c
                        | None -> c)
                    in
                    { cur with r_hi; r_wild = cur.r_wild || wild }
              in
              Hashtbl.replace tbl (name, src) merged)
        (Ast.clauses (strip_forall i.iformula)))
    spec.invariants;
  Hashtbl.fold (fun _ r acc -> r :: acc) tbl []
  |> List.sort (fun a b -> compare a.r_name b.r_name)

(** Rights available to partition when the counter's value is [value]:
    how far it may fall before hitting the lower bound. *)
let rights_pool (r : resource) ~(value : int) : int option =
  Option.map (fun lo -> max 0 (value - lo)) r.r_lo

(** Headroom available to partition: how far the value may still rise. *)
let headroom_pool (r : resource) ~(value : int) : int option =
  Option.map (fun hi -> max 0 (hi - value)) r.r_hi

(* ------------------------------------------------------------------ *)
(* Demand-proportional apportionment                                   *)
(* ------------------------------------------------------------------ *)

(** Split [total] units across replicas proportionally to their demand
    weights (largest-remainder method).  Deterministic: floors of the
    exact quotas, leftover units to the largest fractional remainders,
    ties broken by replica name.  Non-positive total weight degrades to
    an even split.  Always sums to [total]; each share is within one
    unit of its exact quota. *)
let apportion ~(total : int) (weights : (string * float) list) :
    (string * int) list =
  if total <= 0 || weights = [] then List.map (fun (r, _) -> (r, 0)) weights
  else begin
    let wsum = List.fold_left (fun acc (_, w) -> acc +. max 0. w) 0. weights in
    let n = List.length weights in
    let quota (r, w) =
      if wsum > 0. then (r, float_of_int total *. max 0. w /. wsum)
      else (r, float_of_int total /. float_of_int n)
    in
    let quotas = List.map quota weights in
    let floors = List.map (fun (r, q) -> (r, int_of_float q)) quotas in
    let placed = List.fold_left (fun acc (_, f) -> acc + f) 0 floors in
    let leftover = total - placed in
    (* largest fractional remainder first, name-ordered on ties *)
    let order =
      List.map2
        (fun (r, q) (_, f) -> (r, q -. float_of_int f))
        quotas floors
      |> List.stable_sort (fun (ra, fa) (rb, fb) ->
             match compare fb fa with 0 -> compare ra rb | c -> c)
    in
    let bonus = Hashtbl.create 8 in
    List.iteri
      (fun i (r, _) -> if i < leftover then Hashtbl.replace bonus r 1)
      order;
    List.map
      (fun (r, f) ->
        (r, f + (match Hashtbl.find_opt bonus r with Some b -> b | None -> 0)))
      floors
  end

(* ------------------------------------------------------------------ *)
(* Pretty printing                                                     *)
(* ------------------------------------------------------------------ *)

let pp_resource ppf (r : resource) =
  Fmt.pf ppf "%s%s [%s, %s]%s dec:{%s} inc:{%s}"
    (match r.r_source with Res_numeric -> "" | Res_cardinality -> "#")
    r.r_name
    (match r.r_lo with Some l -> string_of_int l | None -> "-inf")
    (match r.r_hi with Some h -> string_of_int h | None -> "+inf")
    (if r.r_wild then " (wildcard)" else "")
    (String.concat "," r.r_dec_ops)
    (String.concat "," r.r_inc_ops)
