(** Conflict detection (function [isConflicting] of Algorithm 1, extended
    with convergence rules).

    A pair of operations conflicts if there is an I-valid pre-state,
    admissible for both operations (their weakest preconditions hold),
    such that merging the effects of their concurrent executions — with
    opposing boolean writes resolved by the convergence rules — yields an
    I-invalid state.  The check is decided by the SAT backend over the
    small-model domains of {!Pairctx}. *)

open Ipa_logic
open Ipa_solver
open Ipa_spec

(** An operation under analysis: [base] defines the precondition that the
    application code checks (its original effects); [cur] carries the
    effects after IPA modifications. Initially they coincide. *)
type aop = { base : Types.operation; cur : Types.operation }

let aop_of (op : Types.operation) : aop = { base = op; cur = op }

(** A concrete counterexample execution, in the style of Figure 2: a
    valid initial state, per-operation writes, the merged outcome, and
    the invariants that the merged state violates.  (Defined in
    {!Oblig} so the analysis context can cache witnesses.) *)
type witness = Oblig.witness = {
  unif : Pairctx.unification;
  pre_atoms : (Ground.gatom * bool) list;
  pre_nums : (Ground.gnum * int) list;
  writes1 : Effects.writes;
  writes2 : Effects.writes;
  merged : Effects.writes;
  violated : string list;  (** names of invariants false after merge *)
}

type verdict = Safe | Conflict of witness

(** Invariant clauses relevant to a pair: those mentioning a predicate or
    numeric function either operation writes.  Restricting the analysis to
    these clauses (as Indigo does) is a sound over-approximation: dropped
    clauses are untouched by the pair's writes, so they cannot be the
    violated clause; dropping them from the pre-state constraint can only
    admit {e more} pre-states, i.e. report {e more} conflicts, never miss
    one. *)
let relevant_invariants (spec : Types.t) (o1 : Types.operation)
    (o2 : Types.operation) : Types.invariant list =
  let written =
    Types.written_preds o1 @ Types.written_preds o2 @ Types.written_nfuns o1
    @ Types.written_nfuns o2
  in
  List.filter
    (fun (i : Types.invariant) ->
      List.exists
        (fun p -> List.mem p written)
        (Ast.predicates i.iformula @ Ast.nfunctions i.iformula))
    spec.invariants

(* does either op write [true] into predicate [pred]? *)
let pair_grows (ops : Types.operation list) (pred : string) : bool =
  List.exists
    (fun (o : Types.operation) ->
      List.exists
        (fun (ae : Types.annotated_effect) ->
          ae.eff.epred = pred && ae.eff.evalue = Types.Set true)
        o.oeffects)
    ops

(* sorts whose domain must be widened: star positions of cardinality
   predicates that the pair can grow *)
let widen_sorts (spec : Types.t) (invs : Types.invariant list)
    (ops : Types.operation list) : (Ast.sort * int) list =
  let acc = Hashtbl.create 4 in
  let const_value = function
    | Ast.Int n -> Some n
    | Ast.NConst c -> List.assoc_opt c spec.consts
    | _ -> None
  in
  let scan_cmp a b =
    let scan_side card_side other =
      match card_side with
      | Ast.Card (p, args) when pair_grows ops p -> (
          let bound = match const_value other with Some k -> k | None -> 16 in
          match Types.find_pred spec p with
          | Some pd ->
              List.iter2
                (fun arg sort ->
                  match arg with
                  | Ast.Star ->
                      let cur =
                        Option.value ~default:1 (Hashtbl.find_opt acc sort)
                      in
                      Hashtbl.replace acc sort (max cur (bound + 2))
                  | _ -> ())
                args pd.psorts
          | None -> ())
      | _ -> ()
    in
    scan_side a b;
    scan_side b a
  in
  let rec scan = function
    | Ast.True | Ast.False | Ast.Atom _ | Ast.Eq _ -> ()
    | Ast.Cmp (_, a, b) -> scan_cmp a b
    | Ast.Not f -> scan f
    | Ast.And (a, b) | Ast.Or (a, b) | Ast.Implies (a, b) | Ast.Iff (a, b) ->
        scan a;
        scan b
    | Ast.Forall (_, f) | Ast.Exists (_, f) -> scan f
  in
  List.iter (fun (i : Types.invariant) -> scan i.iformula) invs;
  Hashtbl.fold (fun s n l -> (s, n) :: l) acc []

(* extend the unification domain with extra background elements where the
   pair can saturate a cardinality bound *)
let widen_domain_for (spec : Types.t) (invs : Types.invariant list)
    (ops : Types.operation list) (dom : Ground.domain) : Ground.domain =
  let widths = widen_sorts spec invs ops in
  List.map
    (fun (sort, elems) ->
      let extra =
        Option.value ~default:1 (List.assoc_opt sort widths) - 1
      in
      ( sort,
        elems
        @ List.init (max 0 extra) (fun i -> Fmt.str "%s_bg%d" sort (i + 2)) ))
    dom

(* the (relevant clauses, widened domain) analysis frame of one
   unification case — every obligation and the whole-case witness query
   are posed against this frame *)
let case_frame ~restrict_clauses ~widen (spec : Types.t) (o1 : aop) (o2 : aop)
    (u : Pairctx.unification) : Types.invariant list * Ground.domain =
  let invs =
    if restrict_clauses then relevant_invariants spec o1.cur o2.cur
    else spec.invariants
  in
  let dom =
    if widen then widen_domain_for spec invs [ o1.cur; o2.cur ] u.dom
    else u.dom
  in
  (invs, dom)

(* the whole-case query over an already-computed frame: assert pre-state
   + weakest preconditions, then the disjunction of per-clause violation
   targets; extract a witness on Sat *)
let check_case_grounded ?ctx (spec : Types.t) (o1 : aop) (o2 : aop)
    (u : Pairctx.unification) ~(invs : Types.invariant list)
    ~(dom : Ground.domain) : witness option =
  let sg = Types.signature spec in
  let consts = spec.consts in
  let gcs =
    List.map
      (fun (i : Types.invariant) ->
        (i.iname, Anactx.ground ctx ~sg ~consts ~dom i.iformula))
      invs
  in
  let ig = Ground.gand_l (List.map snd gcs) in
  let w1_base = Effects.ground_writes spec dom o1.base u.binding1 in
  let w2_base = Effects.ground_writes spec dom o2.base u.binding2 in
  let w1 = Effects.ground_writes spec dom o1.cur u.binding1 in
  let w2 = Effects.ground_writes spec dom o2.cur u.binding2 in
  let merged_outcomes = Effects.merge_writes spec w1 w2 in
  let int_bounds = Types.int_bounds spec in
  let rec try_outcomes = function
    | [] -> None
    | merged :: rest -> (
        let enc = Encode.create ~int_bounds () in
        (* pre-state: each relevant clause holds *)
        List.iter (fun (_, gc) -> Encode.assert_formula enc gc) gcs;
        (* weakest preconditions: only clauses the writes affect produce
           a constraint different from the already-asserted clause *)
        List.iter
          (fun w ->
            List.iter
              (fun (_, gc) ->
                let t = Effects.apply_writes w gc in
                if t <> gc then Encode.assert_formula enc t)
              gcs)
          [ w1_base; w2_base ];
        (* violation: some clause affected by the merged writes is false *)
        let viol =
          Ground.gor_l
            (List.filter_map
               (fun (_, gc) ->
                 let t = Effects.apply_writes merged gc in
                 if t = gc then None else Some (Ground.gnot t))
               gcs)
        in
        Encode.assert_formula enc viol;
        let result = Encode.solve enc in
        Anactx.record_solve ctx enc;
        match result with
        | Unsat ->
            Encode.release enc;
            try_outcomes rest
        | Sat ->
            (* extract the witness pre-state *)
            let atoms =
              List.sort_uniq compare
                (Ground.atoms ig
                @ List.map fst w1.bool_writes
                @ List.map fst w2.bool_writes)
            in
            let nums =
              List.sort_uniq compare
                (Ground.nums ig
                @ List.map fst w1.num_writes
                @ List.map fst w2.num_writes)
            in
            let pre_atoms =
              List.map (fun a -> (a, Encode.model_atom enc a)) atoms
            in
            let pre_nums =
              List.map (fun n -> (n, Encode.model_num enc n)) nums
            in
            Encode.release enc;
            let batom a =
              Option.value ~default:false (List.assoc_opt a pre_atoms)
            in
            let bnum n =
              match List.assoc_opt n pre_nums with
              | Some v -> v
              | None -> fst (int_bounds n)
            in
            let batom', bnum' = Effects.post_state ~batom ~bnum merged in
            let violated =
              List.filter_map
                (fun (name, gc) ->
                  if Ground.eval ~batom:batom' ~bnum:bnum' gc then None
                  else Some name)
                gcs
            in
            Some
              {
                unif = { u with dom };
                pre_atoms;
                pre_nums;
                writes1 = w1;
                writes2 = w2;
                merged;
                violated;
              })
  in
  try_outcomes merged_outcomes

(** Check a single unification case. Returns a witness if conflicting.

    [restrict_clauses] (default true) analyses only the invariant
    clauses the pair writes (sound over-approximation, see
    {!relevant_invariants}); disabling it grounds the full invariant —
    the ablation benchmark measures the cost difference.
    [widen] (default true) enlarges domains to saturate cardinality
    bounds; disabling it makes the small-model domains unsound for
    aggregation constraints (conflicts are missed — again measured by
    the ablation). *)
let check_case ?(restrict_clauses = true) ?(widen = true) ?ctx (spec : Types.t)
    (o1 : aop) (o2 : aop) (u : Pairctx.unification) : witness option =
  let invs, dom = case_frame ~restrict_clauses ~widen spec o1 o2 u in
  if invs = [] then None
  else check_case_grounded ?ctx spec o1 o2 u ~invs ~dom

(* discharge one clause obligation: can some merged outcome of the
   pair's concurrent effects falsify clause [idx] of the frame?  Same
   pre-state and weakest-precondition assertions as the whole-case
   query, but the violation target is a single clause, so the query —
   and its verdict — depends on nothing outside its {!Oblig.key}. *)
let oblig_solve ?ctx (spec : Types.t) (o1 : aop) (o2 : aop)
    (u : Pairctx.unification) ~(invs : Types.invariant list)
    ~(dom : Ground.domain) (idx : int) : bool =
  let sg = Types.signature spec in
  let consts = spec.consts in
  let gcs =
    List.map
      (fun (i : Types.invariant) ->
        Anactx.ground ctx ~sg ~consts ~dom i.iformula)
      invs
  in
  let target = List.nth gcs idx in
  let w1_base = Effects.ground_writes spec dom o1.base u.binding1 in
  let w2_base = Effects.ground_writes spec dom o2.base u.binding2 in
  let w1 = Effects.ground_writes spec dom o1.cur u.binding1 in
  let w2 = Effects.ground_writes spec dom o2.cur u.binding2 in
  let int_bounds = Types.int_bounds spec in
  List.exists
    (fun merged ->
      let t = Effects.apply_writes merged target in
      (* a clause the merged writes leave alone still holds in the
         post-state: no solver query needed *)
      t <> target
      &&
      let enc = Encode.create ~int_bounds () in
      List.iter (Encode.assert_formula enc) gcs;
      List.iter
        (fun w ->
          List.iter
            (fun gc ->
              let t = Effects.apply_writes w gc in
              if t <> gc then Encode.assert_formula enc t)
            gcs)
        [ w1_base; w2_base ];
      Encode.assert_formula enc (Ground.gnot t);
      let result = Encode.solve enc in
      Anactx.record_solve ctx enc;
      Encode.release enc;
      result = Sat)
    (Effects.merge_writes spec w1 w2)

(** One per-clause proof obligation of a pair, enumerated without solver
    work and dischargeable independently (e.g. on a worker domain). *)
type oblig = {
  ob_o1 : aop;
  ob_o2 : aop;
  ob_unif : Pairctx.unification;
  ob_invs : Types.invariant list;
  ob_dom : Ground.domain;
  ob_key : Oblig.key;
  ob_clause : int;
}

(* the case key of one unification under an already-computed frame *)
let case_key (spec : Types.t) (o1 : aop) (o2 : aop) (u : Pairctx.unification)
    ~invs ~dom : Oblig.key =
  Oblig.case_key spec ~base1:o1.base ~cur1:o1.cur ~base2:o2.base ~cur2:o2.cur
    ~binding1:u.binding1 ~binding2:u.binding2 ~dom ~frame:invs

(** Enumerate the pair's obligations under the default analysis frame
    (clause restriction and widening on): one per (unification case ×
    relevant clause).  Cases with no relevant clause contribute none. *)
let obligations (spec : Types.t) (o1 : aop) (o2 : aop) : oblig list =
  Pairctx.unifications spec o1.cur o2.cur
  |> List.concat_map (fun (u : Pairctx.unification) ->
         let invs, dom =
           case_frame ~restrict_clauses:true ~widen:true spec o1 o2 u
         in
         if invs = [] then []
         else
           let ck = case_key spec o1 o2 u ~invs ~dom in
           List.mapi
             (fun idx _ ->
               {
                 ob_o1 = o1;
                 ob_o2 = o2;
                 ob_unif = u;
                 ob_invs = invs;
                 ob_dom = dom;
                 ob_key = Oblig.with_clause ck idx;
                 ob_clause = idx;
               })
             invs)

(** Discharge one obligation through the context's content-addressed
    verdict cache: [true] means the clause can be violated. *)
let solve_obligation ?ctx (spec : Types.t) (ob : oblig) : bool =
  Anactx.oblig_lookup ctx ob.ob_key @@ fun () ->
  oblig_solve ?ctx spec ob.ob_o1 ob.ob_o2 ob.ob_unif ~invs:ob.ob_invs
    ~dom:ob.ob_dom ob.ob_clause

(* Per-clause pair check: decide each (case × clause) obligation through
   the context's content-addressed cache, and replay the whole-case
   witness query (also cached) only where some obligation is
   satisfiable.  Exact: the whole-case query asserts the disjunction of
   the per-clause violation targets, which is satisfiable iff some
   obligation is; and the replay runs the very same deterministic query
   as [check_case], so the verdict and the extracted witness are
   bit-identical to the undecomposed path's. *)
let check_pair_decomposed ?ctx (spec : Types.t) (o1 : aop) (o2 : aop) :
    verdict =
  let rec go = function
    | [] -> Safe
    | (u : Pairctx.unification) :: rest ->
        let invs, dom =
          case_frame ~restrict_clauses:true ~widen:true spec o1 o2 u
        in
        if invs = [] then go rest
        else
          let ck = case_key spec o1 o2 u ~invs ~dom in
          let violable =
            List.exists
              (fun idx ->
                Anactx.oblig_lookup ctx (Oblig.with_clause ck idx) (fun () ->
                    oblig_solve ?ctx spec o1 o2 u ~invs ~dom idx))
              (List.init (List.length invs) Fun.id)
          in
          if not violable then go rest
          else (
            match
              Anactx.case_lookup ctx ck (fun () ->
                  check_case_grounded ?ctx spec o1 o2 u ~invs ~dom)
            with
            | Some w -> Conflict w
            | None -> go rest)
  in
  go (Pairctx.unifications spec o1.cur o2.cur)

(** [check_pair spec o1 o2] decides whether the pair conflicts under any
    parameter unification (paper: [isConflicting]).  With a decomposing
    context (and the default frame options) the verdict is assembled
    from cached per-clause obligations; otherwise each case is one
    whole-invariant query. *)
let check_pair ?(restrict_clauses = true) ?(widen = true) ?ctx
    (spec : Types.t) (o1 : aop) (o2 : aop) : verdict =
  (match ctx with
  | Some c -> (Anactx.stats c).Anactx.pairs_checked <-
      (Anactx.stats c).Anactx.pairs_checked + 1
  | None -> ());
  if restrict_clauses && widen && Anactx.decompose_enabled ctx then
    check_pair_decomposed ?ctx spec o1 o2
  else
    let rec go = function
      | [] -> Safe
      | u :: rest -> (
          match check_case ~restrict_clauses ~widen ?ctx spec o1 o2 u with
          | Some w -> Conflict w
          | None -> go rest)
    in
    go (Pairctx.unifications spec o1.cur o2.cur)

(** All conflicting unification cases of a pair (used in reports). *)
let all_conflicts (spec : Types.t) (o1 : aop) (o2 : aop) : witness list =
  Pairctx.unifications spec o1.cur o2.cur
  |> List.filter_map (check_case spec o1 o2)

(** [sequentially_safe spec o] holds when executing [o] alone from any
    state admissible for its {e original} precondition preserves the
    invariant — IPA modifications must not break sequential executions
    (paper §2.2, Theorem 1). *)
let sequentially_safe ?ctx (spec : Types.t) (o : aop) : bool =
  Anactx.cached_verdict ctx `Seq spec o.base o.cur @@ fun () ->
  let noop = Types.operation "__noop" [] [] in
  let sg = Types.signature spec in
  let invs = relevant_invariants spec o.cur noop in
  let int_bounds = Types.int_bounds spec in
  invs = []
  || List.for_all
       (fun (u : Pairctx.unification) ->
         let dom = widen_domain_for spec invs [ o.cur ] u.dom in
         let gcs =
           List.map
             (fun (i : Types.invariant) ->
               Anactx.ground ctx ~sg ~consts:spec.consts ~dom i.iformula)
             invs
         in
         let w_base = Effects.ground_writes spec dom o.base u.binding1 in
         let w_cur = Effects.ground_writes spec dom o.cur u.binding1 in
         let enc = Encode.create ~int_bounds () in
         List.iter (Encode.assert_formula enc) gcs;
         List.iter
           (fun gc ->
             let t = Effects.apply_writes w_base gc in
             if t <> gc then Encode.assert_formula enc t)
           gcs;
         let viol =
           Ground.gor_l
             (List.filter_map
                (fun gc ->
                  let t = Effects.apply_writes w_cur gc in
                  if t = gc then None else Some (Ground.gnot t))
                gcs)
         in
         Encode.assert_formula enc viol;
         let result = Encode.solve enc in
         Anactx.record_solve ctx enc;
         Encode.release enc;
         match result with Unsat -> true | Sat -> false)
       (Pairctx.unifications spec o.cur noop)

(** Witness-guided candidate screening: does the stored counterexample
    [w] (found for the pair [(o1, o2)]) still violate the invariant when
    the candidate pair [(p1, p2)]'s writes are merged over its pre-state?

    Returns [None] when the candidate changes the analysis frame — the
    relevant clause set or the domain widening — in which case the cheap
    re-evaluation would not be conclusive.  Otherwise [Some true] is an
    {e exact} "still conflicting" verdict: candidates only extend [cur]
    effects, so the base weakest preconditions are unchanged and the
    witness pre-state stays admissible; a clause it satisfied that is
    false after the merged writes is necessarily part of the violation
    disjunction of the full check, which therefore also answers
    [Conflict].  Pruning on [Some true] loses no solutions. *)
let witness_refutes ?ctx (spec : Types.t) ((o1, o2) : aop * aop)
    ((p1, p2) : aop * aop) (w : witness) : bool option =
  let invs0 = relevant_invariants spec o1.cur o2.cur in
  let invs' = relevant_invariants spec p1.cur p2.cur in
  let frame_ok =
    invs' = invs0
    && List.sort compare (widen_sorts spec invs' [ p1.cur; p2.cur ])
       = List.sort compare (widen_sorts spec invs0 [ o1.cur; o2.cur ])
  in
  if not frame_ok then None
  else begin
    let dom = w.unif.dom in
    let sg = Types.signature spec in
    let gcs =
      List.map
        (fun (i : Types.invariant) ->
          Anactx.ground ctx ~sg ~consts:spec.consts ~dom i.iformula)
        invs0
    in
    let w1 = Effects.ground_writes spec dom p1.cur w.unif.binding1 in
    let w2 = Effects.ground_writes spec dom p2.cur w.unif.binding2 in
    let int_bounds = Types.int_bounds spec in
    (* the same defaults [check_case] used when extracting the witness *)
    let batom a = Option.value ~default:false (List.assoc_opt a w.pre_atoms) in
    let bnum n =
      match List.assoc_opt n w.pre_nums with
      | Some v -> v
      | None -> fst (int_bounds n)
    in
    let violating merged =
      let batom', bnum' = Effects.post_state ~batom ~bnum merged in
      List.exists
        (fun gc -> not (Ground.eval ~batom:batom' ~bnum:bnum' gc))
        gcs
    in
    Some (List.exists violating (Effects.merge_writes spec w1 w2))
  end

(** Find the first conflicting pair among the operations (paper:
    [findConflictingPair]).  Pairs are scanned in specification order,
    including each operation against itself. *)
let find_conflicting_pair (spec : Types.t) (ops : aop list) :
    (aop * aop * witness) option =
  let rec pairs = function
    | [] -> []
    | o :: rest -> List.map (fun o' -> (o, o')) (o :: rest) @ pairs rest
  in
  let rec go = function
    | [] -> None
    | (o1, o2) :: rest -> (
        match check_pair spec o1 o2 with
        | Conflict w -> Some (o1, o2, w)
        | Safe -> go rest)
  in
  go (pairs ops)
