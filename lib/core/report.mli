(** Human-readable analysis reports: Figure 2–style conflict diagrams,
    repair listings, the Table 1 matrix, full tool output. *)

open Ipa_spec

val pp_witness :
  op1:string -> op2:string -> Format.formatter -> Detect.witness -> unit

val pp_resolution : Format.formatter -> Ipa.resolution -> unit
val pp_report : Format.formatter -> Ipa.report -> unit

(** Solver/cache statistics of the run (tool [--stats] output). *)
val pp_stats : Format.formatter -> Ipa.report -> unit
val pp_table1 : Format.formatter -> Types.t list -> unit
val report_to_string : Ipa.report -> string
val witness_to_string : op1:string -> op2:string -> Detect.witness -> string
