(** Conflict detection (Algorithm 1's [isConflicting], extended with
    convergence rules): a pair conflicts if some I-valid pre-state,
    admissible for both operations, merges their concurrent effects into
    an I-invalid state.  Decided by the SAT backend over small-model
    domains. *)

open Ipa_logic
open Ipa_spec

(** An operation under analysis: [base] defines the precondition the
    application code checks (its original effects); [cur] carries the
    effects after IPA modifications. *)
type aop = { base : Types.operation; cur : Types.operation }

val aop_of : Types.operation -> aop

(** A Figure 2–style counterexample: valid initial state, the two
    operations' writes, the merged outcome, the violated invariants.
    (Defined in {!Oblig} so {!Anactx} can cache witnesses.) *)
type witness = Oblig.witness = {
  unif : Pairctx.unification;
  pre_atoms : (Ground.gatom * bool) list;
  pre_nums : (Ground.gnum * int) list;
  writes1 : Effects.writes;
  writes2 : Effects.writes;
  merged : Effects.writes;
  violated : string list;
}

type verdict = Safe | Conflict of witness

(** Invariants mentioning a predicate the pair writes — restricting to
    them is a sound over-approximation (never misses a conflict). *)
val relevant_invariants :
  Types.t -> Types.operation -> Types.operation -> Types.invariant list

(** Check one unification case.  [restrict_clauses] (default true)
    analyses only relevant clauses; [widen] (default true) enlarges
    domains to saturate cardinality bounds (disabling it is unsound for
    aggregation constraints — measured by the ablation benchmark).
    [ctx] supplies the grounding cache and solver instrumentation. *)
val check_case :
  ?restrict_clauses:bool ->
  ?widen:bool ->
  ?ctx:Anactx.t ->
  Types.t ->
  aop ->
  aop ->
  Pairctx.unification ->
  witness option

(** Does the pair conflict under any parameter unification?  With a
    decomposing [ctx] (and default [restrict_clauses]/[widen]) the
    verdict is assembled from per-clause obligations cached under their
    {!Oblig.key}s — bit-identical to the whole-invariant check, but an
    edit to the specification re-solves only the obligations whose keys
    it reaches. *)
val check_pair :
  ?restrict_clauses:bool ->
  ?widen:bool ->
  ?ctx:Anactx.t ->
  Types.t ->
  aop ->
  aop ->
  verdict

(** One per-clause proof obligation of a pair: one (parameter
    unification × relevant invariant clause) SAT query, enumerable
    without solver work and dischargeable independently of its
    siblings (e.g. on a worker domain). *)
type oblig = {
  ob_o1 : aop;
  ob_o2 : aop;
  ob_unif : Pairctx.unification;
  ob_invs : Types.invariant list;  (** relevant-clause frame *)
  ob_dom : Ground.domain;  (** widened case domain *)
  ob_key : Oblig.key;  (** content-addressed cache key *)
  ob_clause : int;  (** index of the violation target in [ob_invs] *)
}

(** Enumerate the pair's obligations under the default analysis frame
    (clause restriction and widening on); no solver work happens. *)
val obligations : Types.t -> aop -> aop -> oblig list

(** Discharge one obligation through the context's verdict cache:
    [true] means the pair's merged effects can falsify the clause. *)
val solve_obligation : ?ctx:Anactx.t -> Types.t -> oblig -> bool

(** All conflicting unification cases (reports). *)
val all_conflicts : Types.t -> aop -> aop -> witness list

(** Executing the (possibly modified) operation alone from any state
    admissible for its {e original} precondition preserves the
    invariant (Theorem 1's sequential half).  The verdict is memoized in
    [ctx] per (operation effects, canonical rules). *)
val sequentially_safe : ?ctx:Anactx.t -> Types.t -> aop -> bool

(** Witness-guided candidate screening: does the stored counterexample
    (found for the first pair) still violate the invariant under the
    candidate pair's merged writes, re-evaluated concretely over the
    witness pre-state?  [None] when the candidate changes the analysis
    frame (relevant clauses or domain widening) and the fast check is
    inconclusive; [Some true] is an exact "still conflicting" verdict —
    pruning on it loses no solutions. *)
val witness_refutes :
  ?ctx:Anactx.t -> Types.t -> aop * aop -> aop * aop -> witness -> bool option

(** First conflicting pair in specification order, self-pairs included
    (Algorithm 1's [findConflictingPair]). *)
val find_conflicting_pair :
  Types.t -> aop list -> (aop * aop * witness) option
