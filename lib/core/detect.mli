(** Conflict detection (Algorithm 1's [isConflicting], extended with
    convergence rules): a pair conflicts if some I-valid pre-state,
    admissible for both operations, merges their concurrent effects into
    an I-invalid state.  Decided by the SAT backend over small-model
    domains. *)

open Ipa_logic
open Ipa_spec

(** An operation under analysis: [base] defines the precondition the
    application code checks (its original effects); [cur] carries the
    effects after IPA modifications. *)
type aop = { base : Types.operation; cur : Types.operation }

val aop_of : Types.operation -> aop

(** A Figure 2–style counterexample: valid initial state, the two
    operations' writes, the merged outcome, the violated invariants. *)
type witness = {
  unif : Pairctx.unification;
  pre_atoms : (Ground.gatom * bool) list;
  pre_nums : (Ground.gnum * int) list;
  writes1 : Effects.writes;
  writes2 : Effects.writes;
  merged : Effects.writes;
  violated : string list;
}

type verdict = Safe | Conflict of witness

(** Invariants mentioning a predicate the pair writes — restricting to
    them is a sound over-approximation (never misses a conflict). *)
val relevant_invariants :
  Types.t -> Types.operation -> Types.operation -> Types.invariant list

(** Check one unification case.  [restrict_clauses] (default true)
    analyses only relevant clauses; [widen] (default true) enlarges
    domains to saturate cardinality bounds (disabling it is unsound for
    aggregation constraints — measured by the ablation benchmark).
    [ctx] supplies the grounding cache and solver instrumentation. *)
val check_case :
  ?restrict_clauses:bool ->
  ?widen:bool ->
  ?ctx:Anactx.t ->
  Types.t ->
  aop ->
  aop ->
  Pairctx.unification ->
  witness option

(** Does the pair conflict under any parameter unification? *)
val check_pair :
  ?restrict_clauses:bool ->
  ?widen:bool ->
  ?ctx:Anactx.t ->
  Types.t ->
  aop ->
  aop ->
  verdict

(** All conflicting unification cases (reports). *)
val all_conflicts : Types.t -> aop -> aop -> witness list

(** Executing the (possibly modified) operation alone from any state
    admissible for its {e original} precondition preserves the
    invariant (Theorem 1's sequential half).  The verdict is memoized in
    [ctx] per (operation effects, canonical rules). *)
val sequentially_safe : ?ctx:Anactx.t -> Types.t -> aop -> bool

(** Witness-guided candidate screening: does the stored counterexample
    (found for the first pair) still violate the invariant under the
    candidate pair's merged writes, re-evaluated concretely over the
    witness pre-state?  [None] when the candidate changes the analysis
    frame (relevant clauses or domain widening) and the fast check is
    inconclusive; [Some true] is an exact "still conflicting" verdict —
    pruning on it loses no solutions. *)
val witness_refutes :
  ?ctx:Anactx.t -> Types.t -> aop * aop -> aop * aop -> witness -> bool option

(** First conflicting pair in specification order, self-pairs included
    (Algorithm 1's [findConflictingPair]). *)
val find_conflicting_pair :
  Types.t -> aop list -> (aop * aop * witness) option
