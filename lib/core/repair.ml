(** Repair generation (functions [repairConflicts] and [generate] of
    Algorithm 1).

    For a conflicting pair, the algorithm collects the invariant clauses
    whose predicates the pair writes, instantiates their atoms against
    the operations' effects (unbound clause variables become wildcards —
    the [enrolled( *, t) := false] pattern of Figure 2c), and searches the
    powerset of candidate extra effects, smallest first, for additions
    that make the pair safe.  Each solution has the effects of one
    operation prevail over the other, mediated by the convergence rules. *)

open Ipa_logic
open Ipa_spec

(** Which operation of the pair a candidate modifies. *)
type target = Op1 | Op2

type solution = {
  s_target : target;
  s_op : string;  (** name of the modified operation *)
  s_added : Types.annotated_effect list;
  s_rules : (string * Types.conv_rule) list;
      (** convergence rules under which the solution is safe *)
  s_pair : Detect.aop * Detect.aop;  (** the repaired pair *)
}

let target_name (o1 : Detect.aop) (o2 : Detect.aop) = function
  | Op1 -> o1.Detect.cur.oname
  | Op2 -> o2.Detect.cur.oname

(* ------------------------------------------------------------------ *)
(* Candidate pools                                                     *)
(* ------------------------------------------------------------------ *)

(* boolean atoms (pred, args) of a clause body.  Predicates inside
   cardinalities contribute their argument patterns too: they can both
   anchor variable bindings (an effect on a counted predicate) and serve
   as candidate effects (e.g. keeping a disjunction like
   {v #assigned(k, * ) >= 1 or archived(k) v} true). *)
let clause_atoms (f : Ast.formula) : (string * Ast.term list) list =
  let rec strip = function
    | Ast.Forall (_, g) | Ast.Exists (_, g) -> strip g
    | g -> g
  in
  let body = strip f in
  let acc = ref [] in
  let rec go_n = function
    | Ast.Int _ | Ast.NConst _ | Ast.NFun _ -> ()
    | Ast.Card (p, args) -> acc := (p, args) :: !acc
    | Ast.NAdd (a, b) | Ast.NSub (a, b) ->
        go_n a;
        go_n b
  in
  let rec go = function
    | Ast.True | Ast.False | Ast.Eq _ -> ()
    | Ast.Atom (p, args) -> acc := (p, args) :: !acc
    | Ast.Cmp (_, a, b) ->
        go_n a;
        go_n b
    | Ast.Not g -> go g
    | Ast.And (a, b) | Ast.Or (a, b) | Ast.Implies (a, b) | Ast.Iff (a, b) ->
        go a;
        go b
    | Ast.Forall (_, g) | Ast.Exists (_, g) -> go g
  in
  go body;
  List.rev !acc

(* try to bind clause-atom argument terms against effect argument terms;
   clause variables bind to whatever the effect argument is *)
let match_args (cargs : Ast.term list) (eargs : Ast.term list) :
    (string * Ast.term) list option =
  let rec go binding = function
    | [], [] -> Some binding
    | c :: cs, e :: es -> (
        match c with
        | Ast.Var v -> (
            match List.assoc_opt v binding with
            | Some prev when prev <> e -> None
            | Some _ -> go binding (cs, es)
            | None -> go ((v, e) :: binding) (cs, es))
        | Ast.Const k -> (
            match e with
            | Ast.Const k' when k = k' -> go binding (cs, es)
            | _ -> None)
        | Ast.Star -> go binding (cs, es))
    | _ -> None
  in
  go [] (cargs, eargs)

let instantiate binding (args : Ast.term list) : Ast.term list =
  List.map
    (function
      | Ast.Var v -> (
          match List.assoc_opt v binding with Some t -> t | None -> Ast.Star)
      | t -> t)
    args

(** The candidate-effect pool for one operation: invariant-clause atoms
    instantiated through the operation's own effects (paper line 15,
    [invPreds]). *)
let pool_for (spec : Types.t) (clauses : Ast.formula list)
    (op : Types.operation) : (string * Ast.term list) list =
  let written =
    List.filter_map
      (fun (ae : Types.annotated_effect) ->
        match ae.eff.evalue with
        | Types.Set _ -> Some (ae.eff.epred, ae.eff.eargs)
        | Types.Delta _ -> None)
      op.oeffects
  in
  let candidates =
    List.concat_map
      (fun clause ->
        let atoms = clause_atoms clause in
        List.concat_map
          (fun (epred, eargs) ->
            List.concat_map
              (fun (cpred, cargs) ->
                if cpred <> epred || List.length cargs <> List.length eargs
                then []
                else
                  match match_args cargs eargs with
                  | None -> []
                  | Some binding ->
                      List.map
                        (fun (p, args) -> (p, instantiate binding args))
                        atoms)
              atoms)
          written)
      clauses
  in
  (* drop atoms the operation already writes, dedupe, keep stable order *)
  let seen = Hashtbl.create 16 in
  let pool =
    List.filter
      (fun (p, args) ->
        let key = (p, args) in
        if Hashtbl.mem seen key || List.mem key written then false
        else begin
          Hashtbl.add seen key ();
          (* only boolean predicates can receive Set effects *)
          match Types.find_pred spec p with
          | Some { pkind = Types.Bool; _ } -> true
          | _ -> false
        end)
      candidates
  in
  (* prefer specific atoms over wildcarded ones: candidates are tried in
     pool order, and an effect on exactly the operation's entities keeps
     semantics tighter than a wildcard (stable sort preserves clause
     order among equals) *)
  let stars (_, args) =
    List.length (List.filter (fun a -> a = Ast.Star) args)
  in
  List.stable_sort (fun a b -> compare (stars a) (stars b)) pool

(** Invariant clauses that mention a predicate written by either
    operation (paper: [invClauses]). *)
let relevant_clauses (spec : Types.t) (o1 : Types.operation)
    (o2 : Types.operation) : Ast.formula list =
  let written = Types.written_preds o1 @ Types.written_preds o2 in
  Ast.clauses (Types.invariant_formula spec)
  |> List.filter (fun c ->
         List.exists (fun p -> List.mem p written) (Ast.predicates c))

(* ------------------------------------------------------------------ *)
(* Candidate generation (paper: [generate])                            *)
(* ------------------------------------------------------------------ *)

type candidate = { c_target : target; c_added : Types.annotated_effect list }

(* subsets of a list with exactly k elements, lazily *)
let rec subsets_k k l : 'a list Seq.t =
  match l with
  | [] -> if k = 0 then Seq.return [] else Seq.empty
  | x :: rest ->
      if k = 0 then Seq.return []
      else
        Seq.append
          (Seq.map (fun s -> x :: s) (subsets_k (k - 1) rest))
          (fun () -> subsets_k k rest ())

(* all true/false value assignments over a chosen atom subset, lazily *)
let rec valuations : _ -> _ Seq.t = function
  | [] -> Seq.return []
  | (p, args) :: rest ->
      Seq.concat_map
        (fun t ->
          List.to_seq [ ((p, args), true) :: t; ((p, args), false) :: t ])
        (valuations rest)

(** Generate candidate modifications, ordered by increasing number of
    added effects (paper line 29); each candidate modifies exactly one
    operation of the pair (lines 27–28).  Added [:= true] effects use
    [Touch] mode so the runtime preserves entity payloads (§4.2.1).
    The sequence is lazy: the exponential powerset is only materialized
    as far as the consumer ([repair_conflicts], bounded by
    [max_candidates]) demands. *)
let generate ?(self_pair = false) ~(max_size : int)
    (pool1 : (string * Ast.term list) list)
    (pool2 : (string * Ast.term list) list) : candidate Seq.t =
  let mk target choice =
    {
      c_target = target;
      c_added =
        List.map
          (fun ((p, args), v) ->
            if v then Types.set_true ~mode:Types.Touch p args
            else Types.set_false p args)
          choice;
    }
  in
  let for_size k =
    let of_pool target pool =
      Seq.concat_map
        (fun subset -> Seq.map (mk target) (valuations subset))
        (subsets_k k pool)
    in
    (* on a self-pair the two targets are the same operation *)
    Seq.append (of_pool Op1 pool1)
      (if self_pair then Seq.empty else of_pool Op2 pool2)
  in
  Seq.concat_map for_size
    (Seq.init (min max_size (max (List.length pool1) (List.length pool2)))
       (fun i -> i + 1))

let apply_candidate ?(self_pair = false) (o1 : Detect.aop) (o2 : Detect.aop)
    (c : candidate) : Detect.aop * Detect.aop =
  let extend (o : Detect.aop) =
    {
      o with
      Detect.cur = { o.Detect.cur with oeffects = o.Detect.cur.oeffects @ c.c_added };
    }
  in
  if self_pair then (extend o1, extend o2)
  else
    match c.c_target with
    | Op1 -> (extend o1, o2)
    | Op2 -> (o1, extend o2)

(** A modification must preserve the operation's original semantics when
    no conflict occurs (§1): the modified operation's writes, grounded
    with all-distinct parameters, must still contain every base write
    with its original value.  This rejects degenerate candidates that
    mask the operation's own effects (e.g. adding [e( *, y) := false] to
    an operation whose purpose is to set [e(x, y) := true]). *)
let preserves_intent ?ctx (spec : Types.t) (o : Detect.aop) : bool =
  Anactx.cached_verdict ctx `Intent spec o.Detect.base o.Detect.cur
  @@ fun () ->
  let binding =
    List.map
      (fun (p : Ast.tvar) -> (p.vname, Fmt.str "%s_%s" p.vsort p.vname))
      o.Detect.cur.oparams
  in
  let dom =
    List.map
      (fun sort ->
        ( sort,
          List.filter_map
            (fun (p : Ast.tvar) ->
              if p.vsort = sort then Some (List.assoc p.vname binding)
              else None)
            o.Detect.cur.oparams
          @ [ sort ^ "_bg" ] ))
      spec.sorts
  in
  let wb = Effects.ground_writes spec dom o.Detect.base binding in
  let wc = Effects.ground_writes spec dom o.Detect.cur binding in
  List.for_all
    (fun (a, v) -> Effects.lookup_bool wc a = Some v)
    wb.Effects.bool_writes
  && List.for_all
       (fun (n, d) -> Effects.lookup_num wc n = Some d)
       wb.Effects.num_writes

(* ------------------------------------------------------------------ *)
(* Convergence-rule search                                             *)
(* ------------------------------------------------------------------ *)

(* Rule assignments to try: the specification's own rules first; when
   [search_rules] is set, also all add-wins/rem-wins assignments over the
   predicates that can have opposing writes in the candidate pair.
   Deduplicated by set-equality of the effective rule assignment: an
   enumerated assignment that coincides with [spec.rules] (e.g. the
   empty-predicate assignment) would otherwise be checked — and paid
   for — twice per candidate. *)
let rule_choices ~search_rules (spec : Types.t) (preds : string list) :
    (string * Types.conv_rule) list list =
  if not search_rules then [ spec.rules ]
  else
    let rec assigns = function
      | [] -> [ [] ]
      | p :: rest ->
          let tails = assigns rest in
          List.concat_map
            (fun t ->
              [ (p, Types.Add_wins) :: t; (p, Types.Rem_wins) :: t ])
            tails
    in
    let override rules =
      rules @ List.filter (fun (p, _) -> not (List.mem_assoc p rules)) spec.rules
    in
    let seen = Hashtbl.create 8 in
    List.filter
      (fun rules ->
        let key = Types.canonical_rules rules in
        if Hashtbl.mem seen key then false
        else begin
          Hashtbl.add seen key ();
          true
        end)
      (spec.rules :: List.map override (assigns preds))

(* ------------------------------------------------------------------ *)
(* Repair search (paper: [repairConflicts])                            *)
(* ------------------------------------------------------------------ *)

let is_subset_of added sol_added =
  List.for_all (fun e -> List.mem e added) sol_added

(** Search for minimal sets of extra effects that make the pair safe.

    Returns every minimal solution found (the caller — tool or policy —
    picks one, paper line 21).  When [search_rules] is set, solutions may
    override convergence rules; [s_rules] records the rules under which
    the solution was validated.

    [witness] — the counterexample that triggered the repair — enables
    witness-guided pruning when [ctx] has it switched on: a candidate
    (under a given rule choice) that does not even fix the stored
    counterexample is rejected by concrete re-evaluation
    ({!Detect.witness_refutes}) without touching the solver.  The
    search furthermore accumulates the counterexamples produced by
    failed candidates (CEGIS-style) and screens against all of them:
    every witness came from a pair sharing the same base operations, so
    the exactness argument applies to each one individually and the
    solution set is unchanged. *)
let repair_conflicts ?(max_size = 3) ?(max_candidates = 4000)
    ?(search_rules = false) ?(check_intent = true) ?(check_minimality = true)
    ?ctx ?witness (spec : Types.t) ((o1, o2) : Detect.aop * Detect.aop) :
    solution list =
  let clauses = relevant_clauses spec o1.Detect.cur o2.Detect.cur in
  let pool1 = pool_for spec clauses o1.Detect.cur in
  let pool2 = pool_for spec clauses o2.Detect.cur in
  let self_pair = o1.Detect.cur.oname = o2.Detect.cur.oname in
  let candidates =
    Seq.take max_candidates (generate ~self_pair ~max_size pool1 pool2)
  in
  let st = Option.map Anactx.stats ctx in
  let bump f = match st with Some s -> f s | None -> () in
  (* counterexample store: each witness is kept with the pair it was
     found for, since screening compares that pair's analysis frame with
     the candidate's (see {!Detect.witness_refutes}).  Bounded so
     screening stays cheap relative to a SAT call. *)
  let max_witnesses = 64 in
  let witnesses =
    ref (match witness with Some w -> [ ((o1, o2), w) ] | None -> [])
  in
  let n_witnesses = ref (List.length !witnesses) in
  let remember pair w =
    if !n_witnesses < max_witnesses then begin
      witnesses := (pair, w) :: !witnesses;
      incr n_witnesses
    end
  in
  let sols = ref [] in
  Seq.iter
    (fun cand ->
      bump (fun s -> s.Anactx.cands_generated <- s.Anactx.cands_generated + 1);
      (* minimality: skip candidates subsuming an existing solution on the
         same target (paper line 18) *)
      let subsumed =
        check_minimality
        && List.exists
             (fun s ->
               s.s_target = cand.c_target
               && is_subset_of cand.c_added s.s_added)
             !sols
      in
      if not subsumed then begin
        let p1, p2 = apply_candidate ~self_pair o1 o2 cand in
        if
          (not check_intent)
          || (preserves_intent ?ctx spec p1 && preserves_intent ?ctx spec p2)
        then begin
        (* predicates that may now have opposing writes *)
        let opposing =
          let w1 = Types.written_preds p1.Detect.cur
          and w2 = Types.written_preds p2.Detect.cur in
          List.filter (fun p -> List.mem p w2) w1
        in
        let rules_to_try = rule_choices ~search_rules spec opposing in
        let rec try_rules = function
          | [] -> ()
          | rules :: rest ->
              let spec' = { spec with rules } in
              (* witness screening before the full SAT check: reject the
                 candidate if any stored counterexample provably still
                 applies to it *)
              let pruned =
                Anactx.prune_enabled ctx
                && List.exists
                     (fun (pair, w) ->
                       Detect.witness_refutes ?ctx spec' pair (p1, p2) w
                       = Some true)
                     !witnesses
              in
              if pruned then begin
                bump (fun s ->
                    s.Anactx.cands_pruned <- s.Anactx.cands_pruned + 1);
                try_rules rest
              end
              else begin
                bump (fun s ->
                    s.Anactx.cands_checked <- s.Anactx.cands_checked + 1);
                if
                  Detect.sequentially_safe ?ctx spec' p1
                  && Detect.sequentially_safe ?ctx spec' p2
                then
                  match Detect.check_pair ?ctx spec' p1 p2 with
                  | Detect.Safe ->
                      sols :=
                        {
                          s_target = cand.c_target;
                          s_op = target_name o1 o2 cand.c_target;
                          s_added = cand.c_added;
                          s_rules = rules;
                          s_pair = (p1, p2);
                        }
                        :: !sols
                  | Detect.Conflict w' ->
                      remember (p1, p2) w';
                      try_rules rest
                else try_rules rest
              end
        in
        try_rules rules_to_try
        end
      end)
    candidates;
  List.rev !sols

(* ------------------------------------------------------------------ *)
(* Resolution policies (paper: [pickResolution])                       *)
(* ------------------------------------------------------------------ *)

type policy =
  | Fewest_effects  (** smallest modification wins *)
  | Prefer_op of string  (** prefer solutions whose effects let [op] win *)
  | Choose of (solution list -> solution option)  (** interactive *)

let solution_size s = List.length s.s_added

let pick (policy : policy) (sols : solution list) : solution option =
  match sols with
  | [] -> None
  | _ -> (
      match policy with
      | Fewest_effects ->
          Some
            (List.fold_left
               (fun best s ->
                 if solution_size s < solution_size best then s else best)
               (List.hd sols) (List.tl sols))
      | Prefer_op name -> (
          (* the op whose effects prevail is the one we modified to
             reinforce its own effects *)
          match List.find_opt (fun s -> s.s_op = name) sols with
          | Some s -> Some s
          | None -> Some (List.hd sols))
      | Choose f -> f sols)

let pp_solution ppf (s : solution) =
  Fmt.pf ppf "@[<v 2>modify %s, adding:@,%a@]@,under rules: %a" s.s_op
    Fmt.(list ~sep:cut Types.pp_annotated_effect)
    s.s_added
    Fmt.(
      list ~sep:(any ", ") (fun ppf (p, r) ->
          pf ppf "%s:%s" p (Types.conv_rule_to_string r)))
    s.s_rules
