(** The IPA main loop (Algorithm 1): find a conflicting pair, repair it
    (or synthesize compensations, or flag it for coordination), repeat
    until no unhandled conflicts remain. *)

open Ipa_spec

type resolution = {
  r_op1 : string;
  r_op2 : string;
  r_witness : Detect.witness;
  r_outcome : outcome_kind;
}

and outcome_kind =
  | Repaired of Repair.solution
  | Compensated of Compensation.t list
  | Flagged  (** unsolvable: requires coordination (§3, step 3) *)

type report = {
  spec : Types.t;
  final_ops : Detect.aop list;
  final_rules : (string * Types.conv_rule) list;
  resolutions : resolution list;
  iterations : int;
  stats : Anactx.stats;  (** solver/cache statistics of the run *)
}

(** The patched specification: modified operations + final rules. *)
val patched_spec : report -> Types.t

val flagged_pairs : report -> (string * string) list
val compensations : report -> Compensation.t list

(** Run the analysis.  [policy] picks among repair solutions;
    [search_rules] lets repairs propose convergence rules;
    [max_iterations] bounds the loop.  [ctx] supplies the analysis
    caches and instrumentation (a fresh one with caching and pruning
    enabled is created when absent). *)
val run :
  ?policy:Repair.policy ->
  ?search_rules:bool ->
  ?max_size:int ->
  ?max_iterations:int ->
  ?ctx:Anactx.t ->
  Types.t ->
  report

(** All conflicting pairs of the unmodified specification. *)
val diagnose : Types.t -> (string * string * Detect.witness) list
