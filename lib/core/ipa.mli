(** The IPA main loop (Algorithm 1): find a conflicting pair, repair it
    (or synthesize compensations, or flag it for coordination), repeat
    until no unhandled conflicts remain. *)

open Ipa_spec

type resolution = {
  r_op1 : string;
  r_op2 : string;
  r_witness : Detect.witness;
  r_outcome : outcome_kind;
}

and outcome_kind =
  | Repaired of Repair.solution
  | Compensated of Compensation.t list
  | Flagged  (** unsolvable: requires coordination (§3, step 3) *)

type report = {
  spec : Types.t;
  final_ops : Detect.aop list;
  final_rules : (string * Types.conv_rule) list;
  resolutions : resolution list;
  iterations : int;
  stats : Anactx.stats;  (** solver/cache statistics of the run *)
}

(** The patched specification: modified operations + final rules. *)
val patched_spec : report -> Types.t

val flagged_pairs : report -> (string * string) list
val compensations : report -> Compensation.t list

(** Run the analysis.  [policy] picks among repair solutions;
    [search_rules] lets repairs propose convergence rules;
    [max_iterations] bounds the loop.  [ctx] supplies the analysis
    caches and instrumentation (a fresh one with caching and pruning
    enabled is created when absent).

    [jobs] (default: the [IPA_JOBS] environment override, else 1)
    spreads each iteration's pair checks over a domain pool: every
    worker gets its own fresh context (per-domain caches), the first
    conflict {e in specification pair order} is selected, and worker
    counters are folded back into [ctx] — so the report's resolutions,
    operations, rules and iteration count are bit-identical at every
    [jobs] level, while wall time scales with cores. *)
val run :
  ?policy:Repair.policy ->
  ?search_rules:bool ->
  ?max_size:int ->
  ?max_iterations:int ->
  ?ctx:Anactx.t ->
  ?jobs:int ->
  Types.t ->
  report

(** All conflicting pairs of the unmodified specification.  [jobs] as
    in {!run}; the conflict list is in pair order at every level. *)
val diagnose : ?jobs:int -> Types.t -> (string * string * Detect.witness) list
