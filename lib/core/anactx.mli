(** Shared analysis context threaded through {!Detect}, {!Repair} and
    {!Ipa}: a grounding cache, verdict caches, the witness-pruning
    switch, and aggregated solver/cache statistics.

    All helpers accept the context as an [option] so call sites can pass
    an optional parameter straight through; a [None] context makes every
    helper a transparent no-op around the underlying computation.

    A context may be reused across runs (counters accumulate) but must
    not be shared between different specifications: the grounding cache
    assumes signature and constants are fixed. *)

open Ipa_logic
open Ipa_spec

type stats = {
  mutable sat_calls : int;  (** [Encode.solve] invocations *)
  mutable sat_conflicts : int;
  mutable sat_decisions : int;
  mutable sat_propagations : int;
  mutable sat_learnts : int;  (** learnt clauses created *)
  mutable sat_removed : int;  (** learnt clauses deleted by DB reduction *)
  mutable ground_hits : int;
  mutable ground_misses : int;
  mutable verdict_hits : int;
  mutable verdict_misses : int;
  mutable cands_generated : int;  (** repair candidates consumed *)
  mutable cands_pruned : int;  (** (candidate, rules) checks skipped *)
  mutable cands_checked : int;  (** (candidate, rules) full SAT checks *)
  mutable pairs_checked : int;  (** [Detect.check_pair] invocations *)
  pair_seconds : (string * string, float) Hashtbl.t;
  mutable total_seconds : float;
}

type t

(** [create ()] — caching and witness pruning both default to on. *)
val create : ?cache:bool -> ?prune:bool -> unit -> t

(** [fresh ~like] — a context with [like]'s cache/prune switches but
    empty caches and zeroed counters.  The parallel analysis gives each
    worker domain its own fresh context (the hashtables are not
    domain-safe and must never be shared) and folds the counters back
    with {!merge_stats}. *)
val fresh : like:t -> t

(** An immutable snapshot of a context's caches, safe to read from many
    domains at once precisely because nobody writes it. *)
type ro

(** Snapshot [t]'s caches.  The copies belong to the snapshot alone:
    [t] may keep mutating its live tables afterwards. *)
val freeze : t -> ro

(** [share t ro] points [t]'s cache-miss path at the snapshot: lookups
    consult [t]'s private tables first, then [ro]; insertions go to the
    private tables only.  Workers of a parallel scan each {!share} one
    {!freeze} of the parent context, so siblings reuse everything the
    parent has already paid for without any cross-domain mutation. *)
val share : t -> ro -> unit

(** [absorb ~into child] moves [child]'s cache entries (added when
    absent) and counters into [into], leaving [child] with empty tables,
    zeroed counters and no shared snapshot.  Run after each parallel
    scan so the next {!freeze} carries every worker's discoveries;
    zeroing keeps a later {!merge_stats} of the same child from
    double-counting. *)
val absorb : into:t -> t -> unit

(** [merge_stats ~into child] adds [child]'s counters (and per-pair
    wall times) into [into]'s statistics.  Summing the per-domain
    contexts of a parallel run over a partition of the work yields the
    same counter totals as one context that saw all of it. *)
val merge_stats : into:t -> t -> unit

val stats : t -> stats
val prune_enabled : t option -> bool

(** Memoizing wrapper around {!Ground.ground}, keyed by
    (formula, domain). *)
val ground :
  t option ->
  sg:Ground.signature ->
  consts:(string * int) list ->
  dom:Ground.domain ->
  Ast.formula ->
  Ground.gformula

(** Memoize a per-operation verdict ([`Seq] = sequential safety,
    [`Intent] = intent preservation) keyed by the operation's base and
    current effects plus the canonical convergence rules. *)
val cached_verdict :
  t option ->
  [ `Seq | `Intent ] ->
  Types.t ->
  Types.operation ->
  Types.operation ->
  (unit -> bool) ->
  bool

(** Record one [Encode.solve] call: harvest the (fresh, single-use)
    solver's counters into the aggregate. *)
val record_solve : t option -> Ipa_solver.Encode.ctx -> unit

(** Time a computation, attributing elapsed wall time to the pair. *)
val time : t option -> string * string -> (unit -> 'a) -> 'a

val ground_hit_rate : stats -> float
val verdict_hit_rate : stats -> float

(** Fraction of (candidate, rules) checks answered by the witness
    instead of the solver. *)
val prune_rate : stats -> float

(** Per-pair accumulated wall time, slowest first. *)
val pair_times : stats -> ((string * string) * float) list

val pp_stats : Format.formatter -> stats -> unit
val pp_pair_times : Format.formatter -> stats -> unit
