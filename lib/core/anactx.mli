(** Shared analysis context threaded through {!Detect}, {!Repair} and
    {!Ipa}: a grounding cache, verdict caches, the witness-pruning
    switch, and aggregated solver/cache statistics.

    All helpers accept the context as an [option] so call sites can pass
    an optional parameter straight through; a [None] context makes every
    helper a transparent no-op around the underlying computation.

    A context may be reused across runs (counters accumulate) but must
    not be shared between different specifications: the grounding cache
    assumes signature and constants are fixed. *)

open Ipa_logic
open Ipa_spec

type stats = {
  mutable sat_calls : int;  (** [Encode.solve] invocations *)
  mutable sat_conflicts : int;
  mutable sat_decisions : int;
  mutable sat_propagations : int;
  mutable sat_learnts : int;  (** learnt clauses created *)
  mutable sat_removed : int;  (** learnt clauses deleted by DB reduction *)
  mutable ground_hits : int;
  mutable ground_misses : int;
  mutable verdict_hits : int;
  mutable verdict_misses : int;
  mutable cands_generated : int;  (** repair candidates consumed *)
  mutable cands_pruned : int;  (** (candidate, rules) checks skipped *)
  mutable cands_checked : int;  (** (candidate, rules) full SAT checks *)
  mutable pairs_checked : int;  (** [Detect.check_pair] invocations *)
  mutable oblig_hits : int;  (** clause obligations answered from cache *)
  mutable oblig_misses : int;  (** clause obligations discharged by SAT *)
  mutable case_hits : int;  (** witness extractions answered from cache *)
  mutable case_misses : int;  (** witness extractions solved *)
  pair_seconds : (string * string, float) Hashtbl.t;
  mutable total_seconds : float;
}

type t

(** [create ()] — caching, witness pruning and per-clause decomposition
    all default to on.  [decompose:false] reproduces the whole-invariant
    pair check (one SAT query over the violation disjunction) for
    ablations; the decomposed mode is exact, so reports are identical
    either way. *)
val create : ?cache:bool -> ?prune:bool -> ?decompose:bool -> unit -> t

(** [fresh ~like] — a context with [like]'s cache/prune switches but
    empty caches and zeroed counters.  The parallel analysis gives each
    worker domain its own fresh context (the hashtables are not
    domain-safe and must never be shared) and folds the counters back
    with {!merge_stats}. *)
val fresh : like:t -> t

(** An immutable snapshot of a context's caches, safe to read from many
    domains at once precisely because nobody writes it. *)
type ro

(** Snapshot [t]'s caches.  The copies belong to the snapshot alone:
    [t] may keep mutating its live tables afterwards. *)
val freeze : t -> ro

(** [share t ro] points [t]'s cache-miss path at the snapshot: lookups
    consult [t]'s private tables first, then [ro]; insertions go to the
    private tables only.  Workers of a parallel scan each {!share} one
    {!freeze} of the parent context, so siblings reuse everything the
    parent has already paid for without any cross-domain mutation. *)
val share : t -> ro -> unit

(** [absorb ~into child] moves [child]'s cache entries (added when
    absent) and counters into [into], leaving [child] with empty tables,
    zeroed counters and no shared snapshot.  Run after each parallel
    scan so the next {!freeze} carries every worker's discoveries;
    zeroing keeps a later {!merge_stats} of the same child from
    double-counting. *)
val absorb : into:t -> t -> unit

(** [merge_stats ~into child] adds [child]'s counters (and per-pair
    wall times) into [into]'s statistics.  Summing the per-domain
    contexts of a parallel run over a partition of the work yields the
    same counter totals as one context that saw all of it. *)
val merge_stats : into:t -> t -> unit

val stats : t -> stats
val prune_enabled : t option -> bool

(** Is per-clause obligation decomposition on?  [false] for a missing
    context: without a cache to carry verdicts the decomposition only
    multiplies solver calls. *)
val decompose_enabled : t option -> bool

(** Memoizing wrapper around {!Ground.ground}, keyed by
    (formula, domain). *)
val ground :
  t option ->
  sg:Ground.signature ->
  consts:(string * int) list ->
  dom:Ground.domain ->
  Ast.formula ->
  Ground.gformula

(** Memoize a per-operation verdict ([`Seq] = sequential safety,
    [`Intent] = intent preservation) keyed by the operation's base and
    current effects plus the canonical convergence rules. *)
val cached_verdict :
  t option ->
  [ `Seq | `Intent ] ->
  Types.t ->
  Types.operation ->
  Types.operation ->
  (unit -> bool) ->
  bool

(** Memoize a per-clause obligation verdict ([true] = the clause can be
    violated by the pair's merged effects) under its dependency key.
    Keys are content-addressed ({!Oblig.key}), so entries survive
    specification edits and invalidate implicitly: an edited operation
    or clause changes the keys it reaches and leaves the rest hitting. *)
val oblig_lookup : t option -> Oblig.key -> (unit -> bool) -> bool

(** Seed an obligation verdict computed elsewhere (a parallel worker)
    without touching the hit/miss counters. *)
val oblig_put : t option -> Oblig.key -> bool -> unit

(** Is this obligation's verdict already cached?  Pure query — no
    counters move. *)
val oblig_cached : t option -> Oblig.key -> bool

(** Memoize a whole-case witness extraction (key's [k_clause] = -1).
    The stored value is the exact result of the deterministic solver
    query, keeping replayed reports bit-identical. *)
val case_lookup :
  t option -> Oblig.key -> (unit -> Oblig.witness option) ->
  Oblig.witness option

(** Record one [Encode.solve] call: harvest the (fresh, single-use)
    solver's counters into the aggregate. *)
val record_solve : t option -> Ipa_solver.Encode.ctx -> unit

(** Time a computation, attributing elapsed wall time to the pair. *)
val time : t option -> string * string -> (unit -> 'a) -> 'a

val ground_hit_rate : stats -> float
val verdict_hit_rate : stats -> float
val oblig_hit_rate : stats -> float
val case_hit_rate : stats -> float

(** Fraction of (candidate, rules) checks answered by the witness
    instead of the solver. *)
val prune_rate : stats -> float

(** Fraction of obligations and witness extractions answered without
    solver work — the figure of merit of an incremental re-analysis.
    All rates are guarded: a zero-solve (cache-only or empty) run
    reports 0, never nan. *)
val reuse_rate : stats -> float

(** Per-pair accumulated wall time, slowest first. *)
val pair_times : stats -> ((string * string) * float) list

val pp_stats : Format.formatter -> stats -> unit
val pp_pair_times : Format.formatter -> stats -> unit
