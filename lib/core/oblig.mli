(** Per-clause proof obligations: the counterexample witness type and
    the content-addressed dependency keys under which {!Anactx} caches
    obligation verdicts and witnesses across specification edits.

    An obligation is one (parameter unification × relevant invariant
    clause) SAT query of a pair check; the decomposition is exact (the
    pair conflicts iff some obligation is satisfiable).  Keys embed
    every input the verdict depends on — operation effects, bindings,
    domain, clause frame, restricted rules, constants — so an edited
    operation or clause changes exactly the keys it reaches, and
    re-analysis of everything else is pure cache hits. *)

open Ipa_logic
open Ipa_spec

(** A Figure 2–style counterexample (re-exported by {!Detect}). *)
type witness = {
  unif : Pairctx.unification;
  pre_atoms : (Ground.gatom * bool) list;
  pre_nums : (Ground.gnum * int) list;
  writes1 : Effects.writes;
  writes2 : Effects.writes;
  merged : Effects.writes;
  violated : string list;
}

(** Dependency key: structural equality implies identical verdicts
    (given a fixed sort/predicate signature, which resets the context
    when it changes). *)
type key = {
  k_base1 : Types.annotated_effect list;
  k_cur1 : Types.annotated_effect list;
  k_base2 : Types.annotated_effect list;
  k_cur2 : Types.annotated_effect list;
  k_binding1 : (string * string) list;
  k_binding2 : (string * string) list;
  k_dom : Ground.domain;
  k_frame : (string * Ast.formula) list;
  k_rules : (string * Types.conv_rule) list;
  k_consts : (string * int) list;
  k_clause : int;  (** frame index of the violation target; -1 = case *)
}

(** The key of one unification case ([k_clause = -1]). *)
val case_key :
  Types.t ->
  base1:Types.operation ->
  cur1:Types.operation ->
  base2:Types.operation ->
  cur2:Types.operation ->
  binding1:(string * string) list ->
  binding2:(string * string) list ->
  dom:Ground.domain ->
  frame:Types.invariant list ->
  key

(** Refocus a case key on one clause obligation. *)
val with_clause : key -> int -> key

(** Number of clause obligations a case key spans. *)
val n_clauses : key -> int
