(** Tests for [ipa_apps]: the Tournament, Twitter, Ticket and TPC
    applications — both variants of each, exercising the conflict
    scenarios the paper discusses and checking that the IPA variants
    preserve the invariants where the Causal ones do not. *)

open Ipa_crdt
open Ipa_store
open Ipa_apps

let three () =
  Cluster.create
    [ ("dc-east", "us-east"); ("dc-west", "us-west"); ("dc-eu", "eu-west") ]

(* run an op at a replica and broadcast its batch *)
let run_sync cluster rep (op : Ipa_runtime.Config.op_exec) :
    Ipa_runtime.Config.outcome =
  let o = op.Ipa_runtime.Config.run rep in
  (match o.Ipa_runtime.Config.batch with
  | Some b -> Cluster.broadcast_now cluster b
  | None -> ());
  o

(* run two ops concurrently (neither sees the other), then deliver both *)
let run_concurrent cluster rep1 op1 rep2 op2 =
  let o1 = op1.Ipa_runtime.Config.run rep1 in
  let o2 = op2.Ipa_runtime.Config.run rep2 in
  (match o1.Ipa_runtime.Config.batch with
  | Some b -> Cluster.broadcast_now cluster b
  | None -> ());
  (match o2.Ipa_runtime.Config.batch with
  | Some b -> Cluster.broadcast_now cluster b
  | None -> ());
  (o1, o2)

(* ------------------------------------------------------------------ *)
(* Tournament                                                          *)
(* ------------------------------------------------------------------ *)

let setup_tournament variant =
  let cluster = three () in
  let app = Tournament.create variant in
  let east = Cluster.replica cluster "dc-east" in
  let west = Cluster.replica cluster "dc-west" in
  let _ = run_sync cluster east (Tournament.add_player app "alice") in
  let _ = run_sync cluster east (Tournament.add_player app "bob") in
  let _ = run_sync cluster east (Tournament.add_tourn app "cup") in
  (cluster, app, east, west)

let test_tournament_figure2_causal () =
  let cluster, app, east, west = setup_tournament Tournament.Causal in
  let _ =
    run_concurrent cluster east
      (Tournament.enroll app "alice" "cup")
      west
      (Tournament.rem_tourn app "cup")
  in
  (* dangling enrollment: alice enrolled in a removed tournament *)
  Alcotest.(check bool) "causal violates" true
    (Tournament.count_violations app east > 0)

let test_tournament_figure2_ipa () =
  let cluster, app, east, west = setup_tournament Tournament.Ipa in
  let _ =
    run_concurrent cluster east
      (Tournament.enroll app "alice" "cup")
      west
      (Tournament.rem_tourn app "cup")
  in
  (* the touch on the tournament index restores it: no violation *)
  Alcotest.(check int) "ipa preserves" 0 (Tournament.count_violations app east);
  (match Replica.peek east "tournaments" with
  | Some o ->
      Alcotest.(check bool) "tournament restored" true
        (Awset.mem "cup" (Obj.as_awset o))
  | None -> Alcotest.fail "tournaments object missing")

let test_tournament_rem_player_ipa () =
  let cluster, app, east, west = setup_tournament Tournament.Ipa in
  let _ =
    run_concurrent cluster east
      (Tournament.enroll app "alice" "cup")
      west
      (Tournament.rem_player app "alice")
  in
  Alcotest.(check int) "player restored by touch" 0
    (Tournament.count_violations app east)

let test_tournament_capacity_compensation () =
  let cluster = three () in
  let app = Tournament.create ~capacity:2 Tournament.Ipa in
  let east = Cluster.replica cluster "dc-east" in
  let west = Cluster.replica cluster "dc-west" in
  List.iter
    (fun p -> ignore (run_sync cluster east (Tournament.add_player app p)))
    [ "p1"; "p2"; "p3"; "p4" ];
  let _ = run_sync cluster east (Tournament.add_tourn app "cup") in
  (* both replicas concurrently fill the last seats: capacity 2 exceeded *)
  let _ = run_sync cluster east (Tournament.enroll app "p1" "cup") in
  let _ =
    run_concurrent cluster east
      (Tournament.enroll app "p2" "cup")
      west
      (Tournament.enroll app "p3" "cup")
  in
  (* over capacity in the raw state *)
  (match Replica.peek east "enrolled:cup" with
  | Some (Obj.O_compset c) ->
      Alcotest.(check bool) "raw over capacity" true (Compset.size c > 2)
  | _ -> Alcotest.fail "expected compset");
  (* a status read triggers the compensation *)
  let _ = run_sync cluster east (Tournament.status app "cup") in
  (match Replica.peek east "enrolled:cup" with
  | Some (Obj.O_compset c) ->
      Alcotest.(check int) "compensated to capacity" 2 (Compset.size c)
  | _ -> Alcotest.fail "expected compset");
  Alcotest.(check int) "no violations after compensation" 0
    (Tournament.count_violations app east)

let test_tournament_do_match_requires_enrollment () =
  let cluster, app, east, _ = setup_tournament Tournament.Ipa in
  let _ = run_sync cluster east (Tournament.enroll app "alice" "cup") in
  let _ = run_sync cluster east (Tournament.enroll app "bob" "cup") in
  (* tournament not started: precondition fails *)
  let o = run_sync cluster east (Tournament.do_match app "alice" "bob" "cup") in
  Alcotest.(check bool) "aborted before begin" true
    (o.Ipa_runtime.Config.batch = None);
  let _ = run_sync cluster east (Tournament.begin_tourn app "cup") in
  let o2 = run_sync cluster east (Tournament.do_match app "alice" "bob" "cup") in
  Alcotest.(check bool) "succeeds when active" true
    (o2.Ipa_runtime.Config.batch <> None);
  Alcotest.(check int) "no violations" 0 (Tournament.count_violations app east)

let test_tournament_disenroll_vs_match_ipa () =
  let cluster, app, east, west = setup_tournament Tournament.Ipa in
  let _ = run_sync cluster east (Tournament.enroll app "alice" "cup") in
  let _ = run_sync cluster east (Tournament.enroll app "bob" "cup") in
  let _ = run_sync cluster east (Tournament.begin_tourn app "cup") in
  let _ =
    run_concurrent cluster east
      (Tournament.do_match app "alice" "bob" "cup")
      west
      (Tournament.disenroll app "alice" "cup")
  in
  (* the match's enrolled-touch wins over the concurrent disenroll *)
  Alcotest.(check int) "ipa keeps match valid" 0
    (Tournament.count_violations app east)

let test_tournament_workload_smoke () =
  (* run a few hundred random ops; the IPA variant stays invariant-clean
     after convergence *)
  let cluster = three () in
  let app = Tournament.create Tournament.Ipa in
  let wp = Tournament.default_params in
  Tournament.seed_data app wp cluster;
  let rng = Ipa_sim.Rng.create 99 in
  let ids = [ "dc-east"; "dc-west"; "dc-eu" ] in
  for _ = 1 to 300 do
    let rep = Cluster.replica cluster (Ipa_sim.Rng.choose rng ids) in
    let op = Tournament.next_op app wp rng ~region:rep.Replica.region in
    ignore (run_sync cluster rep op)
  done;
  (* reads trigger remaining capacity compensations *)
  for i = 0 to wp.Tournament.n_tournaments - 1 do
    let east = Cluster.replica cluster "dc-east" in
    ignore (run_sync cluster east (Tournament.status app (Fmt.str "t%d" i)))
  done;
  let east = Cluster.replica cluster "dc-east" in
  Alcotest.(check int) "ipa workload clean" 0
    (Tournament.count_violations app east)

let test_tournament_chaos_delivery () =
  (* batches collected during a burst of concurrent activity and
     delivered in a random order (causal buffering reorders them):
     the IPA variant still converges to an invariant-clean state *)
  let cluster = three () in
  let app = Tournament.create Tournament.Ipa in
  let wp = Tournament.default_params in
  Tournament.seed_data app wp cluster;
  let rng = Ipa_sim.Rng.create 7 in
  let ids = [ "dc-east"; "dc-west"; "dc-eu" ] in
  let batches = ref [] in
  for _ = 1 to 200 do
    let rep = Cluster.replica cluster (Ipa_sim.Rng.choose rng ids) in
    let op = Tournament.next_op app wp rng ~region:rep.Replica.region in
    match (op.Ipa_runtime.Config.run rep).Ipa_runtime.Config.batch with
    | Some b -> batches := b :: !batches
    | None -> ()
  done;
  (* deliver every batch to every other replica in a shuffled order *)
  let deliveries =
    List.concat_map
      (fun (b : Replica.batch) ->
        List.filter_map
          (fun id ->
            if id = b.Replica.b_origin then None
            else Some (id, b))
          ids)
      !batches
  in
  let arr = Array.of_list deliveries in
  for i = Array.length arr - 1 downto 1 do
    let j = Ipa_sim.Rng.int rng (i + 1) in
    let tmp = arr.(i) in
    arr.(i) <- arr.(j);
    arr.(j) <- tmp
  done;
  Array.iter (fun (id, b) -> Replica.receive (Cluster.replica cluster id) b) arr;
  Alcotest.(check bool) "cluster quiescent" true (Cluster.quiescent cluster);
  (* status reads trigger the remaining compensations everywhere *)
  for i = 0 to wp.Tournament.n_tournaments - 1 do
    List.iter
      (fun id ->
        let rep = Cluster.replica cluster id in
        ignore (run_sync cluster rep (Tournament.status app (Fmt.str "t%d" i))))
      ids
  done;
  List.iter
    (fun id ->
      let rep = Cluster.replica cluster id in
      Alcotest.(check int)
        (id ^ " invariant-clean")
        0
        (Tournament.count_violations app rep))
    ids

(* ------------------------------------------------------------------ *)
(* Ticket                                                              *)
(* ------------------------------------------------------------------ *)

let setup_ticket variant stock =
  let cluster = three () in
  let app = Ticket.create ~initial_stock:stock variant in
  Ticket.seed_data app
    { Ticket.n_events = 1; buy_ratio = 0.0; restock_ratio = 0.0; restock_amount = 0 }
    cluster;
  (cluster, app)

let test_ticket_oversell_causal () =
  let cluster, app = setup_ticket Ticket.Causal 1 in
  let east = Cluster.replica cluster "dc-east" in
  let west = Cluster.replica cluster "dc-west" in
  let _ =
    run_concurrent cluster east (Ticket.buy_ticket app "e0") west
      (Ticket.buy_ticket app "e0")
  in
  Alcotest.(check int) "oversold by one" 1
    (Ticket.oversell_depth app east [ "e0" ]);
  Alcotest.(check int) "violated event count" 1
    (Ticket.count_violations app east [ "e0" ])

let test_ticket_oversell_ipa_repaired () =
  let cluster, app = setup_ticket Ticket.Ipa 1 in
  let east = Cluster.replica cluster "dc-east" in
  let west = Cluster.replica cluster "dc-west" in
  let _ =
    run_concurrent cluster east (Ticket.buy_ticket app "e0") west
      (Ticket.buy_ticket app "e0")
  in
  (* before any read, the raw (uncompensated) state is oversold *)
  (match Replica.peek east "avail:e0" with
  | Some (Obj.O_compcounter c) ->
      Alcotest.(check int) "raw value oversold" (-1) (Compcounter.value c)
  | _ -> Alcotest.fail "expected compcounter");
  let o = run_sync cluster east (Ticket.read_event app "e0") in
  Alcotest.(check int) "read repaired one unit" 1
    o.Ipa_runtime.Config.violations;
  Alcotest.(check int) "state repaired everywhere" 0
    (Ticket.oversell_depth app east [ "e0" ]);
  let eu = Cluster.replica cluster "dc-eu" in
  Alcotest.(check int) "remote replica repaired" 0
    (Ticket.oversell_depth app eu [ "e0" ])

let test_ticket_sold_out_aborts () =
  let cluster, app = setup_ticket Ticket.Causal 0 in
  let east = Cluster.replica cluster "dc-east" in
  let o = run_sync cluster east (Ticket.buy_ticket app "e0") in
  Alcotest.(check bool) "no effect when sold out" true
    (o.Ipa_runtime.Config.batch = None)

let test_ticket_concurrent_repairs_idempotent () =
  (* two replicas observe and repair the same deficit: the max-register
     correction must not over-compensate *)
  let cluster, app = setup_ticket Ticket.Ipa 1 in
  let east = Cluster.replica cluster "dc-east" in
  let west = Cluster.replica cluster "dc-west" in
  let _ =
    run_concurrent cluster east (Ticket.buy_ticket app "e0") west
      (Ticket.buy_ticket app "e0")
  in
  (* both coasts read (and repair) concurrently *)
  let r1 = (Ticket.read_event app "e0").Ipa_runtime.Config.run east in
  let r2 = (Ticket.read_event app "e0").Ipa_runtime.Config.run west in
  (match r1.Ipa_runtime.Config.batch with
  | Some b -> Cluster.broadcast_now cluster b
  | None -> ());
  (match r2.Ipa_runtime.Config.batch with
  | Some b -> Cluster.broadcast_now cluster b
  | None -> ());
  let v =
    match Replica.peek east "avail:e0" with
    | Some (Obj.O_compcounter c) -> Compcounter.value c
    | _ -> -99
  in
  Alcotest.(check int) "exactly repaired, not over-compensated" 0 v

let test_ticket_escrow_never_oversells () =
  let cluster, app = setup_ticket Ticket.Escrow 3 in
  let east = Cluster.replica cluster "dc-east" in
  let west = Cluster.replica cluster "dc-west" in
  (* hammer both coasts well past the stock *)
  for _ = 1 to 5 do
    let _ =
      run_concurrent cluster east (Ticket.buy_ticket app "e0") west
        (Ticket.buy_ticket app "e0")
    in
    ()
  done;
  let v =
    match Replica.peek east "avail:e0" with
    | Some (Obj.O_pncounter c) -> Pncounter.value c
    | _ -> -99
  in
  Alcotest.(check bool) "never negative" true (v >= 0);
  Alcotest.(check int) "exactly sold out" 0 v

let test_ticket_escrow_transfer_pays_rtt () =
  let cluster, app = setup_ticket Ticket.Escrow 3 in
  let east = Cluster.replica cluster "dc-east" in
  (* rights are pre-partitioned 1/1/1: the second buy at east needs a
     transfer *)
  let o1 = run_sync cluster east (Ticket.buy_ticket app "e0") in
  Alcotest.(check int) "first buy uses local rights" 0
    o1.Ipa_runtime.Config.extra_rtts;
  let o2 = run_sync cluster east (Ticket.buy_ticket app "e0") in
  Alcotest.(check int) "second buy needs a grant" 1
    o2.Ipa_runtime.Config.extra_rtts

(* ------------------------------------------------------------------ *)
(* Twitter                                                             *)
(* ------------------------------------------------------------------ *)

let setup_twitter variant =
  let cluster = three () in
  let app = Twitter.create ~followers_per_user:3 variant in
  let east = Cluster.replica cluster "dc-east" in
  let west = Cluster.replica cluster "dc-west" in
  let _ = run_sync cluster east (Twitter.add_user app "u1") in
  let _ = run_sync cluster east (Twitter.add_user app "u2") in
  let _ = run_sync cluster east (Twitter.do_tweet app ~n_users:10 "u1" "tw1") in
  (cluster, app, east, west)

let tweets_at rep =
  match Replica.peek rep "tweets" with
  | Some o -> Awset.elements (Obj.as_awset o)
  | None -> []

let test_twitter_addwins_restores_tweet () =
  let cluster, app, east, west = setup_twitter Twitter.Add_wins in
  let _ =
    run_concurrent cluster east
      (Twitter.retweet app ~n_users:10 "u2" "tw1")
      west
      (Twitter.del_tweet app "tw1")
  in
  Alcotest.(check (list string)) "tweet recovered" [ "tw1" ] (tweets_at east)

let test_twitter_remwins_hides_retweets () =
  let cluster, app, east, west = setup_twitter Twitter.Rem_wins in
  let _ =
    run_concurrent cluster east
      (Twitter.retweet app ~n_users:10 "u2" "tw1")
      west
      (Twitter.del_tweet app "tw1")
  in
  Alcotest.(check (list string)) "tweet stays deleted" [] (tweets_at east);
  (* the timeline read filters the dangling entry *)
  let op = Twitter.timeline app "u9" in
  let o = op.Ipa_runtime.Config.run east in
  Alcotest.(check bool) "read-side compensation did work" true
    (o.Ipa_runtime.Config.extra_work > 0)

let test_twitter_remwins_purges_user () =
  let cluster, app, east, west = setup_twitter Twitter.Rem_wins in
  (* u1's tweet is in follower timelines; removing u1 purges them even
     against a concurrent re-push *)
  let _ =
    run_concurrent cluster east
      (Twitter.do_tweet app ~n_users:10 "u1" "tw2")
      west
      (Twitter.rem_user app ~n_users:10 "u1")
  in
  (match Replica.peek east "users" with
  | Some o ->
      Alcotest.(check bool) "user removed" false (Awset.mem "u1" (Obj.as_awset o))
  | None -> Alcotest.fail "users object missing");
  (* the timeline read hides entries whose author is gone *)
  let follower = "u8" (* first follower of u1 = u1+7 mod 10 *) in
  let _ = (Twitter.timeline app follower).Ipa_runtime.Config.run east in
  ()

let test_twitter_causal_dangles () =
  let cluster, app, east, west = setup_twitter Twitter.Causal in
  let _ =
    run_concurrent cluster east
      (Twitter.retweet app ~n_users:10 "u2" "tw1")
      west
      (Twitter.del_tweet app "tw1")
  in
  Alcotest.(check (list string)) "tweet deleted" [] (tweets_at east);
  (* but timelines still reference it: a violation is observed *)
  let o = (Twitter.timeline app "u9").Ipa_runtime.Config.run east in
  Alcotest.(check bool) "dangling reference observed" true
    (o.Ipa_runtime.Config.violations > 0)

(* ------------------------------------------------------------------ *)
(* TPC                                                                 *)
(* ------------------------------------------------------------------ *)

let setup_tpc variant =
  let cluster = three () in
  let app = Tpc.create ~initial_stock:1 variant in
  Tpc.seed_data app
    { Tpc.n_items = 2; n_customers = 2; order_ratio = 0.0 }
    cluster;
  (cluster, app)

let test_tpc_rem_item_vs_order_causal () =
  let cluster, app = setup_tpc Tpc.Causal in
  let east = Cluster.replica cluster "dc-east" in
  let west = Cluster.replica cluster "dc-west" in
  let _ =
    run_concurrent cluster east
      (Tpc.new_order app ~order_id:"o1" "c1" "i0")
      west (Tpc.rem_item app "i0")
  in
  Alcotest.(check bool) "dangling order line" true
    (Tpc.count_violations app east > 0)

let test_tpc_rem_item_vs_order_ipa () =
  let cluster, app = setup_tpc Tpc.Ipa in
  let east = Cluster.replica cluster "dc-east" in
  let west = Cluster.replica cluster "dc-west" in
  let _ =
    run_concurrent cluster east
      (Tpc.new_order app ~order_id:"o1" "c1" "i0")
      west (Tpc.rem_item app "i0")
  in
  Alcotest.(check int) "touch restores listing" 0
    (Tpc.count_violations app east)

let test_tpc_stock_restock_compensation () =
  let cluster, app = setup_tpc Tpc.Ipa in
  let east = Cluster.replica cluster "dc-east" in
  let west = Cluster.replica cluster "dc-west" in
  (* stock 1, two concurrent orders *)
  let _ =
    run_concurrent cluster east
      (Tpc.new_order app ~order_id:"o1" "c1" "i0")
      west
      (Tpc.new_order app ~order_id:"o2" "c2" "i0")
  in
  (* stock is now -1; a stock check triggers the restock compensation *)
  let o = run_sync cluster east (Tpc.check_stock app "i0") in
  Alcotest.(check bool) "under-run detected" true
    (o.Ipa_runtime.Config.violations > 0);
  let v =
    match Replica.peek east "stock:i0" with
    | Some (Obj.O_compcounter c) -> Compcounter.value c
    | _ -> -99
  in
  Alcotest.(check bool) "restocked above the bound" true (v >= 0)

let () =
  Alcotest.run "ipa_apps"
    [
      ( "tournament",
        [
          Alcotest.test_case "figure 2 causal violates" `Quick
            test_tournament_figure2_causal;
          Alcotest.test_case "figure 2 ipa preserves" `Quick
            test_tournament_figure2_ipa;
          Alcotest.test_case "rem_player ipa" `Quick
            test_tournament_rem_player_ipa;
          Alcotest.test_case "capacity compensation" `Quick
            test_tournament_capacity_compensation;
          Alcotest.test_case "do_match preconditions" `Quick
            test_tournament_do_match_requires_enrollment;
          Alcotest.test_case "disenroll vs match" `Quick
            test_tournament_disenroll_vs_match_ipa;
          Alcotest.test_case "workload smoke" `Quick
            test_tournament_workload_smoke;
          Alcotest.test_case "chaos delivery" `Quick
            test_tournament_chaos_delivery;
        ] );
      ( "ticket",
        [
          Alcotest.test_case "causal oversell" `Quick test_ticket_oversell_causal;
          Alcotest.test_case "ipa repairs" `Quick test_ticket_oversell_ipa_repaired;
          Alcotest.test_case "sold out aborts" `Quick test_ticket_sold_out_aborts;
          Alcotest.test_case "concurrent repairs idempotent" `Quick
            test_ticket_concurrent_repairs_idempotent;
          Alcotest.test_case "escrow never oversells" `Quick
            test_ticket_escrow_never_oversells;
          Alcotest.test_case "escrow transfer cost" `Quick
            test_ticket_escrow_transfer_pays_rtt;
        ] );
      ( "twitter",
        [
          Alcotest.test_case "add-wins restores tweet" `Quick
            test_twitter_addwins_restores_tweet;
          Alcotest.test_case "rem-wins hides retweets" `Quick
            test_twitter_remwins_hides_retweets;
          Alcotest.test_case "rem-wins purges user" `Quick
            test_twitter_remwins_purges_user;
          Alcotest.test_case "causal dangles" `Quick test_twitter_causal_dangles;
        ] );
      ( "tpc",
        [
          Alcotest.test_case "causal dangling line" `Quick
            test_tpc_rem_item_vs_order_causal;
          Alcotest.test_case "ipa restores listing" `Quick
            test_tpc_rem_item_vs_order_ipa;
          Alcotest.test_case "restock compensation" `Quick
            test_tpc_stock_restock_compensation;
        ] );
    ]
