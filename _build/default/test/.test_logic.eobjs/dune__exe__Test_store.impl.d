test/test_store.ml: Alcotest Array Awset Cluster Gen Ipa_crdt Ipa_store List Obj Option Pncounter QCheck QCheck_alcotest Replica Rwset Txn Vclock
