test/test_apps.ml: Alcotest Array Awset Cluster Compcounter Compset Fmt Ipa_apps Ipa_crdt Ipa_runtime Ipa_sim Ipa_store List Obj Pncounter Replica Ticket Tournament Tpc Twitter
