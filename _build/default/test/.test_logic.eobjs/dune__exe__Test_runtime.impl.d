test/test_runtime.ml: Alcotest Cluster Config Driver Engine Ipa_crdt Ipa_runtime Ipa_sim Ipa_store List Metrics Net Obj Option Pncounter Replica Txn
