test/test_crdt.ml: Alcotest Awset Bcounter Compcounter Compset Filename Gen Idgen Ipa_crdt List Lww Mvreg Pncounter Printf QCheck QCheck_alcotest Rwset String Vclock
