test/test_sim.ml: Alcotest Engine Gen Ipa_sim List Metrics Net QCheck QCheck_alcotest Rng
