test/test_logic.ml: Alcotest Ast Ground Ipa_logic List Parser Pp Printf QCheck QCheck_alcotest Subst
