test/test_spec.ml: Alcotest Ast Astring Catalog Compose Ground Ipa_core Ipa_logic Ipa_spec List Option Pp Spec_parser String Types Validate
