test/test_solver.ml: Alcotest Array Ast Cnf Encode Gen Ground Ipa_logic Ipa_solver List Parser Pp QCheck QCheck_alcotest Sat
