(** Tests for [ipa_logic]: AST helpers, parser, substitution, grounding. *)

open Ipa_logic
open Ast

let parse = Parser.parse_formula
let to_string = Pp.formula_to_string

let check_parse msg input expected =
  Alcotest.(check string) msg expected (to_string (parse input))

(* ------------------------------------------------------------------ *)
(* Parser                                                              *)
(* ------------------------------------------------------------------ *)

let test_parse_atom () =
  check_parse "simple atom" "player(p)" "player(p)";
  check_parse "binary atom" "enrolled(p, t)" "enrolled(p, t)";
  check_parse "nullary atom" "open" "open()";
  check_parse "const arg" "player('bob)" "player('bob)";
  check_parse "star arg in cardinality" "#enrolled(*, t) <= 5"
    "#enrolled(*, t) <= 5"

let test_parse_connectives () =
  check_parse "and" "a(x) and b(x)" "a(x) and b(x)";
  check_parse "or" "a(x) or b(x)" "a(x) or b(x)";
  check_parse "implies" "a(x) => b(x)" "a(x) => b(x)";
  check_parse "iff" "a(x) <=> b(x)" "a(x) <=> b(x)";
  check_parse "not" "not a(x)" "not a(x)";
  check_parse "precedence and/or" "a(x) or b(x) and c(x)"
    "a(x) or b(x) and c(x)";
  check_parse "parens" "(a(x) or b(x)) and c(x)" "(a(x) or b(x)) and c(x)"

let test_parse_quantifiers () =
  check_parse "forall"
    "forall(Player:p, Tournament:t) :- enrolled(p,t) => player(p) and tournament(t)"
    "forall(Player:p, Tournament:t) :- enrolled(p, t) => player(p) and tournament(t)";
  check_parse "shared sort"
    "forall(Player:p, q, Tournament:t) :- inMatch(p,q,t) => enrolled(p,t)"
    "forall(Player:p, Player:q, Tournament:t) :- inMatch(p, q, t) => enrolled(p, t)";
  check_parse "exists" "exists(Player:p) :- player(p)"
    "exists(Player:p) :- player(p)"

let test_parse_numeric () =
  check_parse "cardinality bound"
    "forall(Tournament:t) :- #enrolled(*,t) <= Capacity"
    "forall(Tournament:t) :- #enrolled(*, t) <= Capacity";
  check_parse "nfun" "stock(i) >= 0" "stock(i) >= 0";
  check_parse "sum" "stock(i) + reserved(i) <= 10"
    "(stock(i) + reserved(i)) <= 10";
  check_parse "sub" "stock(i) - 1 >= 0" "(stock(i) - 1) >= 0"

let test_parse_equality () =
  check_parse "term equality" "p == q" "p == q";
  check_parse "term inequality parses to negated eq" "p != q" "not p == q"

let test_parse_paper_invariants () =
  (* the six invariants of Figure 1 must all parse *)
  let invs =
    [
      "forall(Player:p, Tournament:t) :- enrolled(p,t) => player(p) and \
       tournament(t)";
      "forall(Player:p, q, Tournament:t) :- inMatch(p,q,t) => enrolled(p,t) \
       and enrolled(q,t) and (active(t) or finished(t))";
      "forall(Tournament:t) :- #enrolled(*,t) <= Capacity";
      "forall(Tournament:t) :- active(t) => tournament(t)";
      "forall(Tournament:t) :- finished(t) => tournament(t)";
      "forall(Tournament:t) :- not (active(t) and finished(t))";
    ]
  in
  List.iter (fun s -> ignore (parse s)) invs

let test_parse_errors () =
  let fails s =
    match parse s with
    | exception Parser.Parse_error _ -> ()
    | _ -> Alcotest.failf "expected parse error for %S" s
  in
  fails "a(x) and";
  fails "forall(x) :- a(x)" (* variable without sort *);
  fails "a(x))";
  fails "#a(x" (* unterminated args *);
  fails "a(x) => => b(x)";
  fails ""

(* ------------------------------------------------------------------ *)
(* AST helpers                                                         *)
(* ------------------------------------------------------------------ *)

let test_clauses () =
  let f = parse "a(x) and b(x) and (c(x) or d(x))" in
  Alcotest.(check int) "three clauses" 3 (List.length (clauses f));
  Alcotest.(check int) "single clause" 1 (List.length (clauses (parse "a(x)")))

let test_predicates () =
  let f = parse "a(x) and b(x) => c(x) or a(y)" in
  Alcotest.(check (list string)) "predicates" [ "a"; "b"; "c" ] (predicates f);
  let g = parse "#enrolled(*,t) <= 3" in
  Alcotest.(check (list string)) "card predicates" [ "enrolled" ] (predicates g)

let test_free_vars () =
  let f =
    parse "forall(Player:p) :- enrolled(p, t) => player(p) and tournament(t)"
  in
  Alcotest.(check (list string)) "free vars" [ "t" ] (free_vars f);
  let g = parse "a(x) and b(y) and a(x)" in
  Alcotest.(check (list string)) "dedup order" [ "x"; "y" ] (free_vars g)

let test_smart_constructors () =
  Alcotest.(check bool) "conj true" true (conj True (parse "a(x)") = parse "a(x)");
  Alcotest.(check bool) "conj false" true (conj False (parse "a(x)") = False);
  Alcotest.(check bool) "disj false" true (disj False (parse "a(x)") = parse "a(x)");
  Alcotest.(check bool) "neg neg" true (neg (neg (parse "a(x)")) = parse "a(x)");
  Alcotest.(check bool) "implies false" true (implies False (parse "a(x)") = True)

let test_classify_shapes () =
  Alcotest.(check bool) "cardinality detected" true
    (has_cardinality (parse "#e(*,t) <= 2"));
  Alcotest.(check bool) "no cardinality" false (has_cardinality (parse "a(x)"));
  Alcotest.(check bool) "nfun detected" true (has_nfun (parse "stock(i) >= 0"));
  Alcotest.(check (list string)) "nfun names" [ "stock" ]
    (nfunctions (parse "stock(i) - 1 >= 0"))

(* ------------------------------------------------------------------ *)
(* Substitution                                                        *)
(* ------------------------------------------------------------------ *)

let test_subst () =
  let f = parse "enrolled(p, t) => player(p)" in
  let g = Subst.subst [ ("p", Const "alice"); ("t", Const "cup") ] f in
  Alcotest.(check string) "ground subst"
    "enrolled('alice, 'cup) => player('alice)" (to_string g)

let test_subst_shadowing () =
  let f = parse "a(p) and (forall(Player:p) :- b(p))" in
  let g = Subst.subst [ ("p", Const "x") ] f in
  Alcotest.(check string) "bound p untouched"
    "a('x) and (forall(Player:p) :- b(p))" (to_string g)

let test_rename () =
  let f = parse "forall(Player:p) :- a(p)" in
  let g = Subst.rename "p" "q" f in
  Alcotest.(check string) "rename through binder" "forall(Player:q) :- a(q)"
    (to_string g)

(* ------------------------------------------------------------------ *)
(* Grounding                                                           *)
(* ------------------------------------------------------------------ *)

let sg : Ground.signature =
  {
    pred_sorts =
      [
        ("player", [ "Player" ]);
        ("tournament", [ "Tournament" ]);
        ("enrolled", [ "Player"; "Tournament" ]);
        ("active", [ "Tournament" ]);
      ];
    nfun_sorts = [ ("stock", [ "Item" ]) ];
  }

let dom : Ground.domain =
  [
    ("Player", [ "p1"; "p2" ]);
    ("Tournament", [ "t1" ]);
    ("Item", [ "i1" ]);
  ]

let ground f = Ground.ground ~sg ~consts:[ ("Capacity", 2) ] ~dom f

let test_ground_forall () =
  let g = ground (parse "forall(Player:p) :- player(p)") in
  (* two players -> conjunction of two atoms *)
  Alcotest.(check int) "two atoms" 2 (List.length (Ground.atoms g))

let test_ground_implication_eval () =
  let g =
    ground
      (parse
         "forall(Player:p, Tournament:t) :- enrolled(p,t) => player(p) and \
          tournament(t)")
  in
  let batom (a : Ground.gatom) =
    (* state: p1 enrolled in t1, p1 is a player, t1 exists *)
    match (a.gpred, a.gargs) with
    | "enrolled", [ "p1"; "t1" ] -> true
    | "player", [ "p1" ] -> true
    | "tournament", [ "t1" ] -> true
    | _ -> false
  in
  Alcotest.(check bool) "ref integrity holds" true
    (Ground.eval ~batom ~bnum:(fun _ -> 0) g);
  (* now remove the tournament: invariant violated *)
  let batom' a = if a.Ground.gpred = "tournament" then false else batom a in
  Alcotest.(check bool) "ref integrity broken" false
    (Ground.eval ~batom:batom' ~bnum:(fun _ -> 0) g)

let test_ground_cardinality () =
  let g = ground (parse "forall(Tournament:t) :- #enrolled(*,t) <= Capacity") in
  let count_enrolled n =
    let batom (a : Ground.gatom) =
      match (a.gpred, a.gargs) with
      | "enrolled", [ "p1"; "t1" ] -> n >= 1
      | "enrolled", [ "p2"; "t1" ] -> n >= 2
      | _ -> false
    in
    Ground.eval ~batom ~bnum:(fun _ -> 0) g
  in
  Alcotest.(check bool) "0 <= 2" true (count_enrolled 0);
  Alcotest.(check bool) "2 <= 2" true (count_enrolled 2)

let test_ground_cardinality_violation () =
  let g = ground (parse "forall(Tournament:t) :- #enrolled(*,t) <= 1") in
  let batom (a : Ground.gatom) = a.Ground.gpred = "enrolled" in
  Alcotest.(check bool) "2 <= 1 fails" false
    (Ground.eval ~batom ~bnum:(fun _ -> 0) g)

let test_ground_numeric () =
  let g = ground (parse "stock('i1) - 1 >= 0") in
  let eval v = Ground.eval ~batom:(fun _ -> false) ~bnum:(fun _ -> v) g in
  Alcotest.(check bool) "stock 1 ok" true (eval 1);
  Alcotest.(check bool) "stock 0 violates" false (eval 0)

let test_ground_equality () =
  let g = ground (parse "forall(Player:p, q) :- p == q") in
  (* with two distinct players this must be GFalse-ish: evaluate *)
  Alcotest.(check bool) "distinct players" false
    (Ground.eval ~batom:(fun _ -> true) ~bnum:(fun _ -> 0) g);
  let dom1 = [ ("Player", [ "p1" ]) ] in
  let g1 =
    Ground.ground ~sg ~consts:[]
      ~dom:dom1
      (parse "forall(Player:p, q) :- p == q")
  in
  Alcotest.(check bool) "singleton domain" true
    (Ground.eval ~batom:(fun _ -> true) ~bnum:(fun _ -> 0) g1)

let test_ground_free_var_fails () =
  match ground (parse "player(p)") with
  | exception Ground.Ground_error _ -> ()
  | _ -> Alcotest.fail "expected Ground_error on free variable"

let test_ground_unknown_pred_fails () =
  match ground (parse "forall(Player:p) :- ghost(p)") with
  | exception Ground.Ground_error _ -> ()
  | _ -> Alcotest.fail "expected Ground_error on unknown predicate"

(* ------------------------------------------------------------------ *)
(* Property tests                                                      *)
(* ------------------------------------------------------------------ *)

(* Random closed ground-able formulas over a fixed signature. *)
let gen_formula : formula QCheck.Gen.t =
  let open QCheck.Gen in
  let gen_atom =
    oneof
      [
        map (fun i -> Atom ("player", [ Const (Printf.sprintf "p%d" (1 + (i mod 2))) ])) small_nat;
        map (fun i -> Atom ("tournament", [ Const "t1" ]) |> fun a -> ignore i; a) small_nat;
        map2
          (fun i j ->
            Atom
              ( "enrolled",
                [
                  Const (Printf.sprintf "p%d" (1 + (i mod 2))); Const "t1";
                ] )
            |> fun a -> ignore j; a)
          small_nat small_nat;
      ]
  in
  fix
    (fun self n ->
      if n = 0 then gen_atom
      else
        frequency
          [
            (3, gen_atom);
            (2, map2 (fun a b -> And (a, b)) (self (n / 2)) (self (n / 2)));
            (2, map2 (fun a b -> Or (a, b)) (self (n / 2)) (self (n / 2)));
            (1, map2 (fun a b -> Implies (a, b)) (self (n / 2)) (self (n / 2)));
            (1, map (fun a -> Not a) (self (n - 1)));
          ])
    5

let arbitrary_formula =
  QCheck.make gen_formula ~print:Pp.formula_to_string

let prop_print_parse_roundtrip =
  QCheck.Test.make ~name:"pp/parse round-trip" ~count:300 arbitrary_formula
    (fun f ->
      let s = Pp.formula_to_string f in
      let f' = Parser.parse_formula s in
      Pp.formula_to_string f' = s)

let prop_clauses_reconstruct =
  QCheck.Test.make ~name:"conj_l of clauses is equivalent" ~count:200
    arbitrary_formula (fun f ->
      let f' = conj_l (clauses f) in
      (* evaluate both under all assignments of the 3 possible atoms *)
      let atoms =
        [
          ("player", [ "p1" ]); ("player", [ "p2" ]);
          ("tournament", [ "t1" ]);
          ("enrolled", [ "p1"; "t1" ]); ("enrolled", [ "p2"; "t1" ]);
        ]
      in
      let eval f (ass : bool list) =
        let batom (a : Ground.gatom) =
          let rec idx i = function
            | [] -> false
            | (p, args) :: rest ->
                if p = a.Ground.gpred && args = a.Ground.gargs then
                  List.nth ass i
                else idx (i + 1) rest
          in
          idx 0 atoms
        in
        Ground.eval ~batom
          ~bnum:(fun _ -> 0)
          (Ground.ground ~sg ~consts:[] ~dom f)
      in
      let rec all_assignments n =
        if n = 0 then [ [] ]
        else
          let rest = all_assignments (n - 1) in
          List.concat_map (fun t -> [ true :: t; false :: t ]) rest
      in
      List.for_all
        (fun ass -> eval f ass = eval f' ass)
        (all_assignments (List.length atoms)))

let qcheck_tests =
  List.map QCheck_alcotest.to_alcotest
    [ prop_print_parse_roundtrip; prop_clauses_reconstruct ]

let () =
  Alcotest.run "ipa_logic"
    [
      ( "parser",
        [
          Alcotest.test_case "atoms" `Quick test_parse_atom;
          Alcotest.test_case "connectives" `Quick test_parse_connectives;
          Alcotest.test_case "quantifiers" `Quick test_parse_quantifiers;
          Alcotest.test_case "numeric" `Quick test_parse_numeric;
          Alcotest.test_case "equality" `Quick test_parse_equality;
          Alcotest.test_case "paper invariants" `Quick
            test_parse_paper_invariants;
          Alcotest.test_case "errors" `Quick test_parse_errors;
        ] );
      ( "ast",
        [
          Alcotest.test_case "clauses" `Quick test_clauses;
          Alcotest.test_case "predicates" `Quick test_predicates;
          Alcotest.test_case "free vars" `Quick test_free_vars;
          Alcotest.test_case "smart constructors" `Quick
            test_smart_constructors;
          Alcotest.test_case "shape classifiers" `Quick test_classify_shapes;
        ] );
      ( "subst",
        [
          Alcotest.test_case "ground substitution" `Quick test_subst;
          Alcotest.test_case "shadowing" `Quick test_subst_shadowing;
          Alcotest.test_case "rename" `Quick test_rename;
        ] );
      ( "ground",
        [
          Alcotest.test_case "forall expansion" `Quick test_ground_forall;
          Alcotest.test_case "implication eval" `Quick
            test_ground_implication_eval;
          Alcotest.test_case "cardinality" `Quick test_ground_cardinality;
          Alcotest.test_case "cardinality violation" `Quick
            test_ground_cardinality_violation;
          Alcotest.test_case "numeric" `Quick test_ground_numeric;
          Alcotest.test_case "equality" `Quick test_ground_equality;
          Alcotest.test_case "free var error" `Quick test_ground_free_var_fails;
          Alcotest.test_case "unknown predicate error" `Quick
            test_ground_unknown_pred_fails;
        ] );
      ("properties", qcheck_tests);
    ]
