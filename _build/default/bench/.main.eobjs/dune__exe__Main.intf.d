bench/main.mli:
