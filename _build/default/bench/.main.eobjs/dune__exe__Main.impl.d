bench/main.ml: Array Experiments Fmt Sys
