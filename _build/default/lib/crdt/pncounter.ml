(** Op-based PN-counter: concurrent increments and decrements commute.

    The downstream effect carries the origin replica and the delta; state
    tracks per-replica positive and negative totals so the value is
    well-defined under any causal delivery order. *)

module M = Map.Make (String)

type t = { pos : int M.t; neg : int M.t }

type op = Delta of { rep : string; d : int }

let empty : t = { pos = M.empty; neg = M.empty }

let get m r = match M.find_opt r m with Some n -> n | None -> 0

let value (c : t) : int =
  M.fold (fun _ n acc -> acc + n) c.pos 0
  - M.fold (fun _ n acc -> acc + n) c.neg 0

let prepare (_ : t) ~(rep : string) (d : int) : op = Delta { rep; d }

let apply (c : t) (Delta { rep; d } : op) : t =
  if d >= 0 then { c with pos = M.add rep (get c.pos rep + d) c.pos }
  else { c with neg = M.add rep (get c.neg rep - d) c.neg }

let pp ppf c = Fmt.int ppf (value c)
