(** Multi-value register: a write overwrites the versions its source had
    observed; concurrent writes are kept as siblings. *)

type t
type op

val empty : t

(** All concurrent values (siblings), sorted. *)
val values : t -> string list

(** [vv] is the source clock including this event. *)
val prepare : t -> dot:Vclock.dot -> vv:Vclock.t -> string -> op

val apply : t -> op -> t
val pp : Format.formatter -> t -> unit
