(** Op-based PN-counter: concurrent increments and decrements commute. *)

type t
type op

val empty : t
val value : t -> int

(** Prepare a delta issued by replica [rep]. *)
val prepare : t -> rep:string -> int -> op

val apply : t -> op -> t
val pp : Format.formatter -> t -> unit
