(** Coordination-free unique identifiers (Table 1, "Unique id.").

    Uniqueness invariants are I-Confluent when the identifier space is
    pre-partitioned among the nodes that generate them (§5.1.1): each
    replica draws from its own partition, so identifiers never collide
    without any runtime coordination.  This generator implements the
    standard (replica id, local counter) scheme, with an optional block
    form that pre-allocates numeric ranges (the classic escrow-style
    partitioning for applications that need dense numeric ids). *)

type t = { rep : string; mutable counter : int }

let create (rep : string) : t = { rep; counter = 0 }

(** A globally-unique identifier: ["<replica>-<n>"].  No two calls on
    any replicas ever return the same id. *)
let fresh (g : t) : string =
  g.counter <- g.counter + 1;
  Printf.sprintf "%s-%d" g.rep g.counter

(** Numeric identifiers from pre-partitioned blocks: replica [index] of
    [n_replicas] draws ids ≡ index (mod n_replicas).  Dense and
    collision-free, but {e not} sequential across replicas — the paper's
    point about sequential identifiers (Table 1: applications replace
    them with unique ids). *)
type block = { base : int; stride : int; mutable next : int }

let block ~(index : int) ~(n_replicas : int) : block =
  if index < 0 || index >= n_replicas then
    invalid_arg "Idgen.block: index out of range";
  { base = index; stride = n_replicas; next = index }

let fresh_int (b : block) : int =
  let v = b.next in
  b.next <- b.next + b.stride;
  v
