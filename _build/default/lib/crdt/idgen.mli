(** Coordination-free unique identifiers (Table 1, "Unique id."):
    pre-partitioned identifier spaces make uniqueness I-Confluent. *)

type t

val create : string -> t

(** A globally-unique identifier ["<replica>-<n>"]. *)
val fresh : t -> string

(** Numeric identifiers from pre-partitioned blocks: replica [index]
    draws ids ≡ index (mod n_replicas). *)
type block

val block : index:int -> n_replicas:int -> block
val fresh_int : block -> int
