lib/crdt/idgen.mli:
