lib/crdt/vclock.ml: Fmt List Map Set String
