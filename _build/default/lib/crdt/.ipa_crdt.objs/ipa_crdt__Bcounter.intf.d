lib/crdt/bcounter.mli: Format
