lib/crdt/lww.mli: Format
