lib/crdt/compcounter.ml: Fmt Pncounter
