lib/crdt/mvreg.mli: Format Vclock
