lib/crdt/pncounter.ml: Fmt Map String
