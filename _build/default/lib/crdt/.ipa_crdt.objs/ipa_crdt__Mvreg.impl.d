lib/crdt/mvreg.ml: Fmt List String Vclock
