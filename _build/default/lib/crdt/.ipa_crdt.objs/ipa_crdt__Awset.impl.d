lib/crdt/awset.ml: Fmt List Map String Vclock
