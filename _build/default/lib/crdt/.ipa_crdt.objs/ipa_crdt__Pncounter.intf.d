lib/crdt/pncounter.mli: Format
