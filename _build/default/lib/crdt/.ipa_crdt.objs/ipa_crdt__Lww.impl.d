lib/crdt/lww.ml: Fmt
