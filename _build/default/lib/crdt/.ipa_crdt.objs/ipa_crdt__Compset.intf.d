lib/crdt/compset.mli: Awset Format Vclock
