lib/crdt/bcounter.ml: Fmt Map Option String
