lib/crdt/vclock.mli: Format Set
