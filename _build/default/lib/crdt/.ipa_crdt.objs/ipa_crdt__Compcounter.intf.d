lib/crdt/compcounter.mli: Format
