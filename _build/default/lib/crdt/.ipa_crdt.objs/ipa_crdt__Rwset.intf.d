lib/crdt/rwset.mli: Format Vclock
