lib/crdt/awset.mli: Format Vclock
