lib/crdt/idgen.ml: Printf
