lib/crdt/rwset.ml: Fmt List Map String Vclock
