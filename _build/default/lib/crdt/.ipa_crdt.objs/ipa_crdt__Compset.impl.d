lib/crdt/compset.ml: Awset Fmt List
