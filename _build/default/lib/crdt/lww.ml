(** Last-writer-wins register: concurrent writes resolve by
    (Lamport timestamp, replica id) order. *)

type stamp = { ts : int; rep : string }

type t = (stamp * string) option

type op = Write of { stamp : stamp; value : string }

let empty : t = None

let stamp_compare a b = compare (a.ts, a.rep) (b.ts, b.rep)

let value (r : t) : string option =
  match r with Some (_, v) -> Some v | None -> None

(** Prepare a write; [ts] must dominate any timestamp the source has
    observed (the store supplies a Lamport clock). *)
let prepare (_ : t) ~(ts : int) ~(rep : string) (value : string) : op =
  Write { stamp = { ts; rep }; value }

let apply (r : t) (Write { stamp; value } : op) : t =
  match r with
  | Some (s, _) when stamp_compare s stamp >= 0 -> r
  | _ -> Some (stamp, value)

let pp ppf r =
  match r with
  | Some (_, v) -> Fmt.string ppf v
  | None -> Fmt.string ppf "<unset>"
