(** Last-writer-wins register: concurrent writes resolve by
    (Lamport timestamp, replica id) order. *)

type t
type op

val empty : t
val value : t -> string option

(** [ts] must dominate any timestamp the source has observed (the store
    supplies a Lamport clock). *)
val prepare : t -> ts:int -> rep:string -> string -> op

val apply : t -> op -> t
val pp : Format.formatter -> t -> unit
