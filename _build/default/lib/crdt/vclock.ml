(** Vector clocks and dots.

    The replicated store tags every update batch with the origin's vector
    clock; CRDT conflict resolution (add-wins / rem-wins) compares these
    to decide causality between concurrent operations. *)

module M = Map.Make (String)

(** A vector clock: replica id → number of events observed. Absent
    entries read as zero. *)
type t = int M.t

(** A dot: one specific event of one replica. *)
type dot = { rep : string; cnt : int }

let empty : t = M.empty

let get (vv : t) (rep : string) : int =
  match M.find_opt rep vv with Some n -> n | None -> 0

let set (vv : t) (rep : string) (n : int) : t = M.add rep n vv

(** Record the next event of [rep]; returns the new clock and the dot of
    the event. *)
let tick (vv : t) (rep : string) : t * dot =
  let n = get vv rep + 1 in
  (M.add rep n vv, { rep; cnt = n })

(** Pointwise maximum. *)
let merge (a : t) (b : t) : t =
  M.union (fun _ x y -> Some (max x y)) a b

(** [leq a b] — every event in [a] is in [b] (a ≼ b). *)
let leq (a : t) (b : t) : bool =
  M.for_all (fun rep n -> get b rep >= n) a

let equal (a : t) (b : t) : bool = leq a b && leq b a

(** Strict happened-before. *)
let lt (a : t) (b : t) : bool = leq a b && not (leq b a)

type ordering = Before | After | Equal | Concurrent

let compare_vv (a : t) (b : t) : ordering =
  match (leq a b, leq b a) with
  | true, true -> Equal
  | true, false -> Before
  | false, true -> After
  | false, false -> Concurrent

let concurrent (a : t) (b : t) : bool = compare_vv a b = Concurrent

(** Does the clock contain the dot? *)
let contains (vv : t) (d : dot) : bool = get vv d.rep >= d.cnt

(** Sum of all entries (event count) — used as a cheap progress metric. *)
let total (vv : t) : int = M.fold (fun _ n acc -> acc + n) vv 0

let to_list (vv : t) : (string * int) list = M.bindings vv
let of_list (l : (string * int) list) : t =
  List.fold_left (fun m (r, n) -> M.add r n m) M.empty l

let pp ppf (vv : t) =
  Fmt.pf ppf "{%a}"
    Fmt.(list ~sep:(any ", ") (pair ~sep:(any ":") string int))
    (to_list vv)

let pp_dot ppf (d : dot) = Fmt.pf ppf "%s#%d" d.rep d.cnt
let dot_compare (a : dot) (b : dot) = compare (a.rep, a.cnt) (b.rep, b.cnt)

module DotSet = Set.Make (struct
  type t = dot

  let compare = dot_compare
end)
