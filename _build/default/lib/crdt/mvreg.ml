(** Multi-value register: a write overwrites the versions its source had
    observed; concurrent writes are all kept and exposed to the reader
    (Dynamo-style siblings). *)

type version = { dot : Vclock.dot; vv : Vclock.t; value : string }

type t = version list

type op = Write of { dot : Vclock.dot; vv : Vclock.t; value : string }

let empty : t = []

(** All concurrent values (siblings). *)
let values (r : t) : string list =
  List.map (fun v -> v.value) r |> List.sort String.compare

(** [vv] is the source clock including this event. *)
let prepare (_ : t) ~(dot : Vclock.dot) ~(vv : Vclock.t) (value : string) : op
    =
  Write { dot; vv; value }

let apply (r : t) (Write { dot; vv; value } : op) : t =
  (* drop versions the new write dominates; keep it unless dominated *)
  let survivors =
    List.filter (fun v -> not (Vclock.contains vv v.dot)) r
  in
  let dominated =
    List.exists (fun v -> Vclock.contains v.vv dot && v.dot <> dot) survivors
  in
  if dominated then survivors else { dot; vv; value } :: survivors

let pp ppf r =
  Fmt.pf ppf "{%a}" Fmt.(list ~sep:(any " | ") string) (values r)
