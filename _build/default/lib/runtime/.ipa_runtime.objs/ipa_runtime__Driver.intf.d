lib/runtime/driver.mli: Config Ipa_sim Metrics Rng
