lib/runtime/driver.ml: Config Engine Ipa_sim Ipa_store List Metrics Rng
