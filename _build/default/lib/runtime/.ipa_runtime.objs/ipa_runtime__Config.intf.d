lib/runtime/config.mli: Cluster Engine Hashtbl Ipa_sim Ipa_store Net Replica
