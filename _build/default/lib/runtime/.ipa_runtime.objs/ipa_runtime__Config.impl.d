lib/runtime/config.ml: Array Cluster Engine Hashtbl Ipa_sim Ipa_store List Net Replica
