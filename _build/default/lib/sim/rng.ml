(** Deterministic pseudo-random numbers (splitmix64).

    Every simulator component draws from an explicitly-seeded generator
    so experiment runs are exactly reproducible. *)

type t = { mutable state : int64 }

let create (seed : int) : t = { state = Int64.of_int (seed * 2 + 1) }

let next64 (g : t) : int64 =
  let open Int64 in
  g.state <- add g.state 0x9E3779B97F4A7C15L;
  let z = g.state in
  let z = mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL in
  logxor z (shift_right_logical z 31)

(** Uniform integer in [0, bound). *)
let int (g : t) (bound : int) : int =
  if bound <= 0 then invalid_arg "Rng.int: bound must be positive";
  Int64.to_int (Int64.rem (Int64.shift_right_logical (next64 g) 1) (Int64.of_int bound))

(** Uniform float in [0, 1). *)
let float (g : t) : float =
  Int64.to_float (Int64.shift_right_logical (next64 g) 11)
  /. 9007199254740992.0 (* 2^53 *)

(** Uniform float in [lo, hi). *)
let uniform (g : t) (lo : float) (hi : float) : float =
  lo +. ((hi -. lo) *. float g)

(** Exponential with the given mean (inter-arrival times). *)
let exponential (g : t) (mean : float) : float =
  -.mean *. log (1.0 -. float g)

(** Pick a random element of a non-empty list. *)
let choose (g : t) (l : 'a list) : 'a = List.nth l (int g (List.length l))

(** Bernoulli trial. *)
let flip (g : t) (p : float) : bool = float g < p

(** Fork an independent stream (for per-client generators). *)
let split (g : t) : t = { state = next64 g }
