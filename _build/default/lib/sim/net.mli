(** Wide-area network model: the paper's three-region EC2 deployment
    (§5.2.1) — 80 ms RTT us-east↔us-west and us-east↔eu-west, 160 ms
    eu-west↔us-west, sub-millisecond LAN within a region, ±[jitter]
    uniform noise per sample. *)

type t

val paper_regions : string list
val paper_rtts : ((string * string) * float) list

val create :
  ?rtts:((string * string) * float) list ->
  ?lan_rtt:float ->
  ?jitter:float ->
  seed:int ->
  unit ->
  t

(** Mean RTT without jitter; raises on unknown pairs. *)
val mean_rtt : t -> string -> string -> float

(** Sampled round-trip time (ms). *)
val rtt : t -> string -> string -> float

(** Sampled one-way delay. *)
val one_way : t -> string -> string -> float
