(** Deterministic pseudo-random numbers (splitmix64): every simulator
    component draws from an explicitly-seeded generator so experiment
    runs are exactly reproducible. *)

type t

val create : int -> t

(** Uniform integer in [0, bound); raises on non-positive bound. *)
val int : t -> int -> int

(** Uniform float in [0, 1). *)
val float : t -> float

(** Uniform float in [lo, hi). *)
val uniform : t -> float -> float -> float

(** Exponential with the given mean (inter-arrival times). *)
val exponential : t -> float -> float

(** Random element of a non-empty list. *)
val choose : t -> 'a list -> 'a

(** Bernoulli trial. *)
val flip : t -> float -> bool

(** Fork an independent stream (per-client generators). *)
val split : t -> t
