(** Measurement collection: per-operation latency series, throughput and
    violation counts for the benchmark harness. *)

type series = { mutable samples : float list; mutable n : int }

type t = {
  by_op : (string, series) Hashtbl.t;
  mutable violations : int;
  mutable failures : int;
      (** operations the configuration could not execute (failure
          injection: unreachable primary / reservation holder) *)
  mutable started_at : float;
  mutable finished_at : float;
}

let create () =
  {
    by_op = Hashtbl.create 16;
    violations = 0;
    failures = 0;
    started_at = 0.0;
    finished_at = 0.0;
  }

let series_of (m : t) (op : string) : series =
  match Hashtbl.find_opt m.by_op op with
  | Some s -> s
  | None ->
      let s = { samples = []; n = 0 } in
      Hashtbl.replace m.by_op op s;
      s

(** Record one operation latency (ms). *)
let record (m : t) ~(op : string) (latency : float) : unit =
  let s = series_of m op in
  s.samples <- latency :: s.samples;
  s.n <- s.n + 1

let record_violations (m : t) (n : int) : unit =
  m.violations <- m.violations + n

let record_failure (m : t) : unit = m.failures <- m.failures + 1

(** Fraction of attempted operations that executed successfully. *)
let availability (m : t) : float =
  let total = m.failures + Hashtbl.fold (fun _ s acc -> acc + s.n) m.by_op 0 in
  if total = 0 then 1.0
  else 1.0 -. (float_of_int m.failures /. float_of_int total)

let count (m : t) ?(op : string option) () : int =
  match op with
  | Some o -> (series_of m o).n
  | None -> Hashtbl.fold (fun _ s acc -> acc + s.n) m.by_op 0

let all_samples (m : t) ?(op : string option) () : float list =
  match op with
  | Some o -> (series_of m o).samples
  | None -> Hashtbl.fold (fun _ s acc -> s.samples @ acc) m.by_op []

let mean (l : float list) : float =
  match l with
  | [] -> 0.0
  | _ -> List.fold_left ( +. ) 0.0 l /. float_of_int (List.length l)

let stddev (l : float list) : float =
  match l with
  | [] | [ _ ] -> 0.0
  | _ ->
      let m = mean l in
      sqrt (mean (List.map (fun x -> (x -. m) ** 2.0) l))

let percentile (p : float) (l : float list) : float =
  match List.sort compare l with
  | [] -> 0.0
  | sorted ->
      let n = List.length sorted in
      let idx = int_of_float (p /. 100.0 *. float_of_int (n - 1)) in
      List.nth sorted (min (n - 1) idx)

(** Mean latency of an operation (or all operations). *)
let mean_latency (m : t) ?op () : float = mean (all_samples m ?op ())

let stddev_latency (m : t) ?op () : float = stddev (all_samples m ?op ())

let p95_latency (m : t) ?op () : float =
  percentile 95.0 (all_samples m ?op ())

(** Completed operations per second over the measured window. *)
let throughput (m : t) : float =
  let window = m.finished_at -. m.started_at in
  if window <= 0.0 then 0.0
  else float_of_int (count m ()) /. (window /. 1000.0)

let op_names (m : t) : string list =
  Hashtbl.fold (fun k _ acc -> k :: acc) m.by_op [] |> List.sort compare
