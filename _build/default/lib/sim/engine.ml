(** Discrete-event simulation engine: a time-ordered event queue of
    closures.  Time is in milliseconds. *)

type event = { at : float; seq : int; action : unit -> unit }

(* binary min-heap on (at, seq) *)
type t = {
  mutable heap : event array;
  mutable len : int;
  mutable now : float;
  mutable seq : int;
  mutable executed : int;
}

let create () =
  {
    heap = Array.make 1024 { at = 0.0; seq = 0; action = ignore };
    len = 0;
    now = 0.0;
    seq = 0;
    executed = 0;
  }

(** Current simulation time (ms). *)
let now (e : t) : float = e.now

let before (a : event) (b : event) =
  a.at < b.at || (a.at = b.at && a.seq < b.seq)

let swap (e : t) i j =
  let tmp = e.heap.(i) in
  e.heap.(i) <- e.heap.(j);
  e.heap.(j) <- tmp

let rec sift_up (e : t) i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if before e.heap.(i) e.heap.(parent) then begin
      swap e i parent;
      sift_up e parent
    end
  end

let rec sift_down (e : t) i =
  let l = (2 * i) + 1 and r = (2 * i) + 2 in
  let smallest = ref i in
  if l < e.len && before e.heap.(l) e.heap.(!smallest) then smallest := l;
  if r < e.len && before e.heap.(r) e.heap.(!smallest) then smallest := r;
  if !smallest <> i then begin
    swap e i !smallest;
    sift_down e !smallest
  end

(** Schedule [action] to run [delay] ms from now (delays clamp to 0). *)
let schedule (e : t) ~(delay : float) (action : unit -> unit) : unit =
  let at = e.now +. max 0.0 delay in
  if e.len = Array.length e.heap then begin
    let bigger = Array.make (2 * e.len) e.heap.(0) in
    Array.blit e.heap 0 bigger 0 e.len;
    e.heap <- bigger
  end;
  e.seq <- e.seq + 1;
  e.heap.(e.len) <- { at; seq = e.seq; action };
  e.len <- e.len + 1;
  sift_up e (e.len - 1)

let pop (e : t) : event option =
  if e.len = 0 then None
  else begin
    let top = e.heap.(0) in
    e.len <- e.len - 1;
    if e.len > 0 then begin
      e.heap.(0) <- e.heap.(e.len);
      sift_down e 0
    end;
    Some top
  end

(** Run events until simulated time [t_end]; events scheduled at or
    before [t_end] execute, later ones stay queued. *)
let run_until (e : t) (t_end : float) : unit =
  let continue_ = ref true in
  while !continue_ do
    match pop e with
    | Some ev when ev.at <= t_end ->
        e.now <- ev.at;
        e.executed <- e.executed + 1;
        ev.action ()
    | Some ev ->
        (* beyond the horizon: put it back (capacity is guaranteed — pop
           just freed a slot) *)
        e.heap.(e.len) <- ev;
        e.len <- e.len + 1;
        sift_up e (e.len - 1);
        e.now <- t_end;
        continue_ := false
    | None ->
        e.now <- t_end;
        continue_ := false
  done

(** Drain the queue completely. *)
let run (e : t) : unit =
  let continue_ = ref true in
  while !continue_ do
    match pop e with
    | Some ev ->
        e.now <- ev.at;
        e.executed <- e.executed + 1;
        ev.action ()
    | None -> continue_ := false
  done

let events_executed (e : t) : int = e.executed
let queue_length (e : t) : int = e.len
