(** Measurement collection: per-operation latency series, throughput,
    violation and failure counts for the benchmark harness. *)

type t = {
  by_op : (string, series) Hashtbl.t;
  mutable violations : int;
  mutable failures : int;
  mutable started_at : float;
  mutable finished_at : float;
}

and series = { mutable samples : float list; mutable n : int }

val create : unit -> t

(** Record one operation latency (ms). *)
val record : t -> op:string -> float -> unit

val record_violations : t -> int -> unit
val record_failure : t -> unit

(** Fraction of attempted operations that executed successfully. *)
val availability : t -> float

val count : t -> ?op:string -> unit -> int
val all_samples : t -> ?op:string -> unit -> float list

(** {1 Statistics} *)

val mean : float list -> float
val stddev : float list -> float
val percentile : float -> float list -> float
val mean_latency : t -> ?op:string -> unit -> float
val stddev_latency : t -> ?op:string -> unit -> float
val p95_latency : t -> ?op:string -> unit -> float

(** Completed operations per second over the measured window. *)
val throughput : t -> float

val op_names : t -> string list
