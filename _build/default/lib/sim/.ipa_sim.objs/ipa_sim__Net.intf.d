lib/sim/net.mli:
