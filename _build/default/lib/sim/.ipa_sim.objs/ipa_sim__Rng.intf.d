lib/sim/rng.mli:
