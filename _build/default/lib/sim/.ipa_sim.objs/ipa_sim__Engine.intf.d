lib/sim/engine.mli:
