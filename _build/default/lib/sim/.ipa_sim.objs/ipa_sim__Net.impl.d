lib/sim/net.ml: Fmt List Rng
