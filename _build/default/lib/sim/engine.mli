(** Discrete-event simulation engine: a time-ordered queue of closures.
    Time is in milliseconds; ties execute in scheduling order. *)

type t

val create : unit -> t

(** Current simulation time (ms). *)
val now : t -> float

(** Schedule an action [delay] ms from now (delays clamp to 0). *)
val schedule : t -> delay:float -> (unit -> unit) -> unit

(** Run events up to and including [t_end]; later events stay queued and
    the clock advances to [t_end]. *)
val run_until : t -> float -> unit

(** Drain the queue completely. *)
val run : t -> unit

val events_executed : t -> int
val queue_length : t -> int
