(** Wide-area network model: the paper's three-region EC2 deployment.

    Mean round-trip latencies (§5.2.1): 80 ms between us-east ↔ us-west
    and us-east ↔ eu-west, 160 ms between eu-west ↔ us-west.  Within a
    region (client ↔ co-located server) we model a sub-millisecond LAN.
    Sampled latencies get ±[jitter] relative uniform noise. *)

type t = {
  rtts : ((string * string) * float) list;  (** mean RTT in ms *)
  lan_rtt : float;
  jitter : float;  (** relative, e.g. 0.1 = ±10% *)
  rng : Rng.t;
}

let paper_regions = [ "us-east"; "us-west"; "eu-west" ]

let paper_rtts =
  [
    (("us-east", "us-west"), 80.0);
    (("us-east", "eu-west"), 80.0);
    (("us-west", "eu-west"), 160.0);
  ]

let create ?(rtts = paper_rtts) ?(lan_rtt = 0.5) ?(jitter = 0.1) ~(seed : int)
    () : t =
  { rtts; lan_rtt; jitter; rng = Rng.create seed }

let mean_rtt (n : t) (a : string) (b : string) : float =
  if a = b then n.lan_rtt
  else
    match
      ( List.assoc_opt (a, b) n.rtts,
        List.assoc_opt (b, a) n.rtts )
    with
    | Some r, _ | _, Some r -> r
    | None, None -> invalid_arg (Fmt.str "Net: no RTT between %s and %s" a b)

let with_jitter (n : t) (v : float) : float =
  v *. Rng.uniform n.rng (1.0 -. n.jitter) (1.0 +. n.jitter)

(** Sampled round-trip time between two regions (ms). *)
let rtt (n : t) (a : string) (b : string) : float =
  with_jitter n (mean_rtt n a b)

(** Sampled one-way delay. *)
let one_way (n : t) (a : string) (b : string) : float =
  with_jitter n (mean_rtt n a b /. 2.0)
