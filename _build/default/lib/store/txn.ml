(** Highly-available transactions over a replica (paper §2.1, [6]).

    A transaction reads from its replica's current causal snapshot (plus
    its own buffered writes — read-your-writes), buffers update effects,
    and commits them as one atomic batch.  Commit never coordinates:
    the batch is applied locally and replicated asynchronously. *)

open Ipa_crdt

type t = {
  rep : Replica.t;
  mutable updates : (string * Obj.op) list;  (** reverse order *)
  mutable events : int;  (** clock ticks consumed (one per effect) *)
  mutable committed : bool;
}

let begin_ (rep : Replica.t) : t =
  { rep; updates = []; events = 0; committed = false }

(** The transaction's view of an object: replica state with the
    transaction's own buffered updates for that key replayed on top. *)
let get (tx : t) (key : string) (ty : Obj.otype) : Obj.t =
  let base = Replica.get tx.rep key ty in
  List.fold_left
    (fun o (k, op) -> if k = key then Obj.apply o op else o)
    base (List.rev tx.updates)

(** A fresh dot for a prepared effect (ticks the transaction's event
    count; the dot becomes part of the origin clock at commit). *)
let fresh_dot (tx : t) : Vclock.dot =
  tx.events <- tx.events + 1;
  {
    Vclock.rep = tx.rep.Replica.id;
    cnt = Vclock.get tx.rep.Replica.vv tx.rep.Replica.id + tx.events;
  }

(** The clock a prepared effect should carry: the source clock including
    every event of this transaction so far (used by remove-wins adds). *)
let current_vv (tx : t) : Vclock.t =
  Vclock.set tx.rep.Replica.vv tx.rep.Replica.id
    (Vclock.get tx.rep.Replica.vv tx.rep.Replica.id + tx.events)

(** The clock for an effect that is its own event — rem-wins removes and
    wildcard barriers: ticks the transaction and returns the clock
    including the new event, so the barrier dominates everything the
    source has seen (an empty-clock barrier would mask nothing). *)
let fresh_vv (tx : t) : Vclock.t =
  tx.events <- tx.events + 1;
  current_vv tx

let lamport (tx : t) : int = Replica.next_lamport tx.rep

(** Buffer an update effect. *)
let update (tx : t) (key : string) (op : Obj.op) : unit =
  tx.updates <- (key, op) :: tx.updates

(** Number of updates buffered so far. *)
let update_count (tx : t) : int = List.length tx.updates

(** Distinct keys written so far. *)
let keys_written (tx : t) : int =
  List.length (List.sort_uniq String.compare (List.map fst tx.updates))

(** Commit: apply the buffered updates atomically at the local replica
    and return the replication batch ([None] for read-only
    transactions). *)
let commit (tx : t) : Replica.batch option =
  if tx.committed then invalid_arg "Txn.commit: already committed";
  tx.committed <- true;
  match tx.updates with
  | [] -> None
  | ups ->
      Some
        (Replica.commit tx.rep ~events:(max 1 tx.events) (List.rev ups))

let abort (tx : t) : unit = tx.committed <- true
