(** Store objects: a uniform wrapper over the CRDT library so replicas
    can hold heterogeneous objects and route downstream effects by key.

    Each object is created with a {!otype} descriptor (the per-object
    conflict-resolution choice of the paper's system model §2.1). *)

open Ipa_crdt

type t =
  | O_awset of Awset.t
  | O_rwset of Rwset.t
  | O_pncounter of Pncounter.t
  | O_bcounter of Bcounter.t
  | O_lww of Lww.t
  | O_mvreg of Mvreg.t
  | O_compset of Compset.t
  | O_compcounter of Compcounter.t

(** Object type descriptors, fixing the conflict-resolution policy. *)
type otype =
  | T_awset
  | T_rwset
  | T_pncounter
  | T_bcounter
  | T_lww
  | T_mvreg
  | T_compset of { max_size : int }
  | T_compcounter of { min_value : int }

type op =
  | Op_awset of Awset.op
  | Op_rwset of Rwset.op
  | Op_pncounter of Pncounter.op
  | Op_bcounter of Bcounter.op
  | Op_lww of Lww.op
  | Op_mvreg of Mvreg.op
  | Op_compset of Compset.op
  | Op_compcounter of Compcounter.op

exception Type_mismatch of string

let init (ty : otype) : t =
  match ty with
  | T_awset -> O_awset Awset.empty
  | T_rwset -> O_rwset Rwset.empty
  | T_pncounter -> O_pncounter Pncounter.empty
  | T_bcounter -> O_bcounter Bcounter.empty
  | T_lww -> O_lww Lww.empty
  | T_mvreg -> O_mvreg Mvreg.empty
  | T_compset { max_size } -> O_compset (Compset.create ~max_size)
  | T_compcounter { min_value } -> O_compcounter (Compcounter.create ~min_value ())

let apply (o : t) (op : op) : t =
  match (o, op) with
  | O_awset s, Op_awset x -> O_awset (Awset.apply s x)
  | O_rwset s, Op_rwset x -> O_rwset (Rwset.apply s x)
  | O_pncounter s, Op_pncounter x -> O_pncounter (Pncounter.apply s x)
  | O_bcounter s, Op_bcounter x -> O_bcounter (Bcounter.apply s x)
  | O_lww s, Op_lww x -> O_lww (Lww.apply s x)
  | O_mvreg s, Op_mvreg x -> O_mvreg (Mvreg.apply s x)
  | O_compset s, Op_compset x -> O_compset (Compset.apply s x)
  | O_compcounter s, Op_compcounter x -> O_compcounter (Compcounter.apply s x)
  | _ -> raise (Type_mismatch "Obj.apply: op does not match object type")

(* typed accessors *)
let as_awset = function O_awset s -> s | _ -> raise (Type_mismatch "awset")
let as_rwset = function O_rwset s -> s | _ -> raise (Type_mismatch "rwset")

let as_pncounter = function
  | O_pncounter s -> s
  | _ -> raise (Type_mismatch "pncounter")

let as_bcounter = function
  | O_bcounter s -> s
  | _ -> raise (Type_mismatch "bcounter")

let as_lww = function O_lww s -> s | _ -> raise (Type_mismatch "lww")
let as_mvreg = function O_mvreg s -> s | _ -> raise (Type_mismatch "mvreg")

let as_compset = function
  | O_compset s -> s
  | _ -> raise (Type_mismatch "compset")

let as_compcounter = function
  | O_compcounter s -> s
  | _ -> raise (Type_mismatch "compcounter")
