(** A store replica: causally-consistent application of update batches.

    Each committed transaction produces a {!batch} of downstream CRDT
    effects tagged with the origin's clock.  A remote replica buffers a
    batch until its causal dependencies are satisfied and then applies
    all its updates atomically — providing the causal consistency +
    highly-available-transactions combination the paper assumes of the
    underlying store (SwiftCloud). *)

open Ipa_crdt

type batch = {
  b_origin : string;
  b_seq : int;  (** per-origin commit number *)
  b_deps : Vclock.t;  (** origin clock {e before} the transaction *)
  b_after : Vclock.t;  (** origin clock after (deps + this txn's events) *)
  b_updates : (string * Obj.op) list;
}

type t = {
  id : string;
  region : string;  (** data-center name, used by the simulator *)
  mutable vv : Vclock.t;
  mutable seq : int;
  mutable lamport : int;
  data : (string, Obj.t) Hashtbl.t;
  types : (string, Obj.otype) Hashtbl.t;
  mutable pending : batch list;  (** received, awaiting causal delivery *)
  mutable peers : string list;  (** cluster membership (incl. self) *)
  peer_vvs : (string, Vclock.t) Hashtbl.t;
      (** latest known clock of each peer, learned from applied batches;
          the pointwise minimum is the causal-stability cut *)
  mutable delivered : int;  (** remote batches applied *)
  mutable committed : int;  (** local transactions committed *)
}

let create ?(region = "local") (id : string) : t =
  {
    id;
    region;
    vv = Vclock.empty;
    seq = 0;
    lamport = 0;
    data = Hashtbl.create 256;
    types = Hashtbl.create 256;
    pending = [];
    peers = [ id ];
    peer_vvs = Hashtbl.create 8;
    delivered = 0;
    committed = 0;
  }

(** Read an object, creating it with type [ty] if absent (keys are
    created on first access, as in a key-value store with typed keys). *)
let get (r : t) (key : string) (ty : Obj.otype) : Obj.t =
  match Hashtbl.find_opt r.data key with
  | Some o -> o
  | None ->
      let o = Obj.init ty in
      Hashtbl.replace r.data key o;
      Hashtbl.replace r.types key ty;
      o

(** Read an object without creating it. *)
let peek (r : t) (key : string) : Obj.t option = Hashtbl.find_opt r.data key

let apply_update (r : t) ((key, op) : string * Obj.op) : unit =
  let cur =
    match Hashtbl.find_opt r.data key with
    | Some o -> o
    | None -> (
        (* effects can arrive before any local access: infer the object
           type from the op *)
        match op with
        | Obj.Op_awset _ -> Obj.init Obj.T_awset
        | Obj.Op_rwset _ -> Obj.init Obj.T_rwset
        | Obj.Op_pncounter _ -> Obj.init Obj.T_pncounter
        | Obj.Op_bcounter _ -> Obj.init Obj.T_bcounter
        | Obj.Op_lww _ -> Obj.init Obj.T_lww
        | Obj.Op_mvreg _ -> Obj.init Obj.T_mvreg
        | Obj.Op_compset _ -> Obj.init (Obj.T_compset { max_size = max_int })
        | Obj.Op_compcounter _ ->
            Obj.init (Obj.T_compcounter { min_value = 0 }))
  in
  Hashtbl.replace r.data key (Obj.apply cur op)

(** Fresh Lamport timestamp (for LWW registers). *)
let next_lamport (r : t) : int =
  r.lamport <- r.lamport + 1;
  r.lamport

(* ------------------------------------------------------------------ *)
(* Local commit                                                        *)
(* ------------------------------------------------------------------ *)

(** Commit a transaction's updates: applies them locally and returns the
    batch to replicate. [events] is the number of clock ticks the
    transaction consumed (one per prepared effect). *)
let commit (r : t) ~(events : int) (updates : (string * Obj.op) list) : batch =
  let deps = r.vv in
  let after = Vclock.set deps r.id (Vclock.get deps r.id + events) in
  r.seq <- r.seq + 1;
  r.committed <- r.committed + 1;
  let b =
    { b_origin = r.id; b_seq = r.seq; b_deps = deps; b_after = after; b_updates = updates }
  in
  List.iter (apply_update r) updates;
  r.vv <- after;
  b

(* ------------------------------------------------------------------ *)
(* Remote delivery                                                     *)
(* ------------------------------------------------------------------ *)

let deliverable (r : t) (b : batch) : bool = Vclock.leq b.b_deps r.vv

let apply_batch (r : t) (b : batch) : unit =
  List.iter (apply_update r) b.b_updates;
  r.vv <- Vclock.merge r.vv b.b_after;
  r.lamport <- max r.lamport (Vclock.total b.b_after);
  (* the batch proves its origin knew b_after — track for stability *)
  let prev =
    Option.value ~default:Vclock.empty (Hashtbl.find_opt r.peer_vvs b.b_origin)
  in
  Hashtbl.replace r.peer_vvs b.b_origin (Vclock.merge prev b.b_after);
  r.delivered <- r.delivered + 1

(** Receive a batch from the network; applies it (and any unblocked
    pending batches) as soon as causal dependencies are met. *)
let receive (r : t) (b : batch) : unit =
  if b.b_origin = r.id then () (* own batches are applied at commit *)
  else begin
    r.pending <- r.pending @ [ b ];
    let progress = ref true in
    while !progress do
      progress := false;
      let ready, blocked = List.partition (deliverable r) r.pending in
      if ready <> [] then begin
        List.iter (apply_batch r) ready;
        r.pending <- blocked;
        progress := true
      end
    done
  end

(** Number of batches buffered waiting for causal dependencies. *)
let pending_count (r : t) : int = List.length r.pending

(* ------------------------------------------------------------------ *)
(* Causal stability and garbage collection                             *)
(* ------------------------------------------------------------------ *)

(** The causal-stability cut: every event at or below this clock is
    known to be included in {e every} replica's state.  Computed as the
    pointwise minimum of the local clock and the latest clock learned
    from each peer (conservative: unknown peers pin the cut at zero). *)
let stable_vv (r : t) : Vclock.t =
  List.fold_left
    (fun acc peer ->
      if peer = r.id then acc
      else
        let pv =
          Option.value ~default:Vclock.empty (Hashtbl.find_opt r.peer_vvs peer)
        in
        (* pointwise min *)
        Vclock.of_list
          (List.map
             (fun (rep, n) -> (rep, min n (Vclock.get pv rep)))
             (Vclock.to_list acc)))
    r.vv r.peers

(** Reclaim CRDT metadata that causal stability has made dead: rem-wins
    barriers (and the adds they permanently mask) and payloads of
    stably-removed add-wins elements (§4.2.1).  Returns the number of
    metadata records reclaimed. *)
let gc (r : t) : int =
  let stable = stable_vv r in
  let reclaimed = ref 0 in
  Hashtbl.iter
    (fun key obj ->
      match obj with
      | Obj.O_rwset s ->
          let before = Ipa_crdt.Rwset.metadata_size s in
          let s' = Ipa_crdt.Rwset.gc ~stable s in
          reclaimed := !reclaimed + before - Ipa_crdt.Rwset.metadata_size s';
          Hashtbl.replace r.data key (Obj.O_rwset s')
      | Obj.O_awset s ->
          let before = Ipa_crdt.Awset.metadata_size s in
          let s' = Ipa_crdt.Awset.gc ~stable s in
          reclaimed := !reclaimed + before - Ipa_crdt.Awset.metadata_size s';
          Hashtbl.replace r.data key (Obj.O_awset s')
      | _ -> ())
    r.data;
  !reclaimed
