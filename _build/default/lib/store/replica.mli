(** A store replica: causally-consistent application of update batches.

    Each committed transaction produces a {!batch} of downstream CRDT
    effects tagged with the origin's clock.  A remote replica buffers a
    batch until its causal dependencies are satisfied and applies its
    updates atomically — the causal consistency + highly-available
    transactions combination the paper assumes of the underlying store
    (SwiftCloud). *)

open Ipa_crdt

type batch = {
  b_origin : string;
  b_seq : int;  (** per-origin commit number *)
  b_deps : Vclock.t;  (** origin clock {e before} the transaction *)
  b_after : Vclock.t;  (** origin clock after (deps + the txn's events) *)
  b_updates : (string * Obj.op) list;
}

type t = {
  id : string;
  region : string;  (** data-center name, used by the simulator *)
  mutable vv : Vclock.t;
  mutable seq : int;
  mutable lamport : int;
  data : (string, Obj.t) Hashtbl.t;
  types : (string, Obj.otype) Hashtbl.t;
  mutable pending : batch list;  (** received, awaiting causal delivery *)
  mutable peers : string list;  (** cluster membership (incl. self) *)
  peer_vvs : (string, Vclock.t) Hashtbl.t;
      (** latest known clock of each peer, learned from applied batches *)
  mutable delivered : int;  (** remote batches applied *)
  mutable committed : int;  (** local transactions committed *)
}

val create : ?region:string -> string -> t

(** Read an object, creating it with the given type if absent. *)
val get : t -> string -> Obj.otype -> Obj.t

(** Read an object without creating it. *)
val peek : t -> string -> Obj.t option

(** Fresh Lamport timestamp (for LWW registers). *)
val next_lamport : t -> int

(** Commit a transaction's updates: apply locally and return the batch
    to replicate.  [events] is the number of clock ticks consumed. *)
val commit : t -> events:int -> (string * Obj.op) list -> batch

(** Receive a batch from the network; applied (with any unblocked
    pending batches) as soon as causal dependencies are met.  Own
    batches are ignored (already applied at commit). *)
val receive : t -> batch -> unit

(** Batches buffered waiting for causal dependencies. *)
val pending_count : t -> int

(** The causal-stability cut: every event at or below it is known to be
    included in every replica's state. *)
val stable_vv : t -> Vclock.t

(** Reclaim CRDT metadata made dead by causal stability (rem-wins
    barriers, stably-removed payloads).  Returns records reclaimed. *)
val gc : t -> int
