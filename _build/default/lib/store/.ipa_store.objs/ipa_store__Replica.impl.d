lib/store/replica.ml: Hashtbl Ipa_crdt List Obj Option Vclock
