lib/store/cluster.ml: Ipa_crdt List Replica Txn
