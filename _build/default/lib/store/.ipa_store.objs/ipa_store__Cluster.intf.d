lib/store/cluster.mli: Replica Txn
