lib/store/txn.ml: Ipa_crdt List Obj Replica String Vclock
