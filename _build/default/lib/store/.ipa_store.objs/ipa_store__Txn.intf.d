lib/store/txn.mli: Ipa_crdt Obj Replica Vclock
