lib/store/obj.ml: Awset Bcounter Compcounter Compset Ipa_crdt Lww Mvreg Pncounter Rwset
