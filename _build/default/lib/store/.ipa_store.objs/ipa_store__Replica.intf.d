lib/store/replica.mli: Hashtbl Ipa_crdt Obj Vclock
