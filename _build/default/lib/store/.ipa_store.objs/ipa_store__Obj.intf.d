lib/store/obj.mli: Awset Bcounter Compcounter Compset Ipa_crdt Lww Mvreg Pncounter Rwset
