(** Invariant classification (Table 1 of the paper).

    Each invariant clause is classified into one or more of the seven
    classes the paper surveys; the class determines whether the invariant
    is I-Confluent under plain weak consistency (Bailis et al.) and how
    IPA handles it (direct repair, compensation, or flag). *)

open Ipa_logic
open Ipa_spec

type inv_class =
  | Sequential_id
  | Unique_id
  | Numeric_inv
  | Aggregation_constraint
  | Aggregation_inclusion
  | Referential_integrity
  | Disjunction

let class_name = function
  | Sequential_id -> "Sequential id."
  | Unique_id -> "Unique id."
  | Numeric_inv -> "Numeric inv."
  | Aggregation_constraint -> "Aggreg. const."
  | Aggregation_inclusion -> "Aggreg. incl."
  | Referential_integrity -> "Ref. integrity"
  | Disjunction -> "Disjunctions"

let all_classes =
  [
    Sequential_id; Unique_id; Numeric_inv; Aggregation_constraint;
    Aggregation_inclusion; Referential_integrity; Disjunction;
  ]

(** Is the class I-Confluent under plain weak consistency (Table 1,
    column "I-Conf.")? *)
let i_confluent = function
  | Sequential_id -> false
  | Unique_id -> true (* pre-partition the identifier space *)
  | Numeric_inv -> false
  | Aggregation_constraint -> false
  | Aggregation_inclusion -> true (* absent cross-object dependencies *)
  | Referential_integrity -> false
  | Disjunction -> false

(** How IPA handles the class (Table 1, column "IPA"). *)
type support = Direct | Via_compensation | Unsupported

let ipa_support = function
  | Sequential_id -> Unsupported
  | Unique_id -> Direct
  | Numeric_inv -> Via_compensation
  | Aggregation_constraint -> Via_compensation
  | Aggregation_inclusion -> Direct
  | Referential_integrity -> Direct
  | Disjunction -> Direct

let support_name = function
  | Direct -> "Yes"
  | Via_compensation -> "Comp."
  | Unsupported -> "No"

(* ------------------------------------------------------------------ *)
(* Clause-shape classification                                         *)
(* ------------------------------------------------------------------ *)

let rec strip_quant = function
  | Ast.Forall (_, g) | Ast.Exists (_, g) -> strip_quant g
  | g -> g

let rec contains_or = function
  | Ast.Or _ -> true
  | Ast.And (a, b) | Ast.Implies (a, b) | Ast.Iff (a, b) ->
      contains_or a || contains_or b
  | Ast.Not f -> contains_or f
  | Ast.Forall (_, f) | Ast.Exists (_, f) -> contains_or f
  | _ -> false

let rec contains_eq = function
  | Ast.Eq _ -> true
  | Ast.And (a, b) | Ast.Or (a, b) | Ast.Implies (a, b) | Ast.Iff (a, b) ->
      contains_eq a || contains_eq b
  | Ast.Not f -> contains_eq f
  | Ast.Forall (_, f) | Ast.Exists (_, f) -> contains_eq f
  | _ -> false

(* arities of the atoms of a formula *)
let atom_arities f =
  Ast.fold_atoms (fun acc _ args -> List.length args :: acc) [] f

(** Classes of a single invariant. Explicit tags take precedence; shape
    analysis can report several classes for one clause (e.g. the
    Tournament [inMatch] invariant is both an aggregation inclusion and a
    disjunction). *)
let classify_invariant (inv : Types.invariant) : inv_class list =
  match inv.itag with
  | Some Types.Tag_unique_id -> [ Unique_id ]
  | Some Types.Tag_sequential_id -> [ Sequential_id ]
  | None ->
      let f = inv.iformula in
      let body = strip_quant f in
      let classes = ref [] in
      let add c = if not (List.mem c !classes) then classes := c :: !classes in
      if Ast.has_cardinality f then add Aggregation_constraint
      else if Ast.has_nfun f then add Numeric_inv;
      (match body with
      | Ast.Implies (_, concl) ->
          if contains_or concl then add Disjunction;
          if contains_eq concl then add Unique_id;
          let arities = atom_arities concl in
          if List.exists (fun a -> a <= 1) arities then
            add Referential_integrity;
          if List.exists (fun a -> a >= 2) arities then
            add Aggregation_inclusion
      | Ast.Not inner ->
          (* ¬(a ∧ b) is the disjunction ¬a ∨ ¬b *)
          (match inner with Ast.And _ -> add Disjunction | _ -> ());
          if contains_or inner then add Disjunction
      | _ -> ());
      List.rev !classes

(** All invariant classes present in an application.  Entity keys are
    unique identifiers in every application (generated without
    coordination by pre-partitioning the space), so [Unique_id] is always
    present — as in Table 1, where every application has the row. *)
let app_classes (spec : Types.t) : inv_class list =
  let from_invs = List.concat_map classify_invariant spec.invariants in
  let with_unique =
    if List.mem Unique_id from_invs then from_invs
    else Unique_id :: from_invs
  in
  List.filter (fun c -> List.mem c with_unique) all_classes

(** The Table 1 matrix: rows are classes, columns are applications;
    cell is [true] when the class occurs in the application. *)
let table (specs : Types.t list) : (inv_class * (string * bool) list) list =
  List.map
    (fun cls ->
      ( cls,
        List.map
          (fun (s : Types.t) -> (s.app_name, List.mem cls (app_classes s)))
          specs ))
    all_classes
