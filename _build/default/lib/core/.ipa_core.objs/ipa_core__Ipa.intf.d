lib/core/ipa.mli: Compensation Detect Ipa_spec Repair Types
