lib/core/effects.ml: Ast Fmt Ground Ipa_logic Ipa_spec List Option Types
