lib/core/report.ml: Classify Compensation Detect Effects Fmt Ground Ipa Ipa_logic Ipa_spec List Pairctx Repair String Types
