lib/core/ipa.ml: Compensation Detect Hashtbl Ipa_spec List Repair Types
