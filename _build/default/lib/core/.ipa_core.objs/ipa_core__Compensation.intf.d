lib/core/compensation.mli: Ast Format Ipa_logic Ipa_spec Types
