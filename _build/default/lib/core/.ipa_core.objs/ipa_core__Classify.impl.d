lib/core/classify.ml: Ast Ipa_logic Ipa_spec List Types
