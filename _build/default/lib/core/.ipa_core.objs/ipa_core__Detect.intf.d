lib/core/detect.mli: Effects Ground Ipa_logic Ipa_spec Pairctx Types
