lib/core/classify.mli: Ipa_spec Types
