lib/core/repair.mli: Ast Detect Format Ipa_logic Ipa_spec Types
