lib/core/report.mli: Detect Format Ipa Ipa_spec Types
