lib/core/effects.mli: Ground Ipa_logic Ipa_spec Types
