lib/core/compensation.ml: Ast Fmt Ipa_logic Ipa_spec List Pp Types
