lib/core/pairctx.mli: Ground Ipa_logic Ipa_spec Types
