lib/core/detect.ml: Ast Effects Encode Fmt Ground Hashtbl Ipa_logic Ipa_solver Ipa_spec List Option Pairctx Types
