lib/core/repair.ml: Ast Detect Effects Fmt Hashtbl Ipa_logic Ipa_spec List Types
