lib/core/pairctx.ml: Ast Fmt Ground Ipa_logic Ipa_spec List String Types
