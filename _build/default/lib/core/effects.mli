(** Semantic machinery for operation effects: grounding writes, merging
    concurrent writes under convergence rules, and weakest preconditions
    by substitution (the [apply] step of Algorithm 1). *)

open Ipa_logic
open Ipa_spec

(** Ground writes of one operation execution: boolean assignments
    (wildcards expanded over the domain) and summed numeric deltas. *)
type writes = {
  bool_writes : (Ground.gatom * bool) list;
  num_writes : (Ground.gnum * int) list;
}

val empty_writes : writes
val lookup_bool : writes -> Ground.gatom -> bool option
val lookup_num : writes -> Ground.gnum -> int option

(** Ground the effects of an operation with parameters bound to domain
    elements.  Later boolean writes to the same atom win (sequential
    order within the transaction); numeric deltas accumulate. *)
val ground_writes :
  Types.t ->
  Ground.domain ->
  Types.operation ->
  (string * string) list ->
  writes

(** All possible merges of two concurrent write sets under the
    per-predicate convergence rules: add-wins/rem-wins give one outcome
    per opposing atom, LWW gives both; numeric deltas add. *)
val merge_writes : Types.t -> writes -> writes -> writes list

(** [apply_writes w g] — the pre-state formula equivalent to evaluating
    [g] after applying [w]: written atoms fold to constants, deltas fold
    into linear constants.  [apply_writes w (ground I)] is exactly the
    weakest precondition of [w] w.r.t. the invariant. *)
val apply_writes : writes -> Ground.gformula -> Ground.gformula

(** Post-state valuations from concrete pre-state valuations. *)
val post_state :
  batom:(Ground.gatom -> bool) ->
  bnum:(Ground.gnum -> int) ->
  writes ->
  (Ground.gatom -> bool) * (Ground.gnum -> int)
