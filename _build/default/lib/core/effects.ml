(** Semantic machinery for operation effects: grounding writes, merging
    concurrent effects under convergence rules, and computing weakest
    preconditions by substitution.

    An operation's effects, with its parameters bound to domain elements,
    expand to a set of ground {e writes}: boolean assignments to ground
    atoms (wildcards expand over the domain) and integer deltas on ground
    numeric state variables.  The merge of two concurrent write sets
    resolves opposing boolean writes with the predicate's convergence rule
    (paper §3.2, function [apply] of Algorithm 1); numeric deltas add. *)

open Ipa_logic
open Ipa_spec

(* ------------------------------------------------------------------ *)
(* Ground writes                                                       *)
(* ------------------------------------------------------------------ *)

type writes = {
  bool_writes : (Ground.gatom * bool) list;
  num_writes : (Ground.gnum * int) list;  (** summed deltas *)
}

let empty_writes = { bool_writes = []; num_writes = [] }

let lookup_bool w a =
  List.assoc_opt a w.bool_writes

let lookup_num w n =
  List.assoc_opt n w.num_writes

(* expand one argument pattern over the domain *)
let rec expand_pattern (dom : Ground.domain) (sorts : Ast.sort list)
    (args : Ast.term list) : string list list =
  match (sorts, args) with
  | [], [] -> [ [] ]
  | s :: srest, a :: arest ->
      let heads =
        match a with
        | Ast.Const c -> [ c ]
        | Ast.Star -> ( match List.assoc_opt s dom with Some es -> es | None -> [])
        | Ast.Var v ->
            invalid_arg
              (Fmt.str "Effects.ground_writes: unbound parameter %s" v)
      in
      let tails = expand_pattern dom srest arest in
      List.concat_map (fun h -> List.map (fun t -> h :: t) tails) heads
  | _ -> invalid_arg "Effects.ground_writes: arity mismatch"

(** Ground the effects of [op] with parameters bound by [binding]
    (parameter name → domain element) over [dom].  Later effects override
    earlier boolean writes to the same atom (sequential execution order
    within the transaction); numeric deltas accumulate. *)
let ground_writes (spec : Types.t) (dom : Ground.domain)
    (op : Types.operation) (binding : (string * string) list) : writes =
  let subst_arg = function
    | Ast.Var v -> (
        match List.assoc_opt v binding with
        | Some e -> Ast.Const e
        | None -> invalid_arg (Fmt.str "unbound parameter %s of %s" v op.oname))
    | t -> t
  in
  List.fold_left
    (fun acc (ae : Types.annotated_effect) ->
      let e = ae.eff in
      let pd =
        match Types.find_pred spec e.epred with
        | Some pd -> pd
        | None -> invalid_arg ("unknown predicate " ^ e.epred)
      in
      let args = List.map subst_arg e.eargs in
      let tuples = expand_pattern dom pd.psorts args in
      match e.evalue with
      | Types.Set b ->
          let new_writes =
            List.map (fun t -> ({ Ground.gpred = e.epred; gargs = t }, b)) tuples
          in
          (* later writes win within one operation *)
          let keep =
            List.filter
              (fun (a, _) -> not (List.mem_assoc a new_writes))
              acc.bool_writes
          in
          { acc with bool_writes = keep @ new_writes }
      | Types.Delta d ->
          let nws =
            List.fold_left
              (fun nw t ->
                let key = { Ground.gfun = e.epred; gnargs = t } in
                let prev = Option.value ~default:0 (List.assoc_opt key nw) in
                (key, prev + d) :: List.remove_assoc key nw)
              acc.num_writes tuples
          in
          { acc with num_writes = nws })
    empty_writes op.oeffects

(* ------------------------------------------------------------------ *)
(* Merging concurrent writes                                           *)
(* ------------------------------------------------------------------ *)

(** Merge two concurrent write sets under per-predicate convergence
    rules.  Returns {e all possible} merged outcomes: [Add_wins] and
    [Rem_wins] yield a single deterministic outcome per opposing atom;
    [Lww] yields both (the analysis must find every resolution safe). *)
let merge_writes (spec : Types.t) (w1 : writes) (w2 : writes) : writes list =
  (* numeric deltas simply add (commutative counters) *)
  let nums =
    List.fold_left
      (fun acc (n, d) ->
        let prev = Option.value ~default:0 (List.assoc_opt n acc) in
        (n, prev + d) :: List.remove_assoc n acc)
      w1.num_writes w2.num_writes
  in
  (* partition atoms into agreed and opposing *)
  let atoms =
    List.sort_uniq compare (List.map fst w1.bool_writes @ List.map fst w2.bool_writes)
  in
  let resolved, choices =
    List.fold_left
      (fun (res, ch) a ->
        match (lookup_bool w1 a, lookup_bool w2 a) with
        | Some v, None | None, Some v -> ((a, v) :: res, ch)
        | Some v1, Some v2 when v1 = v2 -> ((a, v1) :: res, ch)
        | Some _, Some _ -> (
            match Types.conv_rule_of spec a.Ground.gpred with
            | Types.Add_wins -> ((a, true) :: res, ch)
            | Types.Rem_wins -> ((a, false) :: res, ch)
            | Types.Lww -> (res, a :: ch))
        | None, None -> (res, ch))
      ([], []) atoms
  in
  (* expand LWW choices into all outcomes *)
  let rec expand choices base =
    match choices with
    | [] -> [ base ]
    | a :: rest ->
        expand rest ((a, true) :: base) @ expand rest ((a, false) :: base)
  in
  List.map
    (fun bw -> { bool_writes = bw; num_writes = nums })
    (expand choices resolved)

(* ------------------------------------------------------------------ *)
(* Post-state substitution / weakest preconditions                     *)
(* ------------------------------------------------------------------ *)

(** [apply_writes w g] is the formula over the {e pre}-state equivalent to
    evaluating [g] in the post-state of applying [w]: written atoms become
    constants, numeric deltas fold into linear constants.  Computing
    [apply_writes w (ground I)] is exactly the weakest precondition of the
    writes with respect to the invariant [I]. *)
let apply_writes (w : writes) (g : Ground.gformula) : Ground.gformula =
  let rec go = function
    | Ground.GTrue -> Ground.GTrue
    | Ground.GFalse -> Ground.GFalse
    | Ground.GAtom a -> (
        match lookup_bool w a with
        | Some true -> Ground.GTrue
        | Some false -> Ground.GFalse
        | None -> Ground.GAtom a)
    | Ground.GNot f -> Ground.gnot (go f)
    | Ground.GAnd (a, b) -> Ground.gand (go a) (go b)
    | Ground.GOr (a, b) -> Ground.gor (go a) (go b)
    | Ground.GCmp (op, lin) ->
        (* written indicator atoms fold to constants; numeric deltas shift *)
        let const = ref lin.Ground.const in
        let keep_pos =
          List.filter
            (fun a ->
              match lookup_bool w a with
              | Some true ->
                  incr const;
                  false
              | Some false -> false
              | None -> true)
            lin.Ground.pos
        in
        let keep_neg =
          List.filter
            (fun a ->
              match lookup_bool w a with
              | Some true ->
                  decr const;
                  false
              | Some false -> false
              | None -> true)
            lin.Ground.negs
        in
        List.iter
          (fun (c, n) ->
            match lookup_num w n with
            | Some d -> const := !const + (c * d)
            | None -> ())
          lin.Ground.funs;
        Ground.GCmp
          (op, { lin with pos = keep_pos; negs = keep_neg; const = !const })
  in
  go g

(** Evaluate the post-state of applying [w] to a concrete pre-state. *)
let post_state ~(batom : Ground.gatom -> bool) ~(bnum : Ground.gnum -> int)
    (w : writes) : (Ground.gatom -> bool) * (Ground.gnum -> int) =
  let batom' a = match lookup_bool w a with Some b -> b | None -> batom a in
  let bnum' n =
    match lookup_num w n with Some d -> bnum n + d | None -> bnum n
  in
  (batom', bnum')
