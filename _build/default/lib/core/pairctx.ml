(** Analysis contexts for a pair of operations: parameter unifications
    and the small-model domain.

    Pairwise conflict checking is sound (Gotsman et al. 2016, cited by
    the paper).  For two operations, any reachable violation is witnessed
    by a model where each pair of same-sorted parameters is either equal
    or distinct; enumerating the set partitions of the parameters of each
    sort, plus one extra "background" element per sort (for quantified
    variables ranging over entities the pair does not mention), covers
    all cases. *)

open Ipa_logic
open Ipa_spec

(** One analysis case: how parameters map to domain elements. *)
type unification = {
  binding1 : (string * string) list;  (** op1 parameter → element *)
  binding2 : (string * string) list;  (** op2 parameter → element *)
  dom : Ground.domain;
}

(* set partitions of a list: each element is assigned to an existing or
   fresh block. Returns blocks as lists of elements. *)
let rec partitions = function
  | [] -> [ [] ]
  | x :: rest ->
      let sub = partitions rest in
      List.concat_map
        (fun blocks ->
          (* x joins any existing block or a new one *)
          let with_existing =
            List.mapi
              (fun i _ ->
                List.mapi
                  (fun j b -> if i = j then x :: b else b)
                  blocks)
              blocks
          in
          (with_existing @ [ [ x ] :: blocks ]))
        sub

(** All parameter unifications for a pair of operations.  Parameters are
    tagged with their operation (1 or 2) to keep same-named parameters of
    the two operations distinct. *)
let unifications (spec : Types.t) (op1 : Types.operation)
    (op2 : Types.operation) : unification list =
  let params =
    List.map (fun (p : Ast.tvar) -> (1, p)) op1.oparams
    @ List.map (fun (p : Ast.tvar) -> (2, p)) op2.oparams
  in
  (* group parameters by sort, preserving spec sort order *)
  let by_sort =
    List.map
      (fun s -> (s, List.filter (fun (_, (p : Ast.tvar)) -> p.vsort = s) params))
      spec.sorts
  in
  (* per sort: all partitions; elements named <Sort><index> *)
  let per_sort =
    List.map
      (fun (s, ps) ->
        let parts = partitions ps in
        List.map
          (fun blocks ->
            let blocks = List.rev blocks in
            let named =
              List.mapi (fun i block -> (Fmt.str "%s%d" s (i + 1), block)) blocks
            in
            let elems = List.map fst named @ [ Fmt.str "%s_bg" s ] in
            let bindings =
              List.concat_map
                (fun (e, block) ->
                  List.map (fun (tag, (p : Ast.tvar)) -> (tag, p.vname, e)) block)
                named
            in
            ((s, elems), bindings))
          parts)
      by_sort
  in
  (* cross product over sorts *)
  let rec cross = function
    | [] -> [ ([], []) ]
    | cases :: rest ->
        let tails = cross rest in
        List.concat_map
          (fun ((se, bs) : (string * string list) * (int * string * string) list) ->
            List.map (fun (doms, binds) -> (se :: doms, bs @ binds)) tails)
          cases
  in
  List.map
    (fun (dom, binds) ->
      {
        binding1 =
          List.filter_map
            (fun (tag, v, e) -> if tag = 1 then Some (v, e) else None)
            binds;
        binding2 =
          List.filter_map
            (fun (tag, v, e) -> if tag = 2 then Some (v, e) else None)
            binds;
        dom;
      })
    (cross per_sort)

(** Human-readable description of a unification, e.g.
    ["p1=p2, t1<>t2"]. *)
let describe (u : unification) : string =
  let show which binding =
    List.map (fun (v, e) -> Fmt.str "%s.%s=%s" which v e) binding
  in
  String.concat ", " (show "op1" u.binding1 @ show "op2" u.binding2)
