(** Compensation synthesis (§3.4) for invariants whose violation cannot
    reasonably be prevented: numeric invariants and aggregation
    constraints.  Generated compensations are commutative, idempotent
    and monotonic (restock deltas via a max-register; deterministic
    victim removal). *)

open Ipa_logic
open Ipa_spec

type kind =
  | Restock of { nfun : string; delta : int }
      (** opposite delta per violation unit *)
  | Remove_excess of { pred : string; bound : Ast.nexpr }
      (** remove elements until the cardinality bound holds *)

type t = {
  comp_invariant : string;
  comp_kind : kind;
  comp_triggers : string list;  (** operations that can cause violation *)
  comp_constraint : Ast.formula;  (** checked at read time *)
  comp_note : string;
}

(** Compensation for one invariant, if its shape admits one. *)
val synthesize_for : Types.t -> Types.invariant -> t option

(** Compensations for the named (violated) invariants. *)
val synthesize : Types.t -> string list -> t list

(** Is every violated invariant covered? *)
val covers : t list -> string list -> bool

val pp : Format.formatter -> t -> unit
