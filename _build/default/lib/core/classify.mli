(** Invariant classification (Table 1): each clause falls into one or
    more of the seven surveyed classes, determining I-Confluence under
    plain weak consistency and how IPA handles it. *)

open Ipa_spec

type inv_class =
  | Sequential_id
  | Unique_id
  | Numeric_inv
  | Aggregation_constraint
  | Aggregation_inclusion
  | Referential_integrity
  | Disjunction

val class_name : inv_class -> string
val all_classes : inv_class list

(** Table 1 column "I-Conf.". *)
val i_confluent : inv_class -> bool

type support = Direct | Via_compensation | Unsupported

(** Table 1 column "IPA". *)
val ipa_support : inv_class -> support

val support_name : support -> string

(** Classes of one invariant (tags take precedence; shape analysis can
    report several classes for one clause). *)
val classify_invariant : Types.invariant -> inv_class list

(** All classes present in an application; entity keys make [Unique_id]
    always present (pre-partitioned identifier spaces). *)
val app_classes : Types.t -> inv_class list

(** The Table 1 matrix: class × application presence. *)
val table : Types.t list -> (inv_class * (string * bool) list) list
