(** Analysis contexts for a pair of operations: parameter unifications
    and the small-model domain.  Pairwise checking is sound (Gotsman et
    al. 2016); enumerating set partitions of same-sorted parameters plus
    one background element per sort covers all cases (DESIGN.md §5). *)

open Ipa_logic
open Ipa_spec

(** One analysis case: how parameters map to domain elements. *)
type unification = {
  binding1 : (string * string) list;  (** op1 parameter → element *)
  binding2 : (string * string) list;  (** op2 parameter → element *)
  dom : Ground.domain;
}

(** Set partitions of a list (Bell-number many). *)
val partitions : 'a list -> 'a list list list

(** All parameter unifications for a pair of operations. *)
val unifications :
  Types.t -> Types.operation -> Types.operation -> unification list

(** Human-readable description, e.g. ["op1.t=Tournament1, ..."]. *)
val describe : unification -> string
