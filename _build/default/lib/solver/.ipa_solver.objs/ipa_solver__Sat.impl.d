lib/solver/sat.ml: Array Hashtbl List
