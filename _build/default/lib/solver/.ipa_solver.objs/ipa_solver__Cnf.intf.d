lib/solver/cnf.mli: Sat
