lib/solver/sat.mli:
