lib/solver/encode.mli: Ast Ground Ipa_logic Sat
