lib/solver/encode.ml: Array Ast Cnf Fmt Ground Hashtbl Ipa_logic List Sat
