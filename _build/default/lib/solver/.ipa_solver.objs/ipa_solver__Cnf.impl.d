lib/solver/cnf.ml: Array List Sat
