(** CNF construction helpers on top of {!Sat}: Tseitin gates and a
    Bailleux–Boudet totalizer for cardinality constraints.

    The totalizer produces, for a multiset of input literals, output
    literals [o_j] with [o_j <=> (at least j inputs are true)] — both
    implication directions are encoded, so cardinality tests can appear
    under negation inside an arbitrary boolean structure.  Weighted sums
    with small positive weights are handled by input duplication. *)

type lit = Sat.lit

(** A literal constrained to be true (allocated once per solver). *)
let lit_true (s : Sat.t) : lit =
  let cached = Sat.true_lit_get s in
  if cached <> 0 then cached
  else begin
    let v = Sat.new_var s in
    Sat.add_clause s [ v ];
    Sat.true_lit_set s v;
    v
  end

let lit_false s : lit = -lit_true s

(* ------------------------------------------------------------------ *)
(* Tseitin gates                                                       *)
(* ------------------------------------------------------------------ *)

(** [gate_and s ls] is a literal equivalent to the conjunction of [ls]. *)
let gate_and (s : Sat.t) (ls : lit list) : lit =
  match ls with
  | [] -> lit_true s
  | [ l ] -> l
  | _ ->
      let z = Sat.new_var s in
      List.iter (fun l -> Sat.add_clause s [ -z; l ]) ls;
      Sat.add_clause s (z :: List.map (fun l -> -l) ls);
      z

(** [gate_or s ls] is a literal equivalent to the disjunction of [ls]. *)
let gate_or (s : Sat.t) (ls : lit list) : lit =
  match ls with
  | [] -> lit_false s
  | [ l ] -> l
  | _ ->
      let z = Sat.new_var s in
      List.iter (fun l -> Sat.add_clause s [ z; -l ]) ls;
      Sat.add_clause s (-z :: ls);
      z

(** [gate_iff s a b] is a literal equivalent to [a <=> b]. *)
let gate_iff (s : Sat.t) (a : lit) (b : lit) : lit =
  let z = Sat.new_var s in
  Sat.add_clause s [ -z; -a; b ];
  Sat.add_clause s [ -z; a; -b ];
  Sat.add_clause s [ z; a; b ];
  Sat.add_clause s [ z; -a; -b ];
  z

(* ------------------------------------------------------------------ *)
(* Totalizer                                                           *)
(* ------------------------------------------------------------------ *)

(* Merge two unary counters a (counts |a| inputs) and b into r, with
   r.(k-1) <=> (sum >= k).  Encodes both directions. *)
let totalizer_merge (s : Sat.t) (a : lit array) (b : lit array) : lit array =
  let na = Array.length a and nb = Array.length b in
  let n = na + nb in
  let r = Array.init n (fun _ -> Sat.new_var s) in
  for i = 0 to na do
    for j = 0 to nb do
      (* C1: (at least i in a) and (at least j in b) -> at least i+j in r.
         With 1-based counts a_i <=> a.(i-1); a_0/b_0 are vacuously true. *)
      if i + j >= 1 then begin
        let ante =
          (if i >= 1 then [ -a.(i - 1) ] else [])
          @ if j >= 1 then [ -b.(j - 1) ] else []
        in
        Sat.add_clause s (ante @ [ r.(i + j - 1) ])
      end;
      (* C2: (at most i in a) and (at most j in b) -> at most i+j in r,
         i.e. a_{i+1} or b_{j+1} or not r_{i+j+1}; a_{na+1}/b_{nb+1} are
         vacuously false and omitted. *)
      if i + j <= n - 1 then begin
        let ante =
          (if i < na then [ a.(i) ] else [])
          @ if j < nb then [ b.(j) ] else []
        in
        Sat.add_clause s (ante @ [ -r.(i + j) ])
      end
    done
  done;
  r

(** [totalizer s inputs] returns an array [o] with
    [o.(k-1) <=> at least k of inputs are true]. *)
let rec totalizer (s : Sat.t) (inputs : lit list) : lit array =
  match inputs with
  | [] -> [||]
  | [ l ] -> [| l |]
  | _ ->
      let arr = Array.of_list inputs in
      let n = Array.length arr in
      let left = Array.to_list (Array.sub arr 0 (n / 2)) in
      let right = Array.to_list (Array.sub arr (n / 2) (n - (n / 2))) in
      totalizer_merge s (totalizer s left) (totalizer s right)

(** [at_least s inputs k] is a literal equivalent to
    "at least [k] of [inputs] are true" (inputs may repeat, counting
    multiplicity). *)
let at_least (s : Sat.t) (inputs : lit list) (k : int) : lit =
  let n = List.length inputs in
  if k <= 0 then lit_true s
  else if k > n then lit_false s
  else
    let o = totalizer s inputs in
    o.(k - 1)

(** Assert a clause directly (re-export for convenience). *)
let clause = Sat.add_clause
