(** CNF construction helpers on top of {!Sat}: Tseitin gates and a
    Bailleux–Boudet totalizer for cardinality constraints.

    The totalizer output bits satisfy [o_j <=> (at least j inputs
    true)] in {e both} directions, so cardinality tests can appear under
    negation inside an arbitrary boolean structure.  Weighted sums with
    small positive weights are handled by input duplication. *)

type lit = Sat.lit

(** A literal constrained to be true (allocated once per solver). *)
val lit_true : Sat.t -> lit

val lit_false : Sat.t -> lit

(** A literal equivalent to the conjunction of the inputs. *)
val gate_and : Sat.t -> lit list -> lit

(** A literal equivalent to the disjunction of the inputs. *)
val gate_or : Sat.t -> lit list -> lit

(** A literal equivalent to [a <=> b]. *)
val gate_iff : Sat.t -> lit -> lit -> lit

(** [o.(k-1) <=> at least k inputs are true]. *)
val totalizer : Sat.t -> lit list -> lit array

(** A literal equivalent to "at least [k] of the inputs are true"
    (inputs may repeat, counting multiplicity). *)
val at_least : Sat.t -> lit list -> int -> lit

(** Re-export of {!Sat.add_clause}. *)
val clause : Sat.t -> lit list -> unit
