lib/apps/tournament.ml: Awset Cluster Compset Config Fmt Hashtbl Ipa_crdt Ipa_runtime Ipa_sim Ipa_store List Obj Replica Rwset String Txn
