lib/apps/twitter.ml: Awset Cluster Config Filename Fmt Ipa_crdt Ipa_runtime Ipa_sim Ipa_store List Obj String Txn
