lib/apps/ticket.ml: Awset Bcounter Cluster Compcounter Config Fmt Hashtbl Ipa_crdt Ipa_runtime Ipa_sim Ipa_store List Obj Option Pncounter Replica Txn
