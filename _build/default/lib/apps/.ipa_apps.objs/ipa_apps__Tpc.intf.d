lib/apps/tpc.mli: Cluster Config Ipa_runtime Ipa_sim Ipa_store Replica
