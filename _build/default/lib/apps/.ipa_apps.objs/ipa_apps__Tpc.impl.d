lib/apps/tpc.ml: Awset Cluster Compcounter Config Fmt Hashtbl Ipa_crdt Ipa_runtime Ipa_sim Ipa_store List Obj Pncounter Replica String Txn
