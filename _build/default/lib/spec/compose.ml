(** Composition of application specifications (§5.1.4).

    "If a database is shared by multiple applications, the programmer
    must create a single specification of all applications for the
    analysis to identify all possible conflicts."  [merge] builds that
    combined specification: sorts and predicates are unified by name
    (declarations must agree), invariants and operations are collected
    (name clashes are qualified with the application name), and
    convergence rules must not contradict each other — a predicate two
    applications resolve differently is exactly the cross-application
    conflict the combined analysis exists to find, so it is an error. *)

open Types

exception Incompatible of string

let fail fmt = Fmt.kstr (fun s -> raise (Incompatible s)) fmt

let merge_preds (specs : t list) : pred_decl list =
  List.fold_left
    (fun acc (s : t) ->
      List.fold_left
        (fun acc (p : pred_decl) ->
          match List.find_opt (fun q -> q.pname = p.pname) acc with
          | None -> acc @ [ p ]
          | Some q when q.psorts = p.psorts && q.pkind = p.pkind -> acc
          | Some _ ->
              fail "predicate %s is declared incompatibly by %s" p.pname
                s.app_name)
        acc s.preds)
    [] specs

let merge_consts (specs : t list) : (string * int) list =
  List.fold_left
    (fun acc (s : t) ->
      List.fold_left
        (fun acc (name, v) ->
          match List.assoc_opt name acc with
          | None -> acc @ [ (name, v) ]
          | Some v' when v = v' -> acc
          | Some v' ->
              fail "constant %s has conflicting values %d (%s) and %d" name v'
                s.app_name v)
        acc s.consts)
    [] specs

let merge_rules (specs : t list) : (string * conv_rule) list =
  List.fold_left
    (fun acc (s : t) ->
      List.fold_left
        (fun acc (p, r) ->
          match List.assoc_opt p acc with
          | None -> acc @ [ (p, r) ]
          | Some r' when r = r' -> acc
          | Some r' ->
              fail
                "predicate %s has conflicting convergence rules %s and %s \
                 (from %s) — shared data must converge identically for every \
                 application"
                p
                (conv_rule_to_string r')
                (conv_rule_to_string r) s.app_name)
        acc s.rules)
    [] specs

(* qualify a name with the app when it clashes with an earlier one *)
let qualified seen (s : t) name =
  if List.mem name seen then s.app_name ^ "." ^ name else name

let merge_invariants (specs : t list) : invariant list =
  let _, invs =
    List.fold_left
      (fun (seen, acc) (s : t) ->
        List.fold_left
          (fun (seen, acc) (i : invariant) ->
            let name = qualified seen s i.iname in
            (name :: seen, acc @ [ { i with iname = name } ]))
          (seen, acc) s.invariants)
      ([], []) specs
  in
  invs

let merge_operations (specs : t list) : operation list =
  let _, ops =
    List.fold_left
      (fun (seen, acc) (s : t) ->
        List.fold_left
          (fun (seen, acc) (o : operation) ->
            let name = qualified seen s o.oname in
            (name :: seen, acc @ [ { o with oname = name } ]))
          (seen, acc) s.operations)
      ([], []) specs
  in
  ops

(** Merge several application specifications into one, for a combined
    analysis over the shared database.  Raises {!Incompatible} on
    contradictory declarations. *)
let merge ?(name = "combined") (specs : t list) : t =
  if specs = [] then invalid_arg "Compose.merge: empty list";
  let sorts =
    List.fold_left
      (fun acc (s : t) ->
        acc @ List.filter (fun x -> not (List.mem x acc)) s.sorts)
      [] specs
  in
  Validate.validate
    {
      app_name = name;
      sorts;
      preds = merge_preds specs;
      consts = merge_consts specs;
      invariants = merge_invariants specs;
      operations = merge_operations specs;
      rules = merge_rules specs;
    }
