(** Parser for the [.ipa] specification DSL (see the format description
    in the implementation header and README). *)

exception Syntax_error of { line : int; msg : string }

(** Parse and validate a specification from source text; raises
    {!Syntax_error} or {!Validate.Invalid}. *)
val parse_string : string -> Types.t

(** Parse a specification from a file. *)
val parse_file : string -> Types.t
