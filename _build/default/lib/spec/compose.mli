(** Composition of application specifications (§5.1.4): a database
    shared by several applications needs one combined specification so
    the analysis can find cross-application conflicts. *)

exception Incompatible of string

(** Merge specifications: sorts/predicates/constants unify by name
    (declarations must agree), invariant and operation name clashes are
    qualified with the application name, and contradictory convergence
    rules raise {!Incompatible}. *)
val merge : ?name:string -> Types.t list -> Types.t
