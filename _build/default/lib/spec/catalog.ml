(** Specifications of the applications evaluated in the paper (§5.1.2):
    Tournament, Twitter, Ticket (FusionTicket), and the TPC-C / TPC-W
    slices.  Each is written in the [.ipa] DSL and parsed at first use,
    which doubles as an integration test of {!Spec_parser}. *)

let tournament_src =
  {|
app Tournament

sort Player
sort Tournament

const Capacity = 3

predicate player(Player)
predicate tournament(Tournament)
predicate enrolled(Player, Tournament)
predicate active(Tournament)
predicate finished(Tournament)
predicate inMatch(Player, Player, Tournament)

# Figure 1 invariants
invariant enroll_ref: forall(Player:p, Tournament:t) :-
    enrolled(p,t) => player(p) and tournament(t)
invariant match_ref: forall(Player:p, q, Tournament:t) :-
    inMatch(p,q,t) => enrolled(p,t) and enrolled(q,t)
      and (active(t) or finished(t))
invariant capacity: forall(Tournament:t) :- #enrolled(*,t) <= Capacity
invariant active_ref: forall(Tournament:t) :- active(t) => tournament(t)
invariant finished_ref: forall(Tournament:t) :- finished(t) => tournament(t)
invariant not_both: forall(Tournament:t) :- not (active(t) and finished(t))

rule player: add-wins
rule tournament: add-wins
rule enrolled: add-wins
rule active: add-wins
rule finished: add-wins
rule inMatch: add-wins

operation add_player(Player:p)
  player(p) := true

operation rem_player(Player:p)
  player(p) := false

operation add_tourn(Tournament:t)
  tournament(t) := true

operation rem_tourn(Tournament:t)
  tournament(t) := false

operation enroll(Player:p, Tournament:t)
  enrolled(p, t) := true

operation disenroll(Player:p, Tournament:t)
  enrolled(p, t) := false

operation begin_tourn(Tournament:t)
  active(t) := true

operation finish_tourn(Tournament:t)
  finished(t) := true
  active(t) := false

operation do_match(Player:p, Player:q, Tournament:t)
  inMatch(p, q, t) := true
|}

let twitter_src =
  {|
app Twitter

sort User
sort Tweet

predicate user(User)
predicate tweet(Tweet)
predicate follows(User, User)
predicate timeline(User, Tweet)
predicate retweeted(Tweet, User)

invariant follow_ref: forall(User:a, b) :-
    follows(a,b) => user(a) and user(b)
invariant timeline_ref: forall(User:u, Tweet:t) :-
    timeline(u,t) => user(u) and tweet(t)
invariant retweet_ref: forall(Tweet:t, User:u) :-
    retweeted(t,u) => tweet(t) and user(u)

rule user: add-wins
rule tweet: add-wins
rule follows: rem-wins
rule timeline: rem-wins
rule retweeted: rem-wins

operation add_user(User:u)
  user(u) := true

operation rem_user(User:u)
  user(u) := false

# Tweeting writes the tweet into follower timelines immediately.
operation do_tweet(User:u, Tweet:t)
  tweet(t) := true
  timeline(*, t) := true

operation retweet(User:u, Tweet:t)
  retweeted(t, u) := true
  timeline(*, t) := true

operation del_tweet(Tweet:t)
  tweet(t) := false

operation follow(User:a, User:b)
  follows(a, b) := true

operation unfollow(User:a, User:b)
  follows(a, b) := false
|}

let ticket_src =
  {|
app Ticket

sort Event

predicate event(Event)
numeric available(Event) in [0, 16]

# FusionTicket: tickets for events cannot be oversold.
invariant no_oversell: forall(Event:e) :- available(e) >= 0
invariant event_ref: forall(Event:e) :- available(e) <= 16

rule event: add-wins

operation create_event(Event:e)
  event(e) := true
  available(e) += 8

operation buy_ticket(Event:e)
  available(e) -= 1

operation add_tickets(Event:e)
  available(e) += 4

operation cancel_event(Event:e)
  event(e) := false
|}

let tpcw_src =
  {|
app TPC-W

sort Item
sort Order
sort Customer
sort Id

predicate item(Item)
predicate order(Order)
predicate orderLine(Order, Item)
predicate customer(Customer)
predicate owner(Order, Customer)
predicate hasId(Customer, Id)
numeric stock(Item) in [0, 16]

# stock is replenished via compensation when it under-runs (spec of the
# benchmark); listing-management ops add referential integrity.
invariant stock_nonneg: forall(Item:i) :- stock(i) >= 0
invariant line_ref: forall(Order:o, Item:i) :-
    orderLine(o,i) => order(o) and item(i)
invariant owner_ref: forall(Order:o, Customer:c) :-
    owner(o,c) => order(o) and customer(c)
invariant [unique] customer_ids: forall(Customer:a, b, Id:i) :-
    hasId(a,i) and hasId(b,i) => a == b
invariant [sequential] order_sequence: forall(Order:o) :- order(o) => order(o)

rule item: add-wins
rule order: add-wins
rule orderLine: add-wins
rule customer: add-wins
rule owner: add-wins
rule hasId: add-wins

operation add_item(Item:i)
  item(i) := true
  stock(i) += 8

operation rem_item(Item:i)
  item(i) := false

operation register(Customer:c, Id:i)
  customer(c) := true
  hasId(c, i) := true

operation new_order(Order:o, Customer:c, Item:i)
  order(o) := true
  owner(o, c) := true
  orderLine(o, i) := true
  stock(i) -= 1

operation restock(Item:i)
  stock(i) += 4
|}

let tpcc_src =
  {|
app TPC-C

sort Item
sort Order
sort District

predicate item(Item)
predicate order(Order)
predicate orderLine(Order, Item)
predicate district(District)
predicate inDistrict(Order, District)
numeric stock(Item) in [0, 16]
numeric ytd(District) in [0, 16]

invariant stock_nonneg: forall(Item:i) :- stock(i) >= 0
invariant line_ref: forall(Order:o, Item:i) :-
    orderLine(o,i) => order(o) and item(i)
invariant district_ref: forall(Order:o, District:d) :-
    inDistrict(o,d) => order(o) and district(d)
invariant [sequential] next_o_id: forall(District:d) :- district(d) => district(d)

rule item: add-wins
rule order: add-wins
rule orderLine: add-wins
rule district: add-wins
rule inDistrict: add-wins

operation add_item(Item:i)
  item(i) := true
  stock(i) += 8

operation rem_item(Item:i)
  item(i) := false

operation new_order(Order:o, District:d, Item:i)
  order(o) := true
  inDistrict(o, d) := true
  orderLine(o, i) := true
  stock(i) -= 1

operation payment(District:d)
  ytd(d) += 1

operation delivery(Order:o)
  order(o) := false
|}

let parse = Spec_parser.parse_string

(** The Tournament application (Figure 1). *)
let tournament () = parse tournament_src

(** The Twitter clone (§5.1.2). *)
let twitter () = parse twitter_src

(** The FusionTicket-based Ticket application (§5.1.2). *)
let ticket () = parse ticket_src

(** The TPC-W slice extended with listing management (§5.1.2). *)
let tpcw () = parse tpcw_src

(** The TPC-C slice extended with listing management (§5.1.2). *)
let tpcc () = parse tpcc_src

(** All five applications, in the paper's Table 1 column order. *)
let all () =
  [ tpcc (); tpcw (); tournament (); ticket (); twitter () ]
