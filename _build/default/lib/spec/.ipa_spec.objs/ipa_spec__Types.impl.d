lib/spec/types.ml: Ast Fmt Ground Ipa_logic List Parser Pp String
