lib/spec/catalog.mli: Types
