lib/spec/spec_parser.ml: Ast Fmt Ipa_logic List Parser Scanf String Types Validate
