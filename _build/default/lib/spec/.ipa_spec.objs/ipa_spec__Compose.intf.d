lib/spec/compose.mli: Types
