lib/spec/spec_parser.mli: Types
