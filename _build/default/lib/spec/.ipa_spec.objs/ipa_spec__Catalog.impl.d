lib/spec/catalog.ml: Spec_parser
