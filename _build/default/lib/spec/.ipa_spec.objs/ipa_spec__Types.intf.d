lib/spec/types.mli: Ast Format Ground Ipa_logic
