lib/spec/compose.ml: Fmt List Types Validate
