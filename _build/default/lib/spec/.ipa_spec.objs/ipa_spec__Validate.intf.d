lib/spec/validate.mli: Format Types
