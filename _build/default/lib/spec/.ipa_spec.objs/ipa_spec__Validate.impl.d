lib/spec/validate.ml: Ast Fmt Ipa_logic List String Types
