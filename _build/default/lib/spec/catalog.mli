(** The applications evaluated in the paper (§5.1.2), written in the
    [.ipa] DSL. *)

(** The Tournament application (Figure 1). *)
val tournament : unit -> Types.t

(** The Twitter clone. *)
val twitter : unit -> Types.t

(** The FusionTicket-based Ticket application. *)
val ticket : unit -> Types.t

(** The TPC-W slice extended with listing management. *)
val tpcw : unit -> Types.t

(** The TPC-C slice extended with listing management. *)
val tpcc : unit -> Types.t

(** All five, in Table 1 column order. *)
val all : unit -> Types.t list

(** {1 Raw sources} (exposed for documentation and tooling) *)

val tournament_src : string
val twitter_src : string
val ticket_src : string
val tpcw_src : string
val tpcc_src : string
