(** Well-formedness checks for application specifications.

    The IPA tool rejects malformed specifications up front so that the
    analysis can assume arity-correct, well-sorted, closed inputs. *)

open Ipa_logic
open Types

type error = { where : string; what : string }

let err where fmt = Fmt.kstr (fun what -> { where; what }) fmt

let pp_error ppf e = Fmt.pf ppf "%s: %s" e.where e.what

(* sort of each argument position must exist; terms must be parameters of
   the operation, constants, or stars *)
let check_effect (spec : t) (op : operation) (ae : annotated_effect) :
    error list =
  let e = ae.eff in
  let where = Fmt.str "operation %s, effect %s" op.oname e.epred in
  match find_pred spec e.epred with
  | None -> [ err where "references undeclared predicate %s" e.epred ]
  | Some pd ->
      let arity_errs =
        if List.length e.eargs <> List.length pd.psorts then
          [
            err where "arity mismatch: expected %d arguments, got %d"
              (List.length pd.psorts) (List.length e.eargs);
          ]
        else []
      in
      let kind_errs =
        match (pd.pkind, e.evalue) with
        | Bool, Set _ | Numeric _, Delta _ -> []
        | Bool, Delta _ ->
            [ err where "numeric delta applied to boolean predicate" ]
        | Numeric _, Set _ ->
            [ err where "boolean assignment applied to numeric function" ]
      in
      let arg_errs =
        if arity_errs <> [] then []
        else
          List.concat
            (List.map2
               (fun (t : Ast.term) sort ->
                 match t with
                 | Ast.Const _ | Ast.Star -> []
                 | Ast.Var v -> (
                     match
                       List.find_opt (fun (p : Ast.tvar) -> p.vname = v)
                         op.oparams
                     with
                     | None ->
                         [
                           err where "argument %s is not a parameter of %s" v
                             op.oname;
                         ]
                     | Some p when p.vsort <> sort ->
                         [
                           err where
                             "argument %s has sort %s but position expects %s"
                             v p.vsort sort;
                         ]
                     | Some _ -> []))
               e.eargs pd.psorts)
      in
      arity_errs @ kind_errs @ arg_errs

let check_operation (spec : t) (op : operation) : error list =
  let param_errs =
    List.concat_map
      (fun (p : Ast.tvar) ->
        if List.mem p.vsort spec.sorts then []
        else
          [
            err
              (Fmt.str "operation %s" op.oname)
              "parameter %s has undeclared sort %s" p.vname p.vsort;
          ])
      op.oparams
  in
  let dup_errs =
    let names = List.map (fun (p : Ast.tvar) -> p.vname) op.oparams in
    if List.length (List.sort_uniq String.compare names) <> List.length names
    then [ err (Fmt.str "operation %s" op.oname) "duplicate parameter names" ]
    else []
  in
  param_errs @ dup_errs @ List.concat_map (check_effect spec op) op.oeffects

let check_invariant (spec : t) (inv : invariant) : error list =
  let where = Fmt.str "invariant %s" inv.iname in
  let fv = Ast.free_vars inv.iformula in
  let closed_errs =
    (* free variables that are not named integer constants are errors *)
    List.filter_map
      (fun v ->
        if List.mem_assoc v spec.consts then None
        else Some (err where "free variable %s (declare a const?)" v))
      fv
  in
  let pred_errs =
    List.filter_map
      (fun p ->
        match find_pred spec p with
        | Some _ -> None
        | None -> Some (err where "undeclared predicate %s" p))
      (Ast.predicates inv.iformula @ Ast.nfunctions inv.iformula)
  in
  closed_errs @ pred_errs

let check_rules (spec : t) : error list =
  List.filter_map
    (fun (p, _) ->
      match find_pred spec p with
      | Some _ -> None
      | None ->
          Some (err "convergence rules" "rule for undeclared predicate %s" p))
    spec.rules

(** All well-formedness violations of a specification (empty = valid). *)
let check (spec : t) : error list =
  let dup_pred =
    let names = List.map (fun p -> p.pname) spec.preds in
    if List.length (List.sort_uniq String.compare names) <> List.length names
    then [ err "predicates" "duplicate predicate declarations" ]
    else []
  in
  let dup_op =
    let names = List.map (fun o -> o.oname) spec.operations in
    if List.length (List.sort_uniq String.compare names) <> List.length names
    then [ err "operations" "duplicate operation declarations" ]
    else []
  in
  dup_pred @ dup_op @ check_rules spec
  @ List.concat_map (check_invariant spec) spec.invariants
  @ List.concat_map (check_operation spec) spec.operations

exception Invalid of error list

(** [validate spec] returns [spec] or raises {!Invalid}. *)
let validate (spec : t) : t =
  match check spec with [] -> spec | errs -> raise (Invalid errs)
