(** Parser for the [.ipa] specification DSL.

    The textual format carries the same information as the paper's
    annotated Java interfaces (Figure 1):

    {v
    app Tournament

    sort Player
    sort Tournament

    const Capacity = 8

    predicate player(Player)
    predicate enrolled(Player, Tournament)
    numeric stock(Item) in [0, 16]

    invariant ref_int: forall(Player:p, Tournament:t) :-
        enrolled(p,t) => player(p) and tournament(t)
    invariant [unique] ids: forall(Player:p, q) :- p == q

    rule player: add-wins
    rule enrolled: rem-wins

    operation enroll(Player:p, Tournament:t)
      enrolled(p, t) := true

    operation buy(Item:i)
      stock(i) -= 1
    v}

    Lines starting with [#] or [//] are comments.  An invariant may span
    multiple lines; continuation lines are those that cannot start a new
    declaration.  Effects may carry a [touch] suffix to request the
    payload-preserving add (§4.2.1): [player(p) := true touch]. *)

open Ipa_logic
open Types

exception Syntax_error of { line : int; msg : string }

let fail line fmt =
  Fmt.kstr (fun msg -> raise (Syntax_error { line; msg })) fmt

let strip s = String.trim s

let is_comment s =
  s = ""
  || String.length s >= 1
     && (s.[0] = '#' || (String.length s >= 2 && s.[0] = '/' && s.[1] = '/'))

let starts_with prefix s =
  String.length s >= String.length prefix
  && String.sub s 0 (String.length prefix) = prefix

let split_on_first c s =
  match String.index_opt s c with
  | None -> None
  | Some i ->
      Some (String.sub s 0 i, String.sub s (i + 1) (String.length s - i - 1))

(* "name(Player:p, Tournament:t)" -> name, params *)
let parse_op_header lineno s =
  match split_on_first '(' s with
  | None -> fail lineno "expected operation header with parameter list"
  | Some (name, rest) ->
      let name = strip name in
      let rest = strip rest in
      if rest = "" || rest.[String.length rest - 1] <> ')' then
        fail lineno "unterminated parameter list";
      let inner = strip (String.sub rest 0 (String.length rest - 1)) in
      if inner = "" then (name, [])
      else
        let parts = String.split_on_char ',' inner in
        let params =
          List.map
            (fun p ->
              match String.split_on_char ':' (strip p) with
              | [ sort; v ] -> { Ast.vname = strip v; vsort = strip sort }
              | _ -> fail lineno "parameter must be Sort:name, got %S" p)
            parts
        in
        (name, params)

(* parse the left-hand side "pred(a, b, *)" of an effect *)
let parse_effect_lhs lineno s =
  match split_on_first '(' (strip s) with
  | None -> fail lineno "expected predicate application in effect"
  | Some (name, rest) ->
      let rest = strip rest in
      if rest = "" || rest.[String.length rest - 1] <> ')' then
        fail lineno "unterminated argument list in effect";
      let inner = strip (String.sub rest 0 (String.length rest - 1)) in
      let args =
        if inner = "" then []
        else
          List.map
            (fun a ->
              let a = strip a in
              if a = "*" then Ast.Star
              else if String.length a > 0 && a.[0] = '\'' then
                Ast.Const (String.sub a 1 (String.length a - 1))
              else Ast.Var a)
            (String.split_on_char ',' inner)
      in
      (strip name, args)

let find_substring hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i =
    if i + nn > nh then None
    else if String.sub hay i nn = needle then Some i
    else go (i + 1)
  in
  go 0

let split_on_substring hay needle =
  match find_substring hay needle with
  | None -> None
  | Some i ->
      Some
        ( String.sub hay 0 i,
          String.sub hay
            (i + String.length needle)
            (String.length hay - i - String.length needle) )

let parse_effect lineno s : annotated_effect =
  let s = strip s in
  let s, mode =
    match split_on_substring s " touch" with
    | Some (before, rest) when strip rest = "" -> (strip before, Touch)
    | _ -> (s, Write)
  in
  let mk lhs value =
    let epred, eargs = parse_effect_lhs lineno lhs in
    { eff = { epred; eargs; evalue = value }; mode }
  in
  match split_on_substring s ":=" with
  | Some (lhs, rhs) -> (
      match strip rhs with
      | "true" -> mk lhs (Set true)
      | "false" -> mk lhs (Set false)
      | other -> fail lineno "expected true or false, got %S" other)
  | None -> (
      match split_on_substring s "+=" with
      | Some (lhs, rhs) -> (
          match int_of_string_opt (strip rhs) with
          | Some d -> mk lhs (Delta d)
          | None -> fail lineno "expected integer delta, got %S" (strip rhs))
      | None -> (
          match split_on_substring s "-=" with
          | Some (lhs, rhs) -> (
              match int_of_string_opt (strip rhs) with
              | Some d -> mk lhs (Delta (-d))
              | None ->
                  fail lineno "expected integer delta, got %S" (strip rhs))
          | None -> fail lineno "effect must use :=, += or -="))

type accum = {
  mutable app_name : string;
  mutable sorts : string list;
  mutable preds : pred_decl list;
  mutable consts : (string * int) list;
  mutable invariants : invariant list;
  mutable rules : (string * conv_rule) list;
  mutable operations : operation list;
  mutable cur_op : (string * Ast.tvar list * annotated_effect list) option;
}

let flush_op acc =
  match acc.cur_op with
  | None -> ()
  | Some (name, params, effs) ->
      acc.operations <-
        { oname = name; oparams = params; oeffects = List.rev effs }
        :: acc.operations;
      acc.cur_op <- None

let keyword_line s =
  List.exists
    (fun k -> starts_with (k ^ " ") s || s = k)
    [
      "app"; "sort"; "const"; "predicate"; "numeric"; "invariant"; "rule";
      "operation";
    ]

(** Parse a full specification from source text. The result is validated
    with {!Validate.validate}. *)
let parse_string (src : string) : t =
  let lines = String.split_on_char '\n' src in
  let acc =
    {
      app_name = "";
      sorts = [];
      preds = [];
      consts = [];
      invariants = [];
      rules = [];
      operations = [];
      cur_op = None;
    }
  in
  (* Join invariant continuation lines: a non-keyword line directly after
     an invariant line extends that invariant's formula.  Effect lines
     inside operation blocks are single-line and never follow an
     invariant line, so they are not affected. *)
  let rec join_continuations lineno acc_lines = function
    | [] -> List.rev acc_lines
    | raw :: rest -> (
        let s = strip raw in
        if is_comment s then join_continuations (lineno + 1) acc_lines rest
        else
          match acc_lines with
          | (ln, prev) :: tl
            when (not (keyword_line s)) && starts_with "invariant" prev ->
              join_continuations (lineno + 1) ((ln, prev ^ " " ^ s) :: tl) rest
          | _ -> join_continuations (lineno + 1) ((lineno, s) :: acc_lines) rest)
  in
  let numbered = join_continuations 1 [] lines in
  List.iter
    (fun (lineno, s) ->
      if starts_with "app " s then begin
        flush_op acc;
        acc.app_name <- strip (String.sub s 4 (String.length s - 4))
      end
      else if starts_with "sort " s then begin
        flush_op acc;
        acc.sorts <- strip (String.sub s 5 (String.length s - 5)) :: acc.sorts
      end
      else if starts_with "const " s then begin
        flush_op acc;
        let body = String.sub s 6 (String.length s - 6) in
        match split_on_first '=' body with
        | Some (name, v) -> (
            match int_of_string_opt (strip v) with
            | Some n -> acc.consts <- (strip name, n) :: acc.consts
            | None -> fail lineno "const value must be an integer")
        | None -> fail lineno "const must be 'const Name = int'"
      end
      else if starts_with "predicate " s then begin
        flush_op acc;
        let body = String.sub s 10 (String.length s - 10) in
        let name, args = parse_effect_lhs lineno body in
        let sorts =
          List.map
            (function
              | Ast.Var v -> v
              | _ -> fail lineno "predicate declaration expects sort names")
            args
        in
        acc.preds <- { pname = name; psorts = sorts; pkind = Bool } :: acc.preds
      end
      else if starts_with "numeric " s then begin
        flush_op acc;
        let body = String.sub s 8 (String.length s - 8) in
        let decl, bounds =
          match split_on_substring body " in " with
          | Some (d, b) -> (d, strip b)
          | None -> (body, "[0, 16]")
        in
        let name, args = parse_effect_lhs lineno decl in
        let sorts =
          List.map
            (function
              | Ast.Var v -> v
              | _ -> fail lineno "numeric declaration expects sort names")
            args
        in
        let lo, hi =
          try
            Scanf.sscanf bounds "[%d, %d]" (fun a b -> (a, b))
          with _ -> (
            try Scanf.sscanf bounds "[%d,%d]" (fun a b -> (a, b))
            with _ -> fail lineno "bounds must be [lo, hi], got %S" bounds)
        in
        acc.preds <-
          { pname = name; psorts = sorts; pkind = Numeric { lo; hi } }
          :: acc.preds
      end
      else if starts_with "invariant" s then begin
        flush_op acc;
        let body = strip (String.sub s 9 (String.length s - 9)) in
        let tag, body =
          if starts_with "[unique]" body then
            (Some Tag_unique_id, strip (String.sub body 8 (String.length body - 8)))
          else if starts_with "[sequential]" body then
            ( Some Tag_sequential_id,
              strip (String.sub body 12 (String.length body - 12)) )
          else (None, body)
        in
        match split_on_first ':' body with
        | Some (name, formula_src)
          when not (starts_with "-" (strip formula_src)) -> (
            (* 'name: formula' — but avoid splitting ':-' of a quantifier *)
            match Parser.parse_formula (strip formula_src) with
            | f ->
                acc.invariants <-
                  { iname = strip name; iformula = f; itag = tag }
                  :: acc.invariants
            | exception Parser.Parse_error m ->
                fail lineno "bad invariant formula: %s" m)
        | _ -> fail lineno "invariant must be 'invariant name: formula'"
      end
      else if starts_with "rule " s then begin
        flush_op acc;
        let body = String.sub s 5 (String.length s - 5) in
        match split_on_first ':' body with
        | Some (name, r) ->
            let rule =
              match strip r with
              | "add-wins" -> Add_wins
              | "rem-wins" -> Rem_wins
              | "lww" -> Lww
              | other -> fail lineno "unknown convergence rule %S" other
            in
            acc.rules <- (strip name, rule) :: acc.rules
        | None -> fail lineno "rule must be 'rule predicate: policy'"
      end
      else if starts_with "operation " s then begin
        flush_op acc;
        let body = String.sub s 10 (String.length s - 10) in
        let name, params = parse_op_header lineno body in
        acc.cur_op <- Some (name, params, [])
      end
      else begin
        (* effect line inside the current operation *)
        match acc.cur_op with
        | Some (name, params, effs) ->
            let ae = parse_effect lineno s in
            acc.cur_op <- Some (name, params, ae :: effs)
        | None -> fail lineno "unexpected line outside any declaration: %S" s
      end)
    numbered;
  flush_op acc;
  Validate.validate
    {
      app_name = acc.app_name;
      sorts = List.rev acc.sorts;
      preds = List.rev acc.preds;
      consts = List.rev acc.consts;
      invariants = List.rev acc.invariants;
      operations = List.rev acc.operations;
      rules = List.rev acc.rules;
    }

(** Parse a specification from a file. *)
let parse_file (path : string) : t =
  let ic = open_in path in
  let n = in_channel_length ic in
  let src = really_input_string ic n in
  close_in ic;
  parse_string src
