(** Well-formedness checks: arity and sort correctness of effects,
    declared predicates in invariants, closed invariant formulas,
    no duplicate declarations. *)

type error = { where : string; what : string }

val pp_error : Format.formatter -> error -> unit

(** All violations of a specification (empty = valid). *)
val check : Types.t -> error list

exception Invalid of error list

(** Identity on valid specifications; raises {!Invalid} otherwise. *)
val validate : Types.t -> Types.t
