(** Finite-domain grounding of first-order formulas.

    The IPA analysis decides satisfiability over small finite domains
    (the small-model property of pairwise analysis, DESIGN.md §5):
    grounding expands quantifiers over an explicit domain and flattens
    cardinalities into sums of boolean indicators, producing a
    quantifier-free {!gformula} over ground atoms and bounded-integer
    state variables. *)

exception Ground_error of string

(** Argument sorts of every boolean predicate and numeric function. *)
type signature = {
  pred_sorts : (string * Ast.sort list) list;
  nfun_sorts : (string * Ast.sort list) list;
}

(** Finite domain: the elements of each sort. *)
type domain = (Ast.sort * string list) list

(** A ground boolean atom. *)
type gatom = { gpred : string; gargs : string list }

(** A ground numeric state variable. *)
type gnum = { gfun : string; gnargs : string list }

val gatom_to_string : gatom -> string
val gnum_to_string : gnum -> string

(** A ground linear expression:
    [sum(pos) - sum(negs) + sum(c_i * f_i) + const]. *)
type glin = {
  pos : gatom list;
  negs : gatom list;
  funs : (int * gnum) list;
  const : int;
}

(** Quantifier-free ground formula; [GCmp (op, l)] means [l op 0]. *)
type gformula =
  | GTrue
  | GFalse
  | GAtom of gatom
  | GCmp of Ast.cmpop * glin
  | GNot of gformula
  | GAnd of gformula * gformula
  | GOr of gformula * gformula

(** {1 Constant-folding constructors} *)

val gnot : gformula -> gformula
val gand : gformula -> gformula -> gformula
val gor : gformula -> gformula -> gformula
val gand_l : gformula list -> gformula
val gor_l : gformula list -> gformula

(** Ground a closed formula; raises {!Ground_error} on free variables or
    unknown symbols. *)
val ground :
  sg:signature ->
  consts:(string * int) list ->
  dom:domain ->
  Ast.formula ->
  gformula

(** All ground atoms (deduplicated). *)
val atoms : gformula -> gatom list

(** All numeric state variables (deduplicated). *)
val nums : gformula -> gnum list

(** Evaluate under boolean and integer valuations. *)
val eval : batom:(gatom -> bool) -> bnum:(gnum -> int) -> gformula -> bool

val pp_gformula : Format.formatter -> gformula -> unit
