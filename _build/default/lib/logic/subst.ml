(** Variable substitution over formulas and numeric expressions. *)

open Ast

type binding = (string * term) list

let lookup (b : binding) v = List.assoc_opt v b

let subst_term (b : binding) = function
  | Var v -> ( match lookup b v with Some t -> t | None -> Var v)
  | (Const _ | Star) as t -> t

let subst_args b args = List.map (subst_term b) args

let rec subst_nexpr (b : binding) = function
  | Int n -> Int n
  | NConst c -> NConst c
  | Card (p, args) -> Card (p, subst_args b args)
  | NFun (f, args) -> NFun (f, subst_args b args)
  | NAdd (x, y) -> NAdd (subst_nexpr b x, subst_nexpr b y)
  | NSub (x, y) -> NSub (subst_nexpr b x, subst_nexpr b y)

(** [subst b f] replaces free variables of [f] according to [b].
    Quantified variables shadow bindings of the same name. *)
let rec subst (b : binding) = function
  | True -> True
  | False -> False
  | Atom (p, args) -> Atom (p, subst_args b args)
  | Eq (x, y) -> Eq (subst_term b x, subst_term b y)
  | Cmp (op, x, y) -> Cmp (op, subst_nexpr b x, subst_nexpr b y)
  | Not f -> Not (subst b f)
  | And (x, y) -> And (subst b x, subst b y)
  | Or (x, y) -> Or (subst b x, subst b y)
  | Implies (x, y) -> Implies (subst b x, subst b y)
  | Iff (x, y) -> Iff (subst b x, subst b y)
  | Forall (vs, f) ->
      let b' = List.filter (fun (n, _) -> not (List.exists (fun v -> v.vname = n) vs)) b in
      Forall (vs, subst b' f)
  | Exists (vs, f) ->
      let b' = List.filter (fun (n, _) -> not (List.exists (fun v -> v.vname = n) vs)) b in
      Exists (vs, subst b' f)

(** Rename a variable throughout (including binders) — used when merging
    specifications that reuse variable names. *)
let rec rename (from_ : string) (to_ : string) f =
  let rt = function Var v when v = from_ -> Var to_ | t -> t in
  let rargs = List.map rt in
  let rec rn = function
    | Int n -> Int n
    | NConst c -> NConst c
    | Card (p, args) -> Card (p, rargs args)
    | NFun (g, args) -> NFun (g, rargs args)
    | NAdd (x, y) -> NAdd (rn x, rn y)
    | NSub (x, y) -> NSub (rn x, rn y)
  in
  match f with
  | True -> True
  | False -> False
  | Atom (p, args) -> Atom (p, rargs args)
  | Eq (x, y) -> Eq (rt x, rt y)
  | Cmp (op, x, y) -> Cmp (op, rn x, rn y)
  | Not g -> Not (rename from_ to_ g)
  | And (x, y) -> And (rename from_ to_ x, rename from_ to_ y)
  | Or (x, y) -> Or (rename from_ to_ x, rename from_ to_ y)
  | Implies (x, y) -> Implies (rename from_ to_ x, rename from_ to_ y)
  | Iff (x, y) -> Iff (rename from_ to_ x, rename from_ to_ y)
  | Forall (vs, g) ->
      Forall
        ( List.map (fun v -> if v.vname = from_ then { v with vname = to_ } else v) vs,
          rename from_ to_ g )
  | Exists (vs, g) ->
      Exists
        ( List.map (fun v -> if v.vname = from_ then { v with vname = to_ } else v) vs,
          rename from_ to_ g )
