(** Finite-domain grounding of first-order formulas.

    The IPA analysis decides satisfiability of formulas over small finite
    domains (the small-model property of pairwise operation analysis, see
    DESIGN.md §5).  Grounding expands quantifiers over an explicit domain
    and flattens cardinalities into sums of boolean indicators, producing
    a quantifier-free {!gformula} whose leaves are ground boolean atoms
    ({!gatom}) and bounded-integer state functions ({!gnum}). *)

open Ast

exception Ground_error of string

let fail fmt = Fmt.kstr (fun s -> raise (Ground_error s)) fmt

(* ------------------------------------------------------------------ *)
(* Signatures and domains                                              *)
(* ------------------------------------------------------------------ *)

(** Argument sorts of every boolean predicate and numeric function. *)
type signature = {
  pred_sorts : (string * sort list) list;  (** boolean predicates *)
  nfun_sorts : (string * sort list) list;  (** numeric state functions *)
}

let pred_arity sg p =
  match List.assoc_opt p sg.pred_sorts with
  | Some ss -> ss
  | None -> fail "unknown predicate %s" p

let nfun_arity sg f =
  match List.assoc_opt f sg.nfun_sorts with
  | Some ss -> ss
  | None -> fail "unknown numeric function %s" f

(** Finite domain: the elements of each sort. *)
type domain = (sort * string list) list

let sort_elems (d : domain) (s : sort) =
  match List.assoc_opt s d with
  | Some es -> es
  | None -> fail "sort %s has no domain elements" s

(* ------------------------------------------------------------------ *)
(* Ground representation                                               *)
(* ------------------------------------------------------------------ *)

(** A ground boolean atom: predicate applied to domain elements. *)
type gatom = { gpred : string; gargs : string list }

(** A ground numeric state variable: function applied to elements. *)
type gnum = { gfun : string; gnargs : string list }

let gatom_to_string a = Fmt.str "%s(%s)" a.gpred (String.concat "," a.gargs)
let gnum_to_string n = Fmt.str "%s(%s)" n.gfun (String.concat "," n.gnargs)

(** A ground linear expression: [sum(pos) - sum(neg) + sum(c_i * f_i) + const]
    where [pos]/[neg] are boolean indicators contributing 1 when true. *)
type glin = {
  pos : gatom list;
  negs : gatom list;
  funs : (int * gnum) list;
  const : int;
}

let glin_zero = { pos = []; negs = []; funs = []; const = 0 }
let glin_const c = { glin_zero with const = c }

let glin_add a b =
  {
    pos = a.pos @ b.pos;
    negs = a.negs @ b.negs;
    funs = a.funs @ b.funs;
    const = a.const + b.const;
  }

let glin_negate a =
  {
    pos = a.negs;
    negs = a.pos;
    funs = List.map (fun (c, f) -> (-c, f)) a.funs;
    const = -a.const;
  }

let glin_sub a b = glin_add a (glin_negate b)

(** Quantifier-free ground formula. [GCmp (op, l)] means [l op 0]. *)
type gformula =
  | GTrue
  | GFalse
  | GAtom of gatom
  | GCmp of cmpop * glin
  | GNot of gformula
  | GAnd of gformula * gformula
  | GOr of gformula * gformula

let gnot = function
  | GTrue -> GFalse
  | GFalse -> GTrue
  | GNot f -> f
  | f -> GNot f

let gand a b =
  match (a, b) with
  | GTrue, f | f, GTrue -> f
  | GFalse, _ | _, GFalse -> GFalse
  | _ -> GAnd (a, b)

let gor a b =
  match (a, b) with
  | GFalse, f | f, GFalse -> f
  | GTrue, _ | _, GTrue -> GTrue
  | _ -> GOr (a, b)

let gand_l = List.fold_left gand GTrue
let gor_l = List.fold_left gor GFalse

(* ------------------------------------------------------------------ *)
(* Grounding                                                           *)
(* ------------------------------------------------------------------ *)

type env = {
  sg : signature;
  dom : domain;
  consts : (string * int) list;  (** named integer constants *)
}

let const_value env c =
  match List.assoc_opt c env.consts with
  | Some v -> v
  | None -> fail "unknown integer constant %s" c

(* All tuples of domain elements matching an argument pattern: Const c
   matches only c, Star matches every element of the position's sort.
   Variables must have been substituted away before grounding. *)
let rec expand_args env (sorts : sort list) (args : term list) :
    string list list =
  match (sorts, args) with
  | [], [] -> [ [] ]
  | s :: srest, a :: arest ->
      let heads =
        match a with
        | Const c -> [ c ]
        | Star -> sort_elems env.dom s
        | Var v -> fail "unbound variable %s during grounding" v
      in
      let tails = expand_args env srest arest in
      List.concat_map (fun h -> List.map (fun t -> h :: t) tails) heads
  | _ -> fail "arity mismatch while grounding"

let ground_atom env p args =
  match expand_args env (pred_arity env.sg p) args with
  | [ ga ] -> { gpred = p; gargs = ga }
  | [] -> fail "atom %s grounds to no instance" p
  | _ ->
      fail "atom %s with wildcard used as a boolean position (use # for counts)"
        p

let rec ground_nexpr env = function
  | Int n -> glin_const n
  | NConst c -> glin_const (const_value env c)
  | Card (p, args) ->
      let tuples = expand_args env (pred_arity env.sg p) args in
      {
        glin_zero with
        pos = List.map (fun ga -> { gpred = p; gargs = ga }) tuples;
      }
  | NFun (f, args) -> (
      match expand_args env (nfun_arity env.sg f) args with
      | [ ga ] -> { glin_zero with funs = [ (1, { gfun = f; gnargs = ga }) ] }
      | tuples ->
          (* wildcard over numeric functions sums all instances *)
          {
            glin_zero with
            funs = List.map (fun ga -> (1, { gfun = f; gnargs = ga })) tuples;
          })
  | NAdd (a, b) -> glin_add (ground_nexpr env a) (ground_nexpr env b)
  | NSub (a, b) -> glin_sub (ground_nexpr env a) (ground_nexpr env b)

let subst_of vs elems =
  List.map2 (fun (v : tvar) e -> (v.vname, Const e)) vs elems

(* all assignments of domain elements to quantified variables *)
let assignments env (vs : tvar list) : (string * term) list list =
  let rec go = function
    | [] -> [ [] ]
    | v :: rest ->
        let elems = sort_elems env.dom v.vsort in
        let tails = go rest in
        List.concat_map
          (fun e -> List.map (fun t -> (v.vname, Const e) :: t) tails)
          elems
  in
  ignore subst_of;
  go vs

let rec ground_f env (f : formula) : gformula =
  match f with
  | True -> GTrue
  | False -> GFalse
  | Atom (p, args) -> GAtom (ground_atom env p args)
  | Eq (a, b) -> (
      match (a, b) with
      | Const x, Const y -> if x = y then GTrue else GFalse
      | Star, _ | _, Star -> fail "wildcard in equality"
      | Var v, _ | _, Var v -> fail "unbound variable %s in equality" v)
  | Cmp (op, a, b) ->
      let l = glin_sub (ground_nexpr env a) (ground_nexpr env b) in
      GCmp (op, l)
  | Not g -> gnot (ground_f env g)
  | And (a, b) -> gand (ground_f env a) (ground_f env b)
  | Or (a, b) -> gor (ground_f env a) (ground_f env b)
  | Implies (a, b) -> gor (gnot (ground_f env a)) (ground_f env b)
  | Iff (a, b) ->
      let ga = ground_f env a and gb = ground_f env b in
      gand (gor (gnot ga) gb) (gor (gnot gb) ga)
  | Forall (vs, body) ->
      assignments env vs
      |> List.map (fun b -> ground_f env (Subst.subst b body))
      |> gand_l
  | Exists (vs, body) ->
      assignments env vs
      |> List.map (fun b -> ground_f env (Subst.subst b body))
      |> gor_l

(** Ground a closed formula over the given signature, named constants and
    domain. Raises {!Ground_error} on free variables or unknown symbols. *)
let ground ~(sg : signature) ~(consts : (string * int) list) ~(dom : domain)
    (f : formula) : gformula =
  ground_f { sg; dom; consts } f

(* ------------------------------------------------------------------ *)
(* Collection and evaluation                                           *)
(* ------------------------------------------------------------------ *)

(** All ground atoms of a ground formula (deduplicated). *)
let atoms (g : gformula) : gatom list =
  let tbl = Hashtbl.create 64 in
  let add a = if not (Hashtbl.mem tbl a) then Hashtbl.add tbl a () in
  let rec go = function
    | GTrue | GFalse -> ()
    | GAtom a -> add a
    | GCmp (_, l) ->
        List.iter add l.pos;
        List.iter add l.negs
    | GNot f -> go f
    | GAnd (a, b) | GOr (a, b) ->
        go a;
        go b
  in
  go g;
  Hashtbl.fold (fun a () acc -> a :: acc) tbl []

(** All numeric state variables of a ground formula (deduplicated). *)
let nums (g : gformula) : gnum list =
  let tbl = Hashtbl.create 16 in
  let rec go = function
    | GTrue | GFalse | GAtom _ -> ()
    | GCmp (_, l) ->
        List.iter
          (fun (_, n) -> if not (Hashtbl.mem tbl n) then Hashtbl.add tbl n ())
          l.funs
    | GNot f -> go f
    | GAnd (a, b) | GOr (a, b) ->
        go a;
        go b
  in
  go g;
  Hashtbl.fold (fun n () acc -> n :: acc) tbl []

let eval_cmp op (v : int) =
  match op with
  | Le -> v <= 0
  | Lt -> v < 0
  | Ge -> v >= 0
  | Gt -> v > 0
  | EqN -> v = 0
  | NeN -> v <> 0

(** Evaluate a ground formula under boolean and integer valuations. *)
let eval ~(batom : gatom -> bool) ~(bnum : gnum -> int) (g : gformula) : bool =
  let rec go = function
    | GTrue -> true
    | GFalse -> false
    | GAtom a -> batom a
    | GCmp (op, l) ->
        let v =
          List.fold_left (fun acc a -> if batom a then acc + 1 else acc) 0 l.pos
          + List.fold_left
              (fun acc a -> if batom a then acc - 1 else acc)
              0 l.negs
          + List.fold_left (fun acc (c, n) -> acc + (c * bnum n)) 0 l.funs
          + l.const
        in
        eval_cmp op v
    | GNot f -> not (go f)
    | GAnd (a, b) -> go a && go b
    | GOr (a, b) -> go a || go b
  in
  go g

let pp_gformula ppf g =
  let rec pp prec ppf g =
    let paren p body = if prec > p then Fmt.pf ppf "(%t)" body else body ppf in
    match g with
    | GTrue -> Fmt.string ppf "true"
    | GFalse -> Fmt.string ppf "false"
    | GAtom a -> Fmt.string ppf (gatom_to_string a)
    | GCmp (op, l) ->
        let parts =
          List.map gatom_to_string l.pos
          @ List.map (fun a -> "-" ^ gatom_to_string a) l.negs
          @ List.map
              (fun (c, n) ->
                if c = 1 then gnum_to_string n
                else Fmt.str "%d*%s" c (gnum_to_string n))
              l.funs
          @ (if l.const <> 0 then [ string_of_int l.const ] else [])
        in
        let body = if parts = [] then "0" else String.concat " + " parts in
        Fmt.pf ppf "%s %s 0" body (Pp.cmpop_to_string op)
    | GNot f -> paren 3 (fun ppf -> Fmt.pf ppf "not %a" (pp 3) f)
    | GAnd (a, b) ->
        paren 2 (fun ppf -> Fmt.pf ppf "%a and %a" (pp 2) a (pp 3) b)
    | GOr (a, b) ->
        paren 1 (fun ppf -> Fmt.pf ppf "%a or %a" (pp 1) a (pp 2) b)
  in
  pp 0 ppf g
