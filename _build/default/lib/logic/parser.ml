(** Recursive-descent parser for the specification's formula syntax.

    Grammar (mirroring the paper's annotation language, Figure 1):

    {v
    formula  ::= "forall" "(" tvars ")" ":-" formula
               | "exists" "(" tvars ")" ":-" formula
               | iff
    iff      ::= impl ( "<=>" impl )*
    impl     ::= orf ( "=>" impl )?
    orf      ::= andf ( "or" andf )*
    andf     ::= notf ( "and" notf )*
    notf     ::= "not" notf | primary
    primary  ::= "true" | "false" | "(" formula ")" | operand ( cmp operand )?
    operand  ::= nexpr | term
    nexpr    ::= "#" ident "(" args ")" | int | ident "(" args ")" | ident
    term     ::= ident | "'" ident | "*"
    tvars    ::= tvar ( "," tvar )*
    tvar     ::= ident ":" ident | ident      (bare name inherits last sort)
    v}

    Variables are bare identifiers; constants are ['quoted]; [*] is the
    wildcard. An identifier followed by a comparison operator (and not by
    an argument list) parses as a named integer constant ([NConst]). *)

open Ast

exception Parse_error of string

let fail fmt = Fmt.kstr (fun s -> raise (Parse_error s)) fmt

(* ------------------------------------------------------------------ *)
(* Lexer                                                               *)
(* ------------------------------------------------------------------ *)

type token =
  | IDENT of string
  | QCONST of string
  | INT of int
  | LPAREN
  | RPAREN
  | COMMA
  | COLON
  | TURNSTILE (* :- *)
  | ARROW (* => *)
  | DARROW (* <=> *)
  | LE
  | LT
  | GE
  | GT
  | EQEQ
  | NEQ
  | HASH
  | PLUS
  | MINUS
  | STAR
  | ASSIGN (* := , used by the spec-file parser *)
  | EOF

let pp_token ppf = function
  | IDENT s -> Fmt.pf ppf "identifier %S" s
  | QCONST s -> Fmt.pf ppf "constant '%s" s
  | INT n -> Fmt.pf ppf "integer %d" n
  | LPAREN -> Fmt.string ppf "'('"
  | RPAREN -> Fmt.string ppf "')'"
  | COMMA -> Fmt.string ppf "','"
  | COLON -> Fmt.string ppf "':'"
  | TURNSTILE -> Fmt.string ppf "':-'"
  | ARROW -> Fmt.string ppf "'=>'"
  | DARROW -> Fmt.string ppf "'<=>'"
  | LE -> Fmt.string ppf "'<='"
  | LT -> Fmt.string ppf "'<'"
  | GE -> Fmt.string ppf "'>='"
  | GT -> Fmt.string ppf "'>'"
  | EQEQ -> Fmt.string ppf "'=='"
  | NEQ -> Fmt.string ppf "'!='"
  | HASH -> Fmt.string ppf "'#'"
  | PLUS -> Fmt.string ppf "'+'"
  | MINUS -> Fmt.string ppf "'-'"
  | STAR -> Fmt.string ppf "'*'"
  | ASSIGN -> Fmt.string ppf "':='"
  | EOF -> Fmt.string ppf "end of input"

let is_ident_start c =
  (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'

let is_ident_char c = is_ident_start c || (c >= '0' && c <= '9')
let is_digit c = c >= '0' && c <= '9'

(** Tokenize a whole string. *)
let tokenize (s : string) : token list =
  let n = String.length s in
  let rec go i acc =
    if i >= n then List.rev (EOF :: acc)
    else
      let c = s.[i] in
      if c = ' ' || c = '\t' || c = '\n' || c = '\r' then go (i + 1) acc
      else if is_ident_start c then (
        let j = ref i in
        while !j < n && is_ident_char s.[!j] do
          incr j
        done;
        go !j (IDENT (String.sub s i (!j - i)) :: acc))
      else if is_digit c then (
        let j = ref i in
        while !j < n && is_digit s.[!j] do
          incr j
        done;
        go !j (INT (int_of_string (String.sub s i (!j - i))) :: acc))
      else
        let two = if i + 1 < n then String.sub s i 2 else "" in
        match two with
        | ":-" -> go (i + 2) (TURNSTILE :: acc)
        | ":=" -> go (i + 2) (ASSIGN :: acc)
        | "=>" -> go (i + 2) (ARROW :: acc)
        | "==" -> go (i + 2) (EQEQ :: acc)
        | "!=" -> go (i + 2) (NEQ :: acc)
        | ">=" -> go (i + 2) (GE :: acc)
        | "<=" ->
            if i + 2 < n && s.[i + 2] = '>' then go (i + 3) (DARROW :: acc)
            else go (i + 2) (LE :: acc)
        | _ -> (
            match c with
            | '(' -> go (i + 1) (LPAREN :: acc)
            | ')' -> go (i + 1) (RPAREN :: acc)
            | ',' -> go (i + 1) (COMMA :: acc)
            | ':' -> go (i + 1) (COLON :: acc)
            | '<' -> go (i + 1) (LT :: acc)
            | '>' -> go (i + 1) (GT :: acc)
            | '#' -> go (i + 1) (HASH :: acc)
            | '+' -> go (i + 1) (PLUS :: acc)
            | '-' -> go (i + 1) (MINUS :: acc)
            | '*' -> go (i + 1) (STAR :: acc)
            | '\'' ->
                let j = ref (i + 1) in
                while !j < n && is_ident_char s.[!j] do
                  incr j
                done;
                if !j = i + 1 then fail "empty quoted constant at offset %d" i;
                go !j (QCONST (String.sub s (i + 1) (!j - i - 1)) :: acc)
            | _ -> fail "unexpected character %C at offset %d" c i)
  in
  go 0 []

(* ------------------------------------------------------------------ *)
(* Token stream                                                        *)
(* ------------------------------------------------------------------ *)

type stream = { mutable toks : token list }

let peek st = match st.toks with [] -> EOF | t :: _ -> t

let peek2 st =
  match st.toks with [] | [ _ ] -> EOF | _ :: t :: _ -> t

let advance st =
  match st.toks with [] -> () | _ :: rest -> st.toks <- rest

let expect st tok =
  let got = peek st in
  if got = tok then advance st
  else fail "expected %a but found %a" pp_token tok pp_token got

let expect_ident st =
  match peek st with
  | IDENT s ->
      advance st;
      s
  | t -> fail "expected identifier, found %a" pp_token t

(* ------------------------------------------------------------------ *)
(* Parsing                                                             *)
(* ------------------------------------------------------------------ *)

let parse_term_tok st : term =
  match peek st with
  | IDENT s ->
      advance st;
      Var s
  | QCONST s ->
      advance st;
      Const s
  | STAR ->
      advance st;
      Star
  | t -> fail "expected term, found %a" pp_token t

let parse_args st : term list =
  expect st LPAREN;
  if peek st = RPAREN then (
    advance st;
    [])
  else
    let rec loop acc =
      let t = parse_term_tok st in
      match peek st with
      | COMMA ->
          advance st;
          loop (t :: acc)
      | RPAREN ->
          advance st;
          List.rev (t :: acc)
      | tok -> fail "expected ',' or ')', found %a" pp_token tok
    in
    loop []

(* tvars: Sort:name, name, Sort2:name2 ... *)
let parse_tvars st : tvar list =
  let rec loop last_sort acc =
    let first = expect_ident st in
    let v =
      if peek st = COLON then (
        advance st;
        let name = expect_ident st in
        { vname = name; vsort = first })
      else
        match last_sort with
        | Some s -> { vname = first; vsort = s }
        | None -> fail "variable %s has no sort" first
    in
    match peek st with
    | COMMA ->
        advance st;
        loop (Some v.vsort) (v :: acc)
    | _ -> List.rev (v :: acc)
  in
  loop None []

let cmp_of_token = function
  | LE -> Some Le
  | LT -> Some Lt
  | GE -> Some Ge
  | GT -> Some Gt
  | EQEQ -> Some EqN
  | NEQ -> Some NeN
  | _ -> None

(* An operand is either a numeric expression or a plain term; which one it
   is becomes clear from context once the comparison operator (or absence
   of one) is known. *)
type operand = O_num of nexpr | O_term of term | O_atom of string * term list

let rec parse_nexpr_operand st : operand =
  let base =
    match peek st with
    | HASH ->
        advance st;
        let p = expect_ident st in
        let args = parse_args st in
        O_num (Card (p, args))
    | INT n ->
        advance st;
        O_num (Int n)
    | QCONST s ->
        advance st;
        O_term (Const s)
    | STAR ->
        advance st;
        O_term Star
    | IDENT s -> (
        advance st;
        if peek st = LPAREN then
          let args = parse_args st in
          O_atom (s, args)
        else O_term (Var s))
    | t -> fail "expected operand, found %a" pp_token t
  in
  match peek st with
  | PLUS ->
      advance st;
      let rhs = parse_nexpr_operand st in
      O_num (NAdd (num_of_operand base, num_of_operand rhs))
  | MINUS ->
      advance st;
      let rhs = parse_nexpr_operand st in
      O_num (NSub (num_of_operand base, num_of_operand rhs))
  | _ -> base

and num_of_operand = function
  | O_num n -> n
  | O_term (Var v) -> NConst v
  | O_term (Const c) -> fail "constant '%s cannot be used numerically" c
  | O_term Star -> fail "wildcard cannot be used numerically"
  | O_atom (f, args) -> NFun (f, args)

let rec parse_formula_prec st : formula =
  match peek st with
  | IDENT "forall" when peek2 st = LPAREN ->
      advance st;
      expect st LPAREN;
      let vs = parse_tvars st in
      expect st RPAREN;
      expect st TURNSTILE;
      let body = parse_formula_prec st in
      Forall (vs, body)
  | IDENT "exists" when peek2 st = LPAREN ->
      advance st;
      expect st LPAREN;
      let vs = parse_tvars st in
      expect st RPAREN;
      expect st TURNSTILE;
      let body = parse_formula_prec st in
      Exists (vs, body)
  | _ -> parse_iff st

and parse_iff st =
  let lhs = parse_impl st in
  if peek st = DARROW then (
    advance st;
    let rhs = parse_impl st in
    Iff (lhs, rhs))
  else lhs

and parse_impl st =
  let lhs = parse_or st in
  if peek st = ARROW then (
    advance st;
    let rhs = parse_impl st in
    Implies (lhs, rhs))
  else lhs

and parse_or st =
  let lhs = parse_and st in
  let rec loop acc =
    match peek st with
    | IDENT "or" ->
        advance st;
        let rhs = parse_and st in
        loop (Or (acc, rhs))
    | _ -> acc
  in
  loop lhs

and parse_and st =
  let lhs = parse_not st in
  let rec loop acc =
    match peek st with
    | IDENT "and" ->
        advance st;
        let rhs = parse_not st in
        loop (And (acc, rhs))
    | _ -> acc
  in
  loop lhs

and parse_not st =
  match peek st with
  | IDENT "not" ->
      advance st;
      let f = parse_not st in
      Not f
  | _ -> parse_primary st

and parse_primary st =
  match peek st with
  | IDENT "true" when peek2 st <> LPAREN ->
      advance st;
      True
  | IDENT "false" when peek2 st <> LPAREN ->
      advance st;
      False
  | IDENT ("forall" | "exists") when peek2 st = LPAREN ->
      parse_formula_prec st
  | LPAREN ->
      advance st;
      let f = parse_formula_prec st in
      expect st RPAREN;
      f
  | _ -> (
      let lhs = parse_nexpr_operand st in
      match cmp_of_token (peek st) with
      | Some op -> (
          advance st;
          let rhs = parse_nexpr_operand st in
          (* term == term is equality; anything numeric is Cmp *)
          match (op, lhs, rhs) with
          | EqN, O_term a, O_term b -> Eq (a, b)
          | NeN, O_term a, O_term b -> Not (Eq (a, b))
          | _ -> Cmp (op, num_of_operand lhs, num_of_operand rhs))
      | None -> (
          match lhs with
          | O_atom (p, args) -> Atom (p, args)
          | O_term (Var v) ->
              (* nullary predicate written without parens *)
              Atom (v, [])
          | _ -> fail "expected formula"))

(** Parse a complete formula from a string. *)
let parse_formula (s : string) : formula =
  let st = { toks = tokenize s } in
  let f = parse_formula_prec st in
  (match peek st with
  | EOF -> ()
  | t -> fail "trailing input after formula: %a" pp_token t);
  f

(** Parse a single term (for tool inputs). *)
let parse_term (s : string) : term =
  let st = { toks = tokenize s } in
  let t = parse_term_tok st in
  (match peek st with
  | EOF -> ()
  | tk -> fail "trailing input after term: %a" pp_token tk);
  t
