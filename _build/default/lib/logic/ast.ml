(** First-order logic AST for IPA application specifications.

    The language mirrors the annotation grammar of the paper (Figure 1):
    invariants are first-order formulas over boolean predicates, numeric
    functions and cardinalities of predicates, e.g.

    {v
    forall(Player:p, Tournament:t) :- enrolled(p,t) => player(p) and tournament(t)
    forall(Tournament:t) :- #enrolled( *, t) <= Capacity
    v}

    Terms are either variables (bound by quantifiers or operation
    parameters), constants (domain elements introduced by grounding), or
    the wildcard [Star] which is used in operation effects such as
    [enrolled( *, t) = false] to denote "all elements of that sort". *)

(** A sort (entity type) such as ["Player"] or ["Tournament"]. *)
type sort = string

(** A typed variable, e.g. [p : Player]. *)
type tvar = { vname : string; vsort : sort }

(** Terms appearing as predicate arguments. *)
type term =
  | Var of string  (** a variable (sort known from context) *)
  | Const of string  (** a ground domain element *)
  | Star  (** wildcard: matches every element of the argument's sort *)

(** Comparison operators for numeric atoms. *)
type cmpop = Le | Lt | Ge | Gt | EqN | NeN

(** Numeric expressions.

    [Card (p, args)] is the cardinality [#p(args)] of the set of true
    instances of predicate [p] matching [args] (with [Star] positions
    ranging over the whole sort).  [NFun (f, args)] is an uninterpreted
    bounded-integer state function such as [stock(i)]. [NConst c] refers
    to a named integer constant (e.g. [Capacity]) resolved by the
    specification. *)
type nexpr =
  | Int of int
  | NConst of string
  | Card of string * term list
  | NFun of string * term list
  | NAdd of nexpr * nexpr
  | NSub of nexpr * nexpr

(** Formulas. [Eq (t1, t2)] is term equality, used for uniqueness
    invariants. *)
type formula =
  | True
  | False
  | Atom of string * term list
  | Eq of term * term
  | Cmp of cmpop * nexpr * nexpr
  | Not of formula
  | And of formula * formula
  | Or of formula * formula
  | Implies of formula * formula
  | Iff of formula * formula
  | Forall of tvar list * formula
  | Exists of tvar list * formula

(* ------------------------------------------------------------------ *)
(* Smart constructors                                                  *)
(* ------------------------------------------------------------------ *)

let tt = True
let ff = False
let atom p args = Atom (p, args)
let eq a b = Eq (a, b)

let neg = function
  | True -> False
  | False -> True
  | Not f -> f
  | f -> Not f

let conj a b =
  match (a, b) with
  | True, f | f, True -> f
  | False, _ | _, False -> False
  | _ -> And (a, b)

let disj a b =
  match (a, b) with
  | False, f | f, False -> f
  | True, _ | _, True -> True
  | _ -> Or (a, b)

let implies a b =
  match (a, b) with
  | False, _ -> True
  | True, f -> f
  | _, True -> True
  | _ -> Implies (a, b)

let forall vs f = if vs = [] then f else Forall (vs, f)
let exists vs f = if vs = [] then f else Exists (vs, f)

(** N-ary conjunction of a list of formulas. *)
let conj_l = List.fold_left conj True

(** N-ary disjunction of a list of formulas. *)
let disj_l = List.fold_left disj False

(* ------------------------------------------------------------------ *)
(* Traversals                                                          *)
(* ------------------------------------------------------------------ *)

(** [clauses f] splits the top-level conjunction of [f] into a list of
    conjuncts, pushing through nothing else.  Invariants are usually
    written as a conjunction of clauses; conflict repair reasons about
    individual clauses. *)
let rec clauses = function
  | And (a, b) -> clauses a @ clauses b
  | True -> []
  | f -> [ f ]

(** Fold over every (predicate name, argument list) boolean atom. *)
let rec fold_atoms fn acc = function
  | True | False | Eq _ -> acc
  | Atom (p, args) -> fn acc p args
  | Cmp (_, a, b) ->
      let rec fn_n acc = function
        | Int _ | NConst _ -> acc
        | Card (p, args) -> fn acc p args
        | NFun _ -> acc
        | NAdd (x, y) | NSub (x, y) -> fn_n (fn_n acc x) y
      in
      fn_n (fn_n acc a) b
  | Not f -> fold_atoms fn acc f
  | And (a, b) | Or (a, b) | Implies (a, b) | Iff (a, b) ->
      fold_atoms fn (fold_atoms fn acc a) b
  | Forall (_, f) | Exists (_, f) -> fold_atoms fn acc f

(** Fold over every numeric-function (name, args) occurrence. *)
let rec fold_nfuns fn acc = function
  | True | False | Eq _ | Atom _ -> acc
  | Cmp (_, a, b) ->
      let rec fn_n acc = function
        | Int _ | NConst _ | Card _ -> acc
        | NFun (f, args) -> fn acc f args
        | NAdd (x, y) | NSub (x, y) -> fn_n (fn_n acc x) y
      in
      fn_n (fn_n acc a) b
  | Not f -> fold_nfuns fn acc f
  | And (a, b) | Or (a, b) | Implies (a, b) | Iff (a, b) ->
      fold_nfuns fn (fold_nfuns fn acc a) b
  | Forall (_, f) | Exists (_, f) -> fold_nfuns fn acc f

(** Names of all boolean predicates mentioned in a formula (set, sorted). *)
let predicates f =
  fold_atoms (fun acc p _ -> p :: acc) [] f
  |> List.sort_uniq String.compare

(** Names of all numeric functions mentioned in a formula. *)
let nfunctions f =
  fold_nfuns (fun acc p _ -> p :: acc) [] f
  |> List.sort_uniq String.compare

(** [has_cardinality f] is true when [f] contains a [#p(...)] term. *)
let has_cardinality f =
  let rec go_n = function
    | Card _ -> true
    | NAdd (a, b) | NSub (a, b) -> go_n a || go_n b
    | _ -> false
  in
  let rec go = function
    | True | False | Atom _ | Eq _ -> false
    | Cmp (_, a, b) -> go_n a || go_n b
    | Not f -> go f
    | And (a, b) | Or (a, b) | Implies (a, b) | Iff (a, b) -> go a || go b
    | Forall (_, f) | Exists (_, f) -> go f
  in
  go f

(** [has_nfun f] is true when [f] contains an uninterpreted numeric
    function occurrence. *)
let has_nfun f = nfunctions f <> []

(** Free variables of a formula, in first-occurrence order. *)
let free_vars f =
  let module S = Set.Make (String) in
  let add_t bound (acc, seen) = function
    | Var v when not (S.mem v bound) ->
        if S.mem v seen then (acc, seen) else (v :: acc, S.add v seen)
    | _ -> (acc, seen)
  in
  let rec go_n bound st = function
    | Int _ | NConst _ -> st
    | Card (_, args) | NFun (_, args) ->
        List.fold_left (add_t bound) st args
    | NAdd (a, b) | NSub (a, b) -> go_n bound (go_n bound st a) b
  in
  let rec go bound st = function
    | True | False -> st
    | Atom (_, args) -> List.fold_left (add_t bound) st args
    | Eq (a, b) -> add_t bound (add_t bound st a) b
    | Cmp (_, a, b) -> go_n bound (go_n bound st a) b
    | Not f -> go bound st f
    | And (a, b) | Or (a, b) | Implies (a, b) | Iff (a, b) ->
        go bound (go bound st a) b
    | Forall (vs, f) | Exists (vs, f) ->
        let bound = List.fold_left (fun s v -> S.add v.vname s) bound vs in
        go bound st f
  in
  let acc, _ = go S.empty ([], S.empty) f in
  List.rev acc

(* ------------------------------------------------------------------ *)
(* Equality                                                            *)
(* ------------------------------------------------------------------ *)

let term_equal (a : term) (b : term) = a = b
let formula_equal (a : formula) (b : formula) = a = b
