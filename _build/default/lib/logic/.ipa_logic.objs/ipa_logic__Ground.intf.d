lib/logic/ground.mli: Ast Format
