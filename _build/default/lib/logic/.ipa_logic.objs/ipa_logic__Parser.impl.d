lib/logic/parser.ml: Ast Fmt List String
