lib/logic/subst.ml: Ast List
