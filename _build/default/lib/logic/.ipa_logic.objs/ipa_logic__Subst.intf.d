lib/logic/subst.mli: Ast
