lib/logic/pp.ml: Ast Fmt
