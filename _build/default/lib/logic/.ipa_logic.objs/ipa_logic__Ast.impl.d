lib/logic/ast.ml: List Set String
