lib/logic/ground.ml: Ast Fmt Hashtbl List Pp String Subst
