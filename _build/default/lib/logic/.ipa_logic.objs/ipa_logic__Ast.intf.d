lib/logic/ast.mli:
