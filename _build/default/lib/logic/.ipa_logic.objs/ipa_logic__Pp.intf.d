lib/logic/pp.mli: Ast Format
