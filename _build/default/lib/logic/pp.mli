(** Pretty printing of formulas in the specification's concrete syntax
    (re-parseable by {!Parser}). *)

val pp_term : Format.formatter -> Ast.term -> unit
val pp_args : Format.formatter -> Ast.term list -> unit
val cmpop_to_string : Ast.cmpop -> string
val pp_nexpr : Format.formatter -> Ast.nexpr -> unit
val pp_tvar : Format.formatter -> Ast.tvar -> unit
val pp_formula : Format.formatter -> Ast.formula -> unit
val formula_to_string : Ast.formula -> string
val term_to_string : Ast.term -> string
val nexpr_to_string : Ast.nexpr -> string
