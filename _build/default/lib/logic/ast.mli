(** First-order logic AST for IPA application specifications.

    The language mirrors the paper's annotation grammar (Figure 1):
    invariants are first-order formulas over boolean predicates, numeric
    state functions and predicate cardinalities, e.g.
    [forall(Player:p, Tournament:t) :- enrolled(p,t) => player(p) and
    tournament(t)] and [forall(Tournament:t) :- #enrolled( *, t) <=
    Capacity]. *)

(** A sort (entity type) such as ["Player"]. *)
type sort = string

(** A typed variable, e.g. [p : Player]. *)
type tvar = { vname : string; vsort : sort }

(** Terms appearing as predicate arguments. *)
type term =
  | Var of string
  | Const of string  (** a ground domain element *)
  | Star  (** wildcard: every element of the position's sort *)

type cmpop = Le | Lt | Ge | Gt | EqN | NeN

(** Numeric expressions: integer literals, named constants, predicate
    cardinalities [#p(args)], bounded numeric state functions, sums and
    differences. *)
type nexpr =
  | Int of int
  | NConst of string
  | Card of string * term list
  | NFun of string * term list
  | NAdd of nexpr * nexpr
  | NSub of nexpr * nexpr

type formula =
  | True
  | False
  | Atom of string * term list
  | Eq of term * term  (** term equality (uniqueness invariants) *)
  | Cmp of cmpop * nexpr * nexpr
  | Not of formula
  | And of formula * formula
  | Or of formula * formula
  | Implies of formula * formula
  | Iff of formula * formula
  | Forall of tvar list * formula
  | Exists of tvar list * formula

(** {1 Smart constructors} (perform constant folding) *)

val tt : formula
val ff : formula
val atom : string -> term list -> formula
val eq : term -> term -> formula
val neg : formula -> formula
val conj : formula -> formula -> formula
val disj : formula -> formula -> formula
val implies : formula -> formula -> formula
val forall : tvar list -> formula -> formula
val exists : tvar list -> formula -> formula
val conj_l : formula list -> formula
val disj_l : formula list -> formula

(** {1 Traversals} *)

(** Split the top-level conjunction into clauses. *)
val clauses : formula -> formula list

val fold_atoms : ('a -> string -> term list -> 'a) -> 'a -> formula -> 'a
val fold_nfuns : ('a -> string -> term list -> 'a) -> 'a -> formula -> 'a

(** Boolean predicate names mentioned (sorted, deduplicated). *)
val predicates : formula -> string list

(** Numeric function names mentioned. *)
val nfunctions : formula -> string list

val has_cardinality : formula -> bool
val has_nfun : formula -> bool

(** Free variables, in first-occurrence order. *)
val free_vars : formula -> string list

val term_equal : term -> term -> bool
val formula_equal : formula -> formula -> bool
