(** Recursive-descent parser for the specification's formula syntax
    (see the grammar in the implementation header).  Variables are bare
    identifiers, constants are ['quoted], [*] is the wildcard. *)

exception Parse_error of string

(** Lexer tokens, exposed for reuse by the specification-file parser. *)
type token =
  | IDENT of string
  | QCONST of string
  | INT of int
  | LPAREN
  | RPAREN
  | COMMA
  | COLON
  | TURNSTILE
  | ARROW
  | DARROW
  | LE
  | LT
  | GE
  | GT
  | EQEQ
  | NEQ
  | HASH
  | PLUS
  | MINUS
  | STAR
  | ASSIGN
  | EOF

val tokenize : string -> token list

(** Parse a complete formula; raises {!Parse_error}. *)
val parse_formula : string -> Ast.formula

(** Parse a single term. *)
val parse_term : string -> Ast.term
