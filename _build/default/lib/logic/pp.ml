(** Pretty printing of formulas in the specification's concrete syntax. *)

open Ast

let pp_term ppf = function
  | Var v -> Fmt.string ppf v
  | Const c -> Fmt.pf ppf "'%s" c
  | Star -> Fmt.string ppf "*"

let pp_args ppf args = Fmt.(list ~sep:(any ", ") pp_term) ppf args

let cmpop_to_string = function
  | Le -> "<="
  | Lt -> "<"
  | Ge -> ">="
  | Gt -> ">"
  | EqN -> "=="
  | NeN -> "!="

let rec pp_nexpr ppf = function
  | Int n -> Fmt.int ppf n
  | NConst c -> Fmt.string ppf c
  | Card (p, args) -> Fmt.pf ppf "#%s(%a)" p pp_args args
  | NFun (f, args) -> Fmt.pf ppf "%s(%a)" f pp_args args
  | NAdd (a, b) -> Fmt.pf ppf "(%a + %a)" pp_nexpr a pp_nexpr b
  | NSub (a, b) -> Fmt.pf ppf "(%a - %a)" pp_nexpr a pp_nexpr b

let pp_tvar ppf { vname; vsort } = Fmt.pf ppf "%s:%s" vsort vname

(* Precedence: implies/iff (1) < or (2) < and (3) < not (4) < atom *)
let rec pp_prec prec ppf f =
  let paren p body =
    if prec > p then Fmt.pf ppf "(%t)" body else body ppf
  in
  match f with
  | True -> Fmt.string ppf "true"
  | False -> Fmt.string ppf "false"
  | Atom (p, args) -> Fmt.pf ppf "%s(%a)" p pp_args args
  | Eq (a, b) -> Fmt.pf ppf "%a == %a" pp_term a pp_term b
  | Cmp (op, a, b) ->
      Fmt.pf ppf "%a %s %a" pp_nexpr a (cmpop_to_string op) pp_nexpr b
  | Not g -> paren 4 (fun ppf -> Fmt.pf ppf "not %a" (pp_prec 4) g)
  | And (a, b) ->
      paren 3 (fun ppf -> Fmt.pf ppf "%a and %a" (pp_prec 3) a (pp_prec 4) b)
  | Or (a, b) ->
      paren 2 (fun ppf -> Fmt.pf ppf "%a or %a" (pp_prec 2) a (pp_prec 3) b)
  | Implies (a, b) ->
      paren 1 (fun ppf -> Fmt.pf ppf "%a => %a" (pp_prec 2) a (pp_prec 1) b)
  | Iff (a, b) ->
      paren 1 (fun ppf -> Fmt.pf ppf "%a <=> %a" (pp_prec 2) a (pp_prec 1) b)
  | Forall (vs, g) ->
      paren 1 (fun ppf ->
          Fmt.pf ppf "forall(%a) :- %a"
            Fmt.(list ~sep:(any ", ") pp_tvar)
            vs (pp_prec 0) g)
  | Exists (vs, g) ->
      paren 1 (fun ppf ->
          Fmt.pf ppf "exists(%a) :- %a"
            Fmt.(list ~sep:(any ", ") pp_tvar)
            vs (pp_prec 0) g)

let pp_formula ppf f = pp_prec 0 ppf f
let formula_to_string f = Fmt.str "%a" pp_formula f
let term_to_string t = Fmt.str "%a" pp_term t
let nexpr_to_string n = Fmt.str "%a" pp_nexpr n
