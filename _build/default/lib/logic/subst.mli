(** Variable substitution over formulas and numeric expressions. *)

type binding = (string * Ast.term) list

val subst_term : binding -> Ast.term -> Ast.term
val subst_nexpr : binding -> Ast.nexpr -> Ast.nexpr

(** Replace free variables; quantifiers shadow same-named bindings. *)
val subst : binding -> Ast.formula -> Ast.formula

(** Rename a variable throughout, including binders. *)
val rename : string -> string -> Ast.formula -> Ast.formula
