(** Multiple applications over one shared database (§5.1.4): each
    application is invariant-preserving in isolation, but their
    operations interact through shared data — the combined analysis
    finds the cross-application conflicts.

    Run with: [dune exec examples/multi_app.exe] *)

open Ipa_spec
open Ipa_core

(* A photo-album service ... *)
let album_src =
  {|
app Album
sort User
sort Photo
predicate user(User)
predicate photo(Photo)
predicate ownedBy(Photo, User)
invariant owner_ref: forall(Photo:p, User:u) :-
    ownedBy(p,u) => photo(p) and user(u)
rule user: add-wins
rule photo: add-wins
rule ownedBy: add-wins
operation upload(Photo:p, User:u)
  photo(p) := true
  ownedBy(p, u) := true
operation delete_photo(Photo:p)
  photo(p) := false
|}

(* ... and an account-management service sharing the user directory. *)
let accounts_src =
  {|
app Accounts
sort User
predicate user(User)
rule user: add-wins
operation register(User:u)
  user(u) := true
operation close_account(User:u)
  user(u) := false
|}

let () =
  let album = Spec_parser.parse_string album_src in
  let accounts = Spec_parser.parse_string accounts_src in

  Fmt.pr "Analyzing each application in isolation:@.";
  List.iter
    (fun (s : Types.t) ->
      Fmt.pr "  %-10s %d conflicting pair(s)@." s.app_name
        (List.length (Ipa.diagnose s)))
    [ album; accounts ];

  Fmt.pr "@.Analyzing the combined specification (shared user directory):@.";
  let merged = Compose.merge ~name:"Album+Accounts" [ album; accounts ] in
  let conflicts = Ipa.diagnose merged in
  List.iter
    (fun (o1, o2, w) ->
      Fmt.pr "  %s || %s  (violates: %s)@." o1 o2
        (String.concat ", " w.Detect.violated))
    conflicts;

  Fmt.pr "@.Running IPA on the combined specification:@.";
  let report = Ipa.run merged in
  List.iter
    (fun (o : Detect.aop) ->
      let added =
        List.filter
          (fun e -> not (List.mem e o.Detect.base.oeffects))
          o.Detect.cur.oeffects
      in
      if added <> [] then begin
        Fmt.pr "  %s gains:@." o.Detect.cur.oname;
        List.iter (fun e -> Fmt.pr "    %a@." Types.pp_annotated_effect e) added
      end)
    report.Ipa.final_ops;
  match Ipa.diagnose (Ipa.patched_spec report) with
  | [] -> Fmt.pr "@.The combined application is now I-Confluent.@."
  | l -> Fmt.pr "@.%d conflicts remain.@." (List.length l)
