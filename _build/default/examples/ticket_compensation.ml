(** Overselling tickets and repairing it with compensations (§3.4,
    §5.2.4): two replicas sell the last tickets concurrently; the Causal
    variant exposes a negative availability, the IPA variant repairs it
    on the next read (cancel + reimburse) and converges.

    Run with: [dune exec examples/ticket_compensation.exe] *)

open Ipa_crdt
open Ipa_store
open Ipa_apps

let scenario (variant : Ticket.variant) =
  let cluster =
    Cluster.create
      [ ("dc-east", "us-east"); ("dc-west", "us-west"); ("dc-eu", "eu-west") ]
  in
  let app = Ticket.create ~initial_stock:1 variant in
  let east = Cluster.replica cluster "dc-east" in
  let west = Cluster.replica cluster "dc-west" in

  (* one ticket left, everyone knows *)
  Ticket.seed_data app
    { Ticket.n_events = 1; buy_ratio = 0.0; restock_ratio = 0.0; restock_amount = 0 }
    cluster;

  (* both coasts sell the last ticket concurrently: both local checks
     pass (availability 1), both commit *)
  let buy rep = (Ticket.buy_ticket app "e0").Ipa_runtime.Config.run rep in
  let b1 = buy east and b2 = buy west in
  List.iter
    (fun (o : Ipa_runtime.Config.outcome) ->
      match o.Ipa_runtime.Config.batch with
      | Some b -> Cluster.broadcast_now cluster b
      | None -> ())
    [ b1; b2 ];

  let raw =
    match Replica.peek east "avail:e0" with
    | Some (Obj.O_pncounter c) -> Pncounter.value c
    | Some (Obj.O_compcounter c) -> Compcounter.value c
    | _ -> 0
  in
  Fmt.pr "after concurrent buys, availability = %d%s@." raw
    (if raw < 0 then "  <-- INVARIANT VIOLATED (oversold)" else "");

  (* a user reads the event: in IPA mode the read runs the compensation
     and commits it with the reading transaction *)
  let read_out = (Ticket.read_event app "e0").Ipa_runtime.Config.run east in
  (match read_out.Ipa_runtime.Config.batch with
  | Some b -> Cluster.broadcast_now cluster b
  | None -> ());
  if read_out.Ipa_runtime.Config.violations > 0 then
    Fmt.pr "read repaired %d oversold ticket(s): cancelled and reimbursed@."
      read_out.Ipa_runtime.Config.violations;

  List.iter
    (fun (r : Replica.t) ->
      let v =
        match Replica.peek r "avail:e0" with
        | Some (Obj.O_pncounter c) -> Pncounter.value c
        | Some (Obj.O_compcounter c) -> Compcounter.value c
        | _ -> 0
      in
      Fmt.pr "  %s observes availability %d@." r.Replica.id v)
    cluster.Cluster.replicas

let () =
  Fmt.pr "=== Causal: the oversell is permanent ===@.";
  scenario Ticket.Causal;
  Fmt.pr "@.=== IPA: the compensation repairs it on read ===@.";
  scenario Ticket.Ipa
