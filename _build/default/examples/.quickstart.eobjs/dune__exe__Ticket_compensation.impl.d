examples/ticket_compensation.ml: Cluster Compcounter Fmt Ipa_apps Ipa_crdt Ipa_runtime Ipa_store List Obj Pncounter Replica Ticket
