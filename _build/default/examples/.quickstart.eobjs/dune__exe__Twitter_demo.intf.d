examples/twitter_demo.mli:
