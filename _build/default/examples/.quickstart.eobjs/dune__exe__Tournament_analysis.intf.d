examples/tournament_analysis.mli:
