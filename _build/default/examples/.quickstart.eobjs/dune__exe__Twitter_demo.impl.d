examples/twitter_demo.ml: Awset Cluster Fmt Ipa_apps Ipa_crdt Ipa_runtime Ipa_store List Obj Replica String Twitter
