examples/quickstart.mli:
