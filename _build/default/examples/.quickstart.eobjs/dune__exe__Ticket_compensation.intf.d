examples/ticket_compensation.mli:
