examples/quickstart.ml: Detect Fmt Ipa Ipa_core Ipa_spec List Spec_parser String Types
