examples/multi_app.ml: Compose Detect Fmt Ipa Ipa_core Ipa_spec List Spec_parser String Types
