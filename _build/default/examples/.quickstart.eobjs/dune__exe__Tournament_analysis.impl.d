examples/tournament_analysis.ml: Awset Catalog Cluster Compset Detect Fmt Ipa Ipa_apps Ipa_core Ipa_crdt Ipa_runtime Ipa_spec Ipa_store List Obj Option Repair Replica Report String Tournament Types
