(** The paper's running example end to end: analyze the Tournament
    application (Figure 1), inspect the rem_tourn/enroll conflict
    (Figure 2), reproduce the Figure 3 modifications, and demonstrate the
    repaired semantics on a live 3-region replicated store.

    Run with: [dune exec examples/tournament_analysis.exe] *)

open Ipa_spec
open Ipa_core
open Ipa_crdt
open Ipa_store
open Ipa_apps

let section title = Fmt.pr "@.=== %s ===@.@." title

(* ------------------------------------------------------------------ *)
(* Static analysis                                                     *)
(* ------------------------------------------------------------------ *)

let analysis () =
  let spec = Catalog.tournament () in
  section "Figure 2: the rem_tourn || enroll conflict";
  let op name = Detect.aop_of (Option.get (Types.find_op spec name)) in
  (match Detect.check_pair spec (op "rem_tourn") (op "enroll") with
  | Detect.Conflict w ->
      Fmt.pr "%s@." (Report.witness_to_string ~op1:"rem_tourn" ~op2:"enroll" w)
  | Detect.Safe -> assert false);

  section "Proposed resolutions (programmer picks one)";
  let sols =
    Repair.repair_conflicts ~search_rules:true spec
      (op "rem_tourn", op "enroll")
  in
  List.iteri
    (fun i s -> Fmt.pr "option %d:@.%a@.@." (i + 1) Repair.pp_solution s)
    sols;

  section "Figure 3: the full IPA run over all nine operations";
  let report = Ipa.run spec in
  Fmt.pr "%s@." (Report.report_to_string report)

(* ------------------------------------------------------------------ *)
(* Runtime demonstration                                               *)
(* ------------------------------------------------------------------ *)

(* Replay the Figure 2 scenario on the real store: east enrolls a player
   while west concurrently removes the tournament. *)
let runtime_demo (variant : Tournament.variant) =
  let cluster =
    Cluster.create
      [ ("dc-east", "us-east"); ("dc-west", "us-west"); ("dc-eu", "eu-west") ]
  in
  let app = Tournament.create variant in
  let east = Cluster.replica cluster "dc-east" in
  let west = Cluster.replica cluster "dc-west" in

  (* set up: a player and a tournament, fully replicated *)
  let run rep (op : Ipa_runtime.Config.op_exec) =
    match (op.Ipa_runtime.Config.run rep).Ipa_runtime.Config.batch with
    | Some b -> Cluster.broadcast_now cluster b
    | None -> ()
  in
  run east (Tournament.add_player app "alice");
  run east (Tournament.add_tourn app "cup");

  (* concurrent: enroll at east, remove tournament at west — neither has
     seen the other *)
  let b_enroll =
    (Tournament.enroll app "alice" "cup").Ipa_runtime.Config.run east
  in
  let b_rem =
    (Tournament.rem_tourn app "cup").Ipa_runtime.Config.run west
  in
  (match b_enroll.Ipa_runtime.Config.batch with
  | Some b -> Cluster.broadcast_now cluster b
  | None -> Fmt.pr "(enroll aborted)@.");
  (match b_rem.Ipa_runtime.Config.batch with
  | Some b -> Cluster.broadcast_now cluster b
  | None -> Fmt.pr "(rem_tourn aborted: west already saw the enrollment)@.");

  (* after convergence: check the invariant *)
  let violations = Tournament.count_violations app east in
  let tournaments =
    match Replica.peek east "tournaments" with
    | Some o -> Awset.elements (Obj.as_awset o)
    | None -> []
  in
  let enrolled =
    match Replica.peek east "enrolled:cup" with
    | Some (Obj.O_awset s) -> Awset.elements s
    | Some (Obj.O_compset c) -> fst (Compset.read c)
    | _ -> []
  in
  Fmt.pr "converged state: tournaments={%s} enrolled:cup={%s}@."
    (String.concat "; " tournaments)
    (String.concat "; " enrolled);
  Fmt.pr "invariant violations: %d@." violations

let () =
  analysis ();
  section "Runtime: Causal (unmodified) — the anomaly is real";
  runtime_demo Tournament.Causal;
  section "Runtime: IPA (Figure 3 modifications) — the add wins, state repaired";
  runtime_demo Tournament.Ipa
