(** Quickstart: specify a small application, find its concurrency
    conflicts, and let IPA repair them.

    Run with: [dune exec examples/quickstart.exe] *)

open Ipa_spec
open Ipa_core

(* 1. Write the application specification: a tiny photo-album app where
   photos must belong to an existing album. *)
let spec_src =
  {|
app Album

sort Album
sort Photo

predicate album(Album)
predicate photo(Photo)
predicate inAlbum(Photo, Album)

invariant photo_ref: forall(Photo:p, Album:a) :-
    inAlbum(p, a) => photo(p) and album(a)

rule album: add-wins
rule photo: add-wins
rule inAlbum: add-wins

operation create_album(Album:a)
  album(a) := true

operation delete_album(Album:a)
  album(a) := false

operation upload(Photo:p, Album:a)
  photo(p) := true
  inAlbum(p, a) := true

operation delete_photo(Photo:p)
  photo(p) := false
|}

let () =
  let spec = Spec_parser.parse_string spec_src in
  Fmt.pr "Loaded specification of %s: %d operations, %d invariant(s)@.@."
    spec.Types.app_name
    (List.length spec.Types.operations)
    (List.length spec.Types.invariants);

  (* 2. Diagnose: which pairs of operations can violate the invariant
     when they run concurrently at different replicas? *)
  let conflicts = Ipa.diagnose spec in
  Fmt.pr "Conflicting pairs under weak consistency:@.";
  List.iter
    (fun (o1, o2, w) ->
      Fmt.pr "  %s || %s  (violates: %s)@." o1 o2
        (String.concat ", " w.Detect.violated))
    conflicts;
  Fmt.pr "@.";

  (* 3. Repair: run the IPA loop; the proposed extra effects make the
     application invariant-preserving without any coordination. *)
  let report = Ipa.run spec in
  Fmt.pr "After IPA (%d iteration(s)):@." report.Ipa.iterations;
  List.iter
    (fun (o : Detect.aop) ->
      let added =
        List.filter
          (fun e -> not (List.mem e o.Detect.base.oeffects))
          o.Detect.cur.oeffects
      in
      if added <> [] then begin
        Fmt.pr "  %s gains:@." o.Detect.cur.oname;
        List.iter
          (fun e -> Fmt.pr "    %a@." Types.pp_annotated_effect e)
          added
      end)
    report.Ipa.final_ops;

  (* 4. Verify: the patched specification has no remaining conflicts. *)
  let patched = Ipa.patched_spec report in
  (match Ipa.diagnose patched with
  | [] -> Fmt.pr "@.The patched application is I-Confluent: no conflicts remain.@."
  | l -> Fmt.pr "@.Unexpected: %d conflicts remain.@." (List.length l));
  (match Ipa.flagged_pairs report with
  | [] -> ()
  | fps ->
      Fmt.pr "Pairs needing coordination: %a@."
        Fmt.(list ~sep:(any ", ") (pair ~sep:(any "/") string string))
        fps)
