(** Twitter under concurrent tweet deletion (§5.2.3): compare the
    Add-wins strategy (recover the deleted tweet) with the Rem-wins
    strategy (hide its retweets from timelines via a read compensation).

    Run with: [dune exec examples/twitter_demo.exe] *)

open Ipa_crdt
open Ipa_store
open Ipa_apps

let run_scenario (variant : Twitter.variant) =
  let cluster =
    Cluster.create
      [ ("dc-east", "us-east"); ("dc-west", "us-west"); ("dc-eu", "eu-west") ]
  in
  let app = Twitter.create ~followers_per_user:3 variant in
  let east = Cluster.replica cluster "dc-east" in
  let west = Cluster.replica cluster "dc-west" in
  let n_users = 10 in

  let run_sync rep (op : Ipa_runtime.Config.op_exec) =
    match (op.Ipa_runtime.Config.run rep).Ipa_runtime.Config.batch with
    | Some b -> Cluster.broadcast_now cluster b
    | None -> ()
  in
  (* u1 exists and tweets tw1; everyone is in sync *)
  run_sync east (Twitter.add_user app "u1");
  run_sync east (Twitter.do_tweet app ~n_users "u1" "tw1");

  (* concurrently: west deletes tw1 while east retweets it *)
  let retweet_out =
    (Twitter.retweet app ~n_users "u2" "tw1").Ipa_runtime.Config.run east
  in
  let delete_out =
    (Twitter.del_tweet app "tw1").Ipa_runtime.Config.run west
  in
  (match retweet_out.Ipa_runtime.Config.batch with
  | Some b -> Cluster.broadcast_now cluster b
  | None -> ());
  (match delete_out.Ipa_runtime.Config.batch with
  | Some b -> Cluster.broadcast_now cluster b
  | None -> ());

  (* what do users observe after convergence? *)
  let tweets =
    match Replica.peek east "tweets" with
    | Some o -> Awset.elements (Obj.as_awset o)
    | None -> []
  in
  Fmt.pr "tweets set after merge: {%s}@." (String.concat "; " tweets);
  (* read a follower's timeline through the application (the Rem-wins
     variant filters deleted tweets on read) *)
  let follower = "u9" (* u2+7*1 mod 10: first follower of u2 *) in
  let timeline_op = Twitter.timeline app follower in
  let _ = timeline_op.Ipa_runtime.Config.run east in
  let raw_timeline =
    match Replica.peek east ("timeline:" ^ follower) with
    | Some o -> Awset.elements (Obj.as_awset o)
    | None -> []
  in
  let visible =
    match variant with
    | Twitter.Rem_wins ->
        List.filter
          (fun e ->
            match String.index_opt e ':' with
            | Some i -> List.mem (String.sub e 0 i) tweets
            | None -> false)
          raw_timeline
    | _ -> raw_timeline
  in
  Fmt.pr "timeline of %s: raw={%s} visible={%s}@." follower
    (String.concat "; " raw_timeline)
    (String.concat "; " visible)

let () =
  Fmt.pr "=== Add-wins: the retweet restores the deleted tweet ===@.";
  run_scenario Twitter.Add_wins;
  Fmt.pr "@.=== Rem-wins: the delete wins; retweets are hidden on read ===@.";
  run_scenario Twitter.Rem_wins;
  Fmt.pr "@.=== Causal (unmodified): the timeline dangles ===@.";
  run_scenario Twitter.Causal
