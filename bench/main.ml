(** Benchmark entry point: regenerates every table and figure of the
    paper's evaluation (see DESIGN.md §4 for the experiment index).

    {v
    dune exec bench/main.exe            # run everything
    dune exec bench/main.exe -- fig4    # run a single experiment
    dune exec bench/main.exe -- quick   # reduced sweeps (CI-sized)
    v} *)

let usage () =
  Fmt.pr
    "usage: main.exe \
     [table1|fig2|fig4|fig5|fig6|fig7|fig8|fig9|micro|analysis|ablations|fault|faultnet|runtime \
     [--quick]|scale [--quick]|durability [--quick]|fuzz [--quick]|parallel \
     [--quick]|incr [--quick]|consistency [--quick]|escrow \
     [--quick]|quick|all]@."

let quick () =
  (* reduced sweeps for fast end-to-end validation *)
  Experiments.table1 ();
  Fmt.pr "@.";
  Experiments.fig4 ~client_counts:[ 2; 8 ] ();
  Fmt.pr "@.";
  Experiments.fig5 ~clients:4 ();
  Fmt.pr "@.";
  Experiments.fig6 ~clients:2 ();
  Fmt.pr "@.";
  Experiments.fig7 ~client_counts:[ 2; 8 ] ();
  Fmt.pr "@.";
  Experiments.fig9 ();
  Fmt.pr "@.";
  Experiments.fuzz ~quick:true ()

let all () =
  Experiments.table1 ();
  Fmt.pr "@.";
  Experiments.fig2 ();
  Fmt.pr "@.";
  Experiments.fig4 ();
  Fmt.pr "@.";
  Experiments.fig5 ();
  Fmt.pr "@.";
  Experiments.fig6 ();
  Fmt.pr "@.";
  Experiments.fig7 ();
  Fmt.pr "@.";
  Experiments.fig8 ();
  Fmt.pr "@.";
  Experiments.fig9 ();
  Fmt.pr "@.";
  Experiments.micro ();
  Fmt.pr "@.";
  Experiments.analysis ();
  Fmt.pr "@.";
  Experiments.ablations ();
  Fmt.pr "@.";
  Experiments.fault ();
  Fmt.pr "@.";
  Experiments.faultnet ();
  Fmt.pr "@.";
  Experiments.runtime ();
  Fmt.pr "@.";
  Experiments.scale ();
  Fmt.pr "@.";
  Experiments.durability ();
  Fmt.pr "@.";
  Experiments.fuzz ();
  Fmt.pr "@.";
  Experiments.parallel ();
  Fmt.pr "@.";
  Experiments.incr ();
  Fmt.pr "@.";
  Experiments.consistency ();
  Fmt.pr "@.";
  Experiments.escrow ()

let () =
  match if Array.length Sys.argv > 1 then Sys.argv.(1) else "all" with
  | "table1" -> Experiments.table1 ()
  | "fig2" -> Experiments.fig2 ()
  | "fig4" -> Experiments.fig4 ()
  | "fig5" -> Experiments.fig5 ()
  | "fig6" -> Experiments.fig6 ()
  | "fig7" -> Experiments.fig7 ()
  | "fig8" -> Experiments.fig8 ()
  | "fig9" -> Experiments.fig9 ()
  | "micro" -> Experiments.micro ()
  | "analysis" -> Experiments.analysis ()
  | "ablations" -> Experiments.ablations ()
  | "fault" -> Experiments.fault ()
  | "faultnet" -> Experiments.faultnet ()
  | "runtime" ->
      let quick = Array.length Sys.argv > 2 && Sys.argv.(2) = "--quick" in
      Experiments.runtime ~quick ()
  | "scale" ->
      let quick = Array.length Sys.argv > 2 && Sys.argv.(2) = "--quick" in
      Experiments.scale ~quick ()
  | "durability" ->
      let quick = Array.length Sys.argv > 2 && Sys.argv.(2) = "--quick" in
      Experiments.durability ~quick ()
  | "fuzz" ->
      let quick = Array.length Sys.argv > 2 && Sys.argv.(2) = "--quick" in
      Experiments.fuzz ~quick ()
  | "parallel" ->
      let quick = Array.length Sys.argv > 2 && Sys.argv.(2) = "--quick" in
      Experiments.parallel ~quick ()
  | "incr" ->
      let quick = Array.length Sys.argv > 2 && Sys.argv.(2) = "--quick" in
      Experiments.incr ~quick ()
  | "consistency" ->
      let quick = Array.length Sys.argv > 2 && Sys.argv.(2) = "--quick" in
      Experiments.consistency ~quick ()
  | "escrow" ->
      let quick = Array.length Sys.argv > 2 && Sys.argv.(2) = "--quick" in
      Experiments.escrow ~quick ()
  | "quick" -> quick ()
  | "all" -> all ()
  | _ -> usage ()
